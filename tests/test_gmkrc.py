"""Unit tests for GMKRC: pin-down cache + VMA SPY coherence + encoding."""

import pytest

from repro.cluster import node_pair
from repro.errors import GMError
from repro.gm import GmKernelPort
from repro.gmkrc import Gmkrc, decode_key, encode_key
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


@pytest.fixture
def setup():
    env = Environment()
    node, _ = node_pair(env)
    port = GmKernelPort(node, 2)
    cache = Gmkrc(port, node.vmaspy, max_cached_pages=16)
    return env, node, port, cache


def run(env, gen):
    return env.run(until=env.process(gen))


# -- encoding -----------------------------------------------------------------


def test_encode_decode_roundtrip():
    key = encode_key(42, 0x1234_5000)
    assert decode_key(key) == (42, 0x1234_5000)


def test_encoded_keys_disambiguate_identical_vaddrs():
    assert encode_key(1, 0x1000_0000) != encode_key(2, 0x1000_0000)


def test_encode_rejects_out_of_range():
    with pytest.raises(GMError):
        encode_key(0, 0x1000)
    with pytest.raises(GMError):
        encode_key(1, 1 << 33)


# -- cache behaviour ---------------------------------------------------------------


def test_miss_then_hit(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    vaddr = space.mmap(2 * PAGE_SIZE)
    key1, e1 = run(env, cache.acquire(space, vaddr, 2 * PAGE_SIZE))
    cache.release(e1)
    key2, e2 = run(env, cache.acquire(space, vaddr, 2 * PAGE_SIZE))
    cache.release(e2)
    assert e1 is e2
    assert key1 == key2 == encode_key(space.asid, vaddr)
    assert cache.hits == 1 and cache.misses == 1


def test_hit_is_much_cheaper_than_miss(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    vaddr = space.mmap(4 * PAGE_SIZE)
    t0 = env.now
    _, e = run(env, cache.acquire(space, vaddr, 4 * PAGE_SIZE))
    miss_cost = env.now - t0
    cache.release(e)
    t1 = env.now
    _, e = run(env, cache.acquire(space, vaddr, 4 * PAGE_SIZE))
    hit_cost = env.now - t1
    cache.release(e)
    assert miss_cost > us(10)
    assert hit_cost < us(1)


def test_subrange_hits_containing_entry(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    vaddr = space.mmap(4 * PAGE_SIZE)
    _, e = run(env, cache.acquire(space, vaddr, 4 * PAGE_SIZE))
    cache.release(e)
    key, e2 = run(env, cache.acquire(space, vaddr + PAGE_SIZE, PAGE_SIZE))
    assert e2 is e
    assert decode_key(key) == (space.asid, vaddr + PAGE_SIZE)


def test_two_spaces_same_vaddr_distinct_entries(setup):
    env, node, port, cache = setup
    s1 = node.new_process_space()
    s2 = node.new_process_space()
    v1 = s1.mmap(PAGE_SIZE)
    v2 = s2.mmap(PAGE_SIZE)
    assert v1 == v2  # the collision GMKRC exists to solve
    _, e1 = run(env, cache.acquire(s1, v1, PAGE_SIZE))
    _, e2 = run(env, cache.acquire(s2, v2, PAGE_SIZE))
    assert e1 is not e2
    assert cache.misses == 2
    # Both map to different physical frames through the shared port.
    assert e1.region.frames[0].pfn != e2.region.frames[0].pfn


def test_munmap_invalidates_overlapping_entry(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    vaddr = space.mmap(2 * PAGE_SIZE)
    _, e = run(env, cache.acquire(space, vaddr, 2 * PAGE_SIZE))
    cache.release(e)
    space.munmap(vaddr, PAGE_SIZE)
    assert not e.valid
    assert cache.invalidations == 1
    # Re-acquire must re-register (a fresh miss), not return stale state.
    _, e2 = run(env, cache.acquire(space, vaddr + PAGE_SIZE, PAGE_SIZE))
    assert e2 is not e
    assert cache.misses == 2


def test_fork_flushes_all_entries_of_space(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    v1 = space.mmap(PAGE_SIZE)
    v2 = space.mmap(PAGE_SIZE)
    _, e1 = run(env, cache.acquire(space, v1, PAGE_SIZE))
    _, e2 = run(env, cache.acquire(space, v2, PAGE_SIZE))
    cache.release(e1)
    cache.release(e2)
    space.fork()
    assert not e1.valid and not e2.valid
    assert cache.entry_count() == 0


def test_lru_eviction_pays_deregistration(setup):
    env, node, port, cache = setup  # budget: 16 pages
    space = node.new_process_space()
    v1 = space.mmap(8 * PAGE_SIZE)
    v2 = space.mmap(8 * PAGE_SIZE)
    v3 = space.mmap(8 * PAGE_SIZE)
    _, e1 = run(env, cache.acquire(space, v1, 8 * PAGE_SIZE))
    cache.release(e1)
    _, e2 = run(env, cache.acquire(space, v2, 8 * PAGE_SIZE))
    cache.release(e2)
    t0 = env.now
    _, e3 = run(env, cache.acquire(space, v3, 8 * PAGE_SIZE))
    evict_cost = env.now - t0
    assert not e1.valid  # LRU victim
    assert e2.valid
    assert cache.lazy_deregistrations == 1
    assert evict_cost >= us(200)  # the deferred deregistration bill


def test_eviction_refuses_inuse_entries(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    v1 = space.mmap(8 * PAGE_SIZE)
    v2 = space.mmap(16 * PAGE_SIZE)
    _, e1 = run(env, cache.acquire(space, v1, 8 * PAGE_SIZE))
    # e1 still referenced; 16 more pages cannot fit the 16-page budget
    with pytest.raises(GMError, match="in use"):
        run(env, cache.acquire(space, v2, 16 * PAGE_SIZE))


def test_unbalanced_release_raises(setup):
    env, node, port, cache = setup
    space = node.new_process_space()
    vaddr = space.mmap(PAGE_SIZE)
    _, e = run(env, cache.acquire(space, vaddr, PAGE_SIZE))
    cache.release(e)
    with pytest.raises(GMError):
        cache.release(e)


def test_disabled_cache_pays_registration_every_time(setup):
    env, node, port, _ = setup
    cache = Gmkrc(port, node.vmaspy, max_cached_pages=64, enabled=False)
    space = node.new_process_space()
    vaddr = space.mmap(4 * PAGE_SIZE)
    t0 = env.now
    _, e1 = run(env, cache.acquire(space, vaddr, 4 * PAGE_SIZE))
    first = env.now - t0
    cache.release(e1)
    t1 = env.now
    _, e2 = run(env, cache.acquire(space, vaddr, 4 * PAGE_SIZE))
    second = env.now - t1
    cache.release(e2)
    assert cache.hits == 0 and cache.misses == 2
    assert second > us(10)  # re-registration cost recurs
    assert second == pytest.approx(first, rel=0.2)


def test_end_to_end_send_through_cached_registration():
    """Data sent via a GMKRC key arrives intact at a remote node."""
    from repro.cluster import node_pair

    env = Environment()
    a, b = node_pair(env)
    port_a, port_b = GmKernelPort(a, 2), GmKernelPort(b, 2)
    cache_a = Gmkrc(port_a, a.vmaspy)
    space = a.new_process_space()
    vaddr = space.mmap(PAGE_SIZE)
    space.write_bytes(vaddr, b"via-gmkrc-key")
    dst = b.kspace.kmalloc(PAGE_SIZE)

    def receiver(env):
        from repro.mem.layout import sg_from_frames

        yield from port_b.provide_receive_buffer_physical(
            sg_from_frames(dst.frames, 0, PAGE_SIZE)
        )
        event = yield from port_b.receive_event()
        return event

    def sender(env):
        key, entry = yield from cache_a.acquire(space, vaddr, PAGE_SIZE)
        yield from port_a.send_registered(1, 2, key, 13)
        cache_a.release(entry)

    env.process(sender(env))
    event = env.run(until=env.process(receiver(env)))
    assert event.size == 13
    assert b.kspace.read_bytes(dst.vaddr, 13) == b"via-gmkrc-key"


# -- the sorted interval index ------------------------------------------------


def _index_entry(base, length, ins_seq):
    from repro.gmkrc.cache import CacheEntry

    return CacheEntry(space=None, base=base, length=length,
                      key_base=base, region=None, ins_seq=ins_seq)


def test_space_index_matches_linear_scan():
    """Property: find_covering == the old first-installed linear scan,
    through a deterministic add/remove/query workload."""
    from repro.gmkrc.cache import _SpaceIndex

    index = _SpaceIndex()
    live = []  # insertion order, like the old flat list
    seq = 0
    rng_state = 12345

    def rng(n):
        nonlocal rng_state
        rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        return rng_state % n

    for step in range(600):
        op = rng(3)
        if op < 2 or not live:  # add (biased: keep the index populated)
            seq += 1
            base = rng(64) * PAGE_SIZE
            length = (1 + rng(8)) * PAGE_SIZE
            entry = _index_entry(base, length, seq)
            index.add(entry)
            live.append(entry)
        else:  # remove a pseudo-random live entry
            entry = live.pop(rng(len(live)))
            index.remove(entry)
        vaddr = rng(72) * PAGE_SIZE
        length = (1 + rng(8)) * PAGE_SIZE
        expect = next((e for e in live if e.covers(vaddr, length)), None)
        assert index.find_covering(vaddr, length) is expect
    assert sorted(index.by_key) == index.order


def test_space_index_prefers_first_installed_of_overlapping():
    from repro.gmkrc.cache import _SpaceIndex

    index = _SpaceIndex()
    older = _index_entry(0, 8 * PAGE_SIZE, ins_seq=1)
    newer = _index_entry(0, 8 * PAGE_SIZE, ins_seq=2)
    index.add(newer)
    index.add(older)
    assert index.find_covering(PAGE_SIZE, PAGE_SIZE) is older
    index.remove(older)
    assert index.find_covering(PAGE_SIZE, PAGE_SIZE) is newer
