"""Unit tests for kernel threads and the MemFs raw interface."""

import pytest

from repro.cluster import Node
from repro.errors import Eisdir, Enoent, Enotempty
from repro.hw.params import HostParams
from repro.kernel import KernelThread, MemFs
from repro.sim import Environment
from repro.units import us


@pytest.fixture
def node():
    env = Environment()
    return Node(env, 0, HostParams(memory_frames=1024))


# -- kernel threads -----------------------------------------------------------


def test_kthread_processes_items_in_order(node):
    env = node.env
    handled = []

    def handler(item):
        yield env.timeout(10)
        handled.append(item)

    thread = KernelThread(env, node.cpu, handler, wakeup_ns=1000)
    for i in range(3):
        thread.submit(i)
    env.run()
    assert handled == [0, 1, 2]
    assert thread.items_processed == 3


def test_kthread_charges_wakeup_once_per_idle_burst(node):
    env = node.env
    stamps = []

    def handler(item):
        stamps.append(env.now)
        return
        yield  # pragma: no cover

    thread = KernelThread(env, node.cpu, handler, wakeup_ns=us(4))
    thread.submit("a")
    thread.submit("b")  # queued while the thread is awake: no second wakeup
    env.run()
    assert stamps[0] == us(4)
    assert stamps[1] - stamps[0] < us(1)
    assert thread.wakeups == 1


def test_kthread_sleeps_again_when_queue_drains(node):
    env = node.env
    stamps = []

    def handler(item):
        stamps.append(env.now)
        return
        yield  # pragma: no cover

    thread = KernelThread(env, node.cpu, handler, wakeup_ns=us(4))
    thread.submit("a")

    def late(env):
        yield env.timeout(us(100))
        thread.submit("b")

    env.process(late(env))
    env.run()
    assert thread.wakeups == 2
    assert stamps[1] == us(100) + us(4)


# -- MemFs raw interface ----------------------------------------------------------


def test_memfs_raw_read_write(node):
    fs = MemFs(node.env, node.cpu)
    attrs = node.env.run(until=node.env.process(fs.create(1, "f")))
    assert fs.write_raw(attrs.inode_id, 10, b"abc") == 3
    assert fs.read_raw(attrs.inode_id, 0, 13) == bytes(10) + b"abc"
    assert fs.read_raw(attrs.inode_id, 11, 100) == b"bc"


def test_memfs_raw_rejects_directories(node):
    fs = MemFs(node.env, node.cpu)
    with pytest.raises(Eisdir):
        fs.read_raw(1, 0, 10)  # root is a directory


def test_memfs_unlink_nonempty_dir_raises(node):
    env = node.env
    fs = MemFs(env, node.cpu)

    def script(env):
        d = yield from fs.mkdir(1, "d")
        yield from fs.create(d.inode_id, "child")
        yield from fs.unlink(1, "d")

    with pytest.raises(Enotempty):
        env.run(until=env.process(script(env)))


def test_memfs_lookup_missing_raises(node):
    env = node.env
    fs = MemFs(env, node.cpu)
    with pytest.raises(Enoent):
        env.run(until=env.process(fs.lookup(1, "ghost")))


def test_memfs_disk_latency_charged_on_first_touch_only(node):
    env = node.env
    fs = MemFs(env, node.cpu, disk_latency_ns=us(5000))
    attrs = env.run(until=env.process(fs.create(1, "f")))
    fs.write_raw(attrs.inode_id, 0, b"x" * 4096)
    frame = node.phys.alloc()

    t0 = env.now
    env.run(until=env.process(fs.readpage(attrs.inode_id, 0, frame)))
    cold = env.now - t0
    t1 = env.now
    env.run(until=env.process(fs.readpage(attrs.inode_id, 0, frame)))
    warm = env.now - t1
    assert cold >= us(5000)
    assert warm < us(100)
