"""Tests for the unified kernel channel (repro.core) over both backends."""

import pytest

from repro.cluster import node_pair
from repro.core import (
    GmKernelChannel,
    MxKernelChannel,
    TypedSegment,
    UnsupportedOperation,
)
from repro.mem.layout import sg_from_frames
from repro.sim import Environment
from repro.units import PAGE_SIZE


BACKENDS = ["mx", "gm"]


def make_channel(backend, node, port_id):
    if backend == "mx":
        return MxKernelChannel(node, port_id)
    return GmKernelChannel(node, port_id)


@pytest.fixture(params=BACKENDS)
def chans(request):
    env = Environment()
    a, b = node_pair(env)
    ca = make_channel(request.param, a, 7)
    cb = make_channel(request.param, b, 7)
    return env, a, b, ca, cb, request.param


def run(env, gen):
    return env.run(until=env.process(gen))


def test_kernel_to_kernel_roundtrip(chans):
    env, a, b, ca, cb, _ = chans
    src = a.kspace.kmalloc(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(src.vaddr, b"channel-bytes")

    def receiver(env):
        h = yield from cb.post_recv([TypedSegment.kernel(dst.vaddr, PAGE_SIZE)],
                                    match=9)
        completion = yield from cb.wait_recv(h)
        return completion

    def sender(env):
        h = yield from ca.send(1, 7, [TypedSegment.kernel(src.vaddr, 13)],
                               match=9, meta={"op": "test"})
        yield from ca.wait_send(h)

    env.process(sender(env))
    completion = run(env, receiver(env))
    assert completion.size == 13
    assert completion.meta == {"op": "test"}
    assert b.kspace.read_bytes(dst.vaddr, 13) == b"channel-bytes"


def test_user_memory_send_and_recv(chans):
    env, a, b, ca, cb, _ = chans
    sa, sb = a.new_process_space(), b.new_process_space()
    va = sa.mmap(PAGE_SIZE)
    vb = sb.mmap(PAGE_SIZE)
    sa.write_bytes(va, b"user-channel")

    def receiver(env):
        h = yield from cb.post_recv([TypedSegment.user(sb, vb, PAGE_SIZE)])
        completion = yield from cb.wait_recv(h)
        return completion

    def sender(env):
        h = yield from ca.send(1, 7, [TypedSegment.user(sa, va, 12)])
        yield from ca.wait_send(h)

    env.process(sender(env))
    completion = run(env, receiver(env))
    assert completion.size == 12
    assert sb.read_bytes(vb, 12) == b"user-channel"


def test_physical_segments_roundtrip(chans):
    env, a, b, ca, cb, _ = chans
    src = a.kspace.kmalloc(PAGE_SIZE)
    dst_frame = b.phys.alloc()
    dst_frame.pin()
    a.kspace.write_bytes(src.vaddr, b"to-page-cache")

    def receiver(env):
        h = yield from cb.post_recv(
            [TypedSegment.physical(sg_from_frames([dst_frame], 0, PAGE_SIZE))]
        )
        completion = yield from cb.wait_recv(h)
        return completion

    def sender(env):
        h = yield from ca.send(1, 7, [TypedSegment.kernel(src.vaddr, 13)])
        yield from ca.wait_send(h)

    env.process(sender(env))
    completion = run(env, receiver(env))
    assert dst_frame.read(0, 13) == b"to-page-cache"


def test_wait_any_recv(chans):
    env, a, b, ca, cb, _ = chans
    src = a.kspace.kmalloc(PAGE_SIZE)
    d1 = b.kspace.kmalloc(PAGE_SIZE)
    d2 = b.kspace.kmalloc(PAGE_SIZE)

    def receiver(env):
        h1 = yield from cb.post_recv([TypedSegment.kernel(d1.vaddr, 64)], match=1)
        h2 = yield from cb.post_recv([TypedSegment.kernel(d2.vaddr, 64)], match=2)
        winner, completion = yield from cb.wait_any_recv([h1, h2])
        return winner is h2 and completion.match == 2

    def sender(env):
        h = yield from ca.send(1, 7, [TypedSegment.kernel(src.vaddr, 32)], match=2)
        yield from ca.wait_send(h)

    env.process(sender(env))
    assert run(env, receiver(env)) is True


def test_gm_rejects_vectorial_user_send():
    env = Environment()
    a, b = node_pair(env)
    ca = GmKernelChannel(a, 7)
    GmKernelChannel(b, 7)
    space = a.new_process_space()
    v = space.mmap(2 * PAGE_SIZE, populate=True)
    segs = [
        TypedSegment.user(space, v, 100),
        TypedSegment.user(space, v + PAGE_SIZE, 100),
    ]
    with pytest.raises(UnsupportedOperation):
        run(env, ca.send(1, 7, segs))
    assert not ca.supports_vectorial


def test_mx_accepts_vectorial_send():
    env = Environment()
    a, b = node_pair(env)
    ca = MxKernelChannel(a, 7)
    cb = MxKernelChannel(b, 7)
    k1 = a.kspace.kmalloc(PAGE_SIZE)
    k2 = a.kspace.kmalloc(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(k1.vaddr, b"one-")
    a.kspace.write_bytes(k2.vaddr, b"two!")

    def receiver(env):
        h = yield from cb.post_recv([TypedSegment.kernel(dst.vaddr, 8)])
        yield from cb.wait_recv(h)
        return b.kspace.read_bytes(dst.vaddr, 8)

    def sender(env):
        h = yield from ca.send(
            1, 7,
            [TypedSegment.kernel(k1.vaddr, 4), TypedSegment.kernel(k2.vaddr, 4)],
        )
        yield from ca.wait_send(h)

    env.process(sender(env))
    assert run(env, receiver(env)) == b"one-two!"
    assert ca.supports_vectorial


def test_gm_channel_reuses_registration_cache():
    env = Environment()
    a, b = node_pair(env)
    ca = GmKernelChannel(a, 7)
    cb = GmKernelChannel(b, 7)
    space = a.new_process_space()
    va = space.mmap(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)

    def receiver(env, n):
        for _ in range(n):
            h = yield from cb.post_recv([TypedSegment.kernel(dst.vaddr, PAGE_SIZE)])
            yield from cb.wait_recv(h)

    def sender(env, n):
        for _ in range(n):
            h = yield from ca.send(1, 7, [TypedSegment.user(space, va, 256)])
            yield from ca.wait_send(h)

    env.process(receiver(env, 3))
    run(env, sender(env, 3))
    assert ca.gmkrc.misses == 1
    assert ca.gmkrc.hits == 2


def test_channel_latency_gm_pays_dispatch_penalty():
    """The GM channel's per-message receive cost exceeds MX's by more
    than the raw 4.5 us API latency difference (extra dispatch hop)."""

    def round_trip_time(backend):
        env = Environment()
        a, b = node_pair(env)
        ca = make_channel(backend, a, 7)
        cb = make_channel(backend, b, 7)
        src = a.kspace.kmalloc(PAGE_SIZE)
        dst = b.kspace.kmalloc(PAGE_SIZE)
        back = a.kspace.kmalloc(PAGE_SIZE)

        def echo(env):
            h = yield from cb.post_recv([TypedSegment.kernel(dst.vaddr, 64)])
            yield from cb.wait_recv(h)
            hs = yield from cb.send(0, 7, [TypedSegment.kernel(dst.vaddr, 32)])
            yield from cb.wait_send(hs)

        def origin(env):
            hr = yield from ca.post_recv([TypedSegment.kernel(back.vaddr, 64)])
            hs = yield from ca.send(1, 7, [TypedSegment.kernel(src.vaddr, 32)])
            yield from ca.wait_recv(hr)

        env.process(echo(env))
        t0 = env.now
        run(env, origin(env))
        return env.now - t0

    gm = round_trip_time("gm")
    mx = round_trip_time("mx")
    assert gm > mx + 8000  # 2x(2us kernel penalty) + 2x dispatch wakeup
