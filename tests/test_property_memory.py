"""Property-based tests (hypothesis) for the memory substrate."""

from hypothesis import given, settings, strategies as st

from repro.mem import AddressSpace, KernelSpace, PhysicalMemory, sg_from_user
from repro.mem.layout import sg_from_frames, sg_from_kernel
from repro.units import PAGE_SIZE, page_align_up, pages_spanned


# -- pages_spanned ------------------------------------------------------------


@given(addr=st.integers(0, 2**32 - 1), length=st.integers(0, 2**20))
def test_pages_spanned_bounds(addr, length):
    n = pages_spanned(addr, length)
    if length == 0:
        assert n == 0
    else:
        # at least ceil(len/page), at most one more (offset spill)
        lo = -(-length // PAGE_SIZE)
        assert lo <= n <= lo + 1


@given(addr=st.integers(0, 2**32 - 1), length=st.integers(1, 2**20))
def test_pages_spanned_covers_last_byte(addr, length):
    n = pages_spanned(addr, length)
    first_page = addr // PAGE_SIZE
    last_byte_page = (addr + length - 1) // PAGE_SIZE
    assert first_page + n - 1 == last_byte_page


@given(length=st.integers(0, 2**24))
def test_page_align_up_properties(length):
    aligned = page_align_up(length)
    assert aligned % PAGE_SIZE == 0
    assert 0 <= aligned - length < PAGE_SIZE


# -- physical memory ----------------------------------------------------------


@given(ops=st.lists(st.booleans(), max_size=60))
@settings(max_examples=50)
def test_phys_alloc_free_conserves_frames(ops):
    """Any alloc/free sequence keeps allocated+free == total."""
    phys = PhysicalMemory(32)
    live = []
    for do_alloc in ops:
        if do_alloc and phys.free_frames:
            live.append(phys.alloc())
        elif live:
            phys.free(live.pop())
        assert phys.allocated_frames + phys.free_frames == 32
        assert phys.allocated_frames == len(live)


@given(
    offset=st.integers(0, PAGE_SIZE - 1),
    data=st.binary(min_size=1, max_size=PAGE_SIZE),
)
def test_frame_write_read_identity(offset, data):
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    n = min(len(data), PAGE_SIZE - offset)
    frame.write(offset, data[:n])
    assert frame.read(offset, n) == data[:n]


@given(
    start=st.integers(0, 3 * PAGE_SIZE),
    data=st.binary(min_size=1, max_size=2 * PAGE_SIZE),
)
@settings(max_examples=50)
def test_phys_rw_crossing_frames_identity(start, data):
    phys = PhysicalMemory(8)
    frames = phys.alloc_contiguous(6)
    base = frames[0].phys_addr
    phys.write_phys(base + start, data)
    assert phys.read_phys(base + start, len(data)) == data


# -- address spaces ------------------------------------------------------------


@given(
    offset=st.integers(0, PAGE_SIZE),
    data=st.binary(min_size=1, max_size=3 * PAGE_SIZE),
)
@settings(max_examples=50)
def test_addrspace_write_read_identity(offset, data):
    phys = PhysicalMemory(64)
    space = AddressSpace(phys)
    vaddr = space.mmap(4 * PAGE_SIZE)
    space.write_bytes(vaddr + offset, data)
    assert space.read_bytes(vaddr + offset, len(data)) == data


@given(npages=st.lists(st.integers(1, 4), min_size=1, max_size=6))
@settings(max_examples=50)
def test_mmap_regions_never_overlap(npages):
    phys = PhysicalMemory(128)
    space = AddressSpace(phys)
    regions = []
    for n in npages:
        start = space.mmap(n * PAGE_SIZE)
        regions.append((start, start + n * PAGE_SIZE))
    regions.sort()
    for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
        assert e1 <= s2


@given(
    layout=st.lists(st.tuples(st.integers(1, 3), st.booleans()),
                    min_size=1, max_size=8)
)
@settings(max_examples=50)
def test_munmap_then_mmap_reuses_space_without_overlap(layout):
    """Alternating map/unmap keeps the VMA list self-consistent."""
    phys = PhysicalMemory(256)
    space = AddressSpace(phys)
    live = []
    for npages, unmap_one in layout:
        addr = space.mmap(npages * PAGE_SIZE, populate=True)
        live.append((addr, npages * PAGE_SIZE))
        if unmap_one and len(live) > 1:
            a, length = live.pop(0)
            space.munmap(a, length)
        # every live region is readable and regions are disjoint
        spans = sorted(live)
        for (s1, l1), (s2, l2) in zip(spans, spans[1:]):
            assert s1 + l1 <= s2
        for a, length in live:
            space.read_bytes(a, 1)


@given(
    offset=st.integers(0, PAGE_SIZE - 1),
    length=st.integers(1, 3 * PAGE_SIZE),
)
@settings(max_examples=50)
def test_sg_from_user_covers_exact_range(offset, length):
    phys = PhysicalMemory(64)
    space = AddressSpace(phys)
    vaddr = space.mmap(4 * PAGE_SIZE, populate=True)
    segs = sg_from_user(space, vaddr + offset, length)
    assert sum(s.length for s in segs) == length
    # segments are maximal: no two adjacent segments are contiguous
    for a, b in zip(segs, segs[1:]):
        assert a.end != b.phys_addr


@given(
    nframes=st.integers(1, 6),
    offset=st.integers(0, PAGE_SIZE - 1),
)
@settings(max_examples=50)
def test_sg_from_frames_total_length(nframes, offset):
    phys = PhysicalMemory(16)
    frames = [phys.alloc() for _ in range(nframes)]
    total = nframes * PAGE_SIZE - offset
    segs = sg_from_frames(frames, offset=offset)
    assert sum(s.length for s in segs) == total


@given(sizes=st.lists(st.integers(1, 3 * PAGE_SIZE), min_size=1, max_size=6))
@settings(max_examples=50)
def test_kmalloc_sg_always_single_segment(sizes):
    phys = PhysicalMemory(256)
    kspace = KernelSpace(phys)
    for size in sizes:
        alloc = kspace.kmalloc(size)
        segs = sg_from_kernel(kspace, alloc.vaddr, size)
        assert len(segs) == 1
        assert segs[0].length == size
