"""Smoke tests: every example must run to completion, both APIs where
applicable.  Keeps the examples from rotting as the library evolves."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *argv: str) -> None:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "6.7" in out and "4.3" in out


@pytest.mark.slow
@pytest.mark.parametrize("api", ["mx", "gm"])
def test_distributed_fs(api, capsys):
    run_example("distributed_fs.py", api)
    out = capsys.readouterr().out
    assert "data verified" in out


def test_zero_copy_sockets(capsys):
    run_example("zero_copy_sockets.py")
    out = capsys.readouterr().out
    assert "Sockets-MX" in out and "TCP/GigE" in out


@pytest.mark.parametrize("api", ["mx", "gm"])
def test_network_block_device(api, capsys):
    run_example("network_block_device.py", api)
    out = capsys.readouterr().out
    assert "blocks read over the wire" in out


def test_registration_cache_pitfalls(capsys):
    run_example("registration_cache_pitfalls.py")
    out = capsys.readouterr().out
    assert "coherence held" in out


@pytest.mark.parametrize("api", ["mx", "gm"])
def test_mpi_stencil(api, capsys):
    run_example("mpi_stencil.py", api)
    out = capsys.readouterr().out
    assert "checkpoint files on server: 8" in out
