"""System-level determinism: identical runs are bit-for-bit identical.

The whole benchmark methodology rests on this: no wall-clock, no global
RNG, deterministic tie-breaking in the event heap.  These tests rerun
full multi-subsystem scenarios and require *exactly* equal clocks,
counters and data.
"""

from repro.bench.fileio import build_orfs, orfs_sequential_read
from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import GmUserTransport, MxTransport
from repro.cluster import node_pair
from repro.sim import Environment
from repro.units import KiB, MiB


def test_netpipe_runs_identically():
    def once():
        env = Environment()
        a, b = node_pair(env)
        ta = MxTransport(a, 1, peer_node=1, peer_ep=1)
        tb = MxTransport(b, 1, peer_node=0, peer_ep=1)
        prepare_pair(env, ta, tb, 64 * KiB)
        results = [ping_pong(env, ta, tb, s, rounds=5).one_way_ns
                   for s in (1, 4096, 64 * KiB)]
        return results, env.now

    assert once() == once()


def test_orfs_full_stack_runs_identically():
    def once():
        rig = build_orfs("gm", file_size=256 * KiB)
        r1 = orfs_sequential_read(rig, 16 * KiB, 256 * KiB)
        r2 = orfs_sequential_read(rig, 16 * KiB, 256 * KiB, direct=True)
        return (r1.elapsed_ns, r2.elapsed_ns, rig.env.now,
                rig.server.requests_served,
                rig.client_node.pagecache.hits,
                rig.client_node.pagecache.misses)

    assert once() == once()


#: Figure 5(a) series as produced by the seed (pre-fast-path) engine.
#: The engine/allocator fast paths must not perturb a single value:
#: scheduling order, clocks and arithmetic are required to be
#: byte-identical to the original single-heap implementation.
_FIG5A_SEED_GOLDEN = {
    "xs": [1, 16, 256, 1024, 4096],
    "series": {
        "GM User": [6.704, 6.764, 7.724, 10.796, 23.084],
        "GM Kernel": [8.704, 8.764, 9.724, 12.796, 25.084],
        "MX User": [4.308, 4.419, 5.656, 9.426, 24.508],
        "MX Kernel": [4.308, 4.419, 5.656, 9.426, 24.508],
    },
}


def test_fig5a_series_byte_identical_to_seed():
    from repro.bench.figures import fig5a

    data = fig5a()
    assert data.xs == _FIG5A_SEED_GOLDEN["xs"]
    assert data.series == _FIG5A_SEED_GOLDEN["series"]


def test_gm_registration_costs_identical_across_runs():
    def once():
        env = Environment()
        a, b = node_pair(env)
        t = GmUserTransport(a, 1, peer_node=1, peer_port=1)
        env.run(until=env.process(t.prepare(MiB)))
        return env.now, len(a.nic.transtable)

    assert once() == once()
