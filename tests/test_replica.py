"""Replicated NBD block store: chain replication, failover, resync,
and chaos-verified linearizability.

The heavy lifting lives in :mod:`repro.nbd.chaos` — one five-node
harness per scenario, fully deterministic per ``(scenario, seed)``.
``REPRO_FAULT_SEED`` sweeps the seed the same way the fault suite does,
so the CI chaos-replica matrix reruns everything here under several
seeds.
"""

import os

import pytest

from repro.nbd.chaos import (CHAOS_PARAMS, SCENARIOS, failover_bound_ns,
                             run_scenario)
from repro.nbd.client import Op
from repro.nbd.linearize import check_history
from repro.nbd.replica import ChainConfig, decode_value, encode_value

SEED = int(os.environ.get("REPRO_FAULT_SEED", "1"))


# -- the linearizability checker itself ---------------------------------------


def _op(kind, block, token, invoke, complete, ok=True):
    return Op(kind=kind, block=block, token=token, invoke_ns=invoke,
              complete_ns=complete, ok=ok)


def test_checker_accepts_sequential_history():
    ops = [
        _op("w", 0, 7, 0, 10),
        _op("r", 0, 7, 20, 30),
        _op("w", 0, 9, 40, 50),
        _op("r", 0, 9, 60, 70),
    ]
    assert check_history(ops).ok


def test_checker_rejects_stale_read():
    ops = [
        _op("w", 0, 7, 0, 10),
        _op("r", 0, 0, 20, 30),  # reads the initial value after a write
    ]
    result = check_history(ops)
    assert not result.ok
    assert result.blocks == {0: False}
    assert "NOT linearizable" in result.explain()


def test_checker_concurrent_write_may_order_either_way():
    # Two overlapping writes; a later read may see either winner.
    for winner in (7, 9):
        ops = [
            _op("w", 0, 7, 0, 100),
            _op("w", 0, 9, 10, 90),
            _op("r", 0, winner, 200, 210),
        ]
        assert check_history(ops).ok, winner


def test_checker_blocks_are_independent_registers():
    ops = [
        _op("w", 0, 7, 0, 10),
        _op("w", 1, 8, 0, 10),
        _op("r", 0, 7, 20, 30),
        _op("r", 1, 8, 20, 30),
        _op("r", 2, 0, 20, 30),  # untouched block still holds the initial 0
    ]
    result = check_history(ops)
    assert result.ok
    assert set(result.blocks) == {0, 1, 2}


def test_checker_pending_write_may_take_effect_or_not():
    # The client gave up on the write, but it may still have committed.
    pending = _op("w", 0, 7, 0, None, ok=False)
    assert check_history([pending, _op("r", 0, 7, 100, 110)]).ok
    assert check_history([pending, _op("r", 0, 0, 100, 110)]).ok


def test_checker_pending_write_cannot_unhappen():
    # Once a read observed the pending write, a later read must not
    # revert to the old value — that history is not linearizable.
    ops = [
        _op("w", 0, 7, 0, None, ok=False),
        _op("r", 0, 7, 100, 110),
        _op("r", 0, 0, 200, 210),
    ]
    assert not check_history(ops).ok


def test_block_token_encoding_round_trips():
    for token in (0, 1, 0x0102_0304, (5 << 24) | (1 << 20) | 42):
        assert decode_value(encode_value(token)) == token


def test_chain_config_neighbours():
    cfg = ChainConfig(epoch=3, chain=(1, 2, 3))
    assert cfg.head == 1 and cfg.tail == 3
    assert cfg.successor(1) == 2 and cfg.successor(3) is None
    assert cfg.predecessor(2) == 1 and cfg.predecessor(1) is None


# -- chaos scenarios ----------------------------------------------------------


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_scenario_is_linearizable_with_no_lost_ops(name):
    """Acceptance: every chaos scenario yields a linearizable client
    history with zero retry-budget exhaustions, and every
    reconfiguration lands within the lease + resync bound."""
    r = run_scenario(name, seed=SEED)
    assert r.lin.ok, r.lin.explain()
    assert r.failed_ops == []
    assert r.failovers_within(failover_bound_ns())


def test_crash_scenarios_record_exactly_one_failover():
    for name in ("crash-head", "crash-middle", "crash-tail"):
        r = run_scenario(name, seed=SEED)
        assert len(r.failovers) == 1, name
        f = r.failovers[0]
        assert f["done_ns"] > f["detect_ns"]
        assert f["cause"] in ("lease", "peer")


def test_reset_scenarios_need_no_reconfiguration():
    """A NIC firmware reset loses sequence state, not the replica: the
    incarnation/session protocol re-establishes every conversation
    without the controller ever reconfiguring the chain."""
    for name in ("reset-head", "reset-middle", "reset-tail"):
        r = run_scenario(name, seed=SEED)
        assert r.failovers == [], name
        assert r.resyncs == [], name


def test_crash_rejoin_resyncs_dirty_extents():
    r = run_scenario("crash-rejoin-middle", seed=SEED)
    assert len(r.failovers) == 1  # the crash eviction
    assert len(r.resyncs) == 1  # the rejoin
    rs = r.resyncs[0]
    assert rs["done_ns"] - rs["start_ns"] <= CHAOS_PARAMS.resync_bound_ns
    assert '"nbd.replica.resync_blocks' in r.metrics_json  # extents copied


def test_failover_metrics_are_exported():
    r = run_scenario("crash-middle", seed=SEED)
    assert '"nbd.replica.failover_ns' in r.metrics_json
    assert '"nbd.replica.deaths' in r.metrics_json


def test_same_seed_reproduces_traces_and_metrics():
    """The determinism contract CI's chaos-replica job diffs: trace text
    and metrics snapshot are byte-identical across same-seed reruns."""
    a = run_scenario("crash-rejoin-middle", seed=SEED)
    b = run_scenario("crash-rejoin-middle", seed=SEED)
    assert a.trace == b.trace
    assert a.metrics_json == b.metrics_json
    assert a.duration_ns == b.duration_ns


def test_different_seeds_change_the_workload():
    a = run_scenario("none", seed=1)
    b = run_scenario("none", seed=2)
    assert ([o.token for o in a.history.ops]
            != [o.token for o in b.history.ops])


# -- the bench driver ---------------------------------------------------------


def test_bench_replica_driver_runs(capsys):
    from repro.bench.runner import main
    assert main(["replica", "--seed", str(SEED),
                 "--scenario", "none", "--scenario", "crash-middle"]) == 0
    out = capsys.readouterr().out
    assert "Replicated NBD chain" in out
    assert "crash-middle" in out
    assert "MISS" not in out
