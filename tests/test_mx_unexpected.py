"""MX unexpected-message handling and receive-copy removal."""

import pytest

from repro.cluster import node_pair
from repro.mem.layout import sg_from_frames
from repro.mx import MxEndpoint, MxSegment
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


def run(env, gen):
    return env.run(until=env.process(gen))


def test_unexpected_medium_buffered_until_matched():
    """Eager medium messages arriving before the irecv wait in the
    unexpected queue and complete on the late post."""
    env = Environment()
    a, b = node_pair(env)
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(src.vaddr, b"early-bird")

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, 10)],
                                    match=4)
        yield from ep_a.wait(req)

    run(env, sender(env))
    env.run(until=env.now + us(100))
    assert len(ep_b.nic_port.unexpected) == 1

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, 64)], match=4)
        yield from ep_b.wait(req)

    run(env, receiver(env))
    assert b.kspace.read_bytes(dst.vaddr, 10) == b"early-bird"


def test_unexpected_large_stalls_until_matched():
    """Rendezvous: the data does not move before the receive exists."""
    env = Environment()
    a, b = node_pair(env)
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    size = 100_000
    src = a.kspace.kmalloc(size)
    dst = b.kspace.kmalloc(size)

    send_done = {}

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, size)],
                                    match=5)
        yield from ep_a.wait(req)
        send_done["at"] = env.now

    env.process(sender(env))
    env.run(until=env.now + us(500))
    assert "at" not in send_done  # still parked on the RTS
    assert a.nic.messages_sent == 0

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, size)],
                                    match=5)
        yield from ep_b.wait(req)

    run(env, receiver(env))
    assert "at" in send_done


def test_no_recv_copy_deposits_directly_and_saves_time():
    """The predicted receive-copy removal (figure 6's dashed curve):
    data lands straight in the physical destination, the ring copy is
    gone, and the bytes still arrive intact."""
    env = Environment()
    a, b = node_pair(env)
    size = 16 * 1024
    payload = bytes((i * 9) % 256 for i in range(size))

    def one_way(no_recv_copy):
        ep_a = MxEndpoint(a, 10 + no_recv_copy, context="kernel")
        ep_b = MxEndpoint(b, 10 + no_recv_copy, context="kernel",
                          no_recv_copy=no_recv_copy)
        src = a.kspace.kmalloc(size)
        dst_frames = b.phys.alloc_contiguous(4)
        for f in dst_frames:
            f.pin()
        a.kspace.write_bytes(src.vaddr, payload)
        t = {}

        def receiver(env):
            req = yield from ep_b.irecv(
                [MxSegment.physical(sg_from_frames(dst_frames, 0, size))])
            t["post"] = env.now
            yield from ep_b.wait(req)
            t["done"] = env.now

        def sender(env):
            yield env.timeout(1000)
            req = yield from ep_a.isend(1, 10 + no_recv_copy,
                                        [MxSegment.kernel(src.vaddr, size)])
            yield from ep_a.wait(req)

        env.process(sender(env))
        run(env, receiver(env))
        data = b"".join(f.read(0, PAGE_SIZE) for f in dst_frames)[:size]
        return t["done"] - t["post"], data

    with_copy, data1 = one_way(False)
    without, data2 = one_way(True)
    assert data1 == data2 == payload
    # the removed ring copy (~15 us at 16 kB) shows up directly
    assert with_copy - without > us(10)
