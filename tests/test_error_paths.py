"""Coverage for hardware error paths that previously had none:
closed-port use, unattached link ends, invalid utilization direction,
and wire accounting when a message is dropped mid-flight."""

import pytest

from repro.cluster import node_pair
from repro.errors import NetworkError, PortError
from repro.faults import FaultPlan
from repro.hw import Link
from repro.hw.nic import Message, MsgKind, PostedReceive
from repro.hw.params import MX_KERNEL_COSTS, PCI_XD
from repro.sim import Environment


def _eager(dst_nic=1, size=256):
    return Message(kind=MsgKind.EAGER, src_nic=0, src_port=1,
                   dst_nic=dst_nic, dst_port=1, match=0, size=size,
                   wire_size=size)


# -- closed NicPort -----------------------------------------------------------


def test_post_receive_on_closed_port_raises():
    env = Environment()
    a, _ = node_pair(env)
    port = a.nic.open_port(7, MX_KERNEL_COSTS)
    port.close()
    with pytest.raises(PortError, match="closed"):
        port.post_receive(PostedReceive(match=None, capacity=4096))


def test_port_lookup_rejects_closed_and_unknown():
    env = Environment()
    a, _ = node_pair(env)
    port = a.nic.open_port(7, MX_KERNEL_COSTS)
    port.close()
    with pytest.raises(PortError, match="closed"):
        a.nic.port(7)
    with pytest.raises(PortError, match="no port"):
        a.nic.port(99)


def test_reopening_a_closed_port_id_is_allowed():
    env = Environment()
    a, _ = node_pair(env)
    a.nic.open_port(7, MX_KERNEL_COSTS).close()
    port = a.nic.open_port(7, MX_KERNEL_COSTS)
    assert port.open


# -- unattached link ends -----------------------------------------------------


def test_transmit_to_unattached_end_raises():
    env = Environment()
    link = Link(env, PCI_XD)
    link.attach("a", lambda item: None)

    def tx(env):
        yield from link.transmit("a", _eager(), 256)

    env.process(tx(env))
    with pytest.raises(NetworkError, match="no endpoint attached"):
        env.run()


def test_transmit_from_invalid_end_raises():
    env = Environment()
    link = Link(env, PCI_XD)

    def tx(env):
        yield from link.transmit("c", _eager(), 256)

    env.process(tx(env))
    with pytest.raises(NetworkError, match="'a' or 'b'"):
        env.run()


def test_double_attach_same_end_raises():
    env = Environment()
    link = Link(env, PCI_XD)
    link.attach("a", lambda item: None)
    with pytest.raises(NetworkError, match="already attached"):
        link.attach("a", lambda item: None)


# -- utilization argument validation ------------------------------------------


def test_utilization_invalid_direction_raises_network_error():
    env = Environment()
    link = Link(env, PCI_XD)
    with pytest.raises(NetworkError, match="'ab' or 'ba'"):
        link.utilization("sideways")


def test_utilization_valid_directions_return_floats():
    env = Environment()
    link = Link(env, PCI_XD)
    assert link.utilization("ab") == 0.0
    assert link.utilization("ba") == 0.0


# -- wire accounting when a message drops mid-flight --------------------------


def test_bytes_carried_counts_dropped_messages():
    """The wire is occupied for the full serialization whether or not
    the bits arrive, so a dropped message still counts in
    ``bytes_carried`` — and in nothing else."""
    env = Environment()
    link = Link(env, PCI_XD, name="lossy")
    delivered = []
    link.attach("a", delivered.append)
    link.attach("b", delivered.append)
    plan = FaultPlan(seed=1).drop("lossy", 1.0)
    plan.install(env, links=[link], reliability=False)

    def tx(env):
        yield from link.transmit("a", _eager(size=512), 512)

    env.process(tx(env))
    env.run()
    assert delivered == []
    assert link.bytes_carried == 512
    assert link.messages_dropped == 1
    assert plan.stats()["dropped"] == 1


def test_bytes_carried_unchanged_semantics_without_faults():
    env = Environment()
    link = Link(env, PCI_XD)
    delivered = []
    link.attach("a", delivered.append)
    link.attach("b", delivered.append)

    def tx(env):
        yield from link.transmit("a", _eager(size=512), 512)

    env.process(tx(env))
    env.run()
    assert len(delivered) == 1
    assert link.bytes_carried == 512
    assert link.messages_dropped == 0
