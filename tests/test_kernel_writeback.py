"""Tests for the background writeback daemon (repro.kernel.writeback)."""

import pytest

from repro.cluster import node_pair
from repro.core import MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.kernel.writeback import WritebackDaemon
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE, ms, us


def build():
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api="mx")
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    client = mount_orfs(client_node, channel, (server_node.node_id, 3))
    return env, client_node, server, client


def dirty_some_pages(env, node, client, n_pages, daemon=None):
    """Buffered-write n pages without closing (pages stay dirty)."""
    space = node.new_process_space()
    payload = bytes((i * 3) % 256 for i in range(n_pages * PAGE_SIZE))
    vaddr = space.mmap(len(payload))
    space.write_bytes(vaddr, payload)
    fds = {}

    def script(env):
        fd = yield from node.vfs.open("/orfs/f", OpenFlags.RDWR | OpenFlags.CREAT)
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, len(payload)))
        fds["fd"] = fd

    env.run(until=env.process(script(env)))
    if daemon is not None:
        # inode 2 is the first file created on the fresh server FS
        daemon.register_inode(2, client, n_pages * PAGE_SIZE)
    return payload, fds["fd"]


def test_daemon_flushes_dirty_pages_on_interval():
    env, node, server, client = build()
    daemon = WritebackDaemon(env, node.cpu, node.pagecache, interval_ns=ms(1))
    payload, fd = dirty_some_pages(env, node, client, 4, daemon)
    assert len(node.pagecache.dirty_pages()) == 4
    env.run(until=env.now + ms(3))
    assert len(node.pagecache.dirty_pages()) == 0
    assert daemon.pages_written == 4
    assert server.fs.read_raw(2, 0, len(payload)) == payload


def test_unregistered_inodes_left_alone():
    env, node, server, client = build()
    daemon = WritebackDaemon(env, node.cpu, node.pagecache, interval_ns=ms(1))
    dirty_some_pages(env, node, client, 2, daemon=None)  # never registered
    env.run(until=env.now + ms(3))
    assert len(node.pagecache.dirty_pages()) == 2
    assert daemon.pages_written == 0


def test_size_bound_respected_for_partial_tail_page():
    env, node, server, client = build()
    daemon = WritebackDaemon(env, node.cpu, node.pagecache, interval_ns=ms(1))
    space = node.new_process_space()
    data = b"tail" * 100  # 400 bytes: a partial page
    vaddr = space.mmap(PAGE_SIZE)
    space.write_bytes(vaddr, data)

    def script(env):
        fd = yield from node.vfs.open("/orfs/t", OpenFlags.RDWR | OpenFlags.CREAT)
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, len(data)))

    env.run(until=env.process(script(env)))
    daemon.register_inode(2, client, len(data))
    env.run(until=env.now + ms(3))
    assert server.fs.read_raw(2, 0, 1000) == data  # exactly 400 bytes


def test_stop_halts_the_daemon():
    env, node, server, client = build()
    daemon = WritebackDaemon(env, node.cpu, node.pagecache, interval_ns=ms(1))
    env.run(until=env.now + ms(2))
    sweeps = daemon.sweeps
    daemon.stop()
    env.run(until=env.now + ms(5))
    assert daemon.sweeps <= sweeps + 1  # at most the in-flight sweep


def test_writeback_makes_pages_evictable_again():
    """Dirty pages block eviction; after the daemon runs, cache pressure
    can be relieved (the deadlock the daemon exists to prevent)."""
    env, node, server, client = build()
    node.pagecache.max_pages = 6
    daemon = WritebackDaemon(env, node.cpu, node.pagecache, interval_ns=ms(1))
    dirty_some_pages(env, node, client, 5, daemon)
    env.run(until=env.now + ms(3))  # flush
    # now 5 clean pages are resident; adding 3 more must evict, not fail
    for i in range(3):
        node.pagecache.add(99, i)
    assert len(node.pagecache) <= 6
