"""Tests for asynchronous I/O (VFS aio_read/aio_write over ORFS)."""

import pytest

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.errors import Einval
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import KiB, PAGE_SIZE

BACKENDS = ["mx", "gm"]


def build(api, file_pages=64):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api=api)
    env.run(until=server.start())
    channel = (MxKernelChannel if api == "mx" else GmKernelChannel)(client_node, 4)
    mount_orfs(client_node, channel, (server_node.node_id, 3))
    attrs = env.run(until=env.process(server.fs.create(1, "f")))
    payload = bytes((i * 13) % 256 for i in range(file_pages * PAGE_SIZE))
    server.fs.write_raw(attrs.inode_id, 0, payload)
    return env, client_node, server, payload


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.mark.parametrize("api", BACKENDS)
def test_aio_read_returns_correct_data(api):
    env, node, server, payload = build(api)
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f",
                                      OpenFlags.RDONLY | OpenFlags.DIRECT)
        bufs = [space.mmap(64 * KiB) for _ in range(4)]
        reqs = []
        for i, vaddr in enumerate(bufs):
            r = yield from node.vfs.aio_read(
                fd, UserBuffer(space, vaddr, 64 * KiB), offset=i * 64 * KiB)
            reqs.append(r)
        counts = yield from node.vfs.aio_wait(reqs)
        yield from node.vfs.close(fd)
        return [space.read_bytes(v, n) for v, n in zip(bufs, counts)]

    chunks = run(env, script(env))
    assert b"".join(chunks) == payload[: 4 * 64 * KiB]


@pytest.mark.parametrize("api", BACKENDS)
def test_aio_pipelines_outstanding_reads(api):
    """Several outstanding O_DIRECT reads overlap on the wire: total
    time is far below the sum of synchronous reads."""
    env, node, server, payload = build(api)
    space = node.new_process_space()
    # small requests are latency-dominated: overlapping them is where
    # asynchronous submission pays (large requests are already
    # wire-limited either way)
    chunk = 4 * KiB
    depth = 8

    def sync_reads(env):
        fd = yield from node.vfs.open("/orfs/f",
                                      OpenFlags.RDONLY | OpenFlags.DIRECT)
        vaddr = space.mmap(chunk)
        t0 = env.now
        for i in range(depth):
            node.vfs.seek(fd, i * chunk)
            yield from node.vfs.read(fd, UserBuffer(space, vaddr, chunk))
        dt = env.now - t0
        yield from node.vfs.close(fd)
        return dt

    def async_reads(env):
        fd = yield from node.vfs.open("/orfs/f",
                                      OpenFlags.RDONLY | OpenFlags.DIRECT)
        bufs = [space.mmap(chunk) for _ in range(depth)]
        t0 = env.now
        reqs = []
        for i, vaddr in enumerate(bufs):
            r = yield from node.vfs.aio_read(
                fd, UserBuffer(space, vaddr, chunk), offset=i * chunk)
            reqs.append(r)
        yield from node.vfs.aio_wait(reqs)
        dt = env.now - t0
        yield from node.vfs.close(fd)
        return dt

    sync_time = run(env, sync_reads(env))
    async_time = run(env, async_reads(env))
    assert async_time < 0.8 * sync_time


@pytest.mark.parametrize("api", BACKENDS)
def test_aio_write_then_read_roundtrip(api):
    env, node, server, payload = build(api)
    space = node.new_process_space()
    data = b"async-write!" * 100

    def script(env):
        fd = yield from node.vfs.open("/orfs/g",
                                      OpenFlags.RDWR | OpenFlags.CREAT)
        vaddr = space.mmap(PAGE_SIZE)
        space.write_bytes(vaddr, data)
        req = yield from node.vfs.aio_write(
            fd, UserBuffer(space, vaddr, len(data)), offset=0)
        yield from node.vfs.aio_wait([req])
        yield from node.vfs.fsync(fd)
        out = space.mmap(PAGE_SIZE)
        node.vfs.seek(fd, 0)
        n = yield from node.vfs.read(fd, UserBuffer(space, out, len(data)))
        yield from node.vfs.close(fd)
        return space.read_bytes(out, n)

    assert run(env, script(env)) == data


def test_aio_error_surfaces_at_wait():
    env, node, server, payload = build("mx")
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f",
                                      OpenFlags.RDONLY | OpenFlags.DIRECT)
        vaddr = space.mmap(PAGE_SIZE)
        # misaligned offset under O_DIRECT -> EINVAL, delivered at wait
        req = yield from node.vfs.aio_read(
            fd, UserBuffer(space, vaddr, 512), offset=7)
        yield from node.vfs.aio_wait([req])

    with pytest.raises(Einval):
        run(env, script(env))


def test_concurrent_buffered_readers_share_one_page_fill():
    """The page lock: two AIO reads of the same cold page trigger one
    backing read, not two."""
    env, node, server, payload = build("mx", file_pages=2)
    space = node.new_process_space()
    before = server.requests_served

    def script(env):
        fd = yield from node.vfs.open("/orfs/f")
        b1, b2 = space.mmap(PAGE_SIZE), space.mmap(PAGE_SIZE)
        r1 = yield from node.vfs.aio_read(
            fd, UserBuffer(space, b1, PAGE_SIZE), offset=0)
        r2 = yield from node.vfs.aio_read(
            fd, UserBuffer(space, b2, PAGE_SIZE), offset=0)
        yield from node.vfs.aio_wait([r1, r2])
        yield from node.vfs.close(fd)
        return space.read_bytes(b1, PAGE_SIZE), space.read_bytes(b2, PAGE_SIZE)

    d1, d2 = run(env, script(env))
    assert d1 == d2 == payload[:PAGE_SIZE]
    # one READ rpc for the shared page (plus the metadata lookups)
    reads = server.requests_served - before
    assert reads <= 3
