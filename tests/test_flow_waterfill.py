"""The incremental component-local water-fill against the from-scratch
global reference: exact rate equality under random arrival/departure
sequences, the settle-at-ETA overshoot corner, timer generation-guard
superseding, same-instant arrival batching, and the O(1) cost of
disjoint flows."""

from fractions import Fraction
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bench.netpipe import prepare_pair
from repro.bench.transports import MxTransport
from repro.cluster.topo import fat_tree
from repro.hw import flow as flowmod
from repro.hw.flow import FlowNetwork, waterfill_reference
from repro.hw.link import Link
from repro.hw.params import MB, PCI_XD, LinkParams, host_params
from repro.sim import Environment
from repro.units import KiB

MTU = 4096


@pytest.fixture(autouse=True)
def _flow_mode_on():
    flowmod.set_flow_mode(True)
    yield
    flowmod.set_flow_mode(True)
    FlowNetwork._verify_reference = False


def make_link(env, bandwidth=250 * MB, name="l"):
    params = LinkParams(name=name, link_bandwidth=bandwidth,
                        pci_bandwidth=2 * bandwidth, propagation_ns=500,
                        cut_through_lag_ns=200)
    return Link(env, params, name=name)


def make_net(env, verify=True):
    """A FlowNetwork driven directly through ``_admit`` — no fabric, no
    NICs: hops are real links with no switch (``sw=None``), so the
    down-window guard and the per-hop accounting still run while the
    tests control admission instants exactly."""
    net = FlowNetwork(env, path_fn=None, name="wf")
    net._verify_reference = verify
    return net


def admit(net, hops, *, src=0, nfrags=10, mtu=MTU):
    desc = SimpleNamespace(src_port=1, dst_nic=src + 1000, dst_port=2,
                           match=0, size=(nfrags + 1) * mtu)
    nic = SimpleNamespace(node_id=src)
    path = [(link, end, None) for link, end in hops]
    return net._admit(nic, desc, nfrags, mtu, path)


def cap(link, mtu=MTU):
    return Fraction(mtu, link.serialization_ns(mtu))


def test_shared_direction_splits_capacity_exactly():
    env = Environment()
    net = make_net(env)
    link = make_link(env)
    f1 = admit(net, [(link, "a")], src=0)
    f2 = admit(net, [(link, "a")], src=1)
    f3 = admit(net, [(link, "b")], src=2)  # other direction: full rate
    env.run()
    assert net.active_flows == 0
    # Rates are committed at the flush; the flows completed, but their
    # last committed rate is still visible on the objects.
    assert f1.rate == f2.rate == cap(link) / 2
    assert f3.rate == cap(link)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_incremental_rates_equal_global_reference(data):
    """Every flush asserts (via ``_verify_reference``) that the rates
    the component-local engine committed equal the from-scratch global
    water-fill, exactly, as ``Fraction`` values — across random link
    speeds, random multi-hop paths, staggered arrivals and forced
    mid-life departures."""
    env = Environment()
    net = make_net(env, verify=True)
    nlinks = data.draw(st.integers(2, 5), label="nlinks")
    speeds = data.draw(
        st.lists(st.sampled_from([66 * MB, 125 * MB, 160 * MB, 250 * MB]),
                 min_size=nlinks, max_size=nlinks),
        label="speeds")
    links = [make_link(env, bw, name=f"l{i}") for i, bw in enumerate(speeds)]
    nflows = data.draw(st.integers(1, 7), label="nflows")
    plan = []
    for fid in range(nflows):
        at = data.draw(st.integers(0, 300_000), label=f"at{fid}")
        hop_idx = data.draw(
            st.lists(st.integers(0, nlinks - 1), min_size=1, max_size=3,
                     unique=True),
            label=f"hops{fid}")
        ends = [data.draw(st.sampled_from(["a", "b"]), label=f"end{fid}.{i}")
                for i in range(len(hop_idx))]
        nfrags = data.draw(st.integers(2, 24), label=f"nfrags{fid}")
        plan.append((at, fid, hop_idx, ends, nfrags))
    admitted = {}

    def arrivals():
        for at, fid, hop_idx, ends, nfrags in sorted(plan):
            if at > env.now:
                yield env.timeout(at - env.now)
            admitted[fid] = admit(
                net, [(links[i], e) for i, e in zip(hop_idx, ends)],
                src=fid, nfrags=nfrags)

    env.process(arrivals())

    def kick(fid):
        f = admitted.get(fid)
        if f is not None and f.id in net._flows:
            net._decoalesce(f, "contention")

    for fid in range(nflows):
        if data.draw(st.booleans(), label=f"kick{fid}"):
            at = data.draw(st.integers(0, 600_000), label=f"kick_at{fid}")
            env.call_at(at, kick, fid)
    env.run()
    assert net.active_flows == 0
    # Forced de-coalescings hand the tail back to packet fidelity, so
    # done < total is legal there; done > total never is.
    assert all(f.done <= f.total for f in admitted.values())


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_reference_equivalence_on_random_fabric_traffic(data):
    """Same exact-equality property, on a real fat-tree fabric: random
    disjoint pairs, sizes and start offsets; every flush in the run is
    checked against :func:`waterfill_reference`."""
    FlowNetwork._verify_reference = True
    env = Environment()
    fabric = fat_tree(env, 4, host=host_params(memory_frames=2048))
    n = len(fabric.nodes)
    npairs = data.draw(st.integers(2, 5), label="npairs")
    perm = data.draw(st.permutations(list(range(n))), label="perm")
    jobs = []
    for i in range(npairs):
        src, dst = perm[2 * i], perm[2 * i + 1]
        size = data.draw(st.sampled_from([64 * KiB, 128 * KiB, 256 * KiB]),
                         label=f"size{i}")
        delay = data.draw(st.integers(0, 200_000), label=f"delay{i}")
        ta = MxTransport(fabric.nodes[src], 1, peer_node=dst, peer_ep=2,
                         context="kernel")
        tb = MxTransport(fabric.nodes[dst], 2, peer_node=src, peer_ep=1,
                         context="kernel")
        prepare_pair(env, ta, tb, size)
        jobs.append((ta, tb, size, delay))

    def tx(t, size, delay):
        yield env.timeout(delay)
        yield from t.send(size)

    def rx(t, size, delay):
        yield env.timeout(delay)
        yield from t.recv(size)

    for ta, tb, size, delay in jobs:
        env.process(tx(ta, size, delay))
        env.process(rx(tb, size, delay))
    env.run()
    assert fabric.flownet.active_flows == 0


def test_settle_exactly_on_recompute_boundary_commits_total():
    """A flow settled by a de-coalescing at exactly its (ceil'd) ETA:
    the rational finish instant lies strictly inside the previous
    nanosecond, so naive integration overshoots ``total``.  The commit
    must clamp to exactly ``total`` — never beyond, and never a loss
    mid-life (the in-engine assert enforces ``now >= eta`` whenever the
    clamp engages)."""
    env = Environment()
    net = make_net(env)
    link = make_link(env)
    per = link.serialization_ns(MTU)
    rate1 = cap(link)
    npackets = 10
    total = npackets * MTU
    # Two mid-life rate changes, the second an odd interval after the
    # first: a's progress picks up a half-packet-grain residue, so its
    # rational finish instant is non-integer and the ceil'd ETA lands
    # strictly past it.
    t1 = 3 * per + 1
    t2 = t1 + 2 * per + 1

    seen = {}

    def prog():
        a = admit(net, [(link, "a")], src=0, nfrags=npackets)
        yield env.timeout(t1)
        admit(net, [(link, "a")], src=1, nfrags=50)
        yield env.timeout(t2 - t1)
        # Predict a's ETA under third rate so the boundary callback is
        # inserted BEFORE the flush that arms the completion timer.
        done2 = rate1 * t1 + (rate1 / 2) * (t2 - t1)
        fin = t2 + (total - done2) / (rate1 / 3)
        eta = -int((-fin) // 1)
        assert fin != eta, "need a non-integer rational finish instant"

        def kick():
            assert a.id in net._flows, "timer must not have fired yet"
            assert a.done + a.rate * (env.now - a.last) > total, \
                "corner not reached: settling here must overshoot"
            net._decoalesce(a, "contention")
            seen["done"] = a.done
            seen["carried"] = a.carried
            seen["at"] = env.now

        env.call_at(eta, kick)
        admit(net, [(link, "a")], src=2, nfrags=50)

    env.process(prog())
    env.run()
    assert net.active_flows == 0
    assert seen["done"] == total  # exactly total, by construction
    assert seen["carried"] == npackets
    assert seen["at"] > t1


def test_tick_generation_guard_supersedes_stale_timer():
    env = Environment()
    net = make_net(env)
    la, lb = make_link(env, name="a"), make_link(env, 125 * MB, name="b")
    stale = []
    orig_tick = net._tick

    def spy(gen):
        if gen != net._timer_gen:
            stale.append((env.now, gen, net._timer_gen))
        orig_tick(gen)

    net._tick = spy
    completed = []
    orig_complete = net._complete
    net._complete = lambda f: (completed.append((f.id, env.now)),
                               orig_complete(f))[1]
    f1 = admit(net, [(la, "a")], src=0, nfrags=10)
    env.call_at(7, lambda: admit(net, [(lb, "a")], src=1, nfrags=10))
    env.run()
    # The second arrival's flush re-armed the timer, so the timer armed
    # at t=0 fires with a stale generation and must do nothing.
    assert stale, "no superseded tick observed"
    assert net.active_flows == 0
    per_a, per_b = la.serialization_ns(MTU), lb.serialization_ns(MTU)
    assert completed == [(f1.id, 10 * per_a), (2, 7 + 10 * per_b)]


def test_same_instant_arrivals_share_one_flush():
    env = Environment()
    net = make_net(env)
    link = make_link(env)
    flushes = []
    orig_flush = net._flush
    net._flush = lambda: (flushes.append(env.now), orig_flush())[1]
    f1 = admit(net, [(link, "a")], src=0)
    f2 = admit(net, [(link, "a")], src=1)
    env.run()
    assert flushes.count(0) == 1  # both arrivals batched into one flush
    assert f1.rate == f2.rate == cap(link) / 2
    assert net.active_flows == 0


def test_disjoint_flows_cost_constant_waterfill_work():
    """A flow arriving or finishing on links nobody else uses must not
    re-divide other components: total touched-flow work for two
    disjoint flows is exactly one per arrival, and their completion
    flushes re-divide nobody."""
    registry = obs.MetricsRegistry()
    with obs.installed_registry(registry):
        env = Environment()
        net = make_net(env)
        la, lb = make_link(env, name="a"), make_link(env, name="b")
        f1 = admit(net, [(la, "a")], src=0, nfrags=10)
        env.call_at(7, lambda: admit(net, [(lb, "a")], src=1, nfrags=10))
        eta1 = None

        def snap_eta():
            nonlocal eta1
            eta1 = f1.eta

        env.call_at(5, snap_eta)  # after f1's flush, before f2 arrives
        env.run()
    assert net.active_flows == 0
    assert f1.eta == eta1, "disjoint arrival re-timed an untouched flow"
    counters = registry.snapshot()["counters"]

    def total(name, **labels):
        want = "".join(f",{k}={v}" for k, v in labels.items())
        return sum(v for key, v in counters.items()
                   if key.startswith(name + "{") and want in
                   "," + key.partition("{")[2].rstrip("}"))

    assert total("net.flow_waterfill_flows", scope="touched") == 2
    assert total("net.flow_waterfill_flows", scope="global") == 1 + 2 + 1
    assert total("net.flow_recompute") == 2  # one per arrival, none at exit
