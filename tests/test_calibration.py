"""Calibration tests: the paper's measured anchor points must emerge
from the simulated pipelines (section 5.1, figures 4(a) and 5).

These are the load-bearing checks of the reproduction: if a refactor of
the NIC/GM/MX pipelines shifts these numbers, the figure shapes shift
with them.
"""

import pytest

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import GmKernelTransport, GmUserTransport, MxTransport
from repro.cluster import node_pair
from repro.sim import Environment
from repro.units import us


def measured_one_way(make_a, make_b, size=1, rounds=10):
    env = Environment()
    node_a, node_b = node_pair(env)
    a = make_a(env, node_a)
    b = make_b(env, node_b)
    prepare_pair(env, a, b, max(size, 4096))
    return ping_pong(env, a, b, size, rounds=rounds).one_way_us


def test_mx_user_one_byte_latency_is_4_2_us():
    """Paper section 5.1: 4.2 us for a 1-byte message on MX."""
    lat = measured_one_way(
        lambda env, n: MxTransport(n, 1, peer_node=1, peer_ep=1),
        lambda env, n: MxTransport(n, 1, peer_node=0, peer_ep=1),
    )
    assert lat == pytest.approx(4.2, abs=0.25)


def test_gm_user_one_byte_latency_is_6_7_us():
    """Paper section 5.1: 6.7 us for a 1-byte message on GM."""
    lat = measured_one_way(
        lambda env, n: GmUserTransport(n, 1, peer_node=1, peer_port=1),
        lambda env, n: GmUserTransport(n, 1, peer_node=0, peer_port=1),
    )
    assert lat == pytest.approx(6.7, abs=0.25)


def test_gm_kernel_latency_is_2_us_above_user():
    """Paper section 5.1: GM's kernel latency is ~2 us above user."""
    user = measured_one_way(
        lambda env, n: GmUserTransport(n, 1, peer_node=1, peer_port=1),
        lambda env, n: GmUserTransport(n, 1, peer_node=0, peer_port=1),
    )
    kernel = measured_one_way(
        lambda env, n: GmKernelTransport(n, 1, peer_node=1, peer_port=1),
        lambda env, n: GmKernelTransport(n, 1, peer_node=0, peer_port=1),
    )
    assert kernel - user == pytest.approx(2.0, abs=0.3)


def test_mx_kernel_latency_equals_mx_user():
    """Paper section 5.1: MX user and kernel latency do not differ."""
    user = measured_one_way(
        lambda env, n: MxTransport(n, 1, peer_node=1, peer_ep=1),
        lambda env, n: MxTransport(n, 1, peer_node=0, peer_ep=1),
    )
    kernel = measured_one_way(
        lambda env, n: MxTransport(n, 1, peer_node=1, peer_ep=1, context="kernel"),
        lambda env, n: MxTransport(n, 1, peer_node=0, peer_ep=1, context="kernel"),
    )
    assert kernel == pytest.approx(user, abs=0.1)


def test_gm_physical_primitives_save_1_us():
    """Paper section 3.3: physical addressing saves 0.5 us per side
    (~10 % of the small-message kernel latency)."""
    virtual = measured_one_way(
        lambda env, n: GmKernelTransport(n, 1, peer_node=1, peer_port=1),
        lambda env, n: GmKernelTransport(n, 1, peer_node=0, peer_port=1),
    )
    physical = measured_one_way(
        lambda env, n: GmKernelTransport(n, 1, peer_node=1, peer_port=1,
                                         addressing="physical"),
        lambda env, n: GmKernelTransport(n, 1, peer_node=0, peer_port=1,
                                         addressing="physical"),
    )
    assert virtual - physical == pytest.approx(1.0, abs=0.2)
    assert (virtual - physical) / virtual == pytest.approx(0.11, abs=0.04)


def test_large_message_bandwidth_near_link_rate():
    """Both APIs approach the 250 MB/s PCI-XD rate at 1 MB (figure 5(b))."""
    for make in (
        lambda n, peer: GmUserTransport(n, 1, peer_node=peer, peer_port=1),
        lambda n, peer: MxTransport(n, 1, peer_node=peer, peer_ep=1),
    ):
        env = Environment()
        node_a, node_b = node_pair(env)
        a, b = make(node_a, 1), make(node_b, 0)
        prepare_pair(env, a, b, 2**20)
        result = ping_pong(env, a, b, 2**20, rounds=5)
        assert 225 < result.bandwidth_mb_s < 250


def test_mx_medium_send_copy_costs_about_17_percent_at_32k():
    """Figure 6: removing the send-side copy of a 32 kB physically
    contiguous kernel message buys ~17 % bandwidth."""

    def run(no_send_copy):
        env = Environment()
        node_a, node_b = node_pair(env)
        a = MxTransport(node_a, 1, peer_node=1, peer_ep=1, context="kernel",
                        physical=True, no_send_copy=no_send_copy)
        b = MxTransport(node_b, 1, peer_node=0, peer_ep=1, context="kernel",
                        physical=True, no_send_copy=no_send_copy)
        prepare_pair(env, a, b, 32 * 1024)
        return ping_pong(env, a, b, 32 * 1024, rounds=5).bandwidth_mb_s

    base = run(False)
    no_copy = run(True)
    gain = (no_copy - base) / base
    assert 0.12 < gain < 0.22, f"send-copy removal gain {gain:.3f} out of range"
