"""The experiment fleet: spec expansion, isolation, byte-identity."""

import json

import pytest

from repro import obs
from repro.cluster.topo import (clear_route_cache, fat_tree,
                                route_cache_stats)
from repro.fleet import (FleetSpec, FleetSpecError, isolated_run,
                         render_csv, render_json, run_fleet, run_point)
from repro.fleet.isolate import reset_id_counters
from repro.hw import flow as flowmod
from repro.hw import train as trainmod
from repro.mem.sglist import HOST_COPIES
from repro.sim import Environment

# -- spec validation and expansion ---------------------------------------------


def _spec(**overrides):
    data = {
        "name": "t", "seed": 1, "n_ops": 24, "n_clients": 2,
        "mix": "read4k",
        "grid": {
            "topology": [{"kind": "star", "n": 4}],
            "workload": [{"kind": "orfa", "api": "mx"}],
            "offered_load": [4000, 32000],
        },
    }
    data.update(overrides)
    return FleetSpec.from_dict(data)


def test_points_expand_in_declared_order():
    spec = _spec(grid={
        "topology": [{"kind": "star", "n": 4}, {"kind": "fat_tree", "k": 4}],
        "mode": ["packet", "train"],
        "workload": [{"kind": "orfa", "api": "mx"}],
        "offered_load": [1000, 2000, 3000],
    })
    points = spec.points()
    assert len(points) == 2 * 2 * 1 * 1 * 3
    assert [p.index for p in points] == list(range(12))
    # topology outermost, offered_load inner.
    assert points[0].config()["topology"] == "star4"
    assert points[6].config()["topology"] == "ft4"
    assert [p.offered_load for p in points[:3]] == [1000.0, 2000.0, 3000.0]
    assert points[0].mode == "packet" and points[3].mode == "train"


def test_spec_validation_rejects_bad_input():
    with pytest.raises(FleetSpecError):
        _spec(grid={"climate": ["warm"]})
    with pytest.raises(FleetSpecError):
        _spec(grid={"topology": [{"kind": "ring", "n": 4}]})
    with pytest.raises(FleetSpecError):
        _spec(grid={"mode": ["quantum"]})
    with pytest.raises(FleetSpecError):
        _spec(grid={"offered_load": [0]})
    with pytest.raises(FleetSpecError):
        _spec(mix="bogus")
    with pytest.raises(FleetSpecError):
        _spec(n_clients=9)  # star4 has only 3 client hosts
    with pytest.raises(FleetSpecError):
        _spec(grid={"faults": [{"kind": "gamma_ray"}]})
    with pytest.raises(FleetSpecError):
        _spec(loop="semi")
    with pytest.raises(FleetSpecError):
        FleetSpec.from_dict({"bogus_key": 1})


def test_spec_round_trips_through_files(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_spec().to_dict()))
    spec = FleetSpec.from_file(str(path))
    assert spec.to_dict() == _spec().to_dict()
    with pytest.raises(FleetSpecError):
        FleetSpec.from_file(str(tmp_path / "missing.json"))


def test_fault_axis_config_labels():
    spec = _spec(grid={
        "topology": [{"kind": "star", "n": 4}],
        "workload": [{"kind": "orfa", "api": "mx"}],
        "offered_load": [4000],
        "faults": [None, {"kind": "nic_reset", "node": 2, "at_us": 300}],
    })
    labels = [p.config()["fault"] for p in spec.points()]
    assert labels == ["none", "nic_reset@2"]


# -- isolation -----------------------------------------------------------------


def test_isolated_run_resets_id_counters_to_fresh_process_values():
    from repro.orfa.client import OrfaClient

    reset_id_counters()
    for _ in range(5):
        next(OrfaClient._request_ids)
    with isolated_run(observe=False):
        assert next(OrfaClient._request_ids) == 1
    reset_id_counters()


def test_isolated_run_restores_ambient_state():
    saved_flow = flowmod.flow_mode_enabled()
    saved_coalescing = trainmod.coalescing_enabled()
    outer = obs.MetricsRegistry()
    obs.install_registry(outer)
    try:
        obs.counter("outer.marker").inc()
        flowmod.set_flow_mode(True)
        trainmod.set_coalescing(True)
        HOST_COPIES.reset()
        for _ in range(3):
            HOST_COPIES.count(333)
        with isolated_run(observe=True) as inner:
            assert obs.active_registry() is inner
            assert HOST_COPIES.copies == 0
            flowmod.set_flow_mode(False)
            trainmod.set_coalescing(False)
            HOST_COPIES.count(1)
        assert obs.active_registry() is outer
        assert flowmod.flow_mode_enabled()
        assert trainmod.coalescing_enabled()
        # Outer totals survive, inner-block work is added back.
        assert HOST_COPIES.copies == 4
        assert HOST_COPIES.nbytes == 1000
        assert outer.snapshot()["counters"]["outer.marker"] == 1
    finally:
        obs.uninstall_registry()
        flowmod.set_flow_mode(saved_flow)
        trainmod.set_coalescing(saved_coalescing)
        HOST_COPIES.reset()


# -- the runner ----------------------------------------------------------------


def test_rerun_and_parallel_runs_are_byte_identical():
    """The fleet contract, and the satellite regression for the shared
    scrub: back-to-back in-process sweeps must be byte-identical to
    each other AND to fresh-process (forked pool) sweeps — i.e. the
    isolation scrub leaves nothing behind that a fresh process wouldn't
    also see."""
    spec = _spec()
    # Dirty the process-global counters first, as a long-lived session
    # would: the scrub must make this invisible.
    from repro.orfa.client import OrfaClient
    for _ in range(17):
        next(OrfaClient._request_ids)
    first = render_json(run_fleet(spec, parallel=1))
    second = render_json(run_fleet(spec, parallel=1))
    forked = render_json(run_fleet(spec, parallel=2))
    assert first == second
    assert first == forked
    reset_id_counters()


def test_run_point_rows_are_complete():
    spec = _spec()
    row = run_point(spec, spec.points()[0])
    assert row["config"]["topology"] == "star4"
    assert row["metrics"]["achieved_ops"] == 24
    assert row["metrics"]["failed_ops"] == 0
    assert row["sim_ns"] > 0 and row["events"] > 0
    assert len(row["metrics"]["per_client_ops"]) == 2


def test_render_csv_shape():
    spec = _spec()
    result = run_fleet(spec)
    csv = render_csv(result)
    lines = csv.strip().split("\n")
    assert len(lines) == 1 + len(result.rows)
    header = lines[0].split(",")
    assert header[0] == "index" and "p99_ns" in header
    for line in lines[1:]:
        assert len(line.split(",")) == len(header)


def test_route_cache_reuse_does_not_change_results():
    """Grid points sharing a topology reuse the memoized routing tables;
    a cold-cache run must produce the same bytes as a warm-cache run."""
    spec = _spec(grid={
        "topology": [{"kind": "fat_tree", "k": 4}],
        "workload": [{"kind": "orfa", "api": "mx"}],
        "offered_load": [4000, 32000],
    })
    clear_route_cache()
    cold = render_json(run_fleet(spec))
    stats = route_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] >= 1  # second grid point reused the tables
    warm = render_json(run_fleet(spec))
    assert route_cache_stats()["misses"] == 1  # still only one BFS
    assert cold == warm


def test_route_cache_hit_hands_back_identical_tables():
    clear_route_cache()
    env1 = Environment()
    f1 = fat_tree(env1, 4)
    env2 = Environment()
    f2 = fat_tree(env2, 4)
    assert route_cache_stats() == {"hits": 1, "misses": 1}
    for src, dst in ((0, 15), (3, 8), (7, 12)):
        p1 = [(link.name, end) for link, end, _sw in f1.path(src, dst)]
        p2 = [(link.name, end) for link, end, _sw in f2.path(src, dst)]
        assert p1 == p2


def test_saturation_knee_over_the_load_axis():
    """The acceptance curve: p99 grows monotonically with offered load
    and the saturated point sits well above the light-load point."""
    spec = _spec(grid={
        "topology": [{"kind": "star", "n": 4}],
        "workload": [{"kind": "orfa", "api": "mx"}],
        "offered_load": [4000, 16000, 64000],
    }, n_ops=120)
    result = run_fleet(spec)
    p99s = [row["metrics"]["p99_ns"] for row in result.rows]
    assert p99s == sorted(p99s)
    assert p99s[-1] >= 2 * p99s[0]


# -- the CLI -------------------------------------------------------------------


def test_bench_fleet_cli(tmp_path, capsys):
    from repro.bench.fleet import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(_spec().to_dict()))
    out_prefix = str(tmp_path / "results")
    assert main(["--spec", str(spec_path), "--out", out_prefix]) == 0
    out = capsys.readouterr().out
    assert "fleet t: 2 points" in out
    data = json.loads((tmp_path / "results.json").read_text())
    assert len(data["points"]) == 2
    csv = (tmp_path / "results.csv").read_text()
    assert csv.startswith("index,")

    assert main(["--schema"]) == 0
    assert main([]) == 2
    assert main(["--spec", str(tmp_path / "nope.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text('{"grid": {"topology": [{"kind": "moebius"}]}}')
    assert main(["--spec", str(bad)]) == 2
