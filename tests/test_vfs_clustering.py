"""Tests for the Linux 2.6-style readpages clustering (VFS + ORFS)."""

import pytest

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.kernel import MemFs, OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE


def build(api):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api=api)
    env.run(until=server.start())
    channel = (MxKernelChannel if api == "mx" else GmKernelChannel)(client_node, 4)
    client = mount_orfs(client_node, channel, (server_node.node_id, 3))
    return env, client_node, server, client


def seed_file(env, server, n_pages, name="f"):
    attrs = env.run(until=env.process(server.fs.create(1, name)))
    payload = bytes((i * 11) % 256 for i in range(n_pages * PAGE_SIZE))
    server.fs.write_raw(attrs.inode_id, 0, payload)
    return payload


def read_all(env, node, length, path="/orfs/f"):
    def script(env):
        fd = yield from node.vfs.open(path)
        space = node.new_process_space()
        vaddr = space.mmap(length)
        n = yield from node.vfs.read(fd, UserBuffer(space, vaddr, length))
        data = space.read_bytes(vaddr, n)
        yield from node.vfs.close(fd)
        return data

    return env.run(until=env.process(script(env)))


def test_clustered_read_is_correct_and_fewer_requests_mx():
    env, node, server, client = build("mx")
    payload = seed_file(env, server, 16)
    node.vfs.read_cluster_pages = 8
    data = read_all(env, node, len(payload))
    assert data == payload
    # 16 pages in 8-page vectorial requests: 2 data reads (+ metadata)
    data_reads = client.requests_sent
    assert data_reads <= 6


def test_clustering_on_gm_degrades_to_per_page():
    env, node, server, client = build("gm")
    payload = seed_file(env, server, 8)
    node.vfs.read_cluster_pages = 8
    before = server.requests_served
    data = read_all(env, node, len(payload))
    assert data == payload
    # GM has no vectorial primitives: still one request per page
    assert server.requests_served - before >= 8


def test_clustering_speeds_up_mx_buffered_reads():
    env, node, server, client = build("mx")
    payload = seed_file(env, server, 64)
    t0 = env.now
    read_all(env, node, len(payload))
    per_page = env.now - t0
    node.pagecache.invalidate_inode(2)
    for k in range(8):
        node.pagecache.invalidate_inode(k)
    # a 16-page window makes each cluster a 64 kB request: the large
    # (rendezvous, zero-copy) path — the full benefit the paper expects
    # from 2.6-style clustering
    node.vfs.read_cluster_pages = 16
    t1 = env.now
    read_all(env, node, len(payload))
    clustered = env.now - t1
    assert clustered < 0.75 * per_page


def test_cluster_window_respects_file_size():
    """Clustering near EOF never reads past the file."""
    env, node, server, client = build("mx")
    # 2.5 pages of data
    attrs = env.run(until=env.process(server.fs.create(1, "f")))
    payload = bytes(range(256)) * (5 * PAGE_SIZE // 2 // 256)
    server.fs.write_raw(attrs.inode_id, 0, payload)
    node.vfs.read_cluster_pages = 8
    data = read_all(env, node, len(payload) + PAGE_SIZE)
    assert data == payload


def test_clustering_skips_already_cached_pages():
    env, node, server, client = build("mx")
    payload = seed_file(env, server, 8)
    node.vfs.read_cluster_pages = 8
    # warm pages 2..3 first
    def warm(env):
        fd = yield from node.vfs.open("/orfs/f")
        node.vfs.seek(fd, 2 * PAGE_SIZE)
        space = node.new_process_space()
        v = space.mmap(2 * PAGE_SIZE)
        yield from node.vfs.read(fd, UserBuffer(space, v, 2 * PAGE_SIZE))
        yield from node.vfs.close(fd)

    env.run(until=env.process(warm(env)))
    data = read_all(env, node, len(payload))
    assert data == payload


def test_local_memfs_unaffected_by_cluster_flag():
    """MemFs has no readpages; the VFS falls back to readpage."""
    env = Environment()
    from repro.cluster import Node
    from repro.hw.params import HostParams

    node = Node(env, 0, HostParams(memory_frames=2048))
    fs = MemFs(env, node.cpu)
    node.vfs.mount("/", fs)
    node.vfs.read_cluster_pages = 8

    def script(env):
        fd = yield from node.vfs.open("/f", OpenFlags.RDWR | OpenFlags.CREAT)
        space = node.new_process_space()
        payload = b"q" * (4 * PAGE_SIZE)
        v = space.mmap(len(payload))
        space.write_bytes(v, payload)
        yield from node.vfs.write(fd, UserBuffer(space, v, len(payload)))
        node.vfs.seek(fd, 0)
        out = space.mmap(len(payload))
        n = yield from node.vfs.read(fd, UserBuffer(space, out, len(payload)))
        yield from node.vfs.close(fd)
        return space.read_bytes(out, n)

    assert env.run(until=env.process(script(env))) == b"q" * (4 * PAGE_SIZE)
