"""Edge cases for the socket stacks: pools, handshakes, odd peers."""

import pytest

from repro.cluster import node_pair
from repro.errors import SocketError
from repro.hw.params import PCI_XE
from repro.sim import Environment
from repro.sockets import SocketsGmModule, SocketsMxModule, ethernet_pair
from repro.sockets.sockets_gm import _RX_SLOTS
from repro.units import PAGE_SIZE, us


def gm_pair():
    env = Environment()
    a, b = node_pair(env, link=PCI_XE)
    return env, a, b, SocketsGmModule(a, 9), SocketsGmModule(b, 9)


def connect(env, ma, mb):
    out = {}

    def server(env):
        yield from mb.listen()
        out["server"] = yield from mb.accept()

    def client(env):
        out["client"] = yield from ma.connect(1, 9)

    env.process(server(env))
    env.run(until=env.process(client(env)))
    env.run(until=env.now + us(100))
    return out["client"], out["server"]


def test_gm_concurrent_recvs_on_one_socket_rejected():
    """GM's match-by-connection model admits one outstanding recv per
    socket; a second concurrent one is refused loudly."""
    env, a, b, ma, mb = gm_pair()
    cs, ss = connect(env, ma, mb)
    spb = b.new_process_space()
    vb = spb.mmap(PAGE_SIZE)

    def hog(env):
        env.process(ss.recv(spb, vb, 64))
        yield env.timeout(1000)
        yield from ss.recv(spb, vb, 64)

    with pytest.raises(SocketError, match="already awaited"):
        env.run(until=env.process(hog(env)))


def test_gm_rx_pool_exhaustion_raises():
    """More concurrent receiving sockets than bounce slots: the pool
    runs dry and the surplus recv is refused."""
    env, a, b, ma, mb = gm_pair()
    n = _RX_SLOTS + 1
    accepted = []

    def server(env):
        yield from mb.listen()
        for _ in range(n):
            sock = yield from mb.accept()
            accepted.append(sock)

    def client(env):
        for _ in range(n):
            sock = yield from ma.connect(1, 9)

    env.process(server(env))
    env.run(until=env.process(client(env)))
    env.run(until=env.now + us(200))
    pairs = [(None, s) for s in accepted]
    spb = b.new_process_space()
    vb = spb.mmap(PAGE_SIZE)

    def hog(env):
        for cs, ss in pairs[:-1]:
            env.process(ss.recv(spb, vb, 64))
            yield env.timeout(1000)
        cs, ss = pairs[-1]
        yield from ss.recv(spb, vb, 64)

    with pytest.raises(SocketError, match="exhausted"):
        env.run(until=env.process(hog(env)))


def test_gm_double_listen_raises():
    env, a, b, ma, mb = gm_pair()

    def script(env):
        yield from mb.listen()
        yield from mb.listen()

    with pytest.raises(SocketError, match="already listening"):
        env.run(until=env.process(script(env)))


def test_mx_double_listen_raises():
    env = Environment()
    a, b = node_pair(env, link=PCI_XE)
    mb = SocketsMxModule(b, 9)

    def script(env):
        yield from mb.listen()
        yield from mb.listen()

    with pytest.raises(SocketError, match="already listening"):
        env.run(until=env.process(script(env)))


def test_multiple_connections_multiplex_one_module():
    """Two sockets over the same module pair keep their streams apart."""
    env = Environment()
    a, b = node_pair(env, link=PCI_XE)
    ma, mb = SocketsMxModule(a, 9), SocketsMxModule(b, 9)
    socks = {}

    def server(env):
        yield from mb.listen()
        socks["s1"] = yield from mb.accept()
        socks["s2"] = yield from mb.accept()

    def client(env):
        socks["c1"] = yield from ma.connect(1, 9)
        socks["c2"] = yield from ma.connect(1, 9)

    env.process(server(env))
    env.run(until=env.process(client(env)))
    env.run(until=env.now + us(200))

    spa, spb = a.new_process_space(), b.new_process_space()
    va, vb = spa.mmap(PAGE_SIZE), spb.mmap(PAGE_SIZE)
    got = {}

    def srv_read(env, key, sock):
        n = yield from sock.recv(spb, vb, 64)
        got[key] = spb.read_bytes(vb, n)

    def cli_send(env):
        spa.write_bytes(va, b"on-conn-2")
        yield from socks["c2"].send(spa, va, 9)

    # only connection 2 carries data; connection 1's recv must NOT see it
    p1 = env.process(srv_read(env, "s1", socks["s1"]))
    p2 = env.process(srv_read(env, "s2", socks["s2"]))
    env.process(cli_send(env))
    env.run(until=p2)
    assert got["s2"] == b"on-conn-2"
    assert "s1" not in got
    assert not p1.processed  # still waiting, correctly


def test_tcp_connect_to_non_listening_peer_hangs_detectably():
    env = Environment()
    a, b = node_pair(env)
    sa, sb = ethernet_pair(env, a, b)
    # no listen() on sb: the SYN is dropped, client sees... in our model
    # connect() completes after a fixed handshake window; the *data*
    # path then deadlocks if used.  What must never happen is a silent
    # wrong-connection accept; verify the accept queue stays empty.
    env.run(until=env.process(sa.connect()))
    env.run(until=env.now + us(500))
    assert len(sb._accept_queue) == 0
