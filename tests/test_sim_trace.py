"""Unit tests for the tracing/statistics helpers (repro.sim.trace)."""

import pytest

from repro.sim.trace import Counter, TimeSeries, Tracer


def test_emit_without_subscribers_is_noop():
    tracer = Tracer()
    tracer.emit(10, "cat", "label", {"x": 1})  # must not raise or store


def test_subscribe_receives_matching_category_only():
    tracer = Tracer()
    got = []
    tracer.subscribe("net", got.append)
    tracer.emit(1, "net", "send", 42)
    tracer.emit(2, "disk", "read")
    assert len(got) == 1
    assert got[0].time == 1 and got[0].label == "send" and got[0].payload == 42


def test_multiple_subscribers_same_category():
    tracer = Tracer()
    a, b = [], []
    tracer.subscribe("c", a.append)
    tracer.subscribe("c", b.append)
    tracer.emit(5, "c", "x")
    assert len(a) == len(b) == 1


def test_record_everything_captures_all_categories():
    tracer = Tracer()
    log = tracer.record_everything()
    tracer.emit(1, "a", "one")
    tracer.emit(2, "b", "two")
    assert [(r.category, r.label) for r in log] == [("a", "one"), ("b", "two")]


def test_counter_mark_and_delta():
    c = Counter()
    c.add(5)
    c.mark()
    c.add(3)
    assert c.value == 8
    assert c.since_mark() == 3


def test_timeseries_stats():
    ts = TimeSeries()
    for t, v in [(1, 2.0), (2, 8.0), (3, 5.0)]:
        ts.append(t, v)
    assert len(ts) == 3
    assert ts.mean() == pytest.approx(5.0)
    assert ts.minimum() == 2.0
    assert ts.maximum() == 8.0


def test_timeseries_empty_stats_raise():
    ts = TimeSeries()
    with pytest.raises(ValueError):
        ts.mean()
    with pytest.raises(ValueError):
        ts.minimum()
    with pytest.raises(ValueError):
        ts.maximum()
