"""Integration tests: VFS + page cache + MemFs on one node."""

import pytest

from repro.cluster import Node
from repro.errors import Ebadf, Einval, Eisdir, Enoent
from repro.hw.params import HostParams
from repro.kernel import MemFs, OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.sim import Environment
from repro.units import PAGE_SIZE


@pytest.fixture
def node():
    env = Environment()
    node = Node(env, 0, HostParams(memory_frames=4096))
    fs = MemFs(env, node.cpu)
    node.vfs.mount("/", fs)
    return node


def run(node, gen):
    """Drive one VFS operation to completion, returning its value."""
    proc = node.env.process(gen)
    return node.env.run(until=proc)


def write_file(node, path, data):
    def script(env):
        fd = yield from node.vfs.open(path, OpenFlags.RDWR | OpenFlags.CREAT)
        space = node.new_process_space()
        vaddr = space.mmap(max(len(data), PAGE_SIZE))
        space.write_bytes(vaddr, data)
        n = yield from node.vfs.write(fd, UserBuffer(space, vaddr, len(data)))
        yield from node.vfs.close(fd)
        return n

    return run(node, script(node.env))


def read_file(node, path, length, flags=OpenFlags.RDONLY, offset=0):
    def script(env):
        fd = yield from node.vfs.open(path, flags)
        node.vfs.seek(fd, offset)
        space = node.new_process_space()
        vaddr = space.mmap(max(length, PAGE_SIZE))
        n = yield from node.vfs.read(fd, UserBuffer(space, vaddr, length))
        data = space.read_bytes(vaddr, n)
        yield from node.vfs.close(fd)
        return data

    return run(node, script(node.env))


def test_write_then_read_roundtrip(node):
    payload = bytes(range(256)) * 33  # crosses page boundaries
    assert write_file(node, "/f", payload) == len(payload)
    assert read_file(node, "/f", len(payload)) == payload


def test_read_past_eof_truncates(node):
    write_file(node, "/f", b"short")
    assert read_file(node, "/f", 100) == b"short"


def test_read_at_offset(node):
    write_file(node, "/f", b"0123456789")
    assert read_file(node, "/f", 4, offset=3) == b"3456"


def test_open_missing_without_creat_raises(node):
    with pytest.raises(Enoent):
        run(node, node.vfs.open("/nope"))


def test_open_trunc_resets_size(node):
    write_file(node, "/f", b"old-content")

    def script(env):
        fd = yield from node.vfs.open("/f", OpenFlags.RDWR | OpenFlags.TRUNC)
        size = node.vfs.file_size(fd)
        yield from node.vfs.close(fd)
        return size

    assert run(node, script(node.env)) == 0


def test_stat_reports_size(node):
    write_file(node, "/f", b"x" * 1234)
    attrs = run(node, node.vfs.stat("/f"))
    assert attrs.size == 1234
    assert not attrs.is_dir


def test_mkdir_and_nested_files(node):
    run(node, node.vfs.mkdir("/dir"))
    write_file(node, "/dir/a", b"A")
    write_file(node, "/dir/b", b"B")
    assert run(node, node.vfs.readdir("/dir")) == ["a", "b"]
    assert read_file(node, "/dir/a", 1) == b"A"


def test_open_directory_raises_eisdir(node):
    run(node, node.vfs.mkdir("/dir"))
    with pytest.raises(Eisdir):
        run(node, node.vfs.open("/dir"))


def test_unlink_removes_file_and_pages(node):
    write_file(node, "/f", b"data")
    read_file(node, "/f", 4)  # populate cache
    run(node, node.vfs.unlink("/f"))
    with pytest.raises(Enoent):
        run(node, node.vfs.open("/f"))


def test_bad_fd_raises(node):
    with pytest.raises(Ebadf):
        run(node, node.vfs.fsync(999))


def test_dentry_cache_hits_on_repeat_lookup(node):
    write_file(node, "/f", b"x")
    run(node, node.vfs.stat("/f"))
    before = node.vfs.dentry_hits
    run(node, node.vfs.stat("/f"))
    assert node.vfs.dentry_hits == before + 1


def test_second_read_hits_page_cache_and_is_faster(node):
    payload = b"z" * (8 * PAGE_SIZE)
    write_file(node, "/f", payload)
    node.pagecache.invalidate_inode(2)  # force cold start (inode 2 = /f)

    env = node.env
    t0 = env.now
    read_file(node, "/f", len(payload))
    cold = env.now - t0
    t1 = env.now
    read_file(node, "/f", len(payload))
    warm = env.now - t1
    assert warm < cold


def test_odirect_read_roundtrip(node):
    payload = b"D" * (2 * PAGE_SIZE)
    write_file(node, "/f", payload)
    got = read_file(node, "/f", len(payload), flags=OpenFlags.RDONLY | OpenFlags.DIRECT)
    assert got == payload


def test_odirect_misaligned_offset_raises(node):
    write_file(node, "/f", b"x" * PAGE_SIZE)
    with pytest.raises(Einval):
        read_file(node, "/f", 10, flags=OpenFlags.DIRECT, offset=7)


def test_buffered_write_is_visible_before_fsync_via_cache(node):
    """Dirty cache pages satisfy reads before writeback happens."""

    def script(env):
        fd = yield from node.vfs.open("/f", OpenFlags.RDWR | OpenFlags.CREAT)
        space = node.new_process_space()
        vaddr = space.mmap(PAGE_SIZE)
        space.write_bytes(vaddr, b"dirty-bytes")
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, 11))
        node.vfs.seek(fd, 0)
        out = space.mmap(PAGE_SIZE)
        n = yield from node.vfs.read(fd, UserBuffer(space, out, 11))
        data = space.read_bytes(out, n)
        yield from node.vfs.close(fd)
        return data

    assert run(node, script(node.env)) == b"dirty-bytes"


def test_partial_page_overwrite_preserves_rest(node):
    payload = bytes(range(256)) * 16  # one page
    write_file(node, "/f", payload)
    node.pagecache.invalidate_inode(2)

    def script(env):
        fd = yield from node.vfs.open("/f", OpenFlags.RDWR)
        node.vfs.seek(fd, 100)
        space = node.new_process_space()
        vaddr = space.mmap(PAGE_SIZE)
        space.write_bytes(vaddr, b"XY")
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, 2))
        yield from node.vfs.close(fd)

    run(node, script(node.env))
    expected = payload[:100] + b"XY" + payload[102:]
    assert read_file(node, "/f", len(payload)) == expected
