"""Unit tests for the ORFA wire protocol types and server edge cases."""

import pytest

from repro.cluster import node_pair
from repro.errors import ProtocolError
from repro.orfa.protocol import (
    DIRENT_WIRE_BYTES,
    OrfaOp,
    OrfaReply,
    OrfaRequest,
    REQUEST_WIRE_BYTES,
)
from repro.orfa.server import MAX_READ_REPLY, OrfaServer
from repro.sim import Environment


def test_request_wire_size_includes_name():
    bare = OrfaRequest(op=OrfaOp.GETATTR, request_id=1)
    named = OrfaRequest(op=OrfaOp.LOOKUP, request_id=2, name="filename")
    assert bare.wire_size() == REQUEST_WIRE_BYTES
    assert named.wire_size() == REQUEST_WIRE_BYTES + 8


def test_reply_wire_size_counts_dirents():
    reply = OrfaReply(request_id=1, names=["a", "bb", "ccc"])
    assert reply.data_wire_size(0) == 3 * DIRENT_WIRE_BYTES
    data_reply = OrfaReply(request_id=2)
    assert data_reply.data_wire_size(4096) == 4096
    empty = OrfaReply(request_id=3)
    assert empty.data_wire_size(0) == 1  # a header still travels


def test_reply_ok_flag():
    assert OrfaReply(request_id=1).ok
    assert not OrfaReply(request_id=1, status="ENOENT").ok


def test_server_rejects_bad_api_name():
    env = Environment()
    node, _ = node_pair(env)
    with pytest.raises(ProtocolError):
        OrfaServer(node, 3, api="tcp")


def test_server_caps_read_replies():
    """A READ larger than the reply cap is a protocol violation the
    server surfaces instead of silently truncating."""
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api="mx")
    env.run(until=server.start())
    attrs = env.run(until=env.process(server.fs.create(1, "big")))
    server.fs.write_raw(attrs.inode_id, 0, bytes(64))

    from repro.core import MxKernelChannel
    from repro.mx.memtypes import MxSegment

    channel = MxKernelChannel(client_node, 4)
    req = OrfaRequest(op=OrfaOp.READ, request_id=9,
                      inode=attrs.inode_id, offset=0,
                      length=MAX_READ_REPLY + 1)
    kbuf = client_node.kspace.kmalloc(4096)

    def script(env):
        yield from channel.send(1, 3, [MxSegment.kernel(kbuf.vaddr, 64)],
                                match=0, meta=req)

    env.process(script(env))
    with pytest.raises(ProtocolError, match="exceeds"):
        env.run()


def test_server_rejects_non_orfa_messages():
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api="mx")
    env.run(until=server.start())

    from repro.core import MxKernelChannel
    from repro.mx.memtypes import MxSegment

    channel = MxKernelChannel(client_node, 4)
    kbuf = client_node.kspace.kmalloc(4096)

    def script(env):
        yield from channel.send(1, 3, [MxSegment.kernel(kbuf.vaddr, 16)],
                                match=0, meta={"not": "orfa"})

    env.process(script(env))
    with pytest.raises(ProtocolError, match="non-ORFA"):
        env.run()
