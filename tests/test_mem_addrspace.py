"""Unit tests for user address spaces (repro.mem.addrspace)."""

import pytest

from repro.errors import BadAddress, ProtectionFault
from repro.mem import AddressSpace, PhysicalMemory, Prot
from repro.mem.addrspace import ChangeKind, USER_BASE
from repro.units import PAGE_SIZE


@pytest.fixture
def phys():
    return PhysicalMemory(256)


@pytest.fixture
def space(phys):
    return AddressSpace(phys)


def test_mmap_returns_page_aligned_user_address(space):
    addr = space.mmap(10)
    assert addr >= USER_BASE
    assert addr % PAGE_SIZE == 0


def test_mmap_regions_do_not_overlap(space):
    a = space.mmap(3 * PAGE_SIZE)
    b = space.mmap(PAGE_SIZE)
    assert b >= a + 3 * PAGE_SIZE


def test_demand_paging_populates_on_access(space):
    addr = space.mmap(4 * PAGE_SIZE)
    assert space.populated_pages == 0
    space.write_bytes(addr, b"x")
    assert space.populated_pages == 1


def test_mmap_populate_faults_all_pages(space):
    space.mmap(4 * PAGE_SIZE, populate=True)
    assert space.populated_pages == 4


def test_read_write_roundtrip(space):
    addr = space.mmap(2 * PAGE_SIZE)
    payload = bytes(range(256)) * 20
    space.write_bytes(addr + 100, payload)
    assert space.read_bytes(addr + 100, len(payload)) == payload


def test_write_crossing_page_boundary(space):
    addr = space.mmap(3 * PAGE_SIZE)
    payload = b"A" * (PAGE_SIZE + 200)
    space.write_bytes(addr + PAGE_SIZE - 100, payload)
    assert space.read_bytes(addr + PAGE_SIZE - 100, len(payload)) == payload


def test_unmapped_access_raises(space):
    with pytest.raises(BadAddress):
        space.read_bytes(USER_BASE, 1)


def test_protection_fault_on_write_to_readonly(space):
    addr = space.mmap(PAGE_SIZE, prot=Prot.READ)
    with pytest.raises(ProtectionFault):
        space.write_bytes(addr, b"x")


def test_translate_without_fault_in_raises_on_cold_page(space):
    addr = space.mmap(PAGE_SIZE)
    with pytest.raises(BadAddress):
        space.translate(addr, fault_in=False)
    space.write_bytes(addr, b"x")
    assert space.translate(addr, fault_in=False) % PAGE_SIZE == 0


def test_munmap_frees_frames(space, phys):
    addr = space.mmap(2 * PAGE_SIZE, populate=True)
    allocated = phys.allocated_frames
    space.munmap(addr, 2 * PAGE_SIZE)
    assert phys.allocated_frames == allocated - 2
    with pytest.raises(BadAddress):
        space.read_bytes(addr, 1)


def test_munmap_splits_vma(space):
    addr = space.mmap(3 * PAGE_SIZE, populate=True)
    space.munmap(addr + PAGE_SIZE, PAGE_SIZE)
    # outer pages still accessible, middle gone
    space.write_bytes(addr, b"a")
    space.write_bytes(addr + 2 * PAGE_SIZE, b"c")
    with pytest.raises(BadAddress):
        space.write_bytes(addr + PAGE_SIZE, b"b")


def test_munmap_unaligned_start_raises(space):
    space.mmap(PAGE_SIZE)
    with pytest.raises(BadAddress):
        space.munmap(USER_BASE + 1, PAGE_SIZE)


def test_munmap_notifies_listeners_before_teardown(space):
    addr = space.mmap(PAGE_SIZE, populate=True)
    observed = []

    def listener(change):
        # Translation must still work during notification.
        observed.append((change.kind, space.page_present(addr)))

    space.add_listener(listener)
    space.munmap(addr, PAGE_SIZE)
    assert observed == [(ChangeKind.UNMAP, True)]


def test_mprotect_changes_protection_and_notifies(space):
    addr = space.mmap(2 * PAGE_SIZE)
    events = []
    space.add_listener(lambda c: events.append(c.kind))
    space.mprotect(addr, PAGE_SIZE, Prot.READ)
    assert events == [ChangeKind.PROTECT]
    with pytest.raises(ProtectionFault):
        space.write_bytes(addr, b"x")
    space.write_bytes(addr + PAGE_SIZE, b"ok")  # second page untouched


def test_fork_copies_data_not_frames(space, phys):
    addr = space.mmap(PAGE_SIZE)
    space.write_bytes(addr, b"parent-data")
    child = space.fork()
    assert child.read_bytes(addr, 11) == b"parent-data"
    child.write_bytes(addr, b"child-data!")
    assert space.read_bytes(addr, 11) == b"parent-data"
    assert child.asid != space.asid


def test_fork_notifies_parent_listeners(space):
    space.mmap(PAGE_SIZE, populate=True)
    kinds = []
    space.add_listener(lambda c: kinds.append(c.kind))
    space.fork()
    assert kinds == [ChangeKind.FORK]


def test_destroy_releases_unpinned_frames(space, phys):
    space.mmap(3 * PAGE_SIZE, populate=True)
    space.destroy()
    assert phys.allocated_frames == 0
    with pytest.raises(BadAddress):
        space.mmap(PAGE_SIZE)


def test_pin_range_pins_all_pages(space):
    addr = space.mmap(3 * PAGE_SIZE)
    frames = space.pin_range(addr + 10, 2 * PAGE_SIZE)
    assert len(frames) == 3  # 2 pages + spill into third due to offset
    assert all(f.pinned for f in frames)
    AddressSpace.unpin_frames(frames)
    assert not any(f.pinned for f in frames)


def test_pin_range_is_all_or_nothing(space):
    addr = space.mmap(PAGE_SIZE)
    # Range extends past the VMA into unmapped space.
    with pytest.raises(BadAddress):
        space.pin_range(addr, 2 * PAGE_SIZE)
    frame = space.frame_of(addr)
    assert not frame.pinned


def test_munmap_keeps_pinned_frame_allocated(space, phys):
    addr = space.mmap(PAGE_SIZE)
    [frame] = space.pin_range(addr, PAGE_SIZE)
    space.munmap(addr, PAGE_SIZE)
    # The frame survives (DMA could be in flight) but is unreachable.
    assert frame.pinned
    assert phys.allocated_frames == 1
    frame.unpin()


def test_iter_pages_covers_offset_range(space):
    addr = space.mmap(4 * PAGE_SIZE)
    pages = list(space.iter_pages(addr + 100, 2 * PAGE_SIZE))
    assert pages == [addr, addr + PAGE_SIZE, addr + 2 * PAGE_SIZE]


def test_iter_pages_empty_for_zero_length(space):
    addr = space.mmap(PAGE_SIZE)
    assert list(space.iter_pages(addr, 0)) == []


def test_asids_are_unique():
    phys = PhysicalMemory(8)
    spaces = [AddressSpace(phys) for _ in range(5)]
    asids = [s.asid for s in spaces]
    assert len(set(asids)) == 5
