"""Contention tests: shared LANai, PCI and CPU resources under load."""

import pytest

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import MxTransport
from repro.cluster import node_pair
from repro.hw.params import MX_USER_COSTS
from repro.hw.nic import PostedReceive, SendDescriptor
from repro.sim import Environment
from repro.units import MB, PAGE_SIZE, bandwidth_mb_s, us


def test_two_ports_share_one_firmware_processor():
    """Two endpoints on one NIC serialize on the LANai: aggregate
    throughput of two concurrent streams equals one link, and per-port
    rates split roughly evenly."""
    env = Environment()
    a, b = node_pair(env)
    pairs = []
    for port in (1, 2):
        ta = MxTransport(a, port, peer_node=1, peer_ep=port, context="kernel")
        tb = MxTransport(b, port, peer_node=0, peer_ep=port, context="kernel")
        prepare_pair(env, ta, tb, 64 * 1024)
        pairs.append((ta, tb))
    size, count = 64 * 1024, 8
    finish = {}

    def tx(env, t, idx):
        for _ in range(count):
            yield from t.send(size)

    def rx(env, t, idx):
        for _ in range(count):
            yield from t.recv(size)
        finish[idx] = env.now

    for idx, (ta, tb) in enumerate(pairs):
        env.process(tx(env, ta, idx))
        env.process(rx(env, tb, idx))
    env.run()
    total = 2 * count * size
    aggregate = bandwidth_mb_s(total, max(finish.values()))
    assert 200 < aggregate < 252  # one 250 MB/s wire, not two
    # fairness: neither stream finishes wildly before the other
    times = sorted(finish.values())
    assert times[1] - times[0] < 0.35 * times[1]


def test_concurrent_transfers_do_not_corrupt_each_other():
    """Interleaved fragments of two streams keep their data intact."""
    env = Environment()
    a, b = node_pair(env)
    results = {}
    payloads = {
        1: bytes((i * 3) % 256 for i in range(100_000)),
        2: bytes((i * 7 + 1) % 256 for i in range(100_000)),
    }
    for port, payload in payloads.items():
        pa = a.nic.open_port(port, MX_USER_COSTS)
        pb = b.nic.open_port(port, MX_USER_COSTS)
        done = env.event()
        pb.post_receive(PostedReceive(match=port, capacity=len(payload),
                                      keep_data=True, completion=done))
        a.nic.submit(SendDescriptor(
            dst_nic=1, dst_port=port, match=port, size=len(payload),
            src_port=port, data=payload, rendezvous=True, fw_send_ns=500))
        results[port] = done
    env.run()
    for port, payload in payloads.items():
        assert results[port].value.data == payload


def test_latency_degrades_under_background_bulk_traffic():
    """A small ping-pong sharing the NIC with a bulk stream sees its
    latency rise (wire + firmware contention), then recover."""
    env = Environment()
    a, b = node_pair(env)
    small_a = MxTransport(a, 1, peer_node=1, peer_ep=1, context="kernel")
    small_b = MxTransport(b, 1, peer_node=0, peer_ep=1, context="kernel")
    bulk_a = MxTransport(a, 2, peer_node=1, peer_ep=2, context="kernel")
    bulk_b = MxTransport(b, 2, peer_node=0, peer_ep=2, context="kernel")
    prepare_pair(env, small_a, small_b, PAGE_SIZE)
    prepare_pair(env, bulk_a, bulk_b, 256 * 1024)

    quiet = ping_pong(env, small_a, small_b, 64, rounds=10).one_way_us

    def bulk_tx(env):
        for _ in range(64):
            yield from bulk_a.send(256 * 1024)

    def bulk_rx(env):
        for _ in range(64):
            yield from bulk_b.recv(256 * 1024)

    env.process(bulk_tx(env))
    env.process(bulk_rx(env))
    loaded = ping_pong(env, small_a, small_b, 64, rounds=10).one_way_us
    env.run()  # drain the bulk stream
    after = ping_pong(env, small_a, small_b, 64, rounds=10).one_way_us
    assert loaded > 2 * quiet
    assert after == pytest.approx(quiet, rel=0.05)
