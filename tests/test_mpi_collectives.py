"""Dedicated tests for the MPI collectives (repro.mpi.comm): barrier,
bcast, gather, reduce, allreduce — plus the per-collective latency
histograms the observability layer records around each call."""

import pytest

from repro import obs
from repro.mpi import mpi_world
from repro.mpi.comm import MpiError
from repro.sim import Environment
from repro.units import PAGE_SIZE

BACKENDS = ["mx", "gm"]


@pytest.fixture(autouse=True)
def _no_ambient_leaks():
    yield
    obs.uninstall_registry()
    obs.uninstall_timeline()


def run_spmd(env, comms, program):
    procs = [env.process(program(comm), name=f"rank{comm.rank}")
             for comm in comms]
    env.run(until=env.all_of(procs))
    return [p.value for p in procs]


# -- barrier -----------------------------------------------------------------


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_barrier_releases_no_rank_early(api, n):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)
    exit_times = {}

    def program(comm):
        yield comm.env.timeout((n - 1 - comm.rank) * 40_000)
        yield from comm.barrier()
        exit_times[comm.rank] = comm.env.now

    run_spmd(env, comms, program)
    latest_arrival = (n - 1) * 40_000
    assert all(t >= latest_arrival for t in exit_times.values())


def test_single_rank_collectives_are_trivial():
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="mx")
    comm = comms[0]
    comm.size = 1  # degenerate world of one

    def program(comm):
        yield from comm.barrier()
        buf = comm.space.mmap(PAGE_SIZE)
        yield from comm.bcast(0, buf, 16)
        return "done"

    assert env.run(until=env.process(program(comm))) == "done"


@pytest.mark.parametrize("api", BACKENDS)
def test_back_to_back_collectives_do_not_cross_match(api):
    """Collective tags are sequenced, so consecutive collectives of the
    same shape must not steal each other's messages."""
    env = Environment()
    comms, nodes = mpi_world(env, 3, api=api)

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        out = []
        for round_no in range(4):
            payload = bytes([round_no]) * 32
            if comm.rank == 1:
                comm.space.write_bytes(buf, payload)
            yield from comm.bcast(1, buf, 32)
            out.append(comm.space.read_bytes(buf, 32))
            yield from comm.barrier()
        return out

    results = run_spmd(env, comms, program)
    for got in results:
        assert got == [bytes([r]) * 32 for r in range(4)]


# -- bcast / gather ----------------------------------------------------------


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n,root", [(2, 1), (3, 2), (5, 4)])
def test_bcast_from_every_root(api, n, root):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)
    payload = bytes(range(root, root + 64))

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        if comm.rank == root:
            comm.space.write_bytes(buf, payload)
        yield from comm.bcast(root, buf, len(payload))
        return comm.space.read_bytes(buf, len(payload))

    assert all(r == payload for r in run_spmd(env, comms, program))


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("root", [0, 1, 3])
def test_gather_orders_by_rank(api, root):
    env = Environment()
    comms, nodes = mpi_world(env, 4, api=api)

    def program(comm):
        return (yield from comm.gather_bytes(root, bytes([comm.rank + 1]) * 8))

    results = run_spmd(env, comms, program)
    assert results[root] == [bytes([r + 1]) * 8 for r in range(4)]
    assert all(results[r] is None for r in range(4) if r != root)


def test_gather_rejects_oversized_blob():
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="mx")
    with pytest.raises(MpiError, match="32 kB"):
        env.run(until=env.process(
            comms[0].gather_bytes(0, b"x" * (32 * 1024 + 1))))


# -- reduce / allreduce ------------------------------------------------------


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("op,expect", [
    ("sum", lambda xs: sum(xs)),
    ("max", lambda xs: max(xs)),
    ("min", lambda xs: min(xs)),
])
def test_reduce_every_op(api, op, expect):
    env = Environment()
    comms, nodes = mpi_world(env, 4, api=api)

    def program(comm):
        contribution = [comm.rank * 3 - 1, -comm.rank]
        return (yield from comm.reduce_ints(2, contribution, op=op))

    results = run_spmd(env, comms, program)
    ranks = range(4)
    assert results[2] == [expect([r * 3 - 1 for r in ranks]),
                          expect([-r for r in ranks])]
    assert all(results[r] is None for r in ranks if r != 2)


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n", [2, 3, 5])
def test_allreduce_all_ranks_agree(api, n):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)

    def program(comm):
        return (yield from comm.allreduce_ints([comm.rank + 1, 100], op="sum"))

    results = run_spmd(env, comms, program)
    expected = [sum(range(1, n + 1)), 100 * n]
    assert all(r == expected for r in results)


def test_reduce_negative_values_roundtrip():
    """int64 packing is signed: negative contributions must survive."""
    env = Environment()
    comms, nodes = mpi_world(env, 3, api="mx")

    def program(comm):
        return (yield from comm.reduce_ints(0, [-(10 ** 12) - comm.rank],
                                            op="sum"))

    results = run_spmd(env, comms, program)
    assert results[0] == [-3 * 10 ** 12 - 3]


def test_reduce_rejects_unknown_op_before_communicating():
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="mx")
    with pytest.raises(MpiError, match="unknown op"):
        comms[0].reduce_ints(0, [1], op="mean").send(None)
    with pytest.raises(MpiError, match="unknown op"):
        comms[0].allreduce_ints([1], op="xor").send(None)


# -- per-collective latency histograms ---------------------------------------


def test_collectives_record_latency_histograms():
    with obs.installed_registry() as reg:
        env = Environment()
        comms, nodes = mpi_world(env, 3, api="mx")

        def program(comm):
            yield from comm.barrier()
            buf = comm.space.mmap(PAGE_SIZE)
            if comm.rank == 0:
                comm.space.write_bytes(buf, b"y" * 16)
            yield from comm.bcast(0, buf, 16)
            yield from comm.gather_bytes(1, b"z" * 4)
            result = yield from comm.allreduce_ints([1], op="sum")
            return result

        results = run_spmd(env, comms, program)
        assert all(r == [3] for r in results)

        def hist(op):
            return reg.histogram("mpi.collective.latency_ns",
                                 op=op, api="mx")

        n = 3
        assert hist("barrier").count == n
        assert hist("gather").count == n
        # allreduce nests a reduce and a bcast: each layer observes
        assert hist("allreduce").count == n
        assert hist("reduce").count == n
        assert hist("bcast").count == 2 * n  # explicit + nested
        assert hist("barrier").sum > 0


def test_collectives_record_timeline_spans():
    tl = obs.install_timeline()
    try:
        env = Environment()
        comms, nodes = mpi_world(env, 2, api="gm")

        def program(comm):
            yield from comm.barrier()

        run_spmd(env, comms, program)
    finally:
        obs.uninstall_timeline()
    spans = [e for e in tl.to_chrome()["traceEvents"]
             if e["cat"] == "mpi" and e["name"] == "barrier"]
    assert len(spans) == 2  # one per rank
    assert all(e["ph"] == "X" and e["dur"] > 0 for e in spans)
    assert {e["tid"] for e in spans} == {0, 1}


def test_collectives_without_registry_record_nothing():
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="mx")

    def program(comm):
        yield from comm.barrier()

    run_spmd(env, comms, program)  # must simply not blow up
    assert not obs.metrics_enabled() and not obs.timeline_enabled()
