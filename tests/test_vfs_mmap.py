"""Tests for file-backed mmap (VFS mmap_file/msync over ORFS)."""

import pytest

from repro.cluster import node_pair
from repro.core import MxKernelChannel
from repro.errors import Einval
from repro.gm.kernel import GmKernelPort
from repro.gmkrc import Gmkrc
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.mem.layout import sg_from_frames
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


def build():
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api="mx")
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    mount_orfs(client_node, channel, (server_node.node_id, 3))
    attrs = env.run(until=env.process(server.fs.create(1, "f")))
    payload = bytes((i * 17) % 256 for i in range(4 * PAGE_SIZE))
    server.fs.write_raw(attrs.inode_id, 0, payload)
    return env, client_node, server, payload


def run(env, gen):
    return env.run(until=env.process(gen))


def test_mmap_reads_file_contents(build_rig=None):
    env, node, server, payload = build()
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f")
        vaddr = yield from node.vfs.mmap_file(fd, space, 4 * PAGE_SIZE)
        data = space.read_bytes(vaddr, 4 * PAGE_SIZE)
        yield from node.vfs.close(fd)
        return data

    assert run(env, script(env)) == payload


def test_mmap_shares_frames_with_page_cache():
    """Stores through the mapping are visible to buffered readers at
    once: one physical copy (MAP_SHARED)."""
    env, node, server, payload = build()
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f", OpenFlags.RDWR)
        vaddr = yield from node.vfs.mmap_file(fd, space, PAGE_SIZE)
        space.write_bytes(vaddr + 10, b"VIA-MMAP")
        out = space.mmap(PAGE_SIZE)
        node.vfs.seek(fd, 0)
        n = yield from node.vfs.read(fd, UserBuffer(space, out, PAGE_SIZE))
        data = space.read_bytes(out + 10, 8)
        yield from node.vfs.close(fd)
        return data

    assert run(env, script(env)) == b"VIA-MMAP"


def test_two_processes_share_one_mapping():
    env, node, server, payload = build()
    s1 = node.new_process_space()
    s2 = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f", OpenFlags.RDWR)
        v1 = yield from node.vfs.mmap_file(fd, s1, PAGE_SIZE)
        v2 = yield from node.vfs.mmap_file(fd, s2, PAGE_SIZE)
        s1.write_bytes(v1, b"from-process-1")
        return s2.read_bytes(v2, 14)

    assert run(env, script(env)) == b"from-process-1"


def test_msync_makes_mapped_writes_durable():
    env, node, server, payload = build()
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f", OpenFlags.RDWR)
        vaddr = yield from node.vfs.mmap_file(fd, space, 2 * PAGE_SIZE)
        space.write_bytes(vaddr + 100, b"DURABLE?")
        yield from node.vfs.msync(space, vaddr)
        yield from node.vfs.close(fd)

    run(env, script(env))
    assert server.fs.read_raw(2, 100, 8) == b"DURABLE?"


def test_munmap_file_keeps_cache_pages():
    env, node, server, payload = build()
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f")
        vaddr = yield from node.vfs.mmap_file(fd, space, 2 * PAGE_SIZE)
        yield from node.vfs.munmap_file(space, vaddr)
        yield from node.vfs.close(fd)
        return vaddr

    cached_before = len(node.pagecache)
    vaddr = run(env, script(env))
    assert len(node.pagecache) >= cached_before  # pages survived
    from repro.errors import BadAddress
    with pytest.raises(BadAddress):
        space.read_bytes(vaddr, 1)


def test_mmap_rejects_bad_arguments():
    env, node, server, payload = build()
    space = node.new_process_space()

    def script(env):
        fd = yield from node.vfs.open("/orfs/f")
        with pytest.raises(Einval):
            yield from node.vfs.mmap_file(fd, space, PAGE_SIZE, offset=100)
        with pytest.raises(Einval):
            yield from node.vfs.mmap_file(fd, space, 0)
        with pytest.raises(Einval):
            yield from node.vfs.msync(space, 0xDEAD000)

    run(env, script(env))


def test_gm_can_send_mmaped_file_pages_through_regcache():
    """The full-circle test: a file mmap'ed on the client is registered
    through GMKRC and sent zero-copy — the file's page-cache frames go
    straight onto the wire."""
    env, node, server, payload = build()
    # a second node pair for the GM transfer
    peer = server.node  # reuse the server node as the GM peer
    gm_a = GmKernelPort(node, 8)
    gm_b = GmKernelPort(peer, 8)
    cache = Gmkrc(gm_a, node.vmaspy)
    space = node.new_process_space()
    dst = peer.kspace.kmalloc(PAGE_SIZE)

    def script(env):
        fd = yield from node.vfs.open("/orfs/f")
        vaddr = yield from node.vfs.mmap_file(fd, space, PAGE_SIZE)
        yield from gm_b.provide_receive_buffer_physical(
            sg_from_frames(dst.frames, 0, PAGE_SIZE))
        key, entry = yield from cache.acquire(space, vaddr, PAGE_SIZE)
        yield from gm_a.send_registered(peer.node_id, 8, key, 64)
        event = yield from gm_b.receive_event(blocking=True)
        cache.release(entry)
        return peer.kspace.read_bytes(dst.vaddr, 64)

    got = run(env, script(env))
    assert got == payload[:64]
