"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_timeout_advances_clock():
    env = Environment()
    done = {}

    def proc(env):
        yield env.timeout(100)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] == 100
    assert env.now == 100


def test_timeout_value_passthrough():
    env = Environment()
    seen = {}

    def proc(env):
        value = yield env.timeout(5, value="payload")
        seen["v"] = value

    env.process(proc(env))
    env.run()
    assert seen["v"] == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 30, "c"))
    env.process(proc(env, 10, "a"))
    env.process(proc(env, 20, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(50)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_process_waits_on_manual_event():
    env = Environment()
    ev = env.event()
    got = {}

    def waiter(env):
        got["v"] = yield ev

    def trigger(env):
        yield env.timeout(7)
        ev.succeed("hello")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert got["v"] == "hello"
    assert env.now == 7


def test_event_failure_raises_in_process():
    env = Environment()
    ev = env.event()
    caught = {}

    def waiter(env):
        try:
            yield ev
        except RuntimeError as exc:
            caught["exc"] = str(exc)

    def failer(env):
        yield env.timeout(3)
        ev.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught["exc"] == "boom"


def test_uncaught_event_failure_propagates_through_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("explode")

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="explode"):
        env.run(until=p)


def test_event_triggered_twice_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_all_of_waits_for_every_event():
    env = Environment()
    done = {}

    def proc(env):
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(30, value="b")
        result = yield env.all_of([t1, t2])
        done["at"] = env.now
        done["values"] = sorted(result.values())

    env.process(proc(env))
    env.run()
    assert done["at"] == 30
    assert done["values"] == ["a", "b"]


def test_any_of_fires_on_first_event():
    env = Environment()
    done = {}

    def proc(env):
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(30, value="slow")
        result = yield env.any_of([t1, t2])
        done["at"] = env.now
        done["values"] = list(result.values())

    env.process(proc(env))
    env.run()
    assert done["at"] == 10
    assert done["values"] == ["fast"]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = {}

    def proc(env):
        yield env.all_of([])
        done["at"] = env.now

    env.process(proc(env))
    env.run()
    assert done["at"] == 0


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=95)
    assert env.now == 95


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=50)
    with pytest.raises(SimulationError):
        env.run(until=10)


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()

    def waiter(env):
        yield ev

    p = env.process(waiter(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_interrupt_raises_in_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(1000)
        except ProcessInterrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def interrupter(env, victim):
        yield env.timeout(50)
        victim.interrupt("wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", "wakeup", 50)]


def test_uncaught_interrupt_kills_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(1000)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    with pytest.raises(ProcessInterrupt):
        env.run(until=victim)


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="must yield Event"):
        env.run(until=p)


def test_late_callback_on_processed_event_runs_immediately():
    env = Environment()
    ev = env.timeout(5, value="x")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_nested_processes_wait_on_each_other():
    env = Environment()

    def child(env):
        yield env.timeout(25)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return (result, env.now)

    p = env.process(parent(env))
    assert env.run(until=p) == ("child-result", 25)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(40)
    env.timeout(10)
    assert env.peek() == 10
    env.run()
    assert env.peek() is None


def test_delay0_events_fire_fifo():
    # Multiple delay-0 triggers at one timestamp fire in trigger order.
    env = Environment()
    order = []
    evs = [env.event() for _ in range(4)]

    def waiter(env, i):
        yield evs[i]
        order.append(i)

    def trigger(env):
        yield env.timeout(3)
        for ev in (evs[2], evs[0], evs[3], evs[1]):
            ev.succeed()

    for i in range(4):
        env.process(waiter(env, i))
    env.process(trigger(env))
    env.run()
    assert order == [2, 0, 3, 1]


def test_delay0_fires_after_same_time_delayed_events():
    # A delay-0 event created while processing time T must fire after
    # every already-queued delayed event at T (the seed engine's
    # (time, seq) order), not jump ahead of them.
    env = Environment()
    order = []
    ev = env.event()

    def early(env):
        yield env.timeout(5)
        order.append("early")
        ev.succeed()  # delay-0, created at t=5

    def late(env):
        yield env.timeout(5)
        order.append("late")

    def waiter(env):
        yield ev
        order.append(("delay0", env.now))

    env.process(waiter(env))
    env.process(early(env))
    env.process(late(env))
    env.run()
    assert order == ["early", "late", ("delay0", 5)]


def test_delay0_before_run_fires_before_delayed():
    env = Environment()
    order = []
    ev = env.event()
    ev.succeed("x")

    def waiter(env):
        value = yield ev
        order.append(("imm", value, env.now))

    def delayed(env):
        yield env.timeout(1)
        order.append(("t1", env.now))

    env.process(delayed(env))
    env.process(waiter(env))
    env.run()
    assert order == [("imm", "x", 0), ("t1", 1)]


def test_step_drains_immediate_and_delayed_in_order():
    env = Environment()
    fired = []
    ev = env.event()
    ev.succeed("now")
    ev.add_callback(lambda e: fired.append(("imm", env.now)))
    t = env.timeout(10)
    t.add_callback(lambda e: fired.append(("t10", env.now)))
    assert env.peek() == 0  # immediate event pending at the current time
    env.step()
    assert fired == [("imm", 0)]
    assert env.peek() == 10
    env.step()
    assert fired == [("imm", 0), ("t10", 10)]


def test_interrupt_leaves_other_waiters_attached():
    # Detaching on interrupt is lazy; the shared event must still wake
    # every other process waiting on it.
    env = Environment()
    log = []
    shared = env.event()

    def sleeper(env, tag):
        try:
            value = yield shared
            log.append((tag, "got", value))
        except ProcessInterrupt:
            log.append((tag, "interrupted"))

    def driver(env):
        yield env.timeout(2)
        victims[1].interrupt("x")
        yield env.timeout(2)
        shared.succeed("v")

    victims = [env.process(sleeper(env, i)) for i in range(3)]
    env.process(driver(env))
    env.run()
    assert log == [(1, "interrupted"), (0, "got", "v"), (2, "got", "v")]


def test_interrupted_process_can_rewait_on_same_event():
    env = Environment()
    log = []
    shared = env.event()

    def sleeper(env):
        try:
            yield shared
        except ProcessInterrupt:
            log.append(("interrupted", env.now))
            value = yield shared  # re-issue the wait on the same event
            log.append(("got", value, env.now))

    def driver(env, victim):
        yield env.timeout(2)
        victim.interrupt()
        yield env.timeout(2)
        shared.succeed("again")

    victim = env.process(sleeper(env))
    env.process(driver(env, victim))
    env.run()
    assert log == [("interrupted", 2), ("got", "again", 4)]


def test_determinism_two_identical_runs():
    def build():
        env = Environment()
        trace = []

        def proc(env, tag, period):
            for _ in range(5):
                yield env.timeout(period)
                trace.append((env.now, tag))

        env.process(proc(env, "a", 7))
        env.process(proc(env, "b", 11))
        env.run()
        return trace

    assert build() == build()


# -- call_at / schedule_bulk ordering edge cases ------------------------------


def test_call_at_now_queues_after_due_heap_entries():
    # A call_at(now) lands on the immediate FIFO, which drains *after*
    # heap entries already due at the current timestamp.
    env = Environment()
    log = []

    def kick(env):
        yield env.timeout(5)
        env.call_at(env.now, log.append, "immediate")

    def also_at_5(env):
        yield env.timeout(5)
        log.append("heap")

    env.process(kick(env))
    env.process(also_at_5(env))
    env.run()
    assert log == ["heap", "immediate"]


def test_call_at_past_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.call_at(9, lambda: None)


def test_schedule_bulk_same_timestamp_order_matches_call_at():
    # Same-timestamp bulk entries must fire in entry order, exactly as
    # a call_at-per-entry loop would.
    def run(bulk):
        env = Environment()
        log = []
        entries = [(20, log.append, ("a",)), (10, log.append, ("b",)),
                   (20, log.append, ("c",)), (10, log.append, ("d",))]
        if bulk:
            env.schedule_bulk(entries)
        else:
            for when, fn, args in entries:
                env.call_at(when, fn, *args)
        env.run()
        return log

    assert run(bulk=True) == run(bulk=False) == ["b", "d", "a", "c"]


def test_schedule_bulk_interleaves_with_call_at_by_seq_order():
    # Bulk entries at a timestamp where events already exist fire after
    # the earlier-scheduled ones and before later-scheduled ones —
    # global sequence order, exactly like interleaved call_at calls.
    env = Environment()
    log = []
    env.call_at(30, log.append, "before")
    env.schedule_bulk([(30, log.append, ("bulk",))])
    env.call_at(30, log.append, "after")
    env.run()
    assert log == ["before", "bulk", "after"]


def test_schedule_bulk_now_entries_join_immediate_fifo():
    # when == now entries append to the immediate queue *behind* events
    # already queued there.
    env = Environment()
    log = []
    first = env.event()
    first.callbacks.append(lambda _e: log.append("pre"))
    first.succeed()                               # queued as immediate
    env.schedule_bulk([(0, log.append, ("bulk-now",)),
                       (0, log.append, ("bulk-now-2",))])
    env.run()
    assert log == ["pre", "bulk-now", "bulk-now-2"]


def test_schedule_bulk_past_rejected():
    env = Environment()
    env.run(until=50)
    with pytest.raises(SimulationError):
        env.schedule_bulk([(49, (lambda: None), ())])


def test_schedule_bulk_heapify_path_matches_push_path():
    # Large batch (heapify) vs tiny batches (per-entry push) must yield
    # identical firing order.
    def run(batched):
        env = Environment()
        log = []
        entries = [((i * 37) % 11 + 1, log.append, (i,)) for i in range(64)]
        if batched:
            env.schedule_bulk(entries)
        else:
            for entry in entries:
                env.schedule_bulk([entry])
        env.run()
        return log

    assert run(batched=True) == run(batched=False)


# -- run_window / advance_to (sharded-engine building blocks) -----------------


def test_run_window_processes_strictly_below_limit():
    env = Environment()
    log = []
    for when in (10, 20, 30):
        env.call_at(when, log.append, when)
    n = env.run_window(30)
    assert n == 2
    assert log == [10, 20]
    assert env.now == 20              # clock NOT advanced to the limit
    assert env.peek() == 30


def test_run_window_drains_immediates_inside_window():
    env = Environment()
    log = []

    def chain():
        log.append("a")
        env.call_at(env.now, log.append, "b")

    env.call_at(5, chain)
    env.run_window(6)
    assert log == ["a", "b"]


def test_advance_to_moves_idle_clock_only():
    env = Environment()
    env.run_window(100)
    env.advance_to(80)
    assert env.now == 80
    with pytest.raises(SimulationError):
        env.advance_to(79)            # backwards
    env.call_at(90, lambda: None)
    with pytest.raises(SimulationError):
        env.advance_to(95)            # would skip a queued event
    env.advance_to(90)                # exactly at the event is fine
    assert env.now == 90
