"""Unit tests for the GM API layers (repro.gm)."""

import pytest

from repro.cluster import node_pair
from repro.errors import GMError, GMRegistrationError, TranslationMiss
from repro.gm import GmEventKind, GmKernelPort, GmPort
from repro.gm.registration import RegistrationDomain
from repro.hw.params import GM_REGISTRATION
from repro.mem.layout import sg_from_frames
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


@pytest.fixture
def pair():
    env = Environment()
    a, b = node_pair(env)
    return env, a, b


def run(env, gen):
    return env.run(until=env.process(gen))


def test_registration_installs_translations(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    vaddr = space.mmap(3 * PAGE_SIZE)
    region = run(env, port.register(vaddr, 3 * PAGE_SIZE))
    assert region.npages == 3
    table = node.nic.transtable
    assert all(table.has(port.context, (vaddr >> 12) + i) for i in range(3))
    assert all(f.pinned for f in region.frames)


def test_registration_cost_is_linear_in_pages(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    v1 = space.mmap(PAGE_SIZE, populate=True)
    v2 = space.mmap(16 * PAGE_SIZE, populate=True)
    t0 = env.now
    run(env, port.register(v1, PAGE_SIZE))
    one_page = env.now - t0
    t1 = env.now
    run(env, port.register(v2, 16 * PAGE_SIZE))
    sixteen_pages = env.now - t1
    # 3 us/page slope (plus pinning), ~200 us base only on deregistration
    slope = (sixteen_pages - one_page) / 15
    assert us(2.5) < slope < us(4)


def test_deregistration_has_200us_base(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    vaddr = space.mmap(PAGE_SIZE)
    region = run(env, port.register(vaddr, PAGE_SIZE))
    t0 = env.now
    run(env, port.deregister(region))
    assert env.now - t0 >= us(200)
    assert not node.nic.transtable.has(port.context, vaddr >> 12)
    assert not region.frames[0].pinned


def test_double_registration_of_same_range_raises(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    vaddr = space.mmap(PAGE_SIZE)
    run(env, port.register(vaddr, PAGE_SIZE))
    with pytest.raises(GMRegistrationError):
        run(env, port.register(vaddr, PAGE_SIZE))


def test_send_from_unregistered_memory_raises(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    vaddr = space.mmap(PAGE_SIZE)
    with pytest.raises(GMError, match="unregistered"):
        run(env, port.send(1, 1, vaddr, 100))


def test_end_to_end_data_transfer(pair):
    env, a, b = pair
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    va = sa.mmap(PAGE_SIZE)
    vb = sb.mmap(PAGE_SIZE)
    sa.write_bytes(va, b"gm-data-transfer")

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.send(1, 1, va, 16)

    def receiver(env):
        yield from pb.register(vb, PAGE_SIZE)
        yield from pb.provide_receive_buffer(vb, PAGE_SIZE)
        event = yield from pb.receive_event()
        return event

    env.process(sender(env))
    event = run(env, receiver(env))
    assert event.kind is GmEventKind.RECV
    assert event.size == 16
    assert sb.read_bytes(vb, 16) == b"gm-data-transfer"


def test_send_completion_appears_in_event_queue(pair):
    env, a, b = pair
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    va = sa.mmap(PAGE_SIZE)
    vb = sb.mmap(PAGE_SIZE)

    def receiver(env):
        yield from pb.register(vb, PAGE_SIZE)
        yield from pb.provide_receive_buffer(vb, PAGE_SIZE)

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.send(1, 1, va, 8, tag="my-send")
        event = yield from pa.receive_event()
        return event

    env.process(receiver(env))
    event = run(env, sender(env))
    assert event.kind is GmEventKind.SENT
    assert event.tag == "my-send"


def test_kernel_port_rejects_user_registration(pair):
    env, node, _ = pair
    port = GmKernelPort(node, 2)
    with pytest.raises(GMError):
        port.register(0x1000_0000, PAGE_SIZE)


def test_kernel_register_kernel_memory(pair):
    env, node, _ = pair
    port = GmKernelPort(node, 2)
    alloc = node.kspace.vmalloc(2 * PAGE_SIZE)
    region = run(env, port.register_kernel(alloc.vaddr, 2 * PAGE_SIZE))
    assert region.npages == 2
    assert node.nic.transtable.has(port.context, alloc.vaddr >> 12)


def test_physical_send_and_receive_roundtrip(pair):
    env, a, b = pair
    pa, pb = GmKernelPort(a, 2), GmKernelPort(b, 2)
    src = a.kspace.kmalloc(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(src.vaddr, b"physical-path")

    def receiver(env):
        yield from pb.provide_receive_buffer_physical(
            sg_from_frames(dst.frames, 0, PAGE_SIZE)
        )
        event = yield from pb.receive_event()
        return event

    def sender(env):
        yield from pa.send_physical(1, 2, sg_from_frames(src.frames, 0, 13))

    env.process(sender(env))
    event = run(env, receiver(env))
    assert event.size == 13
    assert b.kspace.read_bytes(dst.vaddr, 13) == b"physical-path"
    # Physical primitives never touch the translation table.
    assert a.nic.transtable.lookup_count == 0


def test_physical_send_empty_sg_raises(pair):
    env, node, _ = pair
    port = GmKernelPort(node, 2)
    with pytest.raises(GMError):
        run(env, port.send_physical(1, 2, []))


def test_port_close_drops_registrations_without_dereg_cost(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    vaddr = space.mmap(4 * PAGE_SIZE)
    run(env, port.register(vaddr, 4 * PAGE_SIZE))
    assert len(node.nic.transtable) == 4
    t0 = env.now
    port.close()
    assert env.now == t0  # synchronous, free
    assert len(node.nic.transtable) == 0
    with pytest.raises(GMError):
        run(env, port.send(1, 1, vaddr, 10))


def test_closed_port_rejects_operations(pair):
    env, node, _ = pair
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    port.close()
    with pytest.raises(GMError):
        run(env, port.receive_event())


def test_install_range_is_all_or_nothing():
    from repro.errors import TranslationTableFull
    from repro.nicfw.transtable import TranslationTable

    table = TranslationTable(4)
    table.install(7, 100, 1)
    # 2 fresh + 1 re-install fits exactly: 100 updates, 101/102 are new.
    table.install_range(7, 100, [11, 12, 13])
    assert len(table) == 3 and table.get(7, 100) == 11
    # 2 fresh entries would overflow by one: nothing may be installed.
    with pytest.raises(TranslationTableFull):
        table.install_range(7, 102, [20, 21, 22])
    assert len(table) == 3
    assert table.get(7, 102) == 13  # pre-existing pfn untouched
    assert table.get(7, 103) is None and table.get(7, 104) is None
    assert table.install_count == 3


def test_table_get_probes_without_charging_lookups():
    from repro.nicfw.transtable import TranslationTable

    table = TranslationTable(4)
    table.install(1, 5, 42)
    assert table.get(1, 5) == 42
    assert table.get(1, 6) is None
    assert table.lookup_count == 0  # get() is host-side bookkeeping
    assert table.lookup(1, 5) == 42
    assert table.lookup_count == 1
