"""Packet-train coalescing: equivalence, split/truncation, engine support.

The analytic wire fast path (:mod:`repro.hw.train`) is an *optimization*
of the per-packet FRAG loop, not a model change: with coalescing on or
off, every simulated timestamp, delivered byte, reliability sequence
number and observability counter (minus the new ``net.train*`` family)
must be identical.  The property test here drives randomized
size/contention/fault scenarios through both modes and diffs the
fingerprints; the unit tests pin the split/truncation mechanics and the
engine plumbing (``call_at``, ``schedule_bulk``, ``events_processed``)
the fast path rides on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import MxTransport
from repro.cluster import node_pair, star
from repro.errors import SimulationError
from repro.faults import FaultPlan
from repro.hw import Link
from repro.hw import train
from repro.hw.params import PCI_XD
from repro.hw.train import MIN_TRAIN_FRAGS, PacketTrain, TrainRun, TrainTruncation
from repro.mem import sglist
from repro.sim import Environment
from repro.units import KiB, MiB

MTU = 4096


@pytest.fixture(autouse=True)
def _coalescing_restored():
    """Every test leaves the module flag the way it found it."""
    before = train.coalescing_enabled()
    yield
    train.set_coalescing(before)


# -- fingerprint harness ------------------------------------------------------


def _filtered_obs(snapshot: dict) -> dict:
    """An obs snapshot minus the train-only metric family.

    ``net.trains`` / ``net.train_len`` / ``net.train_splits`` /
    ``net.train_decoalesce`` describe the *optimization*, not the model,
    so they are the only metrics allowed to differ between modes.
    """
    out = {}
    for section in ("counters", "gauges", "histograms"):
        out[section] = {
            k: v for k, v in snapshot[section].items()
            if not k.startswith("net.train")
        }
    return out


def _reliability_seqs(nics) -> list:
    """Sender/receiver sequence state of every NIC's reliability layer."""
    out = []
    for nic in nics:
        rel = nic._rel
        if rel is None:
            out.append(None)
            continue
        out.append({
            "tx": {peer: st.next_seq for peer, st in sorted(rel._tx.items())},
            "rx": dict(sorted(rel._rx_last.items())),
        })
    return out


def _run_pair_scenario(coalesce: bool, sizes, contention: bool,
                       drop_prob: float, seed: int) -> dict:
    """One deterministic run over a direct link pair; returns its
    observable fingerprint."""
    train.set_coalescing(coalesce)
    sglist.HOST_COPIES.reset()  # process-global; must not leak across runs
    registry = obs.MetricsRegistry()
    with obs.installed_registry(registry):
        env = Environment()
        a, b = node_pair(env)
        if drop_prob:
            plan = FaultPlan(seed=seed).drop("wire", drop_prob)
            plan.install(env, nodes=[a, b])
        streams = [(1, sizes)]
        if contention:
            streams.append((2, list(reversed(sizes))))
        finishes: list[tuple[int, int]] = []
        procs = []
        for port, szs in streams:
            ta = MxTransport(a, port, peer_node=1, peer_ep=port, context="kernel")
            tb = MxTransport(b, port, peer_node=0, peer_ep=port, context="kernel")
            prepare_pair(env, ta, tb, max(szs))

            def tx(t=ta, szs=szs):
                for s in szs:
                    yield from t.send(s)

            def rx(t=tb, port=port, szs=szs):
                for s in szs:
                    yield from t.recv(s)
                    finishes.append((port, env.now))

            env.process(tx())
            procs.append(env.process(rx()))
        env.run(until=env.all_of(procs))
        env.run()  # drain trailing acks/timers so counters are final
        return {
            "now": env.now,
            "finishes": finishes,
            "rel": _reliability_seqs([a.nic, b.nic]),
            "obs": _filtered_obs(registry.snapshot()),
            "trains": registry.snapshot()["counters"].get(
                "net.trains{node=0}", 0),
        }


# -- the equivalence property -------------------------------------------------


@settings(max_examples=10, deadline=None, database=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=256 * KiB),
                   min_size=1, max_size=3),
    contention=st.booleans(),
    fault=st.sampled_from([(0.0, 0), (0.03, 1), (0.03, 4)]),
)
def test_off_vs_auto_fingerprints_identical(sizes, contention, fault):
    """Randomized sizes/contention/fault seeds: coalescing must be
    invisible to every observable except the net.train* family."""
    drop_prob, seed = fault
    off = _run_pair_scenario(False, sizes, contention, drop_prob, seed)
    auto = _run_pair_scenario(True, sizes, contention, drop_prob, seed)
    assert off["trains"] == 0  # off means off
    off.pop("trains"), auto.pop("trains")
    assert off == auto


def test_large_transfer_identical_and_trains_used():
    """The canonical case: a 1 MiB stream coalesces (trains > 0) and
    changes nothing observable."""
    off = _run_pair_scenario(False, [MiB], False, 0.0, 0)
    auto = _run_pair_scenario(True, [MiB], False, 0.0, 0)
    assert auto.pop("trains") > 0
    off.pop("trains")
    assert off == auto


def test_faulted_link_never_coalesces():
    """An armed injector forces per-packet simulation (the draw-sequence
    guarantee documented in repro.faults.plan)."""
    auto = _run_pair_scenario(True, [256 * KiB], False, 0.03, 1)
    assert auto["trains"] == 0


def test_event_reduction_at_least_3x():
    """The tentpole number: >= 3x fewer engine events per 1 MiB transfer."""
    counts = {}
    for mode in (False, True):
        train.set_coalescing(mode)
        env = Environment()
        a, b = node_pair(env)
        ta = MxTransport(a, 1, peer_node=1, peer_ep=1, context="kernel")
        tb = MxTransport(b, 1, peer_node=0, peer_ep=1, context="kernel")
        prepare_pair(env, ta, tb, MiB)
        base = env.events_processed

        def tx():
            yield from ta.send(MiB)

        def rx():
            yield from tb.recv(MiB)

        env.process(tx())
        done = env.process(rx())
        env.run(until=done)
        counts[mode] = env.events_processed - base
    assert counts[False] >= 3 * counts[True]


def test_small_messages_never_coalesce():
    """Below MIN_TRAIN_FRAGS fragments there is no train to form."""
    auto = _run_pair_scenario(True, [MTU, MTU * MIN_TRAIN_FRAGS], False, 0.0, 0)
    assert auto["trains"] == 0


# -- star topology: switch forwarding, contention splits ----------------------


def _run_star_scenario(coalesce: bool) -> dict:
    """Two senders stream to one receiver through the crossbar: the
    shared egress link contends, so trains must split or refuse."""
    train.set_coalescing(coalesce)
    sglist.HOST_COPIES.reset()
    registry = obs.MetricsRegistry()
    with obs.installed_registry(registry):
        env = Environment()
        nodes, switch = star(env, 3)
        finishes = []
        procs = []
        for sender, port in ((0, 5), (1, 6)):
            ts = MxTransport(nodes[sender], port, peer_node=2, peer_ep=port,
                             context="kernel")
            tr = MxTransport(nodes[2], port, peer_node=sender, peer_ep=port,
                             context="kernel")
            prepare_pair(env, ts, tr, 512 * KiB)

            def tx(t=ts):
                yield from t.send(512 * KiB)

            def rx(t=tr, port=port):
                yield from t.recv(512 * KiB)
                finishes.append((port, env.now))

            env.process(tx())
            procs.append(env.process(rx()))
        env.run(until=env.all_of(procs))
        env.run()
        snap = registry.snapshot()
        counters = snap["counters"]
        return {
            "now": env.now,
            "finishes": finishes,
            "obs": _filtered_obs(snap),
            "trains": sum(v for k, v in counters.items()
                          if k.startswith("net.trains{")),
            "degraded": sum(v for k, v in counters.items()
                            if k.startswith("net.train_splits{")
                            or k.startswith("net.train_decoalesce{")),
        }


def test_star_contention_identical_with_splits_exercised():
    off = _run_star_scenario(False)
    auto = _run_star_scenario(True)
    assert auto["trains"] > 0
    # The shared egress must have degraded at least one train (split or
    # refused) — otherwise this test stopped exercising the slow path.
    assert auto["degraded"] > 0
    for key in ("now", "finishes", "obs"):
        assert off[key] == auto[key]


# -- link-level split / truncation mechanics ----------------------------------


def _raw_link(env):
    link = Link(env, PCI_XD, name="L")
    got = []
    link.attach("b", got.append)
    link.attach("a", lambda m: None)
    return link, got


def _train(npackets: int) -> PacketTrain:
    return PacketTrain(src_nic=0, src_port=1, dst_nic=1, dst_port=1,
                       match=0, npackets=npackets, wire_size=MTU)


def test_link_train_split_on_contention():
    """A competitor arriving mid-train cuts it at the next packet
    boundary; a truncation notice chases the descriptor downstream."""
    env = Environment()
    link, got = _raw_link(env)
    per = link.serialization_ns(MTU)
    tr, run = _train(10), TrainRun(10)
    result = {}

    def sender(env):
        result["done"] = yield from link.transmit_train("a", tr, run)

    def competitor(env):
        yield env.timeout(3 * per + per // 2)  # mid-4th-packet
        yield from link.transmit("a", tr, MTU)

    env.process(sender(env))
    env.process(competitor(env))
    env.run()
    assert result["done"] == 4  # the packet in flight completes
    trunc = [m for m in got if isinstance(m, TrainTruncation)]
    assert len(trunc) == 1 and trunc[0].npackets == 4
    assert trunc[0].train_id == tr.train_id
    # Wire accounting covers exactly the carried packets (4 analytic +
    # 1 from the competitor).
    assert link.bytes_carried == 5 * MTU


def test_link_train_truncation_rearms_analytic_end():
    """An upstream truncation shrinks the hold to the new boundary."""
    env = Environment()
    link, got = _raw_link(env)
    per = link.serialization_ns(MTU)
    tr, run = _train(10), TrainRun(10)
    result = {}

    def sender(env):
        result["done"] = yield from link.transmit_train("a", tr, run)

    env.process(sender(env))
    env.call_at(2 * per, run.truncate, 3)
    env.run()
    assert result["done"] == 3
    assert link._dirs["ab"].busy_time == 3 * per
    # The shortened train forwards its own truncation downstream.
    trunc = [m for m in got if isinstance(m, TrainTruncation)]
    assert len(trunc) == 1 and trunc[0].npackets == 3


def test_link_busy_direction_refuses_trains():
    env = Environment()
    link, _ = _raw_link(env)

    def holder(env):
        yield from link.transmit("a", "x", MTU)

    env.process(holder(env))
    assert link.train_block_reason("a") is None

    def check(env):
        yield env.timeout(1)
        assert link.train_block_reason("a") == "busy"

    env.process(check(env))
    env.run()
    assert link.train_block_reason("a") is None  # idle again


# -- engine plumbing ----------------------------------------------------------


def test_call_at_runs_in_order_with_args():
    env = Environment()
    seen = []
    env.call_at(10, seen.append, ("b", 10))
    env.call_at(0, seen.append, ("a", 0))
    env.call_at(10, seen.append, ("c", 10))
    env.run()
    assert seen == [("a", 0), ("b", 10), ("c", 10)]
    assert env.now == 10


def test_call_at_rejects_the_past():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            env.call_at(3, lambda: None)

    env.process(proc(env))
    env.run()


def test_schedule_bulk_matches_call_at_ordering():
    """Bulk entries fire exactly as per-entry call_at would: timestamp
    order, entry order within a timestamp, immediates honored."""
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(7)
        env.schedule_bulk([
            (7, seen.append, ("imm1",)),
            (9, seen.append, ("t9a",)),
            (9, seen.append, ("t9b",)),
            (8, seen.append, ("t8",)),
            (7, seen.append, ("imm2",)),
        ])

    env.process(proc(env))
    env.run()
    assert seen == ["imm1", "imm2", "t8", "t9a", "t9b"]


def test_schedule_bulk_large_batch_heapify_path():
    """A batch big enough to take the heapify branch keeps heap order."""
    env = Environment()
    seen = []
    env.schedule_bulk([(t, seen.append, (t,)) for t in range(200, 0, -1)])
    env.run()
    assert seen == list(range(1, 201))


def test_schedule_bulk_rejects_the_past():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            env.schedule_bulk([(4, lambda: None, ())])

    env.process(proc(env))
    env.run()


def test_events_processed_counts_all_dispatches():
    env = Environment()
    for t in (0, 5, 5, 9):
        env.call_at(t, lambda: None)
    env.run()
    assert env.events_processed == 4
    env.call_at(9, lambda: None)
    env.run()
    assert env.events_processed == 5
