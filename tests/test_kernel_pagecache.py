"""Unit tests for the page cache (repro.kernel.pagecache)."""

import pytest

from repro.errors import KernelError
from repro.kernel import PageCache
from repro.mem import PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(64)


def test_add_then_find_hits(phys):
    pc = PageCache(phys)
    page = pc.add(1, 0)
    assert pc.find(1, 0) is page
    assert pc.hits == 1


def test_find_missing_counts_miss(phys):
    pc = PageCache(phys)
    assert pc.find(1, 0) is None
    assert pc.misses == 1
    assert pc.hit_ratio() == 0.0


def test_pages_are_pinned_while_cached(phys):
    pc = PageCache(phys)
    page = pc.add(1, 0)
    assert page.frame.pinned
    pc.remove(1, 0)
    assert not page.frame.pinned
    assert phys.allocated_frames == 0


def test_add_duplicate_raises(phys):
    pc = PageCache(phys)
    pc.add(1, 0)
    with pytest.raises(KernelError):
        pc.add(1, 0)


def test_pages_of_different_inodes_are_distinct(phys):
    pc = PageCache(phys)
    a = pc.add(1, 0)
    b = pc.add(2, 0)
    assert a is not b
    assert pc.find(1, 0) is a
    assert pc.find(2, 0) is b


def test_lru_eviction_drops_oldest_clean_page(phys):
    pc = PageCache(phys, max_pages=2)
    first = pc.add(1, 0)
    pc.add(1, 1)
    pc.add(1, 2)  # evicts page (1,0)
    assert pc.find(1, 0) is None
    assert pc.evictions == 1
    assert not first.frame.pinned


def test_find_refreshes_lru_position(phys):
    pc = PageCache(phys, max_pages=2)
    pc.add(1, 0)
    pc.add(1, 1)
    pc.find(1, 0)  # make (1,1) the LRU victim
    pc.add(1, 2)
    assert pc.find(1, 0) is not None
    assert pc.find(1, 1) is None


def test_dirty_pages_not_evicted(phys):
    pc = PageCache(phys, max_pages=2)
    a = pc.add(1, 0)
    a.dirty = True
    pc.add(1, 1)
    pc.add(1, 2)  # must skip dirty (1,0) and evict (1,1)
    assert pc.find(1, 0) is a
    assert pc.find(1, 1) is None


def test_all_dirty_cache_raises_on_pressure(phys):
    pc = PageCache(phys, max_pages=2)
    pc.add(1, 0).dirty = True
    pc.add(1, 1).dirty = True
    with pytest.raises(KernelError, match="writeback"):
        pc.add(1, 2)


def test_invalidate_inode_drops_only_that_inode(phys):
    pc = PageCache(phys)
    pc.add(1, 0)
    pc.add(1, 1)
    pc.add(2, 0)
    assert pc.invalidate_inode(1) == 2
    assert len(pc) == 1
    assert pc.find(2, 0) is not None


def test_dirty_pages_listing_sorted(phys):
    pc = PageCache(phys)
    pc.add(1, 3).dirty = True
    pc.add(1, 1).dirty = True
    pc.add(1, 2)
    indices = [p.index for p in pc.dirty_pages(1)]
    assert indices == [1, 3]
