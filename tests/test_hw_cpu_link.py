"""Unit tests for CPU, link and switch models (repro.hw)."""

import pytest

from repro.errors import NetworkError
from repro.hw import Cpu, Link, Switch
from repro.hw.params import HOST_P3_1200, HOST_P4_2600, HOST_XEON_2600, PCI_XD
from repro.sim import Environment
from repro.units import MB, us


# -- CPU ---------------------------------------------------------------------


def test_copy_time_zero_bytes_is_free():
    env = Environment()
    cpu = Cpu(env, HOST_XEON_2600)
    assert cpu.copy_time_ns(0) == 0


def test_copy_time_monotone_and_two_regime():
    env = Environment()
    cpu = Cpu(env, HOST_XEON_2600)
    small = cpu.copy_time_ns(4096)
    large = cpu.copy_time_ns(64 * 1024)
    assert small < large
    # the streaming regime is slower per byte than the cached one
    per_byte_small = (cpu.copy_time_ns(8192) - cpu.copy_time_ns(4096)) / 4096
    per_byte_large = (cpu.copy_time_ns(128 * 1024) - cpu.copy_time_ns(64 * 1024)) / (64 * 1024)
    assert per_byte_large > per_byte_small


def test_p4_copies_faster_than_p3():
    """Figure 1(b): the P4's memcpy clearly beats the P3's."""
    env = Environment()
    p3 = Cpu(env, HOST_P3_1200, name="p3")
    p4 = Cpu(env, HOST_P4_2600, name="p4")
    assert p4.copy_time_ns(256 * 1024) < p3.copy_time_ns(256 * 1024) / 2


def test_copy_charges_simulated_time_and_serializes():
    env = Environment()
    cpu = Cpu(env, HOST_XEON_2600, capacity=1)
    done = []

    def worker(env, n):
        yield from cpu.copy(n)
        done.append(env.now)

    env.process(worker(env, 64 * 1024))
    env.process(worker(env, 64 * 1024))
    env.run()
    assert done[1] == pytest.approx(2 * done[0], rel=0.01)
    assert cpu.copied_bytes == 128 * 1024


def test_dual_cpu_runs_two_copies_in_parallel():
    env = Environment()
    cpu = Cpu(env, HOST_XEON_2600, capacity=2)
    done = []

    def worker(env):
        yield from cpu.copy(64 * 1024)
        done.append(env.now)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert done[0] == done[1]


def test_negative_work_rejected():
    env = Environment()
    cpu = Cpu(env, HOST_XEON_2600)
    with pytest.raises(ValueError):
        list(cpu.work(-5))


# -- link -----------------------------------------------------------------------


def test_link_delivers_after_serialization_plus_propagation():
    env = Environment()
    link = Link(env, PCI_XD)
    got = []
    link.attach("b", lambda item: got.append((env.now, item)))
    link.attach("a", lambda item: None)

    def send(env):
        yield from link.transmit("a", "hello", 250_000)  # 1 ms at 250 MB/s

    env.process(send(env))
    env.run()
    assert got[0][1] == "hello"
    assert got[0][0] == pytest.approx(1_000_000 + PCI_XD.propagation_ns, rel=0.01)


def test_link_directions_independent():
    env = Environment()
    link = Link(env, PCI_XD)
    arrivals = []
    link.attach("a", lambda item: arrivals.append(("at_a", env.now)))
    link.attach("b", lambda item: arrivals.append(("at_b", env.now)))
    size = 1_000_000

    def send(env, end):
        yield from link.transmit(end, "x", size)

    env.process(send(env, "a"))
    env.process(send(env, "b"))
    env.run()
    assert len(arrivals) == 2
    assert arrivals[0][1] == arrivals[1][1]  # no contention


def test_link_same_direction_serializes():
    env = Environment()
    link = Link(env, PCI_XD)
    arrivals = []
    link.attach("b", lambda item: arrivals.append(env.now))
    link.attach("a", lambda item: None)
    size = 1_000_000

    def send(env):
        yield from link.transmit("a", "x", size)

    env.process(send(env))
    env.process(send(env))
    env.run()
    gap = arrivals[1] - arrivals[0]
    assert gap == pytest.approx(size / (250 * MB) * 1e9, rel=0.01)


def test_link_double_attach_raises():
    env = Environment()
    link = Link(env, PCI_XD)
    link.attach("a", lambda item: None)
    with pytest.raises(NetworkError):
        link.attach("a", lambda item: None)


def test_transmit_without_peer_raises():
    env = Environment()
    link = Link(env, PCI_XD)
    link.attach("a", lambda item: None)
    with pytest.raises(NetworkError):
        list(link.transmit("a", "x", 10))


def test_link_utilization_accounting():
    env = Environment()
    link = Link(env, PCI_XD)
    link.attach("a", lambda item: None)
    link.attach("b", lambda item: None)

    def send(env):
        yield from link.transmit("a", "x", 250_000)
        yield env.timeout(1_000_000)

    env.process(send(env))
    env.run()
    assert link.utilization("ab") == pytest.approx(0.5, abs=0.05)
    assert link.bytes_carried == 250_000


# -- switch ------------------------------------------------------------------------


class _FakeMsg:
    def __init__(self, dst, size=100):
        self.dst_nic = dst
        self.size = size


def test_switch_routes_by_destination():
    env = Environment()
    switch = Switch(env, PCI_XD)
    links = {}
    got = {1: [], 2: []}
    for node_id in (1, 2):
        link, end = switch.add_node(node_id)
        link.attach(end, lambda m, nid=node_id: got[nid].append(m))
        links[node_id] = link

    def send(env):
        yield from links[1].transmit("b", _FakeMsg(dst=2), 100)

    env.process(send(env))
    env.run()
    assert len(got[2]) == 1 and not got[1]


def test_switch_rejects_duplicate_node():
    env = Environment()
    switch = Switch(env, PCI_XD)
    switch.add_node(1)
    with pytest.raises(NetworkError):
        switch.add_node(1)


def test_switch_unroutable_destination_raises():
    env = Environment()
    switch = Switch(env, PCI_XD)
    link, end = switch.add_node(1)
    link.attach(end, lambda m: None)

    def send(env):
        yield from link.transmit("b", _FakeMsg(dst=9), 100)

    env.process(send(env))
    with pytest.raises(NetworkError):
        env.run()
