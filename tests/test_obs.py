"""Tests for the observability subsystem (repro.obs): the metrics
registry, the span timeline, the ambient helpers, the Tracer bridge and
record limit, and whole-run determinism of snapshots."""

import json

import pytest

from repro import obs
from repro.bench.report import format_metrics
from repro.bench.runner import main as bench_main
from repro.mem.sglist import HOST_COPIES
from repro.mpi import mpi_world
from repro.obs import (
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
    NULL_HISTOGRAM,
    ObsError,
    Timeline,
    TimelineError,
    metric_key,
    validate_chrome_trace,
)
from repro.sim import Environment
from repro.sim.trace import DEFAULT_RECORD_LIMIT, Tracer
from repro.units import PAGE_SIZE


@pytest.fixture(autouse=True)
def _no_ambient_leaks():
    """Whatever a test does, never leak an installed registry/timeline
    into the next test (they are process-wide)."""
    yield
    obs.uninstall_registry()
    obs.uninstall_timeline()


def run_spmd(env, comms, program):
    procs = [env.process(program(comm), name=f"rank{comm.rank}")
             for comm in comms]
    env.run(until=env.all_of(procs))
    return [p.value for p in procs]


# -- registry ----------------------------------------------------------------


def test_metric_key_sorts_labels():
    assert metric_key("nic.tx", {}) == "nic.tx"
    assert metric_key("nic.tx", {"peer": 1, "node": 0}) == \
        "nic.tx{node=0,peer=1}"


def test_registry_get_or_create_shares_instruments():
    reg = MetricsRegistry()
    a = reg.counter("nic.tx.retransmits", node=0, peer=1)
    b = reg.counter("nic.tx.retransmits", peer=1, node=0)
    assert a is b  # label order does not matter
    a.inc()
    a.inc(2)
    assert b.value == 3
    g = reg.gauge("gm.registered_pages", cpu="c0")
    g.set(5)
    g.inc()
    g.dec(2)
    assert reg.gauge("gm.registered_pages", cpu="c0").value == 4


def test_helpers_disabled_are_live_but_unregistered():
    assert not obs.metrics_enabled()
    a = obs.counter("nic.tx.messages", node=0)
    b = obs.counter("nic.tx.messages", node=0)
    assert a is not b  # per-instance semantics with no registry
    a.inc()
    assert a.value == 1 and b.value == 0
    assert obs.histogram("x.latency_ns") is NULL_HISTOGRAM
    NULL_HISTOGRAM.observe(123)  # no-op, no state
    assert NULL_HISTOGRAM.count == 0


def test_helpers_enabled_aggregate():
    with obs.installed_registry() as reg:
        assert obs.metrics_enabled()
        obs.counter("gmkrc.hits", node=0, port=2).inc()
        obs.counter("gmkrc.hits", port=2, node=0).inc()
        assert reg.counter("gmkrc.hits", node=0, port=2).value == 2
        h = obs.histogram("orfa.request.latency_ns", op="read")
        h.observe(1500)
        assert h is reg.histogram("orfa.request.latency_ns", op="read")
    assert not obs.metrics_enabled()


def test_double_install_raises():
    obs.install_registry()
    with pytest.raises(ObsError):
        obs.install_registry()
    obs.uninstall_registry()
    obs.install_timeline()
    with pytest.raises(TimelineError):
        obs.install_timeline()


def test_histogram_buckets_and_overflow():
    h = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
    for v in (5, 10, 11, 1000, 5000):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == [[10, 2], [100, 1], [1000, 1]]
    assert snap["overflow"] == 1
    assert snap["count"] == 5
    assert snap["sum"] == 5 + 10 + 11 + 1000 + 5000
    assert h.mean() == snap["sum"] / 5


def test_histogram_quantile_upper_bound_semantics():
    # Known distribution: 1..1000 uniformly, one observation each, on a
    # decade ladder.  The q-quantile is the upper bound of the first
    # bucket whose cumulative count reaches ceil(q * 1000).
    h = MetricsRegistry().histogram("lat", buckets=(10, 100, 500, 1000))
    for v in range(1, 1001):
        h.observe(v)
    assert h.quantile(0.0) == 10       # rank 1 lands in the first bucket
    assert h.quantile(0.005) == 10     # rank 5, cum 10 >= 5
    assert h.quantile(0.01) == 10      # rank 10 == bucket boundary
    assert h.quantile(0.011) == 100    # rank 11 spills to the next bucket
    assert h.quantile(0.5) == 500
    assert h.quantile(0.99) == 1000
    assert h.quantile(1.0) == 1000
    # Monotone in q for a fixed ladder.
    qs = [h.quantile(q / 20) for q in range(21)]
    assert qs == sorted(qs)


def test_histogram_quantile_point_mass_and_overflow():
    h = MetricsRegistry().histogram("lat", buckets=(10, 100))
    assert h.quantile(0.5) is None  # empty
    for _ in range(7):
        h.observe(42)
    assert h.quantile(0.0) == 100
    assert h.quantile(0.5) == 100
    assert h.quantile(1.0) == 100
    h.observe(10_000)  # overflow bucket has no finite upper bound
    assert h.quantile(1.0) == float("inf")
    assert h.quantile(0.5) == 100
    with pytest.raises(ObsError):
        h.quantile(1.5)
    with pytest.raises(ObsError):
        h.quantile(-0.1)


def test_snapshot_quantile_matches_live_and_survives_merge():
    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    ha = reg_a.histogram("lat", buckets=(10, 100, 1000))
    hb = reg_b.histogram("lat", buckets=(10, 100, 1000))
    for v in (1, 5, 50, 200):
        ha.observe(v)
    for v in (3, 70, 800, 900):
        hb.observe(v)
    merged = obs.merge_snapshots([reg_a.snapshot(), reg_b.snapshot()])
    hist = merged["histograms"]["lat"]
    for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
        reference = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
        for v in (1, 5, 50, 200, 3, 70, 800, 900):
            reference.observe(v)
        assert obs.snapshot_quantile(hist, q) == reference.quantile(q)
    assert obs.snapshot_quantile(ha.snapshot(), 0.5) == ha.quantile(0.5)


def test_histogram_bucket_mismatch_raises():
    reg = MetricsRegistry()
    reg.histogram("lat", buckets=(1, 2))
    with pytest.raises(ObsError):
        reg.histogram("lat", buckets=(1, 2, 3))
    with pytest.raises(ObsError):
        MetricsRegistry().histogram("bad", buckets=(5, 5))


def test_snapshot_stable_sorted_json():
    reg = MetricsRegistry()
    reg.counter("b.second").inc(2)
    reg.counter("a.first", z=1, a=2).inc()
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=LATENCY_BUCKETS_NS).observe(1)
    one, two = reg.to_json(), reg.to_json()
    assert one == two
    snap = json.loads(one)
    assert snap["schema"] == "repro-obs/1"
    assert snap["counters"]["a.first{a=2,z=1}"] == 1
    assert one.endswith("\n")


def test_host_copies_collector_publishes_gauges():
    HOST_COPIES.count(100)
    with obs.installed_registry() as reg:
        snap = reg.snapshot()
    assert snap["gauges"]["mem.host_copies.ops"] == HOST_COPIES.copies
    assert snap["gauges"]["mem.host_copies.bytes"] == HOST_COPIES.nbytes


def test_format_metrics_renders_tables():
    reg = MetricsRegistry()
    reg.counter("nic.tx.messages", node=0).inc(3)
    reg.gauge("gm.registered_pages", cpu="c").set(8)
    h = reg.histogram("lat", buckets=(10, 100))
    h.observe(5)
    h.observe(500)
    text = format_metrics(reg.snapshot())
    assert "metrics: counters" in text
    assert "nic.tx.messages{node=0}" in text and "3" in text
    assert "metrics: gauges" in text
    assert "histogram: lat" in text
    assert "overflow" in text
    assert format_metrics({"counters": {}, "gauges": {}, "histograms": {}}) \
        == "== metrics: empty =="


# -- timeline ----------------------------------------------------------------


def test_timeline_span_and_instant():
    tl = Timeline()
    span = tl.begin(1000, "nic", "tx.data", pid=1, tid=2, size=64)
    tl.end(3000, span, outcome="ok")
    tl.instant(500, "bench", "mark")
    trace = tl.to_chrome()
    assert validate_chrome_trace(trace) == []
    x, i = trace["traceEvents"]
    assert x["ph"] == "X" and x["ts"] == 1.0 and x["dur"] == 2.0
    assert x["pid"] == 1 and x["tid"] == 2
    assert x["args"] == {"size": 64, "outcome": "ok"}
    assert i["ph"] == "i" and i["s"] == "t" and i["name"] == "mark"
    assert tl.to_json() == tl.to_json()


def test_timeline_end_before_start_raises():
    tl = Timeline()
    span = tl.begin(1000, "c", "n")
    with pytest.raises(TimelineError):
        tl.end(999, span)


def test_timeline_bridges_tracer_records():
    tl = Timeline()
    tracer = Tracer()
    tl.attach(tracer, ["fault"])
    tracer.emit(10_000, "fault", "drop", {"link": "wire"})
    tracer.emit(10_000, "rpc", "timeout", {})  # not subscribed
    tracer.emit(20_000, "fault", "corrupt", "raw-payload")
    events = tl.to_chrome()["traceEvents"]
    assert [e["name"] for e in events] == ["drop", "corrupt"]
    assert events[0]["cat"] == "fault" and events[0]["ts"] == 10.0
    assert events[0]["args"] == {"link": "wire"}
    assert events[1]["args"] == {"payload": "raw-payload"}
    assert validate_chrome_trace(events) == []


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace(42) != []
    assert validate_chrome_trace({"nope": []}) != []
    bad = [
        "not-an-object",
        {"ph": "Z", "name": "x", "ts": 0},
        {"ph": "i", "ts": 0},                      # no name
        {"ph": "i", "name": "x"},                  # no ts
        {"ph": "X", "name": "x", "ts": 0},         # no dur
        {"ph": "X", "name": "x", "ts": 0, "dur": -1},
        {"ph": "i", "name": "x", "ts": 0, "s": "q"},
        {"ph": "i", "name": "x", "ts": 0, "pid": "zero"},
        {"ph": "i", "name": "x", "ts": 0, "args": []},
    ]
    problems = validate_chrome_trace(bad)
    assert len(problems) == len(bad)


def test_ambient_span_helpers():
    class FakeEnv:
        now = 5000

    env = FakeEnv()
    # disabled: all no-ops, span handle is None
    assert obs.span_begin(env, "c", "n") is None
    obs.span_end(env, None)
    obs.instant(env, "c", "n")
    assert not obs.timeline_enabled()
    tl = obs.install_timeline()
    try:
        span = obs.span_begin(env, "nic", "tx", pid=3)
        env.now = 7000
        obs.span_end(env, span, outcome="ok")
        obs.instant(env, "bench", "mark", detail=object())
        events = tl.to_chrome()["traceEvents"]
        assert events[0]["ts"] == 5.0 and events[0]["dur"] == 2.0
        assert isinstance(events[1]["args"]["detail"], str)  # coerced
    finally:
        obs.uninstall_timeline()


# -- Tracer record limit -----------------------------------------------------


def test_record_everything_default_is_unbounded_list():
    tracer = Tracer()
    buf = tracer.record_everything()
    for t in range(5):
        tracer.emit(t, "c", "l")
    assert isinstance(buf, list) and len(buf) == 5
    assert DEFAULT_RECORD_LIMIT == 1 << 16


def test_record_everything_limit_evicts_oldest():
    tracer = Tracer()
    buf = tracer.record_everything(limit=3)
    for t in range(5):
        tracer.emit(t, "c", "l")
    assert len(buf) == 3
    assert [r.time for r in buf] == [2, 3, 4]


def test_record_everything_rearm_converts_buffer():
    tracer = Tracer()
    tracer.record_everything()
    for t in range(4):
        tracer.emit(t, "c", "l")
    buf = tracer.record_everything(limit=2)  # re-read the return value
    assert [r.time for r in buf] == [2, 3]
    tracer.emit(4, "c", "l")
    assert [r.time for r in buf] == [3, 4]
    unbounded = tracer.record_everything()
    assert isinstance(unbounded, list) and [r.time for r in unbounded] == [3, 4]
    with pytest.raises(ValueError):
        tracer.record_everything(limit=0)


# -- instrumentation back-compat and determinism -----------------------------


def test_component_aliases_read_through_registry():
    with obs.installed_registry() as reg:
        env = Environment()
        comms, nodes = mpi_world(env, 2, api="gm")

        def program(comm):
            yield from comm.barrier()

        run_spmd(env, comms, program)
        nic = nodes[0].nic
        assert nic.messages_sent > 0
        assert nic.messages_sent == \
            reg.counter("nic.tx.messages", node=0).value
        snap = reg.snapshot()
        assert snap["counters"]["nic.tx.messages{node=0}"] == nic.messages_sent


def _run_observed_scenario():
    HOST_COPIES.reset()
    reg = obs.install_registry()
    tl = obs.install_timeline()
    try:
        env = Environment()
        comms, nodes = mpi_world(env, 3, api="mx")

        def program(comm):
            yield from comm.barrier()
            buf = comm.space.mmap(PAGE_SIZE)
            if comm.rank == 0:
                comm.space.write_bytes(buf, b"x" * 64)
            yield from comm.bcast(0, buf, 64)
            total = yield from comm.allreduce_ints([comm.rank], op="sum")
            return total

        results = run_spmd(env, comms, program)
        assert all(r == [3] for r in results)
        return reg.to_json(), tl.to_json()
    finally:
        obs.uninstall_registry()
        obs.uninstall_timeline()


def test_same_seed_snapshots_are_byte_identical():
    first = _run_observed_scenario()
    second = _run_observed_scenario()
    assert first[0] == second[0]  # metrics snapshot
    assert first[1] == second[1]  # timeline


# -- bench runner flags ------------------------------------------------------


def test_runner_metrics_and_timeline_flags(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    trace_path = tmp_path / "t.trace.json"
    assert bench_main(["fig4a", "--metrics", str(metrics),
                       "--timeline", str(trace_path)]) == 0
    captured = capsys.readouterr()
    assert "Physical Address" in captured.out
    assert "metrics: counters" in captured.err  # table goes to stderr
    snap = json.loads(metrics.read_text())
    assert snap["schema"] == "repro-obs/1"
    assert any(k.startswith("nic.tx.messages") for k in snap["counters"])
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    assert any(e["name"] == "figure:fig4a" for e in events)
    assert any(e["ph"] == "X" for e in events)  # real spans recorded
    assert obs.active_registry() is None  # runner uninstalled cleanly
    assert obs.active_timeline() is None


def test_runner_stdout_identical_with_observability(tmp_path, capsys):
    assert bench_main(["fig4a"]) == 0
    plain = capsys.readouterr().out
    assert bench_main(["fig4a", "--metrics", str(tmp_path / "m.json")]) == 0
    assert capsys.readouterr().out == plain


def test_runner_rejects_parallel_observability(tmp_path, capsys):
    code = bench_main(["fig4a", "--metrics", str(tmp_path / "m.json"),
                       "--parallel", "2"])
    assert code == 2
    assert "--parallel 1" in capsys.readouterr().err
