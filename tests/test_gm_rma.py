"""Tests for GM remote memory access (gm_directed_send / RMA windows)."""

import pytest

from repro.cluster import node_pair
from repro.errors import GMError, NicError
from repro.gm import GmEventKind, GmPort
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


@pytest.fixture
def rig():
    env = Environment()
    a, b = node_pair(env)
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    return env, (a, sa, pa), (b, sb, pb)


def run(env, gen):
    return env.run(until=env.process(gen))


def setup_window(env, sb, pb, pages=4, window_id=77):
    vb = sb.mmap(pages * PAGE_SIZE)

    def script(env):
        yield from pb.register(vb, pages * PAGE_SIZE)
        yield from pb.rma_window(vb, pages * PAGE_SIZE, window_id)

    run(env, script(env))
    return vb


def test_directed_send_deposits_silently(rig):
    env, (a, sa, pa), (b, sb, pb) = rig
    vb = setup_window(env, sb, pb)
    va = sa.mmap(PAGE_SIZE)
    sa.write_bytes(va, b"rma-put-data")

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.send_directed(1, 1, va, 12, window_id=77)
        event = yield from pa.receive_event()  # sender-side completion
        return event

    event = run(env, sender(env))
    assert event.kind is GmEventKind.SENT
    env.run(until=env.now + us(100))
    assert sb.read_bytes(vb, 12) == b"rma-put-data"
    # silent at the target: no event in the receiver's queue
    assert len(pb.events) == 0


def test_directed_send_at_offset(rig):
    env, (a, sa, pa), (b, sb, pb) = rig
    vb = setup_window(env, sb, pb)
    va = sa.mmap(PAGE_SIZE)
    sa.write_bytes(va, b"XY")

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.send_directed(1, 1, va, 2, window_id=77,
                                    remote_offset=PAGE_SIZE + 100)

    run(env, sender(env))
    env.run(until=env.now + us(100))
    assert sb.read_bytes(vb + PAGE_SIZE + 100, 2) == b"XY"
    assert sb.read_bytes(vb, 2) == bytes(2)  # base untouched


def test_window_survives_multiple_puts(rig):
    env, (a, sa, pa), (b, sb, pb) = rig
    vb = setup_window(env, sb, pb)
    va = sa.mmap(PAGE_SIZE)

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        for i in range(3):
            sa.write_bytes(va, bytes([i + 1]) * 8)
            yield from pa.send_directed(1, 1, va, 8, window_id=77,
                                        remote_offset=i * 16)
            # reap the SENT event before reusing the buffer: the NIC
            # gathers at DMA time, so overwriting earlier races the put
            yield from pa.receive_event()

    run(env, sender(env))
    env.run(until=env.now + us(200))
    for i in range(3):
        assert sb.read_bytes(vb + i * 16, 8) == bytes([i + 1]) * 8


def test_put_past_window_end_raises(rig):
    env, (a, sa, pa), (b, sb, pb) = rig
    setup_window(env, sb, pb, pages=1)
    va = sa.mmap(PAGE_SIZE)

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.send_directed(1, 1, va, 200, window_id=77,
                                    remote_offset=PAGE_SIZE - 100)

    env.process(sender(env))
    with pytest.raises(NicError, match="past the window end"):
        env.run()


def test_unregistered_window_or_source_raises(rig):
    env, (a, sa, pa), (b, sb, pb) = rig
    vb = sb.mmap(PAGE_SIZE)
    with pytest.raises(GMError, match="not registered"):
        run(env, pb.rma_window(vb, PAGE_SIZE, 5))
    va = sa.mmap(PAGE_SIZE)
    with pytest.raises(GMError, match="unregistered"):
        run(env, pa.send_directed(1, 1, va, 8, window_id=5))


def test_directed_send_skips_receiver_host_entirely():
    """RMA latency has no receiver host_event/recv_post component —
    sender-observed completion is cheaper than a matched send+event."""
    env = Environment()
    a, b = node_pair(env)
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    vb = sb.mmap(PAGE_SIZE)
    va = sa.mmap(PAGE_SIZE)

    def setup(env):
        yield from pb.register(vb, PAGE_SIZE)
        yield from pb.rma_window(vb, PAGE_SIZE, 9)
        yield from pa.register(va, PAGE_SIZE)

    run(env, setup(env))
    b_cpu_before = b.cpu.resource.busy_time

    def put(env):
        yield from pa.send_directed(1, 1, va, 64, window_id=9)
        yield from pa.receive_event()

    run(env, put(env))
    env.run()
    assert b.cpu.resource.busy_time == b_cpu_before  # zero receiver CPU
