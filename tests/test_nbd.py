"""Tests for the NBD extension (repro.nbd)."""

import pytest

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.errors import Einval
from repro.nbd import NbdDevice, NbdServer
from repro.sim import Environment
from repro.units import PAGE_SIZE

BACKENDS = ["mx", "gm"]


def build(api, blocks=64):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = NbdServer(server_node, 3, api=api, device_blocks=blocks)
    env.run(until=server.start())
    if api == "mx":
        channel = MxKernelChannel(client_node, 4)
    else:
        channel = GmKernelChannel(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, blocks)
    return env, client_node, server, dev


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.mark.parametrize("api", BACKENDS)
def test_write_flush_read_roundtrip(api):
    env, node, server, dev = build(api)
    space = node.new_process_space()
    payload = bytes((i * 3) % 256 for i in range(3 * PAGE_SIZE))
    va = space.mmap(len(payload))
    space.write_bytes(va, payload)

    def script(env):
        yield from dev.write(space, va, 2 * PAGE_SIZE, len(payload))
        yield from dev.flush()

    run(env, script(env))
    # Server-side device content reflects the write after flush.
    stored = server.fs.read_raw(server.device_inode, 2 * PAGE_SIZE, len(payload))
    assert stored == payload
    # Fresh client (cold cache) reads it back over the wire.
    env2, node2, _, dev2 = build(api)
    # reuse original: drop cache and reread
    node.pagecache.invalidate_inode(dev._cache_key)
    out = space.mmap(len(payload))

    def reread(env):
        yield from dev.read(space, out, 2 * PAGE_SIZE, len(payload))

    run(env, reread(env))
    assert space.read_bytes(out, len(payload)) == payload


@pytest.mark.parametrize("api", BACKENDS)
def test_block_cache_absorbs_rereads(api):
    env, node, server, dev = build(api)
    space = node.new_process_space()
    va = space.mmap(4 * PAGE_SIZE)

    def script(env):
        yield from dev.read(space, va, 0, 4 * PAGE_SIZE)

    run(env, script(env))
    assert dev.blocks_read == 4
    run(env, script(env))
    assert dev.blocks_read == 4  # second read fully cached


@pytest.mark.parametrize("api", BACKENDS)
def test_partial_block_write_preserves_rest(api):
    env, node, server, dev = build(api)
    space = node.new_process_space()
    base = bytes(range(256)) * 16
    va = space.mmap(PAGE_SIZE)
    space.write_bytes(va, base)

    def prime(env):
        yield from dev.write(space, va, 0, PAGE_SIZE)
        yield from dev.flush()

    run(env, prime(env))
    node.pagecache.invalidate_inode(dev._cache_key)
    patch = space.mmap(PAGE_SIZE)
    space.write_bytes(patch, b"PATCH")

    def patch_write(env):
        yield from dev.write(space, patch, 300, 5)  # forces read-modify-write
        yield from dev.flush()

    run(env, patch_write(env))
    stored = server.fs.read_raw(server.device_inode, 0, PAGE_SIZE)
    assert stored == base[:300] + b"PATCH" + base[305:]


def test_out_of_range_access_raises():
    env, node, server, dev = build("mx", blocks=4)
    space = node.new_process_space()
    va = space.mmap(PAGE_SIZE)
    with pytest.raises(Einval):
        run(env, dev.read(space, va, 3 * PAGE_SIZE, 2 * PAGE_SIZE))


def test_nbd_mirrors_buffered_orfs_ratio():
    """The paper's section-6 prediction: NBD should benefit from MX like
    buffered ORFS does (it 'manipulates the page-cache in a similar
    way')."""

    def throughput(api):
        env, node, server, dev = build(api, blocks=256)
        space = node.new_process_space()
        size = 128 * PAGE_SIZE
        va = space.mmap(size)
        t0 = env.now

        def script(env):
            yield from dev.read(space, va, 0, size)

        run(env, script(env))
        return size / (env.now - t0)

    mx = throughput("mx")
    gm = throughput("gm")
    assert 1.2 < mx / gm < 1.6  # same band as ORFS buffered (fig 7(b))
