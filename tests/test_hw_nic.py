"""Unit tests for the NIC transport pipeline (repro.hw.nic)."""

import pytest

from repro.errors import PortError
from repro.hw import Link, Message, Nic, PostedReceive, SendCompletion, SendDescriptor
from repro.hw.nic import MsgKind, ReceiveCompletion
from repro.hw.params import MX_USER_COSTS, NicParams, PCI_XD
from repro.mem import PhysicalMemory
from repro.mem.layout import PhysSegment
from repro.sim import Environment
from repro.units import MB, PAGE_SIZE, bandwidth_mb_s, us


def make_pair(link_params=PCI_XD):
    """Two NICs joined by a direct link; returns (env, nic_a, nic_b, phys_a, phys_b)."""
    env = Environment()
    phys_a = PhysicalMemory(1024)
    phys_b = PhysicalMemory(1024)
    params = NicParams(link=link_params)
    nic_a = Nic(env, params, phys_a, node_id=0, name="nicA")
    nic_b = Nic(env, params, phys_b, node_id=1, name="nicB")
    link = Link(env, link_params)
    nic_a.attach_link(link, "a")
    nic_b.attach_link(link, "b")
    return env, nic_a, nic_b, phys_a, phys_b


def test_open_port_twice_raises():
    env, nic_a, *_ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    with pytest.raises(PortError):
        nic_a.open_port(1, MX_USER_COSTS)


def test_eager_message_delivers_data():
    env, nic_a, nic_b, phys_a, phys_b = make_pair()
    pa = nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)

    src = phys_a.alloc()
    src.write(0, b"payload-bytes")
    dst = phys_b.alloc()

    recv_done = env.event()
    pb.post_receive(
        PostedReceive(
            match=7,
            capacity=PAGE_SIZE,
            dest_sg=[PhysSegment(dst.phys_addr, PAGE_SIZE)],
            completion=recv_done,
        )
    )
    send_done = nic_a.submit(
        SendDescriptor(
            dst_nic=1,
            dst_port=1,
            match=7,
            size=13,
            src_port=1,
            sg=[PhysSegment(src.phys_addr, 13)],
            fw_send_ns=MX_USER_COSTS.fw_send_ns,
        )
    )
    completion = env.run(until=recv_done)
    assert isinstance(completion, ReceiveCompletion)
    assert completion.size == 13
    assert completion.match == 7
    assert dst.read(0, 13) == b"payload-bytes"
    assert send_done.processed and isinstance(send_done.value, SendCompletion)


def test_unexpected_message_matched_by_late_receive():
    env, nic_a, nic_b, phys_a, phys_b = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)

    nic_a.submit(
        SendDescriptor(
            dst_nic=1, dst_port=1, match=3, size=5, src_port=1, data=b"hello",
            fw_send_ns=500,
        )
    )
    env.run(until=us(100))
    assert len(pb.unexpected) == 1

    recv_done = env.event()
    pb.post_receive(
        PostedReceive(match=3, capacity=64, keep_data=True, completion=recv_done)
    )
    completion = env.run(until=recv_done)
    assert completion.data == b"hello"
    assert not pb.unexpected


def test_match_none_accepts_any_tag():
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    recv_done = env.event()
    pb.post_receive(
        PostedReceive(match=None, capacity=64, keep_data=True, completion=recv_done)
    )
    nic_a.submit(
        SendDescriptor(dst_nic=1, dst_port=1, match=99, size=2, src_port=1,
                       data=b"ok", fw_send_ns=500)
    )
    completion = env.run(until=recv_done)
    assert completion.match == 99


def test_mismatched_tags_do_not_cross():
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    done_5 = env.event()
    pb.post_receive(PostedReceive(match=5, capacity=64, keep_data=True, completion=done_5))
    nic_a.submit(
        SendDescriptor(dst_nic=1, dst_port=1, match=6, size=1, src_port=1,
                       data=b"x", fw_send_ns=500)
    )
    env.run(until=us(200))
    assert not done_5.triggered
    assert len(pb.unexpected) == 1


def test_truncation_flagged_when_buffer_too_small():
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    recv_done = env.event()
    pb.post_receive(
        PostedReceive(match=1, capacity=4, keep_data=True, completion=recv_done)
    )
    nic_a.submit(
        SendDescriptor(dst_nic=1, dst_port=1, match=1, size=10, src_port=1,
                       data=b"0123456789", fw_send_ns=500)
    )
    completion = env.run(until=recv_done)
    assert completion.truncated
    assert completion.size == 4
    assert completion.data == b"0123"


def test_message_ordering_preserved_fifo():
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    received = []

    def on_completion(c):
        received.append(c.data)

    pb.completion_sink = on_completion
    for i in range(5):
        pb.post_receive(PostedReceive(match=None, capacity=64, keep_data=True))
    for i in range(5):
        nic_a.submit(
            SendDescriptor(dst_nic=1, dst_port=1, match=i, size=1, src_port=1,
                           data=bytes([i]), fw_send_ns=500)
        )
    env.run(until=us(500))
    assert received == [bytes([i]) for i in range(5)]


def test_rendezvous_waits_for_posted_receive():
    env, nic_a, nic_b, phys_a, phys_b = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)

    payload = bytes(range(256)) * 256  # 64 kB
    send_done = nic_a.submit(
        SendDescriptor(
            dst_nic=1, dst_port=1, match=11, size=len(payload), src_port=1,
            data=payload, rendezvous=True, large_setup_ns=us(15), fw_send_ns=500,
        )
    )
    env.run(until=us(500))
    # No receive posted: data must not have moved yet.
    assert not send_done.triggered
    assert nic_a.messages_sent == 0

    dst_frames = [phys_b.alloc() for _ in range(16)]
    sg = [PhysSegment(f.phys_addr, PAGE_SIZE) for f in dst_frames]
    recv_done = env.event()
    pb.post_receive(
        PostedReceive(match=11, capacity=len(payload), dest_sg=sg, completion=recv_done)
    )
    completion = env.run(until=recv_done)
    assert completion.size == len(payload)
    got = b"".join(f.read(0, PAGE_SIZE) for f in dst_frames)
    assert got == payload


def test_rendezvous_with_preposted_receive():
    env, nic_a, nic_b, _, phys_b = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    recv_done = env.event()
    pb.post_receive(
        PostedReceive(match=2, capacity=200_000, keep_data=True, completion=recv_done)
    )
    payload = b"z" * 100_000
    nic_a.submit(
        SendDescriptor(dst_nic=1, dst_port=1, match=2, size=len(payload),
                       src_port=1, data=payload, rendezvous=True, fw_send_ns=500)
    )
    completion = env.run(until=recv_done)
    assert completion.data == payload


def test_large_transfer_bandwidth_close_to_link_rate():
    """A 1 MB eager transfer must land near the 250 MB/s PCI-XD rate."""
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    recv_done = env.event()
    size = 2**20
    pb.post_receive(PostedReceive(match=1, capacity=size, completion=recv_done))
    start = env.now
    nic_a.submit(
        SendDescriptor(dst_nic=1, dst_port=1, match=1, size=size, src_port=1,
                       fw_send_ns=500)
    )
    env.run(until=recv_done)
    bw = bandwidth_mb_s(size, env.now - start)
    assert 230 < bw < 250


def test_streaming_throughput_is_link_bound():
    """Many back-to-back sends pipeline: total time ~ N * wire time."""
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    n, size = 20, 64 * 1024
    done = []
    pb.completion_sink = lambda c: done.append(env.now)
    for _ in range(n):
        pb.post_receive(PostedReceive(match=None, capacity=size))
    for _ in range(n):
        nic_a.submit(SendDescriptor(dst_nic=1, dst_port=1, match=0, size=size,
                                    src_port=1, fw_send_ns=500))
    env.run()
    assert len(done) == n
    bw = bandwidth_mb_s(n * size, done[-1])
    assert bw > 0.9 * 250  # pipelining keeps the wire saturated


def test_sends_to_closed_port_are_dropped():
    env, nic_a, nic_b, _, _ = make_pair()
    nic_a.open_port(1, MX_USER_COSTS)
    nic_a.submit(SendDescriptor(dst_nic=1, dst_port=9, match=0, size=8,
                                src_port=1, data=b"lostdata", fw_send_ns=500))
    env.run()
    assert nic_b.messages_received == 0


def test_full_duplex_directions_do_not_contend():
    """Simultaneous opposite transfers take one-transfer time, not two."""
    env, nic_a, nic_b, _, _ = make_pair()
    pa = nic_a.open_port(1, MX_USER_COSTS)
    pb = nic_b.open_port(1, MX_USER_COSTS)
    size = 2**20
    done_a, done_b = env.event(), env.event()
    pa.post_receive(PostedReceive(match=0, capacity=size, completion=done_a))
    pb.post_receive(PostedReceive(match=0, capacity=size, completion=done_b))
    nic_a.submit(SendDescriptor(dst_nic=1, dst_port=1, match=0, size=size,
                                src_port=1, fw_send_ns=500))
    nic_b.submit(SendDescriptor(dst_nic=0, dst_port=1, match=0, size=size,
                                src_port=1, fw_send_ns=500))
    env.run(until=env.all_of([done_a, done_b]))
    one_way_wire = size / (250 * MB) * 1e9
    assert env.now < 1.2 * one_way_wire  # not 2x: directions are independent
