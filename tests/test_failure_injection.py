"""Failure injection: prove the coherence machinery is load-bearing.

The paper's section 2.2.2 hazard, demonstrated both ways: with VMA SPY
the registration cache stays coherent; with the spy disabled, the
classic munmap-and-reuse pattern silently corrupts transfers (data goes
to/comes from the *old* physical pages).
"""

import pytest

from repro.cluster import node_pair
from repro.gm.kernel import GmKernelPort
from repro.gmkrc import Gmkrc
from repro.mem.layout import sg_from_frames
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


def build(coherent: bool):
    env = Environment()
    a, b = node_pair(env)
    pa, pb = GmKernelPort(a, 2), GmKernelPort(b, 2)
    cache = Gmkrc(pa, a.vmaspy, coherent=coherent)
    space = a.new_process_space()
    dst = b.kspace.kmalloc(PAGE_SIZE)
    return env, a, b, pa, pb, cache, space, dst


def remap_and_send(env, a, b, pa, pb, cache, space, dst):
    """The dangerous pattern: register, munmap, re-mmap at the same
    address with new contents, send through the cache again.  Returns
    the bytes the receiver observed for the second send."""
    received = []

    def receiver(env):
        for _ in range(2):
            yield from pb.provide_receive_buffer_physical(
                sg_from_frames(dst.frames, 0, PAGE_SIZE))
            event = yield from pb.receive_event(blocking=True)
            received.append(b.kspace.read_bytes(dst.vaddr, event.size))

    def sender(env):
        vaddr = space.mmap(PAGE_SIZE)
        space.write_bytes(vaddr, b"OLD-CONTENTS")
        key, entry = yield from cache.acquire(space, vaddr, PAGE_SIZE)
        yield from pa.send_registered(1, 2, key, 12)
        cache.release(entry)
        yield env.timeout(us(100))

        space.munmap(vaddr, PAGE_SIZE)
        vaddr2 = space.mmap(PAGE_SIZE)
        assert vaddr2 == vaddr  # first-fit reuses the address
        space.write_bytes(vaddr2, b"NEW-CONTENTS")
        key2, entry2 = yield from cache.acquire(space, vaddr2, PAGE_SIZE)
        yield from pa.send_registered(1, 2, key2, 12)
        cache.release(entry2)

    env.process(sender(env))
    env.run(until=env.process(receiver(env)))
    env.run()
    return received


def test_coherent_cache_survives_address_reuse():
    env, a, b, pa, pb, cache, space, dst = build(coherent=True)
    received = remap_and_send(env, a, b, pa, pb, cache, space, dst)
    assert received == [b"OLD-CONTENTS", b"NEW-CONTENTS"]
    assert cache.invalidations == 1
    assert cache.misses == 2  # the munmap forced a re-registration


def test_incoherent_cache_silently_sends_stale_data():
    """With the spy off, the second send reads the freed frame: the
    receiver gets OLD bytes while the application wrote NEW ones —
    exactly the corruption the paper's coherence design prevents."""
    env, a, b, pa, pb, cache, space, dst = build(coherent=False)
    received = remap_and_send(env, a, b, pa, pb, cache, space, dst)
    assert received[0] == b"OLD-CONTENTS"
    assert received[1] != b"NEW-CONTENTS", "expected stale-translation corruption"
    assert cache.invalidations == 0
    assert cache.hits == 1  # the poisoned hit


def test_incoherent_cache_poisons_receives_too():
    """Stale receive translations scatter incoming data into freed
    frames: the application's new buffer never sees it."""
    env = Environment()
    a, b = node_pair(env)
    pa, pb = GmKernelPort(a, 2), GmKernelPort(b, 2)
    cache = Gmkrc(pb, b.vmaspy, coherent=False)
    space = b.new_process_space()
    src = a.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(src.vaddr, b"PAYLOAD")

    def receiver(env):
        vaddr = space.mmap(PAGE_SIZE)
        key, entry = yield from cache.acquire(space, vaddr, PAGE_SIZE)
        cache.release(entry)
        # remap before the receive is posted: the cached translation
        # now points at a freed frame
        space.munmap(vaddr, PAGE_SIZE)
        vaddr2 = space.mmap(PAGE_SIZE)
        key2, entry2 = yield from cache.acquire(space, vaddr2, PAGE_SIZE)
        yield from pb.provide_receive_buffer_registered(key2, PAGE_SIZE)
        event = yield from pb.receive_event(blocking=True)
        cache.release(entry2)
        return space.read_bytes(vaddr2, 7)

    def sender(env):
        yield env.timeout(us(50))
        yield from pa.send_physical(1, 2, sg_from_frames(src.frames, 0, 7))

    env.process(sender(env))
    got = env.run(until=env.process(receiver(env)))
    assert got != b"PAYLOAD", "expected the data to vanish into the stale frame"
