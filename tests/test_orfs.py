"""Integration tests: ORFS client + ORFA server end-to-end over GM and MX."""

import pytest

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.errors import Enoent
from repro.kernel import MemFs, OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE

SERVER_PORT = 3
CLIENT_PORT = 4

BACKENDS = ["mx", "gm"]


def build(api):
    """Client node + server node with ORFS mounted at /orfs."""
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, SERVER_PORT, api=api)
    setup = server.start()
    env.run(until=setup)
    if api == "mx":
        channel = MxKernelChannel(client_node, CLIENT_PORT)
    else:
        channel = GmKernelChannel(client_node, CLIENT_PORT)
    client = mount_orfs(client_node, channel, (server_node.node_id, SERVER_PORT))
    return env, client_node, server, client


def run(env, gen):
    return env.run(until=env.process(gen))


def vfs_write(env, node, path, data, direct=False):
    flags = OpenFlags.RDWR | OpenFlags.CREAT
    if direct:
        flags |= OpenFlags.DIRECT

    def script(env):
        fd = yield from node.vfs.open(path, flags)
        space = node.new_process_space()
        vaddr = space.mmap(max(len(data), PAGE_SIZE))
        space.write_bytes(vaddr, data)
        n = yield from node.vfs.write(fd, UserBuffer(space, vaddr, len(data)))
        yield from node.vfs.close(fd)
        return n

    return run(env, script(env))


def vfs_read(env, node, path, length, direct=False, offset=0):
    flags = OpenFlags.RDONLY | (OpenFlags.DIRECT if direct else OpenFlags.RDONLY)

    def script(env):
        fd = yield from node.vfs.open(path, flags)
        node.vfs.seek(fd, offset)
        space = node.new_process_space()
        vaddr = space.mmap(max(length, PAGE_SIZE))
        n = yield from node.vfs.read(fd, UserBuffer(space, vaddr, length))
        data = space.read_bytes(vaddr, n)
        yield from node.vfs.close(fd)
        return data

    return run(env, script(env))


@pytest.mark.parametrize("api", BACKENDS)
def test_create_write_read_roundtrip(api):
    env, node, server, client = build(api)
    payload = bytes(range(256)) * 40  # 10240 B: crosses pages
    assert vfs_write(env, node, "/orfs/f", payload) == len(payload)
    assert vfs_read(env, node, "/orfs/f", len(payload)) == payload


@pytest.mark.parametrize("api", BACKENDS)
def test_buffered_read_populates_page_cache(api):
    env, node, server, client = build(api)
    payload = b"c" * (4 * PAGE_SIZE)
    vfs_write(env, node, "/orfs/f", payload)
    before = len(node.pagecache)
    vfs_read(env, node, "/orfs/f", len(payload))
    assert len(node.pagecache) >= 4
    # Second read is served locally: no new server requests.
    served = server.requests_served
    vfs_read(env, node, "/orfs/f", len(payload))
    assert server.requests_served == served


@pytest.mark.parametrize("api", BACKENDS)
def test_direct_read_bypasses_page_cache(api):
    env, node, server, client = build(api)
    payload = bytes((7 * i) % 256 for i in range(64 * 1024))
    vfs_write(env, node, "/orfs/f", payload)
    node.pagecache.invalidate_inode(client.root_inode())
    # Invalidate whatever the write populated, then read O_DIRECT.
    for key in list(range(10)):
        node.pagecache.invalidate_inode(key)
    cached_before = len(node.pagecache)
    got = vfs_read(env, node, "/orfs/f", len(payload), direct=True)
    assert got == payload
    assert len(node.pagecache) == cached_before  # nothing cached


@pytest.mark.parametrize("api", BACKENDS)
def test_metadata_operations(api):
    env, node, server, client = build(api)

    def script(env):
        yield from node.vfs.mkdir("/orfs/dir")
        fd = yield from node.vfs.open("/orfs/dir/a",
                                      OpenFlags.RDWR | OpenFlags.CREAT)
        yield from node.vfs.close(fd)
        fd = yield from node.vfs.open("/orfs/dir/b",
                                      OpenFlags.RDWR | OpenFlags.CREAT)
        yield from node.vfs.close(fd)
        names = yield from node.vfs.readdir("/orfs/dir")
        return names

    assert run(env, script(env)) == ["a", "b"]


@pytest.mark.parametrize("api", BACKENDS)
def test_stat_and_unlink(api):
    env, node, server, client = build(api)
    vfs_write(env, node, "/orfs/f", b"x" * 1000)
    attrs = run(env, node.vfs.stat("/orfs/f"))
    assert attrs.size == 1000
    run(env, node.vfs.unlink("/orfs/f"))
    with pytest.raises(Enoent):
        run(env, node.vfs.open("/orfs/f"))


@pytest.mark.parametrize("api", BACKENDS)
def test_open_missing_raises_enoent(api):
    env, node, server, client = build(api)
    with pytest.raises(Enoent):
        run(env, node.vfs.open("/orfs/ghost"))


@pytest.mark.slow
@pytest.mark.parametrize("api", BACKENDS)
def test_large_direct_read_is_chunked_but_complete(api):
    env, node, server, client = build(api)
    payload = bytes((i // 7) % 256 for i in range(3 * 1024 * 1024))
    vfs_write(env, node, "/orfs/big", payload)
    got = vfs_read(env, node, "/orfs/big", len(payload), direct=True)
    assert got == payload


@pytest.mark.parametrize("api", BACKENDS)
def test_dentry_cache_avoids_repeat_lookups(api):
    """The VFS dcache win of in-kernel clients (paper section 3.1)."""
    env, node, server, client = build(api)
    vfs_write(env, node, "/orfs/f", b"data")
    run(env, node.vfs.stat("/orfs/f"))
    served = server.requests_served
    run(env, node.vfs.stat("/orfs/f"))
    assert server.requests_served == served  # resolved from the dcache


def test_orfs_mx_buffered_faster_than_gm():
    """The headline of figure 7(b): buffered access over MX beats GM."""

    def plateau(api):
        env, node, server, client = build(api)
        payload = b"z" * (64 * PAGE_SIZE)
        vfs_write(env, node, "/orfs/f", payload)
        node.pagecache.invalidate_inode(2)
        for k in range(10):
            node.pagecache.invalidate_inode(k)
        t0 = env.now
        vfs_read(env, node, "/orfs/f", len(payload))
        return len(payload) / (env.now - t0)  # bytes per ns

    mx = plateau("mx")
    gm = plateau("gm")
    assert mx > gm * 1.2  # precise 1.4x ratio asserted in test_paper_claims
