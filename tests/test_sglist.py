"""Tests for the scatter/gather payload plumbing (repro.mem.sglist).

Two pillars:

* Property-style equivalence — any gather/scatter through
  :class:`PayloadRef` must move exactly the same bytes as the naive
  ``bytes``-everywhere path, across odd offsets, page-straddling spans,
  empty segments and deposit skips, in both host modes.
* Figure identity — the zero-copy plumbing must not perturb a single
  byte of the pinned benchmark output (model costs are charged, host
  copies are not).
"""

import zlib
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import PayloadRef, PhysicalMemory
from repro.mem import sglist
from repro.sim.trace import Tracer
from repro.units import PAGE_SIZE, pages_spanned


@dataclass
class Seg:
    """Minimal duck-typed physical segment (what write_phys_sg needs)."""

    phys_addr: int
    length: int


def _chunked(data: bytes, cuts) -> PayloadRef:
    """Split ``data`` at arbitrary cut points into a PayloadRef."""
    n = len(data)
    bounds = sorted({0, n, *(c % (n + 1) for c in cuts)})
    view = memoryview(data)
    return PayloadRef.from_chunks(
        view[a:b] for a, b in zip(bounds, bounds[1:])
    )


# -- pure PayloadRef semantics ------------------------------------------------


@given(
    data=st.binary(max_size=2048),
    cuts=st.lists(st.integers(0, 2048), max_size=8),
    start=st.integers(0, 2200),
    length=st.integers(0, 2200),
)
@settings(max_examples=80, deadline=None)
def test_slice_matches_bytes_slicing(data, cuts, start, length):
    ref = _chunked(data, cuts)
    assert ref.length == len(data)
    assert ref.tobytes() == data
    assert ref.slice(start, length).tobytes() == data[start:start + length]
    assert ref.slice(start).tobytes() == data[start:]
    assert ref[start:start + length] == data[start:start + length]


@given(
    data=st.binary(max_size=1024),
    cuts_a=st.lists(st.integers(0, 1024), max_size=6),
    cuts_b=st.lists(st.integers(0, 1024), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_equality_is_content_based_across_chunkings(data, cuts_a, cuts_b):
    a = _chunked(data, cuts_a)
    b = _chunked(data, cuts_b)
    assert a == b
    assert a == data
    assert a.checksum() == b.checksum() == zlib.crc32(data) & 0xFFFFFFFF
    if data:
        assert a != data[:-1] + bytes([data[-1] ^ 1])


def test_concat_splices_without_copying():
    parts = [b"abc", b"", b"defgh", b"!"]
    ref = PayloadRef.concat(PayloadRef.from_bytes(p) for p in parts)
    assert ref == b"abcdefgh!"
    assert len(ref) == 9
    assert ref[3] == ord("d") and ref[-1] == ord("!")
    assert bool(PayloadRef.empty()) is False
    assert bytes(ref) == b"abcdefgh!"


# -- scatter/gather through physical memory -----------------------------------


@given(
    data=st.binary(min_size=1, max_size=3 * PAGE_SIZE),
    src_off=st.integers(0, PAGE_SIZE - 1),
    dst_off=st.integers(0, PAGE_SIZE - 1),
    cuts=st.lists(st.integers(0, 3 * PAGE_SIZE), max_size=6),
    skip=st.integers(0, 2 * PAGE_SIZE),
    legacy=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_scatter_gather_matches_naive_bytes_path(
    data, src_off, dst_off, cuts, skip, legacy
):
    """Gather → scatter via PayloadRef lands the same bytes the old
    materialize-everything path did, for any segment cuts, offsets and
    deposit skip — in both host modes."""
    phys = PhysicalMemory(64)
    n = len(data)
    src_frames = [phys.alloc() for _ in range(pages_spanned(src_off, n))]
    src_base = src_frames[0].phys_addr + src_off
    phys.write_phys(src_base, data)  # the naive reference write

    bounds = sorted({0, n, *(c % (n + 1) for c in cuts)})
    segs = [Seg(src_base + a, b - a) for a, b in zip(bounds, bounds[1:])]
    segs.insert(len(segs) // 2, Seg(src_base, 0))  # empty segment is a no-op

    sglist.set_materialize(legacy)
    try:
        payload = PayloadRef.from_phys(phys, segs)
        assert payload.length == n
        assert payload == data

        dst_frames = [
            phys.alloc() for _ in range(pages_spanned(dst_off, skip + n))
        ]
        dst_base = dst_frames[0].phys_addr + dst_off
        written = phys.write_phys_sg([Seg(dst_base, skip + n)], payload,
                                     skip=skip)
        assert written == n
        assert phys.read_phys(dst_base + skip, n) == data
    finally:
        sglist.set_materialize(False)


def test_inflight_payload_survives_frame_recycling():
    """COW: a view taken at gather time keeps its bytes even after the
    source frame (a recycled tx buffer, a receive-ring slot) is
    rewritten."""
    phys = PhysicalMemory(4)
    frame = phys.alloc()
    frame.write(0, b"old payload!")
    ref = PayloadRef.from_chunks([frame.view(0, 12)])
    frame.write(0, b"NEW PAYLOAD?")
    assert ref.tobytes() == b"old payload!"
    assert phys.read_phys(frame.phys_addr, 12) == b"NEW PAYLOAD?"


def test_materialize_mode_counts_the_copies_it_performs():
    """Legacy mode really performs (and counts) the gather-join and the
    per-segment casts; zero-copy mode pays only the final deposit."""
    data = bytes(range(256)) * 16  # one page
    counts = {}
    for legacy in (False, True):
        phys = PhysicalMemory(8)
        src = phys.alloc()
        dst = phys.alloc()
        phys.write_phys(src.phys_addr, data)
        sglist.set_materialize(legacy)
        sglist.HOST_COPIES.reset()
        try:
            payload = PayloadRef.from_phys(
                phys, [Seg(src.phys_addr, len(data))]
            )
            phys.write_phys_sg([Seg(dst.phys_addr, len(data))], payload)
        finally:
            sglist.set_materialize(False)
        counts[legacy] = sglist.HOST_COPIES.snapshot()["nbytes"]
        sglist.HOST_COPIES.reset()
        assert phys.read_phys(dst.phys_addr, len(data)) == data
    assert counts[False] == len(data)  # the deposit only
    assert counts[True] >= 2 * counts[False]  # + join + cast


def test_tracer_wants_gates_expensive_payloads():
    tracer = Tracer()
    assert not tracer.wants("nic")
    tracer.subscribe("nic", lambda rec: None)
    assert tracer.wants("nic")
    assert not tracer.wants("rpc")
    tracer.record_everything()
    assert tracer.wants("rpc")  # record-all observes every category


# -- figure identity ----------------------------------------------------------


@pytest.mark.slow
def test_bench_all_is_byte_identical_to_pinned_figures(capsys):
    """The whole zero-copy refactor must not move a single output byte:
    ``bench all`` is diffed against the pinned bench_figures.txt."""
    from repro.bench.runner import main

    assert main(["all", "--parallel", "4"]) == 0
    out = capsys.readouterr().out
    pinned = Path(__file__).resolve().parents[1] / "bench_figures.txt"
    assert out == pinned.read_text(), (
        "bench all output diverged from bench_figures.txt"
    )
