"""Multi-node integration: several ORFS clients sharing one server
through a switch (the topology a real cluster file system serves)."""

import pytest

from repro.cluster import star
from repro.core import MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE

SERVER_PORT = 3
N_CLIENTS = 3


def test_three_clients_share_one_server_through_a_switch():
    env = Environment()
    nodes, switch = star(env, N_CLIENTS + 1)
    server_node = nodes[0]
    server = OrfaServer(server_node, SERVER_PORT, api="mx")
    env.run(until=server.start())

    clients = []
    for i, node in enumerate(nodes[1:]):
        channel = MxKernelChannel(node, 10 + i)
        mount_orfs(node, channel, (server_node.node_id, SERVER_PORT))
        clients.append(node)

    payloads = {i: bytes([i + 1]) * (4 * PAGE_SIZE) for i in range(N_CLIENTS)}

    def writer(env, i, node):
        space = node.new_process_space()
        vaddr = space.mmap(4 * PAGE_SIZE)
        space.write_bytes(vaddr, payloads[i])
        fd = yield from node.vfs.open(f"/orfs/client{i}",
                                      OpenFlags.RDWR | OpenFlags.CREAT)
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, 4 * PAGE_SIZE))
        yield from node.vfs.close(fd)

    procs = [env.process(writer(env, i, node))
             for i, node in enumerate(clients)]
    env.run(until=env.all_of(procs))

    def cross_reader(env, i, node):
        """Each client reads the file written by the *next* client."""
        j = (i + 1) % N_CLIENTS
        space = node.new_process_space()
        vaddr = space.mmap(4 * PAGE_SIZE)
        fd = yield from node.vfs.open(f"/orfs/client{j}")
        n = yield from node.vfs.read(fd, UserBuffer(space, vaddr, 4 * PAGE_SIZE))
        yield from node.vfs.close(fd)
        return space.read_bytes(vaddr, n)

    for i, node in enumerate(clients):
        got = env.run(until=env.process(cross_reader(env, i, node)))
        assert got == payloads[(i + 1) % N_CLIENTS]
    assert server.requests_served >= N_CLIENTS * 6


def test_concurrent_clients_make_progress_without_interference():
    """Simultaneous reads from different clients all complete, and the
    shared server serializes them without deadlock."""
    env = Environment()
    nodes, switch = star(env, 4)
    server_node = nodes[0]
    server = OrfaServer(server_node, SERVER_PORT, api="mx")
    env.run(until=server.start())
    # seed one shared file
    attrs = env.run(until=env.process(server.fs.create(1, "shared")))
    payload = bytes(range(256)) * (32 * PAGE_SIZE // 256)
    server.fs.write_raw(attrs.inode_id, 0, payload)

    results = {}

    def reader(env, i, node):
        channel = MxKernelChannel(node, 20 + i)
        mount_orfs(node, channel, (server_node.node_id, SERVER_PORT),
                   mountpoint="/orfs")
        space = node.new_process_space()
        vaddr = space.mmap(len(payload))
        fd = yield from node.vfs.open("/orfs/shared")
        n = yield from node.vfs.read(fd, UserBuffer(space, vaddr, len(payload)))
        results[i] = space.read_bytes(vaddr, n)

    procs = [env.process(reader(env, i, node))
             for i, node in enumerate(nodes[1:])]
    env.run(until=env.all_of(procs))
    assert all(results[i] == payload for i in range(3))
