"""Unit tests for kernel memory and scatter/gather building."""

import pytest

from repro.errors import BadAddress
from repro.mem import (
    AddressSpace,
    KernelSpace,
    PhysicalMemory,
    sg_from_frames,
    sg_from_kernel,
    sg_from_user,
)
from repro.mem.kmem import KERNEL_BASE
from repro.units import PAGE_SIZE


@pytest.fixture
def phys():
    return PhysicalMemory(256)


@pytest.fixture
def kspace(phys):
    return KernelSpace(phys)


# -- kernel memory -----------------------------------------------------------


def test_kmalloc_is_physically_contiguous(kspace):
    alloc = kspace.kmalloc(3 * PAGE_SIZE)
    pfns = [f.pfn for f in alloc.frames]
    assert pfns == list(range(pfns[0], pfns[0] + 3))
    assert alloc.contiguous


def test_vmalloc_can_be_scattered(kspace, phys):
    # Fragment physical memory so vmalloc must scatter.
    a = phys.alloc()
    b = phys.alloc()
    phys.free(a)  # hole at pfn 0
    alloc = kspace.vmalloc(2 * PAGE_SIZE)
    assert len(alloc.frames) == 2
    assert not alloc.contiguous


def test_kernel_addresses_above_kernel_base(kspace):
    alloc = kspace.kmalloc(PAGE_SIZE)
    assert alloc.vaddr >= KERNEL_BASE
    assert KernelSpace.is_kernel_address(alloc.vaddr)
    assert not KernelSpace.is_kernel_address(0x2000_0000)


def test_kernel_memory_is_born_pinned(kspace):
    alloc = kspace.kmalloc(2 * PAGE_SIZE)
    assert all(f.pinned for f in alloc.frames)


def test_kfree_releases_frames(kspace, phys):
    alloc = kspace.vmalloc(2 * PAGE_SIZE)
    kspace.kfree(alloc)
    assert phys.allocated_frames == 0
    with pytest.raises(BadAddress):
        kspace.translate(alloc.vaddr)


def test_kfree_unknown_allocation_raises(kspace):
    alloc = kspace.kmalloc(PAGE_SIZE)
    kspace.kfree(alloc)
    with pytest.raises(BadAddress):
        kspace.kfree(alloc)


def test_kernel_read_write_roundtrip(kspace):
    alloc = kspace.vmalloc(2 * PAGE_SIZE)
    payload = bytes(range(256)) * 17
    kspace.write_bytes(alloc.vaddr + 50, payload)
    assert kspace.read_bytes(alloc.vaddr + 50, len(payload)) == payload


def test_kernel_translate_offset(kspace):
    alloc = kspace.kmalloc(2 * PAGE_SIZE)
    base_phys = alloc.frames[0].phys_addr
    assert kspace.translate(alloc.vaddr + 5) == base_phys + 5
    assert (
        kspace.translate(alloc.vaddr + PAGE_SIZE + 7)
        == alloc.frames[1].phys_addr + 7
    )


# -- scatter/gather ----------------------------------------------------------


def test_sg_from_kernel_kmalloc_is_single_segment(kspace):
    alloc = kspace.kmalloc(4 * PAGE_SIZE)
    segs = sg_from_kernel(kspace, alloc.vaddr, 4 * PAGE_SIZE)
    assert len(segs) == 1
    assert segs[0].length == 4 * PAGE_SIZE


def test_sg_from_kernel_vmalloc_segments_per_discontiguity(kspace, phys):
    # Force scattered frames: allocate in a pattern leaving holes.
    hold = [phys.alloc() for _ in range(3)]
    phys.free(hold[1])
    alloc = kspace.vmalloc(2 * PAGE_SIZE)
    segs = sg_from_kernel(kspace, alloc.vaddr, 2 * PAGE_SIZE)
    total = sum(s.length for s in segs)
    assert total == 2 * PAGE_SIZE
    pfns = [f.pfn for f in alloc.frames]
    expected_segs = 1 if pfns[1] == pfns[0] + 1 else 2
    assert len(segs) == expected_segs


def test_sg_from_user_requires_resident_pages(phys):
    space = AddressSpace(phys)
    addr = space.mmap(2 * PAGE_SIZE)
    with pytest.raises(BadAddress):
        sg_from_user(space, addr, PAGE_SIZE)
    space.pin_range(addr, 2 * PAGE_SIZE)
    segs = sg_from_user(space, addr + 10, PAGE_SIZE)
    assert sum(s.length for s in segs) == PAGE_SIZE


def test_sg_from_user_merges_contiguous_frames(phys):
    space = AddressSpace(phys)
    addr = space.mmap(3 * PAGE_SIZE, populate=True)
    # populate() allocates lowest-free-pfn first, so frames are adjacent.
    segs = sg_from_user(space, addr, 3 * PAGE_SIZE)
    assert len(segs) == 1


def test_sg_from_user_zero_length(phys):
    space = AddressSpace(phys)
    addr = space.mmap(PAGE_SIZE, populate=True)
    assert sg_from_user(space, addr, 0) == []


def test_sg_from_frames_with_offset_and_length(phys):
    frames = [phys.alloc() for _ in range(3)]
    segs = sg_from_frames(frames, offset=100, length=PAGE_SIZE)
    assert sum(s.length for s in segs) == PAGE_SIZE
    assert segs[0].phys_addr == frames[0].phys_addr + 100


def test_sg_from_frames_full_run(phys):
    frames = phys.alloc_contiguous(2)
    segs = sg_from_frames(frames)
    assert len(segs) == 1
    assert segs[0].length == 2 * PAGE_SIZE


def test_sg_from_frames_rejects_overrun(phys):
    frames = [phys.alloc()]
    with pytest.raises(ValueError):
        sg_from_frames(frames, offset=0, length=PAGE_SIZE + 1)


def test_sg_segments_cover_exact_byte_ranges(phys):
    """Data written through segments equals data read through the VA."""
    space = AddressSpace(phys)
    addr = space.mmap(2 * PAGE_SIZE)
    space.pin_range(addr, 2 * PAGE_SIZE)
    payload = bytes((i * 7) % 256 for i in range(PAGE_SIZE + 500))
    space.write_bytes(addr + 200, payload)
    segs = sg_from_user(space, addr + 200, len(payload))
    collected = b"".join(phys.read_phys(s.phys_addr, s.length) for s in segs)
    assert collected == payload
