"""Model-based testing: ORFS against an in-memory oracle.

Hypothesis generates random sequences of file operations (write at
offset, read at offset, truncate, fsync, reopen); each runs both
against the full simulated stack (VFS + page cache + ORFS client +
network + server) and against a plain ``bytearray`` oracle.  Any
divergence — staleness, lost writeback, bad read-modify-write, wrong
EOF handling — fails loudly.

Buffered and O_DIRECT modes are exercised; sizes are kept small so each
example simulates in milliseconds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import node_pair
from repro.core import MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE

MAX_FILE = 4 * PAGE_SIZE

# one operation: (kind, offset, length, fill byte)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "truncate", "fsync", "reopen"]),
        st.integers(0, MAX_FILE - 1),
        st.integers(1, PAGE_SIZE + 300),
        st.integers(1, 255),
    ),
    min_size=1,
    max_size=12,
)


def _apply(ops, direct: bool):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api="mx")
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    mount_orfs(client_node, channel, (server_node.node_id, 3))
    vfs = client_node.vfs
    space = client_node.new_process_space()
    buf = space.mmap(2 * MAX_FILE)
    oracle = bytearray()
    flags = OpenFlags.RDWR | OpenFlags.CREAT
    if direct:
        flags |= OpenFlags.DIRECT
    divergences = []

    def script(env):
        fd = yield from vfs.open("/orfs/m", flags)
        for kind, offset, length, fill in ops:
            if direct:
                offset -= offset % 512  # O_DIRECT alignment
                offset = max(0, offset)
            if kind == "write":
                length = min(length, MAX_FILE - offset)
                if length <= 0:
                    continue
                data = bytes([fill]) * length
                space.write_bytes(buf, data)
                vfs.seek(fd, offset)
                yield from vfs.write(fd, UserBuffer(space, buf, length))
                if len(oracle) < offset:
                    oracle.extend(bytes(offset - len(oracle)))
                oracle[offset:offset + length] = data
            elif kind == "read":
                vfs.seek(fd, offset)
                n = yield from vfs.read(fd, UserBuffer(space, buf, length))
                got = space.read_bytes(buf, n)
                expect = bytes(oracle[offset:offset + length])
                if got != expect:
                    divergences.append((kind, offset, length, got, expect))
            elif kind == "truncate":
                # model truncate via reopen with TRUNC on a fresh handle
                yield from vfs.fsync(fd)
                yield from vfs.close(fd)
                fd = yield from vfs.open("/orfs/m", flags | OpenFlags.TRUNC)
                del oracle[:]
            elif kind == "fsync":
                yield from vfs.fsync(fd)
            elif kind == "reopen":
                yield from vfs.close(fd)
                # drop the client page cache: the reopened file must be
                # re-fetched from the server, exposing writeback bugs
                for inode in range(1, 8):
                    client_node.pagecache.invalidate_inode(inode)
                fd = yield from vfs.open("/orfs/m", flags)
        yield from vfs.close(fd)

    env.run(until=env.process(script(env)))
    # final durability check: server bytes == oracle
    server_bytes = server.fs.read_raw(2, 0, MAX_FILE)
    if server_bytes.rstrip(b"\x00") != bytes(oracle).rstrip(b"\x00"):
        divergences.append(("final", 0, 0, server_bytes[:64], bytes(oracle)[:64]))
    return divergences


@pytest.mark.slow
@given(ops=_ops)
@settings(max_examples=25, deadline=None)
def test_buffered_orfs_matches_oracle(ops):
    assert _apply(ops, direct=False) == []


@given(ops=_ops)
@settings(max_examples=15, deadline=None)
def test_direct_orfs_matches_oracle(ops):
    assert _apply(ops, direct=True) == []
