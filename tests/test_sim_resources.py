"""Unit tests for Resource, PriorityResource and Store (repro.sim.resources)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_grants_immediately_when_free():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc(env):
        req = res.request()
        yield req
        log.append(env.now)
        req.release()

    env.process(proc(env))
    env.run()
    assert log == [0]


def test_resource_serializes_two_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc(env, tag):
        req = res.request()
        yield req
        log.append((tag, "start", env.now))
        yield env.timeout(100)
        req.release()
        log.append((tag, "end", env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert log == [
        ("a", "start", 0),
        ("a", "end", 100),
        ("b", "start", 100),
        ("b", "end", 200),
    ]


def test_resource_capacity_two_runs_in_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def proc(env):
        req = res.request()
        yield req
        starts.append(env.now)
        yield env.timeout(50)
        req.release()

    for _ in range(3):
        env.process(proc(env))
    env.run()
    assert starts == [0, 0, 50]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def proc(env, tag, arrive):
        yield env.timeout(arrive)
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(10)
        req.release()

    env.process(proc(env, "late", 2))
    env.process(proc(env, "early", 1))
    env.process(proc(env, "first", 0))
    env.run()
    assert order == ["first", "early", "late"]


def test_release_idle_resource_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    req.release()
    with pytest.raises(SimulationError):
        res.release(req)


def test_acquire_helper_holds_for_duration():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc(env, tag):
        yield from res.acquire(30)
        log.append((tag, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert log == [("a", 30), ("b", 60)]


def test_resource_utilization_tracks_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        yield from res.acquire(40)
        yield env.timeout(60)  # idle gap
        yield from res.acquire(20)

    env.process(proc(env))
    env.run()
    assert env.now == 120
    assert res.busy_time == 60
    assert res.utilization() == pytest.approx(0.5)


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request(priority=0)
        yield req
        yield env.timeout(100)
        req.release()

    def proc(env, tag, prio, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        req.release()

    env.process(holder(env))
    env.process(proc(env, "low-prio", 5, 1))
    env.process(proc(env, "high-prio", 1, 2))
    env.run()
    assert order == ["high-prio", "low-prio"]


def test_priority_resource_fifo_within_same_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10)
        req.release()

    def proc(env, tag, arrive):
        yield env.timeout(arrive)
        yield from res.acquire(1, priority=3)
        order.append(tag)

    env.process(holder(env))
    env.process(proc(env, "x", 1))
    env.process(proc(env, "y", 2))
    env.run()
    assert order == ["x", "y"]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = {}

    def consumer(env):
        got["v"] = yield store.get()

    store.put("item")
    env.process(consumer(env))
    env.run()
    assert got["v"] == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = {}

    def consumer(env):
        got["v"] = yield store.get()
        got["t"] = env.now

    def producer(env):
        yield env.timeout(33)
        store.put("late-item")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == {"v": "late-item", "t": 33}


def test_store_fifo_item_order():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    for item in (1, 2, 3):
        store.put(item)
    env.process(consumer(env))
    env.run()
    assert received == [1, 2, 3]


def test_store_fifo_getter_order():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env, tag, arrive):
        yield env.timeout(arrive)
        item = yield store.get()
        received.append((tag, item))

    env.process(consumer(env, "a", 0))
    env.process(consumer(env, "b", 1))

    def producer(env):
        yield env.timeout(10)
        store.put("x")
        store.put("y")

    env.process(producer(env))
    env.run()
    assert received == [("a", "x"), ("b", "y")]


def test_store_len_and_peek():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_all() == (1, 2)
