"""Integration tests pinning the paper's quantitative claims.

Each test reproduces one claim from the evaluation (section 5 / table 1)
end-to-end through the simulated stack.  These complement the per-figure
benchmarks in ``benchmarks/`` with fast, CI-sized versions; EXPERIMENTS.md
records the full paper-vs-measured comparison.
"""

import pytest

from repro.bench.fileio import build_orfs, orfs_sequential_read
from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import GmUserTransport, MxTransport
from repro.cluster import node_pair
from repro.sim import Environment
from repro.units import KiB, MiB


@pytest.mark.slow
def test_claim_orfs_mx_buffered_40_percent_over_gm():
    """Section 5.2: 'Buffered file access in ORFS on MX shows a 40 %
    improvement over GM.'"""
    plateaus = {}
    for api in ("mx", "gm"):
        rig = build_orfs(api, file_size=MiB)
        plateaus[api] = orfs_sequential_read(rig, 256 * KiB, MiB).throughput_mb_s
    gain = plateaus["mx"] / plateaus["gm"] - 1
    assert 0.25 < gain < 0.55, f"buffered gain {gain:.2%} (paper: 40 %)"


def test_claim_orfs_direct_mx_at_least_as_good():
    """Section 5.2 / table 1: direct access on MX 'as least as good'."""
    results = {}
    for api in ("mx", "gm"):
        rig = build_orfs(api, file_size=MiB)
        results[api] = orfs_sequential_read(
            rig, 256 * KiB, MiB, direct=True).throughput_mb_s
    assert results["mx"] >= 0.98 * results["gm"]


def test_claim_gm_user_latency_50_percent_above_mx():
    """Section 5.1: 'GM user latency is more than 50 % higher than with
    MX (6.7 us against 4.2 us for 1-byte message).'"""

    def one_way(make):
        env = Environment()
        na, nb = node_pair(env)
        a, b = make(na, 1), make(nb, 0)
        prepare_pair(env, a, b, 4096)
        return ping_pong(env, a, b, 1, rounds=8).one_way_us

    gm = one_way(lambda n, p: GmUserTransport(n, 1, peer_node=p, peer_port=1))
    mx = one_way(lambda n, p: MxTransport(n, 1, peer_node=p, peer_ep=1))
    assert gm / mx > 1.5
    assert gm == pytest.approx(6.7, abs=0.3)
    assert mx == pytest.approx(4.2, abs=0.3)


def test_claim_buffered_4k_beats_direct_4k_on_gm():
    """Section 3.3: '4 kB accesses are faster through the page-cache
    compared to direct accesses, even if an additional copy from the
    page-cache to the application is required.'"""
    rig = build_orfs("gm", file_size=MiB)
    buffered = orfs_sequential_read(rig, 4096, MiB).throughput_mb_s
    direct = orfs_sequential_read(rig, 4096, MiB, direct=True).throughput_mb_s
    assert buffered > direct


def test_claim_direct_much_better_for_large_transfers():
    """Section 3.3: 'an application requesting large data transfers will
    show much better performance in the direct case' (one network
    request vs page-sized splitting)."""
    rig = build_orfs("gm", file_size=MiB)
    buffered = orfs_sequential_read(rig, MiB, MiB).throughput_mb_s
    direct = orfs_sequential_read(rig, MiB, MiB, direct=True).throughput_mb_s
    assert direct > 2 * buffered


def test_claim_regcache_miss_costs_about_20_percent():
    """Section 3.2: 'Without any cache hit, the performance is 20 %
    lower.'"""
    with_cache = build_orfs("gm", file_size=MiB)
    without = build_orfs("gm", regcache_enabled=False, file_size=MiB)
    a = orfs_sequential_read(with_cache, 256 * KiB, MiB, direct=True)
    b = orfs_sequential_read(without, 256 * KiB, MiB, direct=True)
    loss = 1 - b.throughput_mb_s / a.throughput_mb_s
    assert 0.08 < loss < 0.30, f"no-cache loss {loss:.2%} (paper: ~20 %)"


def test_claim_mx_kernel_bandwidth_not_below_user():
    """Section 5.1: 'The large message bandwidth is even higher with the
    kernel interface since the page locking overhead is lower.'"""

    def bw(context, physical):
        env = Environment()
        na, nb = node_pair(env)
        a = MxTransport(na, 1, peer_node=1, peer_ep=1, context=context,
                        physical=physical)
        b = MxTransport(nb, 1, peer_node=0, peer_ep=1, context=context,
                        physical=physical)
        prepare_pair(env, a, b, MiB)
        return ping_pong(env, a, b, MiB, rounds=4).bandwidth_mb_s

    user = bw("user", False)
    kernel = bw("kernel", True)
    assert kernel >= user
