"""Unit tests for the MX API (repro.mx)."""

import pytest

from repro.cluster import node_pair
from repro.errors import MXBadSegment, MXError
from repro.mem.layout import sg_from_frames
from repro.mx import MemType, MxEndpoint, MxSegment
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


@pytest.fixture
def pair():
    env = Environment()
    a, b = node_pair(env)
    return env, a, b


def run(env, gen):
    return env.run(until=env.process(gen))


def make_user(node, ep_id, peer):
    space = node.new_process_space()
    ep = MxEndpoint(node, ep_id, context="user")
    return ep, space


# -- segments -----------------------------------------------------------------


def test_segment_constructors_validate():
    with pytest.raises(MXBadSegment):
        MxSegment.kernel(0xC000_0000, 0)
    with pytest.raises(MXBadSegment):
        MxSegment.physical([])


def test_user_endpoint_rejects_kernel_segments(pair):
    env, a, _ = pair
    ep = MxEndpoint(a, 1, context="user")
    seg = MxSegment.kernel(0xC000_0000, 64)
    with pytest.raises(MXBadSegment):
        run(env, ep.isend(1, 1, [seg]))


def test_kernel_endpoint_accepts_all_types(pair):
    env, a, b = pair
    ep = MxEndpoint(a, 1, context="kernel")
    MxEndpoint(b, 1, context="kernel")
    alloc = a.kspace.kmalloc(PAGE_SIZE)
    space = a.new_process_space()
    uva = space.mmap(PAGE_SIZE, populate=True)
    segs = [
        MxSegment.kernel(alloc.vaddr, 100),
        MxSegment.physical(sg_from_frames(alloc.frames, 0, 50)),
        MxSegment.user(space, uva, 30),
    ]
    req = run(env, ep.isend(1, 1, segs))
    assert req.length == 180


# -- data movement ------------------------------------------------------------------


def send_recv(env, a, b, payload, context="kernel", **flags):
    """Round-trip helper: send payload from a to b over kernel buffers."""
    ep_a = MxEndpoint(a, 1, context=context, **flags)
    ep_b = MxEndpoint(b, 1, context=context, **flags)
    size = max(len(payload), 1)
    src = a.kspace.kmalloc(size)
    dst = b.kspace.kmalloc(size)
    a.kspace.write_bytes(src.vaddr, payload)

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, size)], match=5)
        yield from ep_b.wait(req)
        return b.kspace.read_bytes(dst.vaddr, size)

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, size)], match=5)
        yield from ep_a.wait(req)

    env.process(sender(env))
    return run(env, receiver(env))


def test_small_message_roundtrip(pair):
    env, a, b = pair
    payload = b"small!"
    assert send_recv(env, a, b, payload) == payload


def test_medium_message_roundtrip(pair):
    env, a, b = pair
    payload = bytes(range(256)) * 16  # 4 kB: medium class
    assert send_recv(env, a, b, payload) == payload


def test_large_message_roundtrip_rendezvous(pair):
    env, a, b = pair
    payload = bytes((i * 13) % 256 for i in range(100_000))  # > 32 kB
    assert send_recv(env, a, b, payload) == payload


def test_message_class_counters(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(128 * 1024)

    def script(env):
        for size in (64, 4096, 100_000):
            req = yield from ep_a.isend(
                1, 1, [MxSegment.kernel(src.vaddr, size)]
            )
        return None

    run(env, script(env))
    assert ep_a.sends_small == 1
    assert ep_a.sends_medium == 1
    assert ep_a.sends_large == 1


def test_vectorial_send_gathers_segments(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    s1 = a.kspace.kmalloc(PAGE_SIZE)
    s2 = a.kspace.kmalloc(PAGE_SIZE)
    dst = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(s1.vaddr, b"AAAA")
    a.kspace.write_bytes(s2.vaddr, b"BBBB")

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, 8)])
        yield from ep_b.wait(req)
        return b.kspace.read_bytes(dst.vaddr, 8)

    def sender(env):
        req = yield from ep_a.isend(
            1, 1,
            [MxSegment.kernel(s1.vaddr, 4), MxSegment.kernel(s2.vaddr, 4)],
        )
        yield from ep_a.wait(req)

    env.process(sender(env))
    assert run(env, receiver(env)) == b"AAAABBBB"


def test_vectorial_recv_scatters_segments(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(PAGE_SIZE)
    d1 = b.kspace.kmalloc(PAGE_SIZE)
    d2 = b.kspace.kmalloc(PAGE_SIZE)
    a.kspace.write_bytes(src.vaddr, b"XXYYZZ")

    def receiver(env):
        req = yield from ep_b.irecv(
            [MxSegment.kernel(d1.vaddr, 2), MxSegment.kernel(d2.vaddr, 4)]
        )
        yield from ep_b.wait(req)

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, 6)])
        yield from ep_a.wait(req)

    env.process(sender(env))
    run(env, receiver(env))
    assert b.kspace.read_bytes(d1.vaddr, 2) == b"XX"
    assert b.kspace.read_bytes(d2.vaddr, 4) == b"YYZZ"


def test_user_buffer_roundtrip(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="user")
    ep_b = MxEndpoint(b, 1, context="user")
    sa, sb = a.new_process_space(), b.new_process_space()
    va = sa.mmap(PAGE_SIZE)
    vb = sb.mmap(PAGE_SIZE)
    sa.write_bytes(va, b"user-to-user")

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.user(sb, vb, 12)])
        yield from ep_b.wait(req)
        return sb.read_bytes(vb, 12)

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.user(sa, va, 12)])
        yield from ep_a.wait(req)

    env.process(sender(env))
    assert run(env, receiver(env)) == b"user-to-user"


def test_large_send_pins_then_unpins_user_pages(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="user")
    ep_b = MxEndpoint(b, 1, context="user")
    sa, sb = a.new_process_space(), b.new_process_space()
    size = 64 * 1024
    va = sa.mmap(size, populate=True)
    vb = sb.mmap(size, populate=True)

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.user(sb, vb, size)])
        yield from ep_b.wait(req)

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.user(sa, va, size)])
        yield from ep_a.wait(req)

    env.process(sender(env))
    run(env, receiver(env))
    assert not any(sa.frame_of(va + i * PAGE_SIZE).pinned for i in range(16))
    assert not any(sb.frame_of(vb + i * PAGE_SIZE).pinned for i in range(16))


def test_medium_buffered_send_completes_before_delivery(pair):
    """Medium sends are buffered: the request completes at copy time,
    long before the receiver sees the data."""
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(32 * 1024)
    dst = b.kspace.kmalloc(32 * 1024)
    times = {}

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, 32 * 1024)])
        yield from ep_a.wait(req)
        times["send_done"] = env.now

    def receiver(env):
        req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, 32 * 1024)])
        yield from ep_b.wait(req)
        times["recv_done"] = env.now

    env.process(sender(env))
    run(env, receiver(env))
    assert times["send_done"] < times["recv_done"] - us(50)


def test_wait_any_returns_first_completion(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(PAGE_SIZE)
    d1 = b.kspace.kmalloc(PAGE_SIZE)
    d2 = b.kspace.kmalloc(PAGE_SIZE)

    def receiver(env):
        r1 = yield from ep_b.irecv([MxSegment.kernel(d1.vaddr, 64)], match=1)
        r2 = yield from ep_b.irecv([MxSegment.kernel(d2.vaddr, 64)], match=2)
        first = yield from ep_b.wait_any([r1, r2])
        return first

    def sender(env):
        req = yield from ep_a.isend(1, 1, [MxSegment.kernel(src.vaddr, 64)], match=2)
        yield from ep_a.wait(req)

    env.process(sender(env))
    first = run(env, receiver(env))
    assert first.match == 2


def test_test_polls_without_blocking(pair):
    env, a, b = pair
    ep_a = MxEndpoint(a, 1, context="kernel")
    MxEndpoint(b, 1, context="kernel")
    dst = a.kspace.kmalloc(PAGE_SIZE)

    def script(env):
        req = yield from ep_a.irecv([MxSegment.kernel(dst.vaddr, 64)])
        done = yield from ep_a.test(req)
        return done

    assert run(env, script(env)) is False


def test_no_send_copy_requires_physical_resolution(pair):
    """User-virtual segments keep the bounce copy even with the flag on."""
    env, a, b = pair
    ep = MxEndpoint(a, 1, context="kernel", no_send_copy=True)
    MxEndpoint(b, 1, context="kernel")
    space = a.new_process_space()
    uva = space.mmap(PAGE_SIZE, populate=True)
    alloc = a.kspace.kmalloc(PAGE_SIZE)

    def script(env):
        r1 = yield from ep.isend(1, 1, [MxSegment.user(space, uva, 4096)])
        r2 = yield from ep.isend(1, 1, [MxSegment.kernel(alloc.vaddr, 4096)])

    run(env, script(env))
    assert ep.sends_medium == 1  # the user one copied
    assert ep.sends_medium_zero_copy == 1  # the kernel one did not


def test_closed_endpoint_raises(pair):
    env, a, _ = pair
    ep = MxEndpoint(a, 1, context="kernel")
    ep.close()
    alloc = a.kspace.kmalloc(PAGE_SIZE)
    with pytest.raises(MXError):
        run(env, ep.isend(1, 1, [MxSegment.kernel(alloc.vaddr, 10)]))


def test_wait_any_empty_raises(pair):
    env, a, _ = pair
    ep = MxEndpoint(a, 1, context="kernel")
    with pytest.raises(MXError):
        run(env, ep.wait_any([]))
