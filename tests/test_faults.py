"""The fault-injection suite: deterministic chaos for the fabric.

Covers the tentpole guarantees: seeded fault plans reproduce byte-
identical traces; the NIC reliable-delivery sublayer recovers ORFA and
NBD workloads from message loss with correct data; link-down windows,
corruption, NIC resets and node crashes degrade into *errors* (Eio,
LinkDown, MessageDropped, NodeCrashed), never hangs or silent
corruption.
"""

import os

import pytest

from repro.cluster import node_pair
from repro.core import MxKernelChannel
from repro.errors import Eio, LinkDown, MessageDropped, NodeCrashed
from repro.faults import FaultPlan, LinkFaultSpec
from repro.hw.link import Link
from repro.hw.nic import Message, MsgKind, PostedReceive, SendDescriptor
from repro.hw.params import MX_KERNEL_COSTS, PCI_XD, ReliabilityParams
from repro.nbd import NbdDevice, NbdServer
from repro.nbd.device import BLOCK_SIZE
from repro.orfa.client import OrfaClient
from repro.orfa.server import OrfaServer
from repro.sim import Environment
from repro.sim.trace import render_trace
from repro.units import ms, us

# Default chosen so a 5% plan actually fires within the workloads; CI's
# chaos-smoke job sweeps this over several seeds.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "1"))


# -- harness ------------------------------------------------------------------


def _orfa_cluster(plan_cfg, api="mx", timeout_ns=ms(2), max_retries=6):
    """Two nodes, a tolerant ORFA server, a budgeted client, and an
    armed fault plan.  ``plan_cfg(plan)`` declares the faults."""
    env = Environment()
    client_node, server_node = node_pair(env)
    plan = FaultPlan(seed=SEED)
    records = plan.tracer.record_everything()
    plan_cfg(plan)
    plan.install(env, nodes=[client_node, server_node])
    server = OrfaServer(server_node, 3, api=api, tolerant=True)
    env.run(until=server.start())
    space = client_node.new_process_space()
    client = OrfaClient(client_node, 4, space, (server_node.node_id, 3),
                        api=api, timeout_ns=timeout_ns,
                        max_retries=max_retries, tracer=plan.tracer)
    env.run(until=env.process(client.setup()))
    return env, client_node, server_node, client, space, plan, records


def _orfa_write_read(env, client, space, nbytes=64 * 1024, chunk=4096):
    """Chunked write + full read-back; returns (payload, data read)."""
    payload = bytes((i * 37 + 11) & 0xFF for i in range(nbytes))
    buf = space.mmap(nbytes, populate=True)
    space.write_bytes(buf, payload)
    out = space.mmap(nbytes, populate=True)
    result = {}

    def script(env):
        fd = yield from client.open("/data", create=True)
        for off in range(0, nbytes, chunk):
            client.seek(fd, off)
            yield from client.write(fd, buf + off, chunk)
        client.seek(fd, 0)
        n = yield from client.read(fd, out, nbytes)
        result["n"] = n
        yield from client.close(fd)

    env.run(until=env.process(script(env)))
    return payload, space.read_bytes(out, result["n"])


# -- determinism --------------------------------------------------------------


def test_same_seed_reproduces_byte_identical_traces():
    """Two complete runs of the same seeded plan render the exact same
    trace text — the determinism contract of repro.faults."""
    outputs = []
    for _ in range(2):
        env, cn, sn, client, space, plan, records = _orfa_cluster(
            lambda p: p.drop("wire", 0.05)
        )
        payload, data = _orfa_write_read(env, client, space)
        assert data == payload
        outputs.append((render_trace(records), plan.stats(),
                        cn.nic.retransmissions + sn.nic.retransmissions,
                        env.now))
    assert outputs[0] == outputs[1]
    trace, stats, retrans, _ = outputs[0]
    assert stats["dropped"] > 0  # the plan actually fired
    assert "fault.drop" in trace


def test_different_seeds_change_the_fault_pattern():
    from repro.faults.plan import _FaultRng
    a = _FaultRng(1, "wire")
    b = _FaultRng(2, "wire")
    assert [a.chance(0.5) for _ in range(64)] != [b.chance(0.5) for _ in range(64)]
    # ... and two links never share a stream under the same seed.
    c = _FaultRng(1, "wire")
    d = _FaultRng(1, "l0")
    assert [c.chance(0.5) for _ in range(64)] != [d.chance(0.5) for _ in range(64)]


# -- loss recovery: ORFA ------------------------------------------------------


@pytest.mark.parametrize("api", ["mx", "gm"])
def test_orfa_completes_correctly_under_5pct_drop(api):
    """Acceptance: with a FaultPlan dropping 5% of wire messages, an
    ORFA read/write workload completes with correct data."""
    env, cn, sn, client, space, plan, _ = _orfa_cluster(
        lambda p: p.drop("wire", 0.05), api=api
    )
    payload, data = _orfa_write_read(env, client, space)
    assert data == payload
    assert plan.stats()["dropped"] > 0
    # NIC-level recovery did real work (retransmission or dup suppression).
    assert (cn.nic.retransmissions + sn.nic.retransmissions
            + cn.nic.duplicates_dropped + sn.nic.duplicates_dropped) > 0


def test_orfa_survives_heavy_loss():
    env, cn, sn, client, space, plan, _ = _orfa_cluster(
        lambda p: p.drop("wire", 0.20)
    )
    payload, data = _orfa_write_read(env, client, space, nbytes=32 * 1024)
    assert data == payload
    assert plan.stats()["dropped"] > 0


# -- loss recovery: NBD -------------------------------------------------------


def test_nbd_block_workload_completes_under_drop():
    """Acceptance: an NBD block workload completes with correct data
    under a 5% drop plan."""
    env = Environment()
    client_node, server_node = node_pair(env)
    plan = FaultPlan(seed=SEED).drop("wire", 0.05)
    plan.install(env, nodes=[client_node, server_node])
    blocks = 16
    server = NbdServer(server_node, 3, api="mx", device_blocks=blocks)
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, blocks,
                    timeout_ns=ms(2), max_retries=6, tracer=plan.tracer)
    space = client_node.new_process_space()
    payload = bytes((i * 13 + 5) & 0xFF for i in range(blocks * BLOCK_SIZE))
    va = space.mmap(len(payload))
    space.write_bytes(va, payload)
    out = space.mmap(len(payload))
    result = {}

    def script(env):
        yield from dev.write(space, va, 0, len(payload))
        yield from dev.flush()
        client_node.pagecache.invalidate_inode(dev._cache_key)
        result["n"] = yield from dev.read(space, out, 0, len(payload))

    env.run(until=env.process(script(env)))
    assert result["n"] == len(payload)
    assert space.read_bytes(out, len(payload)) == payload
    assert server.fs.read_raw(server.device_inode, 0, len(payload)) == payload
    assert plan.stats()["dropped"] > 0


# -- link down windows --------------------------------------------------------


def test_link_down_window_recovers_after_carrier_returns():
    """Traffic inside the outage is lost on the wire; retransmission
    carries the workload across it."""
    env, cn, sn, client, space, plan, records = _orfa_cluster(
        lambda p: p.link_down("wire", us(50), us(400)),
        timeout_ns=ms(4),
    )
    payload, data = _orfa_write_read(env, client, space, nbytes=16 * 1024)
    assert data == payload
    assert plan.stats()["down_drops"] > 0
    trace = render_trace(records)
    assert "fault.link_down" in trace
    assert "fault.link_up" in trace


def test_submit_on_down_link_without_reliability_raises_linkdown():
    env = Environment()
    a, b = node_pair(env)
    plan = FaultPlan(seed=SEED).link_down("wire", 0, us(100))
    plan.install(env, nodes=[a, b], reliability=False)
    with pytest.raises(LinkDown):
        a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0,
                                    size=64, data=bytes(64), fw_send_ns=500))


# -- corruption ---------------------------------------------------------------


def test_corruption_is_caught_by_crc_and_recovered():
    env, cn, sn, client, space, plan, _ = _orfa_cluster(
        lambda p: p.corrupt("wire", 0.10)
    )
    payload, data = _orfa_write_read(env, client, space, nbytes=32 * 1024)
    assert data == payload  # every corrupted copy was dropped and resent
    assert plan.stats()["corrupted"] > 0
    assert cn.nic.crc_drops + sn.nic.crc_drops == plan.stats()["corrupted"]


def test_corruption_without_reliability_reaches_the_receiver():
    """The injector delivers a poisoned *copy*; the original stays
    clean (that is what a retransmission would resend)."""
    env = Environment()
    link = Link(env, PCI_XD, name="wire")
    delivered = []
    link.attach("a", delivered.append)
    link.attach("b", delivered.append)
    FaultPlan(seed=SEED).corrupt("wire", 1.0).install(
        env, links=[link], reliability=False
    )
    original = Message(kind=MsgKind.EAGER, src_nic=0, src_port=1, dst_nic=1,
                       dst_port=1, match=0, size=64, data=bytes(64),
                       wire_size=64)

    def tx(env):
        yield from link.transmit("a", original, 64)

    env.process(tx(env))
    env.run()
    assert len(delivered) == 1
    assert delivered[0].corrupted
    assert not original.corrupted


# -- duplicate suppression ----------------------------------------------------


def test_spurious_retransmissions_are_deduplicated():
    """An aggressive RTO against a lazy ack: the sender retransmits a
    message the receiver already has; it is delivered exactly once."""
    env = Environment()
    a, b = node_pair(env)
    eager_params = ReliabilityParams(rto_ns=2_000, rto_max_ns=4_000,
                                     ack_delay_ns=200_000)
    for nic in (a.nic, b.nic):
        nic.enable_reliability(eager_params)
    port = b.nic.open_port(5, MX_KERNEL_COSTS)
    port.post_receive(PostedReceive(match=None, capacity=4096,
                                    keep_data=True))
    a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0, size=256,
                                data=bytes(range(256)), fw_send_ns=500))
    env.run()
    assert a.nic.retransmissions >= 1
    assert b.nic.duplicates_dropped >= 1
    assert b.nic.messages_received == 1


# -- NIC reset ----------------------------------------------------------------


def test_nic_reset_resyncs_fresh_outgoing_traffic():
    """After a firmware reset the NIC restarts its sequence space at 1;
    peers accept the restart instead of treating it as a duplicate."""
    env = Environment()
    a, b = node_pair(env)
    plan = FaultPlan(seed=SEED)
    records = plan.tracer.record_everything()
    plan.nic_reset(1, us(500))
    plan.install(env, nodes=[a, b])
    port = a.nic.open_port(5, MX_KERNEL_COSTS)
    port.post_receive(PostedReceive(match=None, capacity=4096, keep_data=True))
    port.post_receive(PostedReceive(match=None, capacity=4096, keep_data=True))

    def traffic(env):
        # One message before the reset, one after: the second restarts
        # b's tx sequence at 1, which a must accept as a resync.
        b.nic.submit(SendDescriptor(dst_nic=0, dst_port=5, match=0, size=64,
                                    data=bytes(64), fw_send_ns=500))
        yield env.timeout(us(1000))
        b.nic.submit(SendDescriptor(dst_nic=0, dst_port=5, match=1, size=64,
                                    data=bytes(64), fw_send_ns=500))

    env.process(traffic(env))
    env.run()
    assert a.nic.messages_received == 2
    assert "nic.resync" in render_trace(records)


# -- crashes ------------------------------------------------------------------


def test_node_crash_surfaces_eio_and_rpc_timeout_trace():
    """Acceptance for graceful degradation: a crashed server turns into
    Eio at the client after the retry budget, with rpc.timeout traces —
    never a hang."""
    env, cn, sn, client, space, plan, records = _orfa_cluster(
        lambda p: p.node_crash(1, us(300)),
        timeout_ns=ms(1), max_retries=2,
    )
    with pytest.raises(Eio):
        # The fault-free run spans ~900 us, so a crash at 300 us always
        # lands mid-workload.
        _orfa_write_read(env, client, space)
    trace = render_trace(records)
    assert "fault.node_crash" in trace
    assert "rpc.timeout" in trace


def test_submit_on_crashed_local_nic_raises():
    env = Environment()
    a, b = node_pair(env)
    FaultPlan(seed=SEED).install(env, nodes=[a, b])
    a.nic.crash()
    with pytest.raises(NodeCrashed):
        a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0, size=64,
                                    data=bytes(64), fw_send_ns=500))


def test_reliability_gives_up_on_dead_peer():
    """Retransmission toward a crashed peer is bounded: after
    max_retries rounds the peer is declared dead and further submits
    fail fast with MessageDropped."""
    env = Environment()
    a, b = node_pair(env)
    plan = FaultPlan(seed=SEED)
    plan.install(env, nodes=[a, b],
                 reliability_params=ReliabilityParams(max_retries=2))
    b.nic.crash()
    a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0, size=64,
                                data=bytes(64), fw_send_ns=500))
    env.run()
    assert 1 in a.nic._rel.dead_peers
    with pytest.raises(MessageDropped):
        a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0, size=64,
                                    data=bytes(64), fw_send_ns=500))


# -- zero-fault transparency --------------------------------------------------


def test_unconfigured_links_get_no_injector():
    env = Environment()
    a, b = node_pair(env)
    plan = FaultPlan(seed=SEED).drop("some-other-link", 0.5)
    plan.install(env, nodes=[a, b])
    assert a.nic._link.faults is None
    assert plan.injectors == {}


def test_wildcard_spec_covers_every_link():
    env = Environment()
    a, b = node_pair(env)
    FaultPlan(seed=SEED).drop("*", 0.5).install(env, nodes=[a, b])
    assert a.nic._link.faults is not None


def test_plan_validates_inputs():
    with pytest.raises(ValueError):
        FaultPlan().drop("wire", 1.5)
    with pytest.raises(ValueError):
        FaultPlan().corrupt("wire", -0.1)
    with pytest.raises(ValueError):
        FaultPlan().link_down("wire", 100, 100)
    env = Environment()
    plan = FaultPlan(seed=SEED)
    plan.install(env)
    with pytest.raises(ValueError):
        plan.install(env)


# -- the bench driver ---------------------------------------------------------


def test_bench_faults_driver_runs(capsys):
    from repro.bench.runner import main
    assert main(["faults", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Fault injection" in out
    assert "10.0%" in out

# -- link flap trains ---------------------------------------------------------


def test_link_flap_train_recovers_and_renders():
    """A scheduled down/up train is an exact partition timeline: the
    workload rides across every outage, and the trace announces the
    train once plus one down/up pair per outage."""
    env, cn, sn, client, space, plan, records = _orfa_cluster(
        lambda p: p.link_flap("wire", us(50), down_ns=us(80), up_ns=us(60),
                              count=3),
        timeout_ns=ms(4),
    )
    payload, data = _orfa_write_read(env, client, space, nbytes=16 * 1024)
    assert data == payload
    trace = render_trace(records)
    assert trace.count("fault.link_flap") == 1
    assert trace.count("fault.link_down {") == 3
    assert trace.count("fault.link_up {") == 3
    assert plan.stats()["down_drops"] > 0


def test_link_flap_validates_inputs():
    with pytest.raises(ValueError):
        FaultPlan().link_flap("wire", 0, down_ns=0, up_ns=10, count=1)
    with pytest.raises(ValueError):
        FaultPlan().link_flap("wire", 0, down_ns=10, up_ns=0, count=1)
    with pytest.raises(ValueError):
        FaultPlan().link_flap("wire", 0, down_ns=10, up_ns=10, count=0)
    with pytest.raises(ValueError):
        FaultPlan().link_flap("wire", -1, down_ns=10, up_ns=10, count=1)


# -- reliability sessions and incarnations ------------------------------------


def _seq_msg(src, dst, seq, *, epoch, inc, dst_epoch=0, ack=0, ack_epoch=0,
             kind=MsgKind.EAGER):
    return Message(kind=kind, src_nic=src, src_port=5, dst_nic=dst,
                   dst_port=5, match=0, size=64, data=bytes(64), wire_size=64,
                   seq=seq, epoch=epoch, inc=inc, dst_epoch=dst_epoch,
                   ack=ack, ack_epoch=ack_epoch)


def _rel_pair():
    env = Environment()
    a, b = node_pair(env)
    FaultPlan(seed=SEED).install(env, nodes=[a, b])
    return env, a, b


def test_stale_retransmit_after_reset_is_not_acked_as_current():
    """Regression: a retransmit that predates the receiver's reset
    echoes the previous incarnation; it must be dropped, not delivered
    or acked as part of the post-reset conversation."""
    env, a, b = _rel_pair()
    rel = b.nic._rel
    first = _seq_msg(0, 1, 1, epoch=7, inc=3)
    assert rel.on_arrival(first) is first
    assert rel._rx_last[0] == 1
    old_inc = rel.incarnation
    b.nic.reset()
    assert rel.incarnation == old_inc + 1
    stale = _seq_msg(0, 1, 2, epoch=7, inc=3, dst_epoch=old_inc)
    assert rel.on_arrival(stale) is None  # dropped whole
    assert rel._rx_last.get(0, 0) == 0  # and not acked as current
    assert 0 in rel._rst_pending  # the sender will be told to re-establish


def test_session_restart_is_adopted_not_deduplicated():
    """Regression: after the peer retires a session (give-up) and later
    probes with a fresh one, seq 1 of the new epoch is a restart, not a
    duplicate — treating it as one falsely acked it and wedged the
    probe forever."""
    env, a, b = _rel_pair()
    rel = b.nic._rel
    assert rel.on_arrival(_seq_msg(0, 1, 1, epoch=7, inc=3)) is not None
    assert rel.on_arrival(_seq_msg(0, 1, 2, epoch=7, inc=3)) is not None
    assert rel._rx_last[0] == 2
    fresh = _seq_msg(0, 1, 1, epoch=8, inc=3)
    assert rel.on_arrival(fresh) is fresh  # new session adopted
    assert rel._rx_last[0] == 1
    # a leftover of the dead session is a duplicate, and must not
    # regress the adopted window
    assert rel.on_arrival(_seq_msg(0, 1, 2, epoch=7, inc=3)) is None
    assert rel._rx_last[0] == 1


def test_peer_session_restart_leaves_local_tx_alone():
    """A benign session restart (no reboot) resets only the receive
    window for that peer; our own transmit session must survive —
    aborting it is what made restarts ping-pong between live peers."""
    env, a, b = _rel_pair()
    rel = b.nic._rel
    out = _seq_msg(1, 0, 0, epoch=0, inc=0)
    rel.stamp(out, 64)  # b establishes tx state toward peer 0
    assert rel._tx[0].unacked
    session = rel._session[0]
    rel.on_arrival(_seq_msg(0, 1, 1, epoch=5, inc=1))
    rel.on_arrival(_seq_msg(0, 1, 1, epoch=6, inc=1))  # peer restarted
    assert rel._session.get(0) == session  # tx session untouched
    assert rel._tx[0].unacked  # nothing aborted


def test_stale_incarnation_ack_does_not_retire_fresh_messages():
    """An ack left over from the peer's previous life must not retire
    messages of the re-established conversation."""
    env, a, b = _rel_pair()
    rel = a.nic._rel
    rel._rx_inc[1] = 5  # we have heard from the peer's 5th incarnation
    out = _seq_msg(0, 1, 0, epoch=0, inc=0)
    rel.stamp(out, 64)
    assert rel._tx[1].unacked
    stale = _seq_msg(1, 0, 0, epoch=0, inc=4, ack=1,
                     ack_epoch=rel._session[1], kind=MsgKind.ACK)
    assert rel.on_arrival(stale) is None
    assert rel._tx[1].unacked  # stale incarnation: ignored
    good = _seq_msg(1, 0, 0, epoch=0, inc=5, ack=1,
                    ack_epoch=rel._session[1], kind=MsgKind.ACK)
    assert rel.on_arrival(good) is None
    assert not rel._tx[1].unacked  # current incarnation: retired


def test_dead_peer_verdict_expires_and_probe_reconnects():
    """With a TTL configured, a dead-peer verdict ages out: the next
    submit probes the peer over a fresh session and delivery resumes —
    no reset on the *surviving* side required."""
    env = Environment()
    a, b = node_pair(env)
    plan = FaultPlan(seed=SEED)
    plan.node_crash(1, us(10))
    plan.nic_reset(1, us(300))  # the reboot
    plan.install(env, nodes=[a, b], reliability_params=ReliabilityParams(
        rto_ns=us(20), rto_max_ns=us(40), max_retries=2,
        dead_peer_ttl_ns=us(200)))
    port = b.nic.open_port(5, MX_KERNEL_COSTS)
    port.post_receive(PostedReceive(match=None, capacity=4096, keep_data=True))
    port.post_receive(PostedReceive(match=None, capacity=4096, keep_data=True))
    seen = {}

    def script(env):
        yield env.timeout(us(50))  # b is down
        a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=0, size=64,
                                    data=bytes(64), fw_send_ns=500))
        yield env.timeout(us(250))
        seen["dead"] = 1 in a.nic._rel.dead_peers
        yield env.timeout(us(300))  # past reboot and TTL
        a.nic.submit(SendDescriptor(dst_nic=1, dst_port=5, match=1, size=64,
                                    data=bytes(64), fw_send_ns=500))

    env.run(until=env.process(script(env)))
    env.run()
    assert seen["dead"]  # the give-up verdict stood while b was down
    assert 1 not in a.nic._rel.dead_peers  # probe lifted it
    assert b.nic.messages_received >= 1  # and got through


# -- NBD fail-fast reasons ----------------------------------------------------


def _nbd_against_crashed_server(reliability_params, timeout_ns, max_retries):
    env = Environment()
    client_node, server_node = node_pair(env)
    plan = FaultPlan(seed=SEED).node_crash(1, us(10))
    plan.install(env, nodes=[client_node, server_node],
                 reliability_params=reliability_params)
    server = NbdServer(server_node, 3, api="mx", device_blocks=4)
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, 4,
                    timeout_ns=timeout_ns, max_retries=max_retries)
    space = client_node.new_process_space()
    out = space.mmap(BLOCK_SIZE)
    caught = {}

    def script(env):
        yield env.timeout(us(50))  # server is down by now
        try:
            yield from dev.read(space, out, 0, BLOCK_SIZE)
        except Eio as exc:
            caught["reason"] = exc.reason

    env.run(until=env.process(script(env)))
    return caught


def test_nbd_dead_peer_verdict_fails_fast_with_reason():
    """When the fabric declares the server dead, the device gives up
    immediately with Eio(reason="dead_peer") — callers should fail
    over, not retry the same server."""
    caught = _nbd_against_crashed_server(
        ReliabilityParams(rto_ns=us(20), rto_max_ns=us(40), max_retries=2),
        timeout_ns=ms(2), max_retries=6)
    assert caught["reason"] == "dead_peer"


def test_nbd_timeout_exhaustion_reports_timeout_reason():
    """With the fabric still retrying (no dead verdict yet), budget
    exhaustion surfaces as Eio(reason="timeout") — the same server may
    answer a later retry."""
    caught = _nbd_against_crashed_server(
        ReliabilityParams(rto_ns=ms(10), rto_max_ns=ms(10), max_retries=1000),
        timeout_ns=us(200), max_retries=1)
    assert caught["reason"] == "timeout"
