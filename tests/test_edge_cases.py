"""Edge-case tests across the stack: boundaries, exhaustion, contention."""

import pytest

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.streams import stream
from repro.bench.transports import MxTransport
from repro.cluster import node_pair, star
from repro.errors import (
    GMRegistrationError,
    GMSendQueueFull,
    TranslationTableFull,
)
from repro.gm import GmPort
from repro.gm.api import GM_SEND_QUEUE_DEPTH
from repro.hw.params import NicParams, PCI_XD, MX_STRATEGY
from repro.mx import MxEndpoint, MxSegment
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


def run(env, gen):
    return env.run(until=env.process(gen))


# -- MX message-class boundaries ------------------------------------------------


@pytest.mark.parametrize("size,expected", [
    (MX_STRATEGY.small_max, "small"),
    (MX_STRATEGY.small_max + 1, "medium"),
    (MX_STRATEGY.medium_max, "medium"),
    (MX_STRATEGY.medium_max + 1, "large"),
])
def test_mx_class_boundaries_exact(size, expected):
    env = Environment()
    a, b = node_pair(env)
    ep = MxEndpoint(a, 1, context="kernel")
    MxEndpoint(b, 1, context="kernel")
    src = a.kspace.kmalloc(size)

    def script(env):
        req = yield from ep.isend(1, 1, [MxSegment.kernel(src.vaddr, size)])

    run(env, script(env))
    counters = {
        "small": ep.sends_small,
        "medium": ep.sends_medium,
        "large": ep.sends_large,
    }
    assert counters[expected] == 1
    assert sum(counters.values()) == 1


def test_mx_boundary_messages_deliver_correctly():
    env = Environment()
    a, b = node_pair(env)
    ep_a = MxEndpoint(a, 1, context="kernel")
    ep_b = MxEndpoint(b, 1, context="kernel")
    for i, size in enumerate((128, 129, 32 * 1024, 32 * 1024 + 1)):
        src = a.kspace.kmalloc(size)
        dst = b.kspace.kmalloc(size)
        payload = bytes((j + i) % 256 for j in range(size))
        a.kspace.write_bytes(src.vaddr, payload)

        def receiver(env, dst=dst, size=size, i=i):
            req = yield from ep_b.irecv([MxSegment.kernel(dst.vaddr, size)],
                                        match=i)
            yield from ep_b.wait(req)

        def sender(env, src=src, size=size, i=i):
            req = yield from ep_a.isend(1, 1,
                                        [MxSegment.kernel(src.vaddr, size)],
                                        match=i)
            yield from ep_a.wait(req)

        env.process(sender(env))
        run(env, receiver(env))
        assert b.kspace.read_bytes(dst.vaddr, size) == payload


# -- GM limits --------------------------------------------------------------------


def test_gm_send_queue_depth_enforced():
    env = Environment()
    a, b = node_pair(env)
    space = a.new_process_space()
    port = GmPort(a, 1, space)
    size = 32 * 1024  # large enough that the wire backs the queue up
    vaddr = space.mmap(size)

    def script(env):
        yield from port.register(vaddr, size)
        with pytest.raises(GMSendQueueFull):
            # posting outruns wire completions well before 2x depth
            for _ in range(2 * GM_SEND_QUEUE_DEPTH):
                yield from port.send(1, 9, vaddr, size)

    run(env, script(env))


def test_translation_table_exhaustion_fails_registration():
    env = Environment()
    params = NicParams(link=PCI_XD, translation_table_entries=8)
    from repro.cluster import Node
    from repro.hw.params import HostParams

    node = Node(env, 0, HostParams(nic=params, memory_frames=1024))
    space = node.new_process_space()
    port = GmPort(node, 1, space)
    v1 = space.mmap(8 * PAGE_SIZE)
    v2 = space.mmap(PAGE_SIZE)

    def script(env):
        yield from port.register(v1, 8 * PAGE_SIZE)  # fills the table
        with pytest.raises(TranslationTableFull):
            yield from port.register(v2, PAGE_SIZE)

    run(env, script(env))


def test_gm_zero_length_registration_rejected():
    env = Environment()
    a, _ = node_pair(env)
    space = a.new_process_space()
    port = GmPort(a, 1, space)
    with pytest.raises(GMRegistrationError):
        run(env, port.register(space.mmap(PAGE_SIZE), 0))


# -- switch contention ----------------------------------------------------------------


def test_two_senders_to_one_target_share_the_downlink():
    """Incast: two nodes streaming to one target halve their rate."""
    env = Environment()
    nodes, switch = star(env, 3)
    t0, t1, rx = nodes
    eps = [MxTransport(n, 1, peer_node=2, peer_ep=1, context="kernel")
           for n in (t0, t1)]
    rx_a = MxTransport(rx, 1, peer_node=0, peer_ep=1, context="kernel")
    prepare_pair(env, eps[0], rx_a, 256 * 1024)
    env.run(until=env.process(eps[1].prepare(256 * 1024)))
    size, count = 256 * 1024, 8
    done = {}

    def blast(env, t, idx):
        for i in range(count):
            yield from t.send(size, match=idx)
        done[idx] = env.now

    def drain(env):
        for i in range(2 * count):
            yield from rx_a.recv(size)
        done["rx"] = env.now

    env.process(blast(env, eps[0], 0))
    env.process(blast(env, eps[1], 1))
    run(env, drain(env))
    total_bytes = 2 * count * size
    achieved = total_bytes / done["rx"] * 1e3  # MB/s
    # the shared downlink is the bottleneck: ~250 MB/s aggregate, not 500
    assert 200 < achieved < 255


# -- streaming harness ---------------------------------------------------------------


def test_stream_beats_pingpong_at_medium_sizes():
    def transports():
        env = Environment()
        a, b = node_pair(env)
        ta = MxTransport(a, 1, peer_node=1, peer_ep=1, context="kernel")
        tb = MxTransport(b, 1, peer_node=0, peer_ep=1, context="kernel")
        prepare_pair(env, ta, tb, 8192)
        return env, ta, tb

    env, ta, tb = transports()
    pp = ping_pong(env, ta, tb, 8192, rounds=8).bandwidth_mb_s
    env, ta, tb = transports()
    st = stream(env, ta, tb, 8192, messages=32).bandwidth_mb_s
    assert st > 1.3 * pp


def test_stream_validates_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        stream(env, None, None, 64, messages=0)
