"""Tests for the user-space ORFA client (repro.orfa.client)."""

import pytest

from repro.cluster import node_pair
from repro.errors import Enoent
from repro.orfa import OrfaClient, OrfaServer
from repro.sim import Environment
from repro.units import PAGE_SIZE

BACKENDS = ["mx", "gm"]


def build(api):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api=api)
    env.run(until=server.start())
    space = client_node.new_process_space()
    client = OrfaClient(client_node, 4, space, (server_node.node_id, 3), api=api)
    env.run(until=env.process(client.setup()))
    return env, client_node, server, client, space


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.mark.parametrize("api", BACKENDS)
def test_create_write_read_roundtrip(api):
    env, node, server, client, space = build(api)
    payload = bytes(range(256)) * 64  # 16 kB
    src = space.mmap(len(payload))
    dst = space.mmap(len(payload))
    space.write_bytes(src, payload)

    def script(env):
        fd = yield from client.open("/f", create=True)
        yield from client.write(fd, src, len(payload))
        client.seek(fd, 0)
        n = yield from client.read(fd, dst, len(payload))
        yield from client.close(fd)
        return n

    assert run(env, script(env)) == len(payload)
    assert space.read_bytes(dst, len(payload)) == payload


@pytest.mark.parametrize("api", BACKENDS)
def test_large_write_is_chunked(api):
    """Writes above the protocol wsize split into several requests."""
    env, node, server, client, space = build(api)
    payload = bytes((i * 5) % 256 for i in range(100_000))
    src = space.mmap(len(payload))
    space.write_bytes(src, payload)

    def script(env):
        fd = yield from client.open("/big", create=True)
        yield from client.write(fd, src, len(payload))
        yield from client.close(fd)

    before = server.requests_served
    run(env, script(env))
    write_requests = server.requests_served - before
    assert write_requests > 3  # lookup/create + >= 4 write chunks
    assert server.fs.read_raw(2, 0, len(payload)) == payload


@pytest.mark.parametrize("api", BACKENDS)
def test_stat_and_mkdir(api):
    env, node, server, client, space = build(api)

    def script(env):
        yield from client.mkdir("/d")
        fd = yield from client.open("/d/x", create=True)
        buf = space.mmap(PAGE_SIZE)
        yield from client.write(fd, buf, 100)
        yield from client.close(fd)
        attrs = yield from client.stat("/d/x")
        return attrs

    attrs = run(env, script(env))
    assert attrs.size == 100


@pytest.mark.parametrize("api", BACKENDS)
def test_open_missing_raises(api):
    env, node, server, client, space = build(api)
    with pytest.raises(Enoent):
        run(env, client.open("/nope"))


def test_every_metadata_op_hits_the_server():
    """ORFA has no client-side caches: repeating a stat repeats the
    LOOKUPs (the weakness that motivated in-kernel ORFS, section 3.1)."""
    env, node, server, client, space = build("mx")

    def script(env):
        fd = yield from client.open("/f", create=True)
        yield from client.close(fd)

    run(env, script(env))
    before = server.requests_served
    run(env, client.stat("/f"))
    mid = server.requests_served
    run(env, client.stat("/f"))
    assert mid > before
    assert server.requests_served - mid == mid - before  # same cost again


def test_gm_client_reuses_registration_cache_for_reads():
    env, node, server, client, space = build("gm")
    payload = b"r" * (64 * 1024)
    src = space.mmap(len(payload))
    space.write_bytes(src, payload)
    dst = space.mmap(len(payload))

    def script(env):
        fd = yield from client.open("/f", create=True)
        yield from client.write(fd, src, len(payload))
        client.seek(fd, 0)
        yield from client.read(fd, dst, len(payload))
        client.seek(fd, 0)
        yield from client.read(fd, dst, len(payload))
        yield from client.close(fd)

    run(env, script(env))
    cache = client.side.regcache
    assert cache.hits >= 1  # second read reuses the registration
