"""Hybrid flow fidelity: equivalence with packet/train modes, admission
refusals, contention and fault de-coalescing, and the mode switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bench.netpipe import prepare_pair
from repro.bench.topo import MODES, filtered_obs, run_topo
from repro.bench.transports import MxTransport
from repro.cluster.topo import fat_tree
from repro.faults import FaultPlan
from repro.hw import flow as flowmod
from repro.hw import train
from repro.hw.params import FabricParams, host_params
from repro.mem import sglist
from repro.sim import Environment
from repro.units import KiB

SMALL_HOST = host_params(memory_frames=2048)


@pytest.fixture(autouse=True)
def _fidelity_restored():
    yield
    flowmod.set_flow_mode(True)
    train.set_coalescing(True)


def _counters(registry, prefix):
    return {k: v for k, v in registry.snapshot()["counters"].items()
            if k.startswith(prefix)}


def _run_pair(mode, size, *, src=0, dst=4, fabric=None, plan_fn=None,
              extra_fn=None):
    """One (src -> dst) transfer on a k=4 fat-tree in one fidelity mode.

    ``plan_fn(fabric)`` may return a FaultPlan to install; ``extra_fn``
    may return additional processes to run alongside.  Returns the
    fingerprint dict for cross-mode comparison.
    """
    flowmod.set_flow_mode(mode == "flow")
    train.set_coalescing(mode != "packet")
    sglist.HOST_COPIES.reset()
    registry = obs.MetricsRegistry()
    with obs.installed_registry(registry):
        env = Environment()
        f = fat_tree(env, 4, host=SMALL_HOST,
                     fabric=fabric or FabricParams())
        plan = plan_fn(env, f) if plan_fn is not None else None
        ta = MxTransport(f.nodes[src], 1, peer_node=dst, peer_ep=2,
                         context="kernel")
        tb = MxTransport(f.nodes[dst], 2, peer_node=src, peer_ep=1,
                         context="kernel")
        prepare_pair(env, ta, tb, size)
        done = {}

        def tx():
            yield from ta.send(size)

        def rx():
            yield from tb.recv(size)
            done["at"] = env.now

        env.process(tx())
        env.process(rx())
        if extra_fn is not None:
            for proc in extra_fn(env, f):
                env.process(proc)
        env.run()
        snap = registry.snapshot()
        return {
            "done": done.get("at"),
            "now": env.now,
            "obs": filtered_obs(snap),
            "counters": snap["counters"],
            "histograms": snap["histograms"],
            "plan": plan,
        }


# -- equivalence ------------------------------------------------------------


def test_three_mode_identity_same_edge():
    """Uncontended exchange: completion tables and mode-filtered metric
    snapshots are byte-identical across packet, train and flow."""
    results = {m: run_topo(4, "identity", m, 64 * KiB) for m in MODES}
    ref = results["packet"]
    for mode in ("train", "flow"):
        assert results[mode]["completions"] == ref["completions"]
        assert results[mode]["obs"] == ref["obs"]
    assert results["flow"]["events"] < ref["events"]


@settings(max_examples=6, deadline=None, database=None)
@given(size=st.integers(min_value=8 * 4096, max_value=256 * KiB))
def test_flow_completion_exact_uncontended(size):
    """Any flow-eligible size on an uncontended cross-pod path finishes
    at the identical instant in all three modes (the trailing-FRAG
    back-pressure makes the analytic model exact)."""
    res = {m: _run_pair(m, size) for m in MODES}
    assert res["flow"]["done"] == res["packet"]["done"] \
        == res["train"]["done"]
    assert res["flow"]["obs"] == res["packet"]["obs"]


def test_congested_flow_reduces_events():
    packet = run_topo(4, "congested", "packet", 64 * KiB)
    flow = run_topo(4, "congested", "flow", 64 * KiB)
    assert flow["events"] * 2 < packet["events"]
    # Bytes are conserved regardless of scheduling model: the filtered
    # snapshots carry every link/switch byte counter.
    pb = {k: v for k, v in packet["obs"]["counters"].items()
          if k.startswith("net.link.bytes")}
    fb = {k: v for k, v in flow["obs"]["counters"].items()
          if k.startswith("net.link.bytes")}
    assert pb == fb


# -- admission refusals and mode switch -------------------------------------


def _counters_from(result, prefix):
    return {k: v for k, v in result["counters"].items()
            if k.startswith(prefix)}


def test_small_messages_not_reserved():
    r = _run_pair("flow", 4 * 4096)  # below min_flow_frags
    assert r["done"] is not None
    assert sum(_counters_from(r, "net.flows{").values()) == 0


def test_adaptive_routing_refuses_reservation():
    r = _run_pair("flow", 64 * KiB,
                  fabric=FabricParams(routing="adaptive"))
    assert r["done"] is not None
    refused = _counters_from(r, "net.flow_refused")
    assert sum(refused.values()) >= 1
    assert any("reason=routing" in k for k in refused)
    assert sum(_counters_from(r, "net.flows{").values()) == 0


def test_set_flow_mode_mirrors_set_coalescing():
    assert flowmod.flow_mode_enabled()
    flowmod.set_flow_mode(False)
    assert not flowmod.flow_mode_enabled()
    r = _run_pair("train", 64 * KiB)  # train mode: flows off, trains on
    assert r["done"] is not None
    assert sum(_counters_from(r, "net.flows{").values()) == 0


def test_flow_metrics_emitted():
    r = _run_pair("flow", 64 * KiB)
    flows = _counters_from(r, "net.flows{")
    assert sum(flows.values()) == 1
    hist = {k: v for k, v in r["histograms"].items()
            if k.startswith("net.flow_len")}
    assert hist  # histogram observed the carried packet count


# -- de-coalescing ----------------------------------------------------------


def test_contention_decoalesces_flow():
    """Interloper traffic past the threshold on a reserved direction
    collapses the flow; bytes still balance and both transfers land."""
    size = 256 * KiB
    extra_done = {}

    def extra(env, f):
        # Host 1's ECMP path to host 4 on ports (1, 1) shares the
        # edge->agg trunk direction with the reserved 0 -> 4 flow
        # (probed: both hash onto p0a0/p1a0).  Each 12 KiB message is
        # train-blocked on the reserved direction ("flow"), so its
        # packets transmit individually and accumulate as interlopers;
        # 7 x 12 KiB = 84 KiB > the 64 KiB epoch threshold.
        tc = MxTransport(f.nodes[1], 1, peer_node=4, peer_ep=1,
                         context="kernel")
        td = MxTransport(f.nodes[4], 1, peer_node=1, peer_ep=1,
                         context="kernel")
        prepare_pair(env, tc, td, 12 * KiB)

        def blast():
            yield env.timeout(200_000)  # after the flow is admitted
            for i in range(7):
                yield from tc.send(12 * KiB, match=i)

        def drain():
            for i in range(7):
                yield from td.recv(12 * KiB)
            extra_done["at"] = env.now

        return [blast(), drain()]

    r = _run_pair("flow", size, extra_fn=extra)
    assert r["done"] is not None and extra_done["at"] is not None
    dec = _counters_from(r, "net.flow_decoalesce")
    assert any("reason=contention" in k for k in dec)


def test_link_down_decoalesce_reproduces_packet_mode():
    """Regression: a down window opening mid-flow must reproduce packet
    fidelity from the onset — identical fault traces (drop instants and
    payloads), identical recovery, identical completion."""
    size = 256 * KiB
    window = (400_000, 520_000)

    def plan_fn(env, f):
        path = f.path(0, 4, src_port=1, dst_port=2)
        trunk = path[1][0]  # first switch-egress hop: an edge->agg trunk
        assert trunk.name.startswith("ft.t.")
        records = []
        plan = FaultPlan(seed=5).link_down(trunk.name, *window)
        # subscribe, don't record_everything: a wire-category listener
        # would (correctly) refuse the reservation at admission.
        plan.tracer.subscribe("fault", records.append)
        plan.install(env, nodes=f.nodes,
                     switches=list(f.switches.values()))
        plan.records = records
        return plan

    res = {m: _run_pair(m, size, plan_fn=plan_fn)
           for m in ("packet", "flow")}
    flow_recs = [(r.time, r.label, r.payload)
                 for r in res["flow"]["plan"].records]
    packet_recs = [(r.time, r.label, r.payload)
                   for r in res["packet"]["plan"].records]
    assert flow_recs == packet_recs
    assert any(r[1] == "switch_drop" for r in flow_recs)  # window hit
    dec = _counters_from(res["flow"], "net.flow_decoalesce")
    assert any("reason=fault" in k for k in dec)
    assert res["flow"]["done"] == res["packet"]["done"]
    assert res["flow"]["obs"] == res["packet"]["obs"]
