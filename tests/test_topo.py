"""Fabric topology layer: fat-tree/dragonfly construction, ECMP
determinism, adaptive routing under faults, pod partitioning, and
sharded-vs-sequential identity of a partitioned fat-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import star
from repro.cluster.partition import (PartitionError, TopoLink, cut_links,
                                     propose_partition, validate_partition)
from repro.cluster.topo import dragonfly, fat_tree
from repro.faults import FaultPlan
from repro.hw.params import FabricParams, HostParams, NicParams, PCI_XD, \
    host_params
from repro.sim import Environment
from repro.sim.shard import run_sequential, run_sharded
from repro.units import KiB, PAGE_SIZE

SMALL_HOST = host_params(memory_frames=2048)


# -- construction -----------------------------------------------------------


def test_fat_tree_shape():
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST)
    assert len(f.nodes) == 16  # k^3/4
    # (k/2)^2 cores + k pods x (k/2 edge + k/2 agg)
    assert len(f.switches) == 4 + 4 * 4
    # hosts 0..3 live in pod 0 (two per edge switch)
    assert f.locator[0] == f.locator[1] == "ft.p0e0"
    assert f.locator[2] == f.locator[3] == "ft.p0e1"


def test_fat_tree_rejects_odd_k():
    with pytest.raises(ValueError):
        fat_tree(Environment(), 3)


def test_fat_tree_cross_pod_path_shape():
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST)
    # Cross-pod: host uplink + edge + agg + core + agg + edge = 6 links,
    # 5 switch-egress hops; terminal hop is the destination's uplink.
    path = f.path(0, 4)
    assert path is not None and len(path) == 6
    assert path[0][2] is None  # source uplink has no forwarding switch
    assert all(sw is not None for _l, _e, sw in path[1:])
    # Same-edge: uplink + one edge egress.
    assert len(f.path(0, 1)) == 2


def test_dragonfly_paths():
    env = Environment()
    f = dragonfly(env, groups=3, routers=2, hosts=2, host=SMALL_HOST)
    assert len(f.nodes) == 12
    # Minimal routing: local, global, local => at most 3 switch hops
    # (4 links) beyond the source uplink.
    for src, dst in [(0, 5), (0, 11), (3, 8), (1, 2)]:
        path = f.path(src, dst)
        assert path is not None and len(path) <= 5


# -- ECMP determinism -------------------------------------------------------


@settings(max_examples=20, deadline=None, database=None)
@given(src=st.integers(0, 15), dst=st.integers(0, 15),
       src_port=st.integers(0, 7), dst_port=st.integers(0, 7),
       seed=st.integers(1, 4))
def test_ecmp_path_deterministic(src, dst, src_port, dst_port, seed):
    """The frozen path for one (src, dst, ports, seed) tuple is a pure
    function: identical on re-query and across independently built
    fabrics — every FRAG and the final packet of a transfer take it."""
    if src == dst:
        return
    fab = FabricParams(ecmp_seed=seed)
    f1 = fat_tree(Environment(), 4, host=SMALL_HOST, fabric=fab)
    f2 = fat_tree(Environment(), 4, host=SMALL_HOST, fabric=fab)
    p1 = f1.path(src, dst, src_port=src_port, dst_port=dst_port)
    p1_again = f1.path(src, dst, src_port=src_port, dst_port=dst_port)
    p2 = f2.path(src, dst, src_port=src_port, dst_port=dst_port)
    names1 = [link.name for link, _e, _s in p1]
    assert names1 == [link.name for link, _e, _s in p1_again]
    assert names1 == [link.name for link, _e, _s in p2]
    assert p1[-1][0] is f1.switches[f1.locator[dst]]._links[dst]


def test_ecmp_spreads_over_cores():
    """Per-switch seed mixing must avoid polarization: the cross-pod
    flows of pod 0 should use more than one core switch."""
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST)
    cores = set()
    for src in range(4):
        for dst in range(4, 16):
            for sp in (1, 2):
                path = f.path(src, dst, src_port=sp, dst_port=2)
                for _link, _end, sw in path:
                    if sw is not None and sw.name.startswith("ft.core"):
                        cores.add(sw.name)
    assert len(cores) > 1


# -- adaptive routing under faults ------------------------------------------


def test_adaptive_never_selects_down_link():
    """With a seeded FaultPlan holding one uplink down, the adaptive
    selector must route every flow over the surviving candidates for
    the whole window."""
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST,
                 fabric=FabricParams(routing="adaptive"))
    edge = f.switches["ft.p0e0"]
    trunks = [link for link in edge.trunk_links()]
    assert len(trunks) == 2  # k/2 aggregation uplinks
    down_name = trunks[0].name
    plan = FaultPlan(seed=11).link_down(down_name, 1_000, 2_000_000)
    plan.install(env, nodes=f.nodes, switches=list(f.switches.values()),
                 reliability=False)
    picks = []

    def probe():
        yield env.timeout(5_000)  # inside the down window
        for dst in range(4, 16):
            for sp in range(4):
                link, _end = edge._select_trunk(dst, 0, sp, 2)
                picks.append(link)

    env.process(probe())
    env.run()
    assert picks and all(not link.is_down for link in picks)
    assert any(link.name == down_name for link in trunks)  # sanity


def test_adaptive_paths_not_frozen():
    """Adaptive routing is queue-state dependent, so the flow engine
    must decline to freeze a multi-trunk path."""
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST,
                 fabric=FabricParams(routing="adaptive"))
    assert f.path(0, 4) is None
    assert len(f.path(0, 1)) == 2  # same-edge needs no trunk decision


# -- partitioning -----------------------------------------------------------


def test_propose_pods_cuts_only_inter_pod_trunks():
    env = Environment()
    f = fat_tree(env, 4, host=SMALL_HOST)
    assignment = f.propose_pods(2)
    links = f.topolinks()
    validate_partition(links, assignment)
    for link in cut_links(links, assignment):
        # Every proposed cut is an inter-group trunk with the fat
        # propagation (= the sharded lookahead window).
        assert link.propagation_ns >= f.params.inter_propagation_ns
    # Hosts stay glued to their edge switch; pods stay whole.
    for nid, sw_name in f.locator.items():
        assert assignment[f._node_name[nid]] == assignment[sw_name]
    for sw_name, group in f.group_of.items():
        if group >= 0:
            peer = next(s for s, g in f.group_of.items()
                        if g == group and s != sw_name)
            assert assignment[sw_name] == assignment[peer]


def test_min_cut_propagation_contracts_thin_links():
    entities = ["a", "b", "c", "d"]
    links = [
        TopoLink("t0", "a", "b", 500),
        TopoLink("t1", "b", "c", 2000),
        TopoLink("t2", "c", "d", 500),
    ]
    assignment = propose_partition(entities, links, 2,
                                   min_cut_propagation_ns=2000)
    assert assignment["a"] == assignment["b"]
    assert assignment["c"] == assignment["d"]
    assert assignment["a"] != assignment["c"]
    # Without the floor the thin links are legal cuts and 4 shards fit;
    # with it only the fat trunk separates the two components.
    propose_partition(entities, links, 4)
    with pytest.raises(PartitionError):
        propose_partition(entities, links, 3, min_cut_propagation_ns=2000)


# -- star name_prefix -------------------------------------------------------


def test_star_name_prefix_threads_through():
    env = Environment()
    nodes, switch = star(env, 3, name_prefix="rack0.n",
                         switch_name="rack0.sw")
    assert [n.name for n in nodes] == ["rack0.n0", "rack0.n1", "rack0.n2"]
    assert switch.name == "rack0.sw"


# -- sharded fat-tree -------------------------------------------------------


class FatTreeShardScenario:
    """A k=4 fat-tree split pod-wise over two shards, with cross-cut
    transfers in both directions.  Partial fabrics install no
    FlowNetwork (reservations cannot see across the cut), so sharded
    and sequential runs must agree exactly."""

    nshards = 2
    nphases = 2

    def __init__(self, size=32 * KiB):
        self.size = size
        probe = fat_tree(Environment(), 4, host=SMALL_HOST, flow=None)
        self.assignment = probe.propose_pods(2)
        self._borders = [
            (l.name, self.assignment[l.a], self.assignment[l.b])
            for l in cut_links(probe.topolinks(), self.assignment)
        ]
        by_shard = {0: [], 1: []}
        for nid in sorted(probe.locator):
            by_shard[self.assignment[probe._node_name[nid]]].append(nid)
        # Two transfers per direction across the cut.
        self.pairs = [
            (by_shard[0][0], by_shard[1][0]),
            (by_shard[0][1], by_shard[1][1]),
            (by_shard[1][2], by_shard[0][2]),
            (by_shard[1][3], by_shard[0][3]),
        ]

    def borders(self):
        return self._borders

    def build(self, shard_id, env, hub):
        from repro.bench.transports import MxTransport

        fabric = fat_tree(env, 4, host=SMALL_HOST, hub=hub,
                          shard_id=shard_id, assignment=self.assignment)
        local = {node.node_id: node for node in fabric.nodes}
        senders = {}
        receivers = {}
        for src, dst in self.pairs:
            if src in local:
                senders[(src, dst)] = MxTransport(
                    local[src], 1, peer_node=dst, peer_ep=2,
                    context="kernel")
            if dst in local:
                receivers[(src, dst)] = MxTransport(
                    local[dst], 2, peer_node=src, peer_ep=1,
                    context="kernel")
        return {"senders": senders, "receivers": receivers, "done": {}}

    def phase(self, shard_id, k, env, ctx):
        if k == 0:
            return [t.prepare(max(self.size, PAGE_SIZE))
                    for t in (list(ctx["senders"].values())
                              + list(ctx["receivers"].values()))]
        procs = [self._tx(t) for t in ctx["senders"].values()]
        procs += [self._rx(env, ctx, pair, t)
                  for pair, t in ctx["receivers"].items()]
        return procs

    def _tx(self, t):
        yield from t.send(self.size)

    def _rx(self, env, ctx, pair, t):
        yield from t.recv(self.size)
        ctx["done"][pair] = env.now

    def result(self, shard_id, env, ctx):
        return {"done": sorted(ctx["done"].items()), "now": env.now}


def test_sharded_fat_tree_matches_sequential():
    scenario = FatTreeShardScenario()
    assert scenario._borders  # the partition really cuts something
    seq = run_sequential(scenario)
    shard = run_sharded(scenario)
    assert shard.now == seq.now
    assert shard.events_processed == seq.events_processed
    for sid in range(scenario.nshards):
        assert shard.payloads[sid] == seq.payloads[0][sid]
    done = dict(kv for sid in range(2)
                for kv in shard.payloads[sid]["done"])
    assert sorted(done) == sorted(scenario.pairs)
