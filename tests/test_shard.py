"""Sharded engine: borders, partitioning, and byte-identity vs sequential.

The hard requirement of the sharded engine is that splitting a topology
across worker processes is *unobservable*: figures, metrics snapshots
and fault traces must come out byte-identical to the single-process
run.  These tests exercise the protocol pieces in isolation (BorderEnd,
BorderLink, the partitioner) and then the whole machinery end-to-end
against :func:`repro.sim.shard.run_sequential`.
"""

import multiprocessing
import time

from hypothesis import given, settings, strategies as st

import pytest

from repro import obs
from repro.bench.figures import FIGURES
from repro.bench.shard import (
    DuplexStreamScenario,
    NetpipeShardScenario,
    SHARD_FIGURES,
)
from repro.bench.transports import GmUserTransport
from repro.cluster import (
    Node,
    TopoLink,
    cut_links,
    propose_partition,
    validate_partition,
)
from repro.errors import NetworkError, PartitionError, ShardError, SimulationError
from repro.faults import FaultPlan
from repro.hw.params import HostParams, NicParams, PCI_XD
from repro.hw.switch import Switch
from repro.sim import Environment
from repro.sim.border import AsyncSender, BorderEnd, BorderLink
from repro.sim.shard import merge_trace_records, run_sequential, run_sharded
from repro.sim.trace import render_trace
from repro.units import KiB


# -- BorderEnd: the null-token protocol state machine -------------------------


def _pipe_pair(lookahead=500):
    c0, c1 = multiprocessing.Pipe()
    return (BorderEnd(c0, "w", 0, lookahead), BorderEnd(c1, "w", 0, lookahead))


def test_border_ship_flush_take_due():
    a, b = _pipe_pair()
    a.ship(100, "x")
    a.ship(250, "y")
    assert b.pump() is False          # nothing sent yet
    a.flush()
    assert a.sent == 2
    assert b.pump() is True
    assert b.received == 2
    assert b.staged_min() == 100
    # strictly-below semantics: an item AT the limit stays staged
    assert b.take_due(100) == []
    due = b.take_due(251)
    assert [(t, item) for t, _seq, item in due] == [(100, "x"), (250, "y")]
    # rx_seq preserves arrival order for same-timestamp determinism
    assert [seq for _t, seq, _i in due] == [1, 2]
    assert not b.has_staged()


def test_border_grants_are_monotone():
    a, b = _pipe_pair()
    a.grant(600)
    a.grant(400)                      # stale: must not be sent
    a.grant(600)                      # duplicate: must not be sent
    b.pump()
    assert b.horizon == 600
    a.grant(900)
    b.pump()
    assert b.horizon == 900


def test_border_flush_before_grant_orders_pipe():
    # A grant vouches for every item before it: FIFO pipe + flush-first
    # means the receiver can never see the horizon without the items.
    a, b = _pipe_pair()
    a.ship(120, "x")
    a.flush()
    a.grant(700)
    b.pump()
    assert b.horizon == 700
    assert b.staged_min() == 120


def test_border_mark_and_reset():
    a, b = _pipe_pair()
    a.grant(5_000)
    a.send_mark()
    b.drain_to_mark()                 # consumes the stale token + mark
    assert b.horizon == 5_000
    b.reset_horizons(1_000)
    assert b.horizon == 1_000
    assert b.granted == 1_000
    b.grant(900)                      # below re-base: suppressed
    assert not a.conn.poll()


def test_border_rejects_zero_lookahead():
    c0, _c1 = multiprocessing.Pipe()
    with pytest.raises(SimulationError):
        BorderEnd(c0, "w", 0, 0)


def test_async_sender_never_blocks_the_poster():
    # Regression for the k=16 sharded deadlock: a wire item bigger than
    # the OS pipe buffer makes Connection.send block, and two workers
    # both mid-send at each other hang forever.  With the writer
    # thread, posting returns immediately no matter how much is queued,
    # and everything still arrives in FIFO order once somebody reads.
    c0, c1 = multiprocessing.Pipe()
    sender = AsyncSender()
    payloads = [("i", i, bytes([i % 251]) * (256 * KiB)) for i in range(16)]
    t0 = time.monotonic()
    for msg in payloads:
        sender.post(c0, msg)          # ~4 MiB total, far past the buffer
    posted_in = time.monotonic() - t0
    assert posted_in < 1.0, f"post() blocked for {posted_in:.1f}s"
    got = [c1.recv() for _ in payloads]
    assert got == payloads
    sender.close()


def test_border_ends_with_async_sender_cross_flush():
    # Both ends flood each other with over-buffer items through their
    # own writer threads — the exact mutual-send shape that used to
    # deadlock — then drain.  Item order per border must be preserved.
    c0, c1 = multiprocessing.Pipe()
    s0, s1 = AsyncSender(), AsyncSender()
    a = BorderEnd(c0, "w", 0, 500, post=lambda m: s0.post(c0, m))
    b = BorderEnd(c1, "w", 0, 500, post=lambda m: s1.post(c1, m))
    blob = bytes(128 * KiB)
    for i in range(8):
        a.ship(100 + i, ("a", i, blob))
        b.ship(100 + i, ("b", i, blob))
    a.flush()
    b.flush()
    a.grant(10_000)
    b.grant(10_000)
    deadline = time.monotonic() + 30
    while (a.received < 8 or b.received < 8) and time.monotonic() < deadline:
        a.pump()
        b.pump()
    assert a.received == 8 and b.received == 8
    assert a.horizon == b.horizon == 10_000
    assert [e[2][1] for e in a.take_due(10_000)] == list(range(8))
    assert [e[2][1] for e in b.take_due(10_000)] == list(range(8))
    s0.close()
    s1.close()


# -- BorderLink: the cut wire -------------------------------------------------


def test_border_link_ships_at_absolute_arrival_time():
    env = Environment()
    c0, _c1 = multiprocessing.Pipe()
    border = BorderEnd(c0, "wire", 0, PCI_XD.propagation_ns)
    link = BorderLink(env, PCI_XD, border, local_end="a", name="wire")
    got = []
    link.attach("a", got.append)

    class Item:
        nbytes = 4096

    env.run(until=env.process(link.transmit("a", Item(), 4096)))
    # one item in the outbox, timestamped serialization + propagation
    assert len(border._outbox) == 1
    when, item = border._outbox[0]
    assert when == env.now + PCI_XD.propagation_ns
    # inbound deliveries go through the normal local endpoint
    border.deliver("pong")
    assert got == ["pong"]


def test_border_link_rejects_zero_propagation():
    import dataclasses

    env = Environment()
    c0, _c1 = multiprocessing.Pipe()
    flat = dataclasses.replace(PCI_XD, propagation_ns=0)
    with pytest.raises(NetworkError):
        BorderLink(env, flat,
                   BorderEnd(c0, "wire", 0, 500), local_end="a", name="wire")


def test_sequential_cut_link_arrivals_win_same_instant_ties():
    """The sequential reference applies the sharded border-first tie rule.

    A local event scheduled much earlier (lower insertion sequence) but
    firing at the same instant as a cut-link arrival must run *after*
    it, exactly as the ranked commit orders it inside a worker — the
    analytic-train-hold case that made fat-tree k=8 runs diverge when
    the reference still used plain insertion order.  Arrivals for
    different receiving shards at one instant must carry distinct ranks
    (shard id folded into the rank) and per-direction FIFO must hold.
    """
    from repro.sim.shard import _LocalHub

    env = Environment()
    hub = _LocalHub(env)
    hub.current_sid = 0
    link = hub.border_link("trunk", PCI_XD, local_end="a")
    hub.current_sid = 1
    assert hub.border_link("trunk", PCI_XD, local_end="b") is link
    assert link.is_border

    order = []
    link.attach("a", lambda item: order.append(("a", item)))
    link.attach("b", lambda item: order.append(("b", item)))

    when = PCI_XD.propagation_ns
    env.call_at(when, lambda: order.append(("local", None)))
    link._deliver_at("b", when, "x1")
    link._deliver_at("b", when, "x2")
    link._deliver_at("a", when, "y")
    env.run()
    # shard 0's arrival first (lower shard id in the rank), then shard
    # 1's in emission order, and the earlier-scheduled local event last
    assert order == [("a", "y"), ("b", "x1"), ("b", "x2"), ("local", None)]


# -- partitioner: every proposed cut is a sound border ------------------------


_topologies = st.integers(2, 8).flatmap(
    lambda n: st.tuples(
        st.just([f"e{i}" for i in range(n)]),
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from([0, 1, 500, 50_000]),
                st.booleans(),
            ),
            max_size=12,
        ),
    )
)


@given(topo=_topologies, nshards=st.integers(1, 4))
@settings(max_examples=200, deadline=None)
def test_propose_partition_cuts_only_sound_links(topo, nshards):
    entities, raw = topo
    links = [
        TopoLink(f"l{i}", entities[a], entities[b], prop, has_faults=faulty)
        for i, (a, b, prop, faulty) in enumerate(raw)
    ]
    try:
        assignment = propose_partition(entities, links, nshards)
    except PartitionError:
        return  # topology has fewer sound components than shards
    assert set(assignment) == set(entities)
    assert set(assignment.values()) <= set(range(nshards))
    validate_partition(links, assignment)          # raises on unsound cut
    for link in cut_links(links, assignment):
        assert link.cuttable
        assert link.propagation_ns > 0
        assert not link.has_faults
    # deterministic: same inputs, same assignment
    assert propose_partition(entities, links, nshards) == assignment


def test_propose_partition_contracts_uncuttable_links():
    entities = ["a", "b", "c", "d"]
    links = [
        TopoLink("ab", "a", "b", 0),               # zero lookahead
        TopoLink("cd", "c", "d", 500, has_faults=True),
        TopoLink("bc", "b", "c", 500),             # the only sound cut
    ]
    assignment = propose_partition(entities, links, 2)
    assert assignment["a"] == assignment["b"]
    assert assignment["c"] == assignment["d"]
    assert assignment["b"] != assignment["c"]
    with pytest.raises(PartitionError):
        propose_partition(entities, links, 3)      # only 2 components


def test_validate_partition_rejects_unsound_cuts():
    links = [TopoLink("ab", "a", "b", 0)]
    with pytest.raises(PartitionError):
        validate_partition(links, {"a": 0, "b": 1})
    links = [TopoLink("ab", "a", "b", 500, has_faults=True)]
    with pytest.raises(PartitionError):
        validate_partition(links, {"a": 0, "b": 1})
    with pytest.raises(PartitionError):
        validate_partition(links, {"a": 0})        # missing entity
    validate_partition(links, {"a": 0, "b": 0})    # co-shard: fine


# -- end-to-end byte-identity -------------------------------------------------


def test_sharded_figure_identical_to_sequential_driver():
    # The real fig4a driver vs the forked 2-shard run: same rendered
    # table, byte for byte.
    assert SHARD_FIGURES["fig4a"]().render() == FIGURES["fig4a"]().render()


def test_sharded_bandwidth_series_with_trains_identical():
    # Large messages engage the packet-train fast path; trains and
    # truncations must survive the pipe crossing unchanged.
    scenario = NetpipeShardScenario(
        transport="gm_kernel_physical", sizes=(256 * KiB,),
        metric="bandwidth", rounds=2)
    sharded = run_sharded(scenario)
    sequential = run_sequential(scenario)
    assert sharded.payloads[0]["series"] == sequential.payloads[0][0]["series"]
    assert sharded.now == sequential.now
    assert sharded.events_processed == sequential.events_processed


def test_sharded_duplex_identical_to_sequential():
    scenario = DuplexStreamScenario(size=16 * KiB, count=6, pairs=2)
    sharded = run_sharded(scenario)
    sequential = run_sequential(scenario)
    assert sharded.now == sequential.now
    assert sharded.events_processed == sequential.events_processed
    assert sharded.payloads == [sequential.payloads[0][sid]
                                for sid in range(scenario.nshards)]


def test_obs_snapshot_merge_matches_single_process():
    scenario = NetpipeShardScenario(
        transport="gm_user", sizes=(4096,), metric="latency_us",
        rounds=2, observe=True)
    sharded = run_sharded(scenario)
    sequential = run_sequential(scenario)
    merged = sharded.merged_metrics()
    single = sequential.shards[0]["metrics"]
    assert obs.snapshot_to_json(merged) == obs.snapshot_to_json(single)


# -- fault streams across a sharded star topology -----------------------------


class StarFaultScenario:
    """Star cluster cut at one spoke: switch + node0 + node1 in shard 0,
    node2 alone in shard 1.  A seeded drop stream runs on ``star.l0``
    (wholly inside shard 0 — the partitioner forbids faulted cuts) while
    ping-pong traffic flows both within shard 0 and across the border.
    """

    observe = False
    nshards = 2
    nphases = 2

    def __init__(self, seed=3, rounds=6, size=8 * KiB):
        self.seed = seed
        self.rounds = rounds
        self.size = size

    def borders(self):
        return [("star.l2", 0, 1)]

    def _plan(self):
        plan = FaultPlan(seed=self.seed)
        records = plan.tracer.record_everything()
        plan.drop("star.l0", 0.25)
        return plan, records

    def build(self, shard_id, env, hub):
        plan, records = self._plan()
        params = HostParams(nic=NicParams(link=PCI_XD))
        if shard_id == 0:
            switch = Switch(env, PCI_XD, name="star")
            nodes = []
            for nid in (0, 1):
                node = Node(env, nid, params, name=f"node{nid}")
                uplink, end = switch.add_node(nid)
                node.nic.attach_link(uplink, end)
                nodes.append(node)
            wire = hub.border_link("star.l2", PCI_XD, local_end="a")
            switch.attach_port(2, wire, "a")
            plan.install(env, nodes=nodes, switches=[switch])
            transports = [
                GmUserTransport(nodes[0], 1, peer_node=1, peer_port=1),
                GmUserTransport(nodes[1], 1, peer_node=0, peer_port=1),
                GmUserTransport(nodes[1], 2, peer_node=2, peer_port=2),
            ]
        else:
            node = Node(env, 2, params, name="node2")
            wire = hub.border_link("star.l2", PCI_XD, local_end="b")
            node.nic.attach_link(wire, "b")
            plan.install(env, nodes=[node])
            transports = [GmUserTransport(node, 2, peer_node=1, peer_port=2)]
        return {"records": records, "transports": transports}

    def phase(self, shard_id, k, env, ctx):
        ts = ctx["transports"]
        if k == 0:
            return [t.prepare(self.size) for t in ts]
        if shard_id == 0:
            return [self._client(ts[0]), self._responder(ts[1]),
                    self._client(ts[2])]
        return [self._responder(ts[0])]

    def _client(self, t):
        for i in range(self.rounds):
            yield from t.send(self.size, match=i)
            yield from t.recv(self.size)

    def _responder(self, t):
        for i in range(self.rounds):
            yield from t.recv(self.size)
            yield from t.send(self.size, match=i)

    def result(self, shard_id, env, ctx):
        return {"records": list(ctx["records"]), "now": env.now}


def test_fault_trace_identical_across_sharded_star():
    scenario = StarFaultScenario()
    sharded = run_sharded(scenario)
    sequential = run_sequential(scenario)
    assert sharded.now == sequential.now
    sh_trace = render_trace(merge_trace_records(
        [sharded.payloads[sid]["records"] for sid in range(2)]))
    seq_trace = render_trace(merge_trace_records(
        [sequential.payloads[0][sid]["records"] for sid in range(2)]))
    assert "fault.drop" in seq_trace      # the stream actually fired
    assert sh_trace == seq_trace


# -- failure handling ---------------------------------------------------------


class _BoomScenario:
    observe = False
    nshards = 2
    nphases = 1

    def borders(self):
        return [("wire", 0, 1)]

    def build(self, shard_id, env, hub):
        hub.border_link("wire", PCI_XD,
                        local_end="a" if shard_id == 0 else "b")
        if shard_id == 1:
            raise RuntimeError("boom in worker build")
        return {}

    def phase(self, shard_id, k, env, ctx):
        return []

    def result(self, shard_id, env, ctx):
        return None


def test_worker_exception_surfaces_as_shard_error():
    with pytest.raises(ShardError, match="boom in worker build"):
        run_sharded(_BoomScenario())


class _UndeclaredBorderScenario(_BoomScenario):
    def build(self, shard_id, env, hub):
        if shard_id == 0:
            hub.border_link("wire", PCI_XD, local_end="a")
            hub.border_link("ghost", PCI_XD, local_end="a")
        else:
            hub.border_link("wire", PCI_XD, local_end="b")
        return {}


def test_undeclared_border_is_rejected():
    with pytest.raises(ShardError, match="ghost"):
        run_sharded(_UndeclaredBorderScenario())
