"""Tests for the zero-copy socket protocols and the TCP/IP baseline."""

import pytest

from repro.cluster import node_pair
from repro.errors import SocketError
from repro.hw.params import PCI_XE
from repro.sim import Environment
from repro.sockets import SocketsGmModule, SocketsMxModule, ethernet_pair
from repro.units import PAGE_SIZE, us


def make_pair(kind):
    env = Environment()
    a, b = node_pair(env, link=PCI_XE)
    if kind == "mx":
        return env, a, b, SocketsMxModule(a, 9), SocketsMxModule(b, 9)
    if kind == "gm":
        return env, a, b, SocketsGmModule(a, 9), SocketsGmModule(b, 9)
    sa, sb = ethernet_pair(env, a, b)
    return env, a, b, sa, sb


def connect_pair(env, ma, mb, kind):
    """Run listen+connect+accept; returns (client_sock, server_sock)."""
    result = {}

    def server(env):
        if kind == "tcp":
            mb.listen()
        else:
            yield from mb.listen()
        sock = yield from mb.accept()
        result["server"] = sock
        if kind == "tcp":
            return
            yield  # pragma: no cover

    def client(env):
        if kind == "tcp":
            sock = yield from ma.connect()
        else:
            sock = yield from ma.connect(1, 9)
        result["client"] = sock

    env.process(server(env))
    p = env.process(client(env))
    env.run(until=p)
    env.run(until=env.now + us(100))
    return result["client"], result["server"]


KINDS = ["mx", "gm", "tcp"]


@pytest.mark.parametrize("kind", KINDS)
def test_connect_and_exchange(kind):
    env, a, b, ma, mb = make_pair(kind)
    cs, ss = connect_pair(env, ma, mb, kind)
    spa, spb = a.new_process_space(), b.new_process_space()
    va = spa.mmap(PAGE_SIZE)
    vb = spb.mmap(PAGE_SIZE)
    spa.write_bytes(va, b"over-the-socket")

    def server(env):
        n = yield from ss.recv(spb, vb, 64)
        data = spb.read_bytes(vb, n)
        spb.write_bytes(vb, data.upper())
        yield from ss.send(spb, vb, n)

    def client(env):
        yield from cs.send(spa, va, 15)
        n = yield from cs.recv(spa, va, 64)
        return spa.read_bytes(va, n)

    env.process(server(env))
    got = env.run(until=env.process(client(env)))
    assert got == b"OVER-THE-SOCKET"


@pytest.mark.parametrize("kind", KINDS)
def test_large_transfer_integrity(kind):
    env, a, b, ma, mb = make_pair(kind)
    cs, ss = connect_pair(env, ma, mb, kind)
    spa, spb = a.new_process_space(), b.new_process_space()
    size = 256 * 1024
    payload = bytes((i * 31) % 256 for i in range(size))
    va = spa.mmap(size)
    vb = spb.mmap(size)
    spa.write_bytes(va, payload)

    def server(env):
        n = yield from ss.recv(spb, vb, size)
        return n

    def client(env):
        yield from cs.send(spa, va, size)

    p = env.process(server(env))
    env.process(client(env))
    assert env.run(until=p) == size
    assert spb.read_bytes(vb, size) == payload


@pytest.mark.parametrize("kind", ["mx", "gm"])
def test_oversized_message_raises(kind):
    env, a, b, ma, mb = make_pair(kind)
    cs, ss = connect_pair(env, ma, mb, kind)
    spa, spb = a.new_process_space(), b.new_process_space()
    va = spa.mmap(PAGE_SIZE)
    vb = spb.mmap(PAGE_SIZE)

    def server(env):
        yield from ss.recv(spb, vb, 16)  # too small for the 4096-byte send

    def client(env):
        yield from cs.send(spa, va, 4096)

    p = env.process(server(env))
    env.process(client(env))
    with pytest.raises(SocketError):
        env.run(until=p)


def test_closed_socket_raises():
    env, a, b, ma, mb = make_pair("mx")
    cs, ss = connect_pair(env, ma, mb, "mx")
    spa = a.new_process_space()
    va = spa.mmap(PAGE_SIZE)
    cs.close()
    with pytest.raises(SocketError):
        env.run(until=env.process(cs.send(spa, va, 4)))


def _one_way_us(kind, size, rounds=10):
    env, a, b, ma, mb = make_pair(kind)
    cs, ss = connect_pair(env, ma, mb, kind)
    spa, spb = a.new_process_space(), b.new_process_space()
    va = spa.mmap(max(size, PAGE_SIZE), populate=True)
    vb = spb.mmap(max(size, PAGE_SIZE), populate=True)
    times = {}

    def server(env):
        for _ in range(rounds + 2):
            yield from ss.recv(spb, vb, size)
            yield from ss.send(spb, vb, size)

    def client(env):
        for i in range(rounds + 2):
            if i == 2:
                times["t0"] = env.now
            yield from cs.send(spa, va, size)
            yield from cs.recv(spa, va, size)
        times["t1"] = env.now

    env.process(server(env))
    env.run(until=env.process(client(env)))
    return (times["t1"] - times["t0"]) / (2 * rounds) / 1000


def test_sockets_mx_one_byte_latency_is_5_us():
    """Paper section 5.3: 5 us one-way, only ~1 us over raw MX."""
    assert _one_way_us("mx", 1) == pytest.approx(5.0, abs=0.6)


def test_sockets_gm_one_byte_latency_is_15_us():
    """Paper section 5.3: SOCKETS-GM gets 15 us one-way."""
    assert _one_way_us("gm", 1) == pytest.approx(15.0, abs=1.5)


def test_tcp_latency_much_higher_than_sockets_mx():
    """Paper section 5.3: 'A common GIGA-ETHERNET network might get
    much more'."""
    tcp = _one_way_us("tcp", 1)
    mx = _one_way_us("mx", 1)
    assert tcp > 5 * mx


@pytest.mark.slow
def test_sockets_mx_bandwidth_improvements_over_gm():
    """Figure 8(b): medium ~2x (up to 100 %), large ~1.5x (up to 50 %)."""

    def bw(kind, size):
        one_way_ns = _one_way_us(kind, size) * 1000
        return size / one_way_ns * 1000  # MB/s

    medium_gain = bw("mx", 4096) / bw("gm", 4096)
    large_gain = bw("mx", 2**20) / bw("gm", 2**20)
    assert 1.4 < medium_gain < 2.3
    assert 1.3 < large_gain < 1.7
    # GM stays under ~70 % of the 500 MB/s link (table 1).
    assert bw("gm", 2**20) < 0.70 * 500
    assert bw("mx", 2**20) > 0.93 * 500
