"""Unit tests for VMA SPY (repro.kernel.vmaspy)."""

import pytest

from repro.errors import KernelError
from repro.kernel import VmaSpy
from repro.mem import AddressSpace, PhysicalMemory
from repro.mem.addrspace import ChangeKind
from repro.units import PAGE_SIZE


@pytest.fixture
def phys():
    return PhysicalMemory(64)


def test_watch_delivers_unmap(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    events = []
    spy.watch(space, lambda c: events.append((c.kind, c.start, c.length)))
    addr = space.mmap(2 * PAGE_SIZE, populate=True)
    space.munmap(addr, PAGE_SIZE)
    assert events == [(ChangeKind.UNMAP, addr, PAGE_SIZE)]


def test_kind_filter_limits_delivery(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    events = []
    spy.watch(space, lambda c: events.append(c.kind), kinds={ChangeKind.FORK})
    addr = space.mmap(PAGE_SIZE, populate=True)
    space.munmap(addr, PAGE_SIZE)
    space.fork()
    assert events == [ChangeKind.FORK]


def test_multiple_watchers_all_notified(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    hits = {"a": 0, "b": 0}
    spy.watch(space, lambda c: hits.__setitem__("a", hits["a"] + 1))
    spy.watch(space, lambda c: hits.__setitem__("b", hits["b"] + 1))
    addr = space.mmap(PAGE_SIZE)
    space.munmap(addr, PAGE_SIZE)
    assert hits == {"a": 1, "b": 1}


def test_unwatch_stops_delivery(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    events = []
    handle = spy.watch(space, lambda c: events.append(c.kind))
    addr = space.mmap(2 * PAGE_SIZE)
    space.munmap(addr, PAGE_SIZE)
    spy.unwatch(handle)
    space.munmap(addr + PAGE_SIZE, PAGE_SIZE)
    assert len(events) == 1
    assert spy.watch_count() == 0


def test_unwatch_twice_raises(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    handle = spy.watch(space, lambda c: None)
    spy.unwatch(handle)
    with pytest.raises(KernelError):
        spy.unwatch(handle)


def test_watches_are_per_space(phys):
    s1, s2 = AddressSpace(phys), AddressSpace(phys)
    spy = VmaSpy()
    events = []
    spy.watch(s1, lambda c: events.append(c.space.asid))
    a1 = s1.mmap(PAGE_SIZE)
    a2 = s2.mmap(PAGE_SIZE)
    s1.munmap(a1, PAGE_SIZE)
    s2.munmap(a2, PAGE_SIZE)
    assert events == [s1.asid]
    assert spy.watch_count(s1) == 1
    assert spy.watch_count(s2) == 0


def test_watcher_can_unwatch_itself_during_delivery(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    events = []
    handle_box = {}

    def once(change):
        events.append(change.kind)
        spy.unwatch(handle_box["h"])

    handle_box["h"] = spy.watch(space, once)
    addr = space.mmap(2 * PAGE_SIZE)
    space.munmap(addr, PAGE_SIZE)
    space.munmap(addr + PAGE_SIZE, PAGE_SIZE)
    assert events == [ChangeKind.UNMAP]


def test_notification_counter(phys):
    space = AddressSpace(phys)
    spy = VmaSpy()
    spy.watch(space, lambda c: None)
    addr = space.mmap(PAGE_SIZE)
    space.munmap(addr, PAGE_SIZE)
    space.fork()
    assert spy.notifications_delivered == 2
