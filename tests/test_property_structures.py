"""Property-based tests for the NIC table, page cache, engine and units."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import TranslationMiss, TranslationTableFull
from repro.kernel import PageCache
from repro.mem import PhysicalMemory
from repro.nicfw import TranslationTable
from repro.sim import Environment
from repro.units import bandwidth_mb_s, transfer_time_ns


# -- translation table ---------------------------------------------------------


@given(
    entries=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 50), st.integers(0, 999)),
        max_size=40,
    )
)
@settings(max_examples=50)
def test_transtable_lookup_matches_last_install(entries):
    table = TranslationTable(capacity=256)
    expected = {}
    for ctx, vpn, pfn in entries:
        table.install(ctx, vpn, pfn)
        expected[(ctx, vpn)] = pfn
    for (ctx, vpn), pfn in expected.items():
        assert table.lookup(ctx, vpn) == pfn
    assert len(table) == len(expected)


@given(capacity=st.integers(1, 16))
def test_transtable_capacity_enforced(capacity):
    table = TranslationTable(capacity)
    for i in range(capacity):
        table.install(0, i, i)
    with pytest.raises(TranslationTableFull):
        table.install(0, capacity, 0)
    table.remove(0, 0)
    table.install(0, capacity, 0)  # now it fits


@given(
    installs=st.sets(st.tuples(st.integers(0, 3), st.integers(0, 30)),
                     max_size=30),
    drop_ctx=st.integers(0, 3),
)
@settings(max_examples=50)
def test_transtable_drop_context_is_exact(installs, drop_ctx):
    table = TranslationTable(64)
    for ctx, vpn in installs:
        table.install(ctx, vpn, 1)
    dropped = table.drop_context(drop_ctx)
    assert dropped == sum(1 for c, _ in installs if c == drop_ctx)
    for ctx, vpn in installs:
        if ctx == drop_ctx:
            with pytest.raises(TranslationMiss):
                table.lookup(ctx, vpn)
        else:
            assert table.has(ctx, vpn)


# -- page cache ------------------------------------------------------------------


@given(
    accesses=st.lists(st.tuples(st.integers(1, 3), st.integers(0, 10)),
                      min_size=1, max_size=60)
)
@settings(max_examples=50)
def test_pagecache_never_exceeds_budget_and_stays_consistent(accesses):
    phys = PhysicalMemory(64)
    cache = PageCache(phys, max_pages=8)
    for inode, index in accesses:
        page = cache.find(inode, index)
        if page is None:
            page = cache.add(inode, index)
        assert page.inode_id == inode and page.index == index
        assert len(cache) <= 8
        assert page.frame.pinned
    # every cached frame is accounted in physical memory
    assert phys.allocated_frames == len(cache)


@given(
    accesses=st.lists(st.integers(0, 15), min_size=1, max_size=60),
)
@settings(max_examples=50)
def test_pagecache_lru_keeps_recent_pages(accesses):
    """After any access sequence, the most recently touched page is
    always still resident."""
    phys = PhysicalMemory(64)
    cache = PageCache(phys, max_pages=4)
    for index in accesses:
        if cache.find(1, index) is None:
            cache.add(1, index)
        assert cache.find(1, index) is not None


# -- engine determinism ------------------------------------------------------------


@given(
    delays=st.lists(st.integers(0, 1000), min_size=1, max_size=20),
)
@settings(max_examples=30)
def test_engine_fires_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert fired == sorted(fired)
    assert sorted(fired) == sorted(delays)


@given(
    delays=st.lists(st.integers(0, 500), min_size=2, max_size=12),
)
@settings(max_examples=30)
def test_all_of_fires_at_max_any_of_at_min(delays):
    env = Environment()
    events = [env.timeout(d) for d in delays]
    times = {}

    def waiter(env, combine, key):
        yield combine(events)
        times[key] = env.now

    env.process(waiter(env, env.all_of, "all"))
    env.process(waiter(env, env.any_of, "any"))
    env.run()
    assert times["all"] == max(delays)
    assert times["any"] == min(delays)


# -- units -----------------------------------------------------------------------


@given(
    size=st.integers(1, 2**30),
    bw=st.floats(1e6, 1e10, allow_nan=False, allow_infinity=False),
)
def test_transfer_time_roundtrip_bandwidth(size, bw):
    t = transfer_time_ns(size, bw)
    assert t >= 1
    measured = bandwidth_mb_s(size, t)
    # ceil rounding only ever *under*-reports bandwidth
    assert measured <= bw / 1e6 * 1.001


@given(size=st.integers(1, 2**24))
def test_transfer_time_monotone_in_size(size):
    bw = 250e6
    assert transfer_time_ns(size, bw) <= transfer_time_ns(size + 1, bw)
