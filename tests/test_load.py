"""Open-loop workload generation: determinism, independence, the knee."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.node import star
from repro.fleet.isolate import isolated_run
from repro.load import (LATENCY_BOUNDS, LoadGen, LoadSpecError, MIXES,
                        ParetoOnOffArrivals, PoissonArrivals, jain_fairness,
                        make_arrivals, make_mix, make_workload, run_load)
from repro.sim import Environment

# -- arrival processes ---------------------------------------------------------

_rates = st.sampled_from([500.0, 4000.0, 25000.0, 200000.0])


@given(seed=st.integers(0, 2 ** 31), rate=_rates)
@settings(max_examples=30, deadline=None)
def test_poisson_schedule_is_pure_function_of_seed_and_rate(seed, rate):
    a = PoissonArrivals(seed, rate)
    b = PoissonArrivals(seed, rate)
    times = a.times(200)
    assert times == b.times(200) == a.times(200)
    assert all(isinstance(t, int) for t in times)
    assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))


@given(seed=st.integers(0, 2 ** 31), rate=_rates)
@settings(max_examples=30, deadline=None)
def test_pareto_schedule_is_pure_function_of_seed_and_rate(seed, rate):
    a = ParetoOnOffArrivals(seed, rate)
    times = a.times(200)
    assert times == ParetoOnOffArrivals(seed, rate).times(200)
    assert all(isinstance(t, int) for t in times)
    assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))


@given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000),
       rate=_rates)
@settings(max_examples=30, deadline=None)
def test_interleaved_generators_do_not_perturb_each_other(seed_a, seed_b,
                                                          rate):
    """Drawing two generators' streams alternately yields exactly the
    streams each would produce alone — no shared RNG state."""
    solo_a = PoissonArrivals(seed_a, rate).times(100)
    solo_b = ParetoOnOffArrivals(seed_b, rate).times(100)
    ia = PoissonArrivals(seed_a, rate).iter_times()
    ib = ParetoOnOffArrivals(seed_b, rate).iter_times()
    drawn_a, drawn_b = [], []
    for _ in range(100):
        drawn_a.append(next(ia))
        drawn_b.append(next(ib))
    assert drawn_a == solo_a
    assert drawn_b == solo_b


def test_poisson_empirical_rate_is_close():
    rate = 10000.0
    times = PoissonArrivals(7, rate).times(4000)
    mean_gap_ns = (times[-1] - times[0]) / (len(times) - 1)
    assert 0.9e9 / rate < mean_gap_ns < 1.1e9 / rate


def test_pareto_long_run_rate_is_close():
    rate = 10000.0
    times = ParetoOnOffArrivals(7, rate).times(6000)
    mean_gap_ns = (times[-1] - times[0]) / (len(times) - 1)
    # Heavy-tailed: the sample mean converges slowly; a loose band.
    assert 0.5e9 / rate < mean_gap_ns < 2.0e9 / rate


def test_make_arrivals_validates():
    assert make_arrivals({"process": "poisson"}, 1, 100.0).kind == "poisson"
    p = make_arrivals({"process": "pareto_on_off", "alpha": 1.7}, 1, 100.0)
    assert p.alpha == 1.7
    with pytest.raises(LoadSpecError):
        make_arrivals({"process": "uniform"}, 1, 100.0)
    with pytest.raises(LoadSpecError):
        make_arrivals({"process": "poisson"}, 1, -5.0)
    with pytest.raises(LoadSpecError):
        make_arrivals({"process": "pareto_on_off", "bogus": 1}, 1, 100.0)


# -- mixes and schedules -------------------------------------------------------


@given(seed=st.integers(0, 2 ** 31), name=st.sampled_from(sorted(MIXES)))
@settings(max_examples=30, deadline=None)
def test_mix_sequence_is_pure_function(seed, name):
    mix = make_mix(name)
    seq = mix.sequence(seed, 100)
    assert seq == make_mix(name).sequence(seed, 100)
    assert all(c in mix.choices for c in seq)


@given(seed=st.integers(0, 2 ** 31))
@settings(max_examples=20, deadline=None)
def test_loadgen_schedule_identical_across_draws(seed):
    def build():
        return LoadGen(PoissonArrivals(seed, 8000.0), make_mix("rw4k"),
                       seed, 60, 3)
    sched = build().schedule()
    assert sched == build().schedule()
    assert [s.client for s in sched] == [i % 3 for i in range(60)]


def test_mix_validation():
    with pytest.raises(LoadSpecError):
        make_mix("nope")
    with pytest.raises(LoadSpecError):
        make_mix({"choices": [{"op": "fly", "size": 1, "weight": 1}]})
    custom = make_mix({"name": "c", "choices": [
        {"op": "read", "size": 8192, "weight": 3},
        {"op": "stat", "size": 0, "weight": 1}]})
    assert {c.op for c in custom.choices} == {"read", "stat"}


def test_latency_ladder_is_sorted_and_wide():
    assert list(LATENCY_BOUNDS) == sorted(LATENCY_BOUNDS)
    assert LATENCY_BOUNDS[0] == 1000          # 1 us
    assert LATENCY_BOUNDS[-1] == 50 * 10 ** 9  # 50 s


def test_jain_fairness():
    assert jain_fairness([10, 10, 10, 10]) == 1.0
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0, 0]) == 1.0
    assert abs(jain_fairness([40, 0, 0, 0]) - 0.25) < 1e-12


# -- the driver on a live cluster ----------------------------------------------


def _run_orfa(rate: float, n_ops: int = 120, mode: str = "open",
              seed: int = 1):
    with isolated_run(observe=True):
        env = Environment()
        nodes, _switch = star(env, 6)
        wl = make_workload({"kind": "orfa", "api": "mx"}, env,
                           nodes[0], nodes[1:5])
        gen = LoadGen(PoissonArrivals(seed, rate), make_mix("read4k"),
                      seed, n_ops, 4)
        return run_load(env, wl, gen, mode=mode)


def test_open_loop_saturation_raises_tail_latency():
    light = _run_orfa(4000.0)
    heavy = _run_orfa(64000.0)
    assert light.achieved_ops == heavy.achieved_ops == 120
    # The knee: the saturated run's p99 is queue wait, not service time.
    assert heavy.p99_ns >= 2 * light.p99_ns
    assert heavy.p99_ns >= heavy.p50_ns >= light.p50_ns
    # Saturated: achieved rate falls measurably short of offered.
    assert heavy.achieved_rate_ops_s < 0.95 * 64000.0
    assert light.achieved_rate_ops_s > 0.9 * 4000.0


def test_open_loop_results_are_deterministic():
    a, b = _run_orfa(16000.0), _run_orfa(16000.0)
    assert a == b


def test_closed_loop_measures_service_time():
    closed = _run_orfa(64000.0, mode="closed")
    open_ = _run_orfa(64000.0, mode="open")
    assert closed.achieved_ops == 120
    # A closed loop cannot be pushed past saturation: its latency stays
    # at service time while the open loop's tail grows with the queue.
    assert closed.p99_ns <= open_.p99_ns
    assert closed.mean_ns < open_.mean_ns


def test_per_client_fairness_is_high_on_symmetric_star():
    res = _run_orfa(16000.0)
    assert res.fairness > 0.99
    assert sum(res.per_client_ops) == res.achieved_ops


def test_rr_and_nbd_adapters_run():
    for spec, mix in [({"kind": "nbd", "api": "mx"}, "rw4k"),
                      ({"kind": "rr", "api": "mx"}, "rr1k"),
                      ({"kind": "rr", "api": "tcp"}, "rr1k")]:
        with isolated_run(observe=True):
            env = Environment()
            nodes, _switch = star(env, 4)
            wl = make_workload(spec, env, nodes[0], nodes[1:3])
            gen = LoadGen(PoissonArrivals(2, 8000.0), make_mix(mix),
                          2, 20, 2)
            res = run_load(env, wl, gen)
            assert res.achieved_ops == 20
            assert res.failed_ops == 0
            assert res.p50_ns > 0


def test_workload_validation():
    env = Environment()
    nodes, _switch = star(env, 3)
    with pytest.raises(LoadSpecError):
        make_workload({"kind": "ftp"}, env, nodes[0], nodes[1:])
    with pytest.raises(LoadSpecError):
        make_workload({"kind": "rr", "api": "ib"}, env, nodes[0], nodes[1:])
    with pytest.raises(LoadSpecError):
        make_workload({"kind": "orfa", "api": "mx", "bogus": 1},
                      env, nodes[0], nodes[1:])
