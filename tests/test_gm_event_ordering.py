"""GM unified-event-queue semantics: strict arrival ordering."""

import pytest

from repro.cluster import node_pair
from repro.gm import GmEventKind, GmPort
from repro.sim import Environment
from repro.units import PAGE_SIZE, us


def test_events_arrive_in_completion_order():
    """SENT and RECV events interleave in the one queue exactly in the
    order they completed — the inflexibility (no per-request wait) the
    paper contrasts with MX (section 5.2)."""
    env = Environment()
    a, b = node_pair(env)
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    va = sa.mmap(PAGE_SIZE)
    vb = sb.mmap(PAGE_SIZE)
    order = []

    def peer(env):
        yield from pb.register(vb, PAGE_SIZE)
        yield from pb.provide_receive_buffer(vb, PAGE_SIZE, match=1)
        event = yield from pb.receive_event()
        # bounce a reply
        yield from pb.send(0, 1, vb, 16, match=2)

    def origin(env):
        yield from pa.register(va, PAGE_SIZE)
        yield from pa.provide_receive_buffer(va, PAGE_SIZE, match=2)
        yield from pa.send(1, 1, va, 16, match=1)
        for _ in range(2):
            event = yield from pa.receive_event()
            order.append(event.kind)

    env.process(peer(env))
    env.run(until=env.process(origin(env)))
    # our 16-byte send completes (wire released) long before the reply
    # has made the round trip
    assert order == [GmEventKind.SENT, GmEventKind.RECV]


def test_wildcard_receive_buffers_match_fifo():
    """Several wildcard buffers: messages land in posting order."""
    env = Environment()
    a, b = node_pair(env)
    sa, sb = a.new_process_space(), b.new_process_space()
    pa, pb = GmPort(a, 1, sa), GmPort(b, 1, sb)
    va = sa.mmap(PAGE_SIZE)
    bufs = [sb.mmap(PAGE_SIZE) for _ in range(3)]

    def receiver(env):
        for vb in bufs:
            yield from pb.register(vb, PAGE_SIZE)
            yield from pb.provide_receive_buffer(vb, PAGE_SIZE)
        for _ in range(3):
            yield from pb.receive_event()

    def sender(env):
        yield from pa.register(va, PAGE_SIZE)
        for i in range(3):
            sa.write_bytes(va, bytes([i + 65]) * 4)
            yield from pa.send(1, 1, va, 4, match=i)
            # reap the SENT before overwriting the buffer
            event = yield from pa.receive_event()
            assert event.kind is GmEventKind.SENT

    env.process(sender(env))
    env.run(until=env.process(receiver(env)))
    assert [sb.read_bytes(vb, 4) for vb in bufs] == [b"AAAA", b"BBBB", b"CCCC"]
