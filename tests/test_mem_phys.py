"""Unit tests for the physical frame allocator (repro.mem.phys)."""

import pytest

from repro.errors import OutOfMemory, PinningError
from repro.mem import PhysicalMemory
from repro.units import PAGE_SIZE


def test_alloc_returns_distinct_frames():
    phys = PhysicalMemory(8)
    a = phys.alloc()
    b = phys.alloc()
    assert a.pfn != b.pfn
    assert phys.allocated_frames == 2
    assert phys.free_frames == 6


def test_alloc_exhaustion_raises():
    phys = PhysicalMemory(2)
    phys.alloc()
    phys.alloc()
    with pytest.raises(OutOfMemory):
        phys.alloc()


def test_free_recycles_frame():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    phys.free(frame)
    again = phys.alloc()
    assert again.pfn == frame.pfn


def test_double_free_raises():
    phys = PhysicalMemory(2)
    frame = phys.alloc()
    phys.free(frame)
    with pytest.raises(ValueError):
        phys.free(frame)


def test_frame_read_write_roundtrip():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    frame.write(100, b"hello world")
    assert frame.read(100, 11) == b"hello world"


def test_frame_reads_zero_before_write():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    assert frame.read(0, 16) == bytes(16)


def test_frame_out_of_range_access_raises():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    with pytest.raises(ValueError):
        frame.read(PAGE_SIZE - 4, 8)
    with pytest.raises(ValueError):
        frame.write(PAGE_SIZE, b"x")


def test_phys_addr_matches_pfn():
    phys = PhysicalMemory(16)
    frame = phys.alloc()
    assert frame.phys_addr == frame.pfn * PAGE_SIZE
    assert phys.frame_at_phys(frame.phys_addr + 123) is frame


def test_pin_prevents_free():
    phys = PhysicalMemory(2)
    frame = phys.alloc()
    frame.pin()
    with pytest.raises(PinningError):
        phys.free(frame)
    frame.unpin()
    phys.free(frame)


def test_unbalanced_unpin_raises():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    with pytest.raises(PinningError):
        frame.unpin()


def test_pin_count_nests():
    phys = PhysicalMemory(1)
    frame = phys.alloc()
    frame.pin()
    frame.pin()
    frame.unpin()
    assert frame.pinned
    frame.unpin()
    assert not frame.pinned


def test_alloc_contiguous_returns_adjacent_pfns():
    phys = PhysicalMemory(16)
    frames = phys.alloc_contiguous(4)
    pfns = [f.pfn for f in frames]
    assert pfns == list(range(pfns[0], pfns[0] + 4))


def test_alloc_contiguous_skips_fragmented_holes():
    phys = PhysicalMemory(10)
    keep = [phys.alloc() for _ in range(4)]  # pfns 0..3
    phys.free(keep[1])  # hole at pfn 1: runs are {1}, {4..9}
    frames = phys.alloc_contiguous(3)
    assert [f.pfn for f in frames] == [4, 5, 6]


def test_alloc_contiguous_failure_when_fragmented():
    phys = PhysicalMemory(4)
    frames = [phys.alloc() for _ in range(4)]
    phys.free(frames[0])
    phys.free(frames[2])  # free: {0, 2} — no run of 2
    with pytest.raises(OutOfMemory):
        phys.alloc_contiguous(2)


def test_free_coalesces_adjacent_runs():
    phys = PhysicalMemory(8)
    frames = [phys.alloc() for _ in range(8)]
    assert phys.free_runs() == []
    # free out of order; runs must coalesce back to one full-range run
    for i in (3, 5, 4):
        phys.free(frames[i])
    assert phys.free_runs() == [(3, 6)]
    for i in (0, 7, 1, 6, 2):
        phys.free(frames[i])
    assert phys.free_runs() == [(0, 8)]
    assert phys.free_frames == 8


def test_alloc_after_fragmentation_and_coalescing():
    # alloc -> free -> alloc_contiguous across a fragmented-then-healed
    # pool: once the holes coalesce, a long run is servable again.
    phys = PhysicalMemory(16)
    frames = [phys.alloc() for _ in range(16)]
    for i in range(0, 16, 2):  # free every other frame: 8 single-frame runs
        phys.free(frames[i])
    assert len(phys.free_runs()) == 8
    with pytest.raises(OutOfMemory):
        phys.alloc_contiguous(2)
    for i in range(1, 16, 2):  # heal the holes
        phys.free(frames[i])
    assert phys.free_runs() == [(0, 16)]
    got = phys.alloc_contiguous(12)
    assert [f.pfn for f in got] == list(range(12))


def test_alloc_contiguous_takes_lowest_fitting_run():
    phys = PhysicalMemory(12)
    frames = [phys.alloc() for _ in range(12)]
    # free runs: [2,4) (len 2) and [6,10) (len 4)
    for i in (2, 3, 6, 7, 8, 9):
        phys.free(frames[i])
    assert phys.free_runs() == [(2, 4), (6, 10)]
    got = phys.alloc_contiguous(3)  # skips the too-short [2,4) run
    assert [f.pfn for f in got] == [6, 7, 8]
    assert phys.free_runs() == [(2, 4), (9, 10)]
    # single-frame alloc still takes the lowest PFN overall
    assert phys.alloc().pfn == 2


def test_alloc_lowest_pfn_policy_preserved():
    phys = PhysicalMemory(6)
    frames = [phys.alloc() for _ in range(6)]
    phys.free(frames[4])
    phys.free(frames[1])
    assert phys.alloc().pfn == 1  # lowest free PFN, deterministically
    assert phys.alloc().pfn == 4


def test_read_write_phys_crosses_frames():
    phys = PhysicalMemory(4)
    frames = phys.alloc_contiguous(2)
    base = frames[0].phys_addr
    data = bytes(range(256)) * 40  # 10240 bytes > fits? 2 pages = 8192
    data = data[:6000]
    phys.write_phys(base + 3000, data[: PAGE_SIZE + 1000])
    assert phys.read_phys(base + 3000, PAGE_SIZE + 1000) == data[: PAGE_SIZE + 1000]


def test_read_phys_unallocated_frame_raises():
    phys = PhysicalMemory(4)
    with pytest.raises(ValueError):
        phys.read_phys(0, 8)
