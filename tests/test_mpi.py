"""Tests for the MPI layer (repro.mpi) over both APIs."""

import pytest

from repro.mpi import mpi_world
from repro.mpi.comm import MpiError
from repro.sim import Environment
from repro.units import PAGE_SIZE

BACKENDS = ["mx", "gm"]


def run_spmd(env, comms, program):
    """Run ``program(comm)`` on every rank; returns rank-ordered results."""
    procs = [env.process(program(comm), name=f"rank{comm.rank}")
             for comm in comms]
    env.run(until=env.all_of(procs))
    return [p.value for p in procs]


@pytest.mark.parametrize("api", BACKENDS)
def test_blocking_send_recv(api):
    env = Environment()
    comms, nodes = mpi_world(env, 2, api=api)

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        if comm.rank == 0:
            comm.space.write_bytes(buf, b"rank0->rank1")
            yield from comm.send(1, buf, 12, tag=7)
            return None
        n = yield from comm.recv(0, buf, PAGE_SIZE, tag=7)
        return comm.space.read_bytes(buf, n)

    results = run_spmd(env, comms, program)
    assert results[1] == b"rank0->rank1"


@pytest.mark.parametrize("api", BACKENDS)
def test_tags_demultiplex(api):
    env = Environment()
    comms, nodes = mpi_world(env, 2, api=api)

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        if comm.rank == 0:
            comm.space.write_bytes(buf, b"AA")
            yield from comm.send(1, buf, 2, tag=1)
            comm.space.write_bytes(buf, b"BB")
            yield from comm.send(1, buf, 2, tag=2)
            return None
        b2 = comm.space.mmap(PAGE_SIZE)
        # post the tag-2 receive first: matching must be by tag, not order
        r2 = yield from comm.irecv(0, b2, 2, tag=2)
        r1 = yield from comm.irecv(0, buf, 2, tag=1)
        yield from comm.wait(r1)
        yield from comm.wait(r2)
        return (comm.space.read_bytes(buf, 2), comm.space.read_bytes(b2, 2))

    results = run_spmd(env, comms, program)
    assert results[1] == (b"AA", b"BB")


@pytest.mark.parametrize("api", BACKENDS)
def test_sendrecv_exchange_ring(api):
    env = Environment()
    comms, nodes = mpi_world(env, 4, api=api)

    def program(comm):
        n = comm.size
        out = comm.space.mmap(PAGE_SIZE)
        inb = comm.space.mmap(PAGE_SIZE)
        comm.space.write_bytes(out, bytes([comm.rank]) * 8)
        yield from comm.sendrecv((comm.rank + 1) % n, out, 8,
                                 (comm.rank - 1) % n, inb, 8, tag=3)
        return comm.space.read_bytes(inb, 8)

    results = run_spmd(env, comms, program)
    for rank, data in enumerate(results):
        assert data == bytes([(rank - 1) % 4]) * 8


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n", [2, 3, 5])
def test_barrier_synchronizes(api, n):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)
    after = {}

    def program(comm):
        # stagger arrival: rank r waits r*50 us before the barrier
        yield comm.env.timeout(comm.rank * 50_000)
        yield from comm.barrier()
        after[comm.rank] = comm.env.now

    run_spmd(env, comms, program)
    latest_arrival = (n - 1) * 50_000
    assert all(t >= latest_arrival for t in after.values())


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n,root", [(2, 0), (4, 1), (5, 3)])
def test_bcast_delivers_to_all(api, n, root):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)
    payload = bytes(range(256)) * 8  # 2 kB

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        if comm.rank == root:
            comm.space.write_bytes(buf, payload)
        yield from comm.bcast(root, buf, len(payload))
        return comm.space.read_bytes(buf, len(payload))

    results = run_spmd(env, comms, program)
    assert all(r == payload for r in results)


@pytest.mark.parametrize("api", BACKENDS)
@pytest.mark.parametrize("n", [2, 4, 5])
def test_reduce_sum(api, n):
    env = Environment()
    comms, nodes = mpi_world(env, n, api=api)

    def program(comm):
        values = [comm.rank + 1, comm.rank * 10]
        result = yield from comm.reduce_ints(0, values, op="sum")
        return result

    results = run_spmd(env, comms, program)
    assert results[0] == [sum(range(1, n + 1)), sum(10 * r for r in range(n))]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("api", BACKENDS)
def test_allreduce_max_and_min(api):
    env = Environment()
    comms, nodes = mpi_world(env, 4, api=api)

    def program(comm):
        hi = yield from comm.allreduce_ints([comm.rank, -comm.rank], op="max")
        lo = yield from comm.allreduce_ints([comm.rank], op="min")
        return hi, lo

    results = run_spmd(env, comms, program)
    assert all(r == ([3, 0], [0]) for r in results)


@pytest.mark.parametrize("api", BACKENDS)
def test_gather(api):
    env = Environment()
    comms, nodes = mpi_world(env, 3, api=api)

    def program(comm):
        result = yield from comm.gather_bytes(0, bytes([comm.rank]) * 4)
        return result

    results = run_spmd(env, comms, program)
    assert results[0] == [b"\x00" * 4, b"\x01" * 4, b"\x02" * 4]
    assert results[1] is None and results[2] is None


def test_gm_middleware_cache_reuses_registrations():
    """The section-2.2.2 middleware: repeated sends from the same buffer
    register once."""
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="gm")

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        for i in range(5):
            if comm.rank == 0:
                yield from comm.send(1, buf, 64, tag=i)
            else:
                yield from comm.recv(0, buf, 64, tag=i)

    run_spmd(env, comms, program)
    cache = comms[0]._rank.cache
    assert cache.misses == 1
    assert cache.hits == 4


def test_invalid_arguments_raise():
    env = Environment()
    comms, nodes = mpi_world(env, 2, api="mx")
    comm = comms[0]
    buf = comm.space.mmap(PAGE_SIZE)
    with pytest.raises(MpiError):
        env.run(until=env.process(comm.send(5, buf, 1)))
    with pytest.raises(MpiError):
        env.run(until=env.process(comm.send(0, buf, 1)))  # self-send
    with pytest.raises(MpiError):
        env.run(until=env.process(comm.send(1, buf, 1, tag=1 << 20)))


def test_mpi_latency_mx_beats_gm():
    """The user-space headline holds through the MPI layer too."""

    def one_way(api):
        env = Environment()
        comms, nodes = mpi_world(env, 2, api=api)
        times = {}

        def program(comm):
            buf = comm.space.mmap(PAGE_SIZE)
            rounds, warmup = 10, 2
            for i in range(rounds + warmup):
                if comm.rank == 0:
                    if i == warmup:
                        times["t0"] = comm.env.now
                    yield from comm.send(1, buf, 1, tag=1)
                    yield from comm.recv(1, buf, PAGE_SIZE, tag=2)
                else:
                    yield from comm.recv(0, buf, PAGE_SIZE, tag=1)
                    yield from comm.send(0, buf, 1, tag=2)
            if comm.rank == 0:
                times["t1"] = comm.env.now

        run_spmd(env, comms, program)
        return (times["t1"] - times["t0"]) / (2 * 10) / 1000

    gm = one_way("gm")
    mx = one_way("mx")
    assert mx < gm
    assert gm / mx > 1.3
