"""Unit tests for units helpers, the report formatter and netpipe pieces."""

import pytest

from repro.bench.netpipe import PingPongResult, pow2_sizes
from repro.bench.report import format_series, format_table
from repro.units import (
    MB,
    PAGE_SIZE,
    bandwidth_mb_s,
    page_align_down,
    page_align_up,
    pages_spanned,
    to_ms,
    to_seconds,
    to_us,
    transfer_time_ns,
    us,
)


# -- units ------------------------------------------------------------------


def test_time_conversions_roundtrip():
    assert us(4.2) == 4200
    assert to_us(4200) == 4.2
    assert to_ms(1_500_000) == 1.5
    assert to_seconds(2_000_000_000) == 2.0


def test_page_alignment():
    assert page_align_down(PAGE_SIZE + 5) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE + 5) == 2 * PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE
    assert page_align_up(0) == 0


def test_pages_spanned_edge_cases():
    assert pages_spanned(0, 0) == 0
    assert pages_spanned(0, 1) == 1
    assert pages_spanned(PAGE_SIZE - 1, 2) == 2
    assert pages_spanned(0, PAGE_SIZE) == 1
    assert pages_spanned(1, PAGE_SIZE) == 2


def test_transfer_time_matches_rating():
    # 250 MB/s moves 250 bytes per microsecond
    assert transfer_time_ns(250, 250 * MB) == 1000
    assert transfer_time_ns(0, 250 * MB) == 0
    with pytest.raises(ValueError):
        transfer_time_ns(1, 0)


def test_bandwidth_mb_s():
    assert bandwidth_mb_s(250 * MB, 1_000_000_000) == pytest.approx(250.0)
    with pytest.raises(ValueError):
        bandwidth_mb_s(1, 0)


# -- netpipe helpers -------------------------------------------------------------


def test_pow2_sizes():
    assert pow2_sizes(1, 16) == [1, 2, 4, 8, 16]
    assert pow2_sizes(4, 4) == [4]
    with pytest.raises(ValueError):
        pow2_sizes(0, 8)


def test_pingpong_result_derived_metrics():
    r = PingPongResult(size=1_000_000, rounds=10, one_way_ns=4_000_000)
    assert r.one_way_us == 4000.0
    assert r.bandwidth_mb_s == pytest.approx(250.0)


# -- report ------------------------------------------------------------------------


def test_format_table_alignment_and_title():
    text = format_table("demo", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table("t", ["a"], [["1", "2"]])


def test_format_series_renders_sizes_humanized():
    text = format_series("t", "size", [1024, 1048576], {"s": [1.0, 2.0]}, "us")
    assert "1k" in text
    assert "1M" in text
    assert "s (us)" in text


def test_format_series_length_mismatch_raises():
    with pytest.raises(ValueError):
        format_series("t", "x", [1, 2], {"s": [1.0]}, "us")
