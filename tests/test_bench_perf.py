"""Tests for the perf self-benchmark module and the parallel runner."""

import json

import pytest

from repro.bench import perf, runner


def test_run_perf_quick_report_shape():
    report = perf.run_perf(quick=True)
    assert report["quick"] is True
    for section in ("heap", "immediate"):
        block = report["engine"][section]
        assert block["events"] > 0
        assert block["events_per_sec"] > 0
    for section in ("single_frame", "contiguous"):
        block = report["allocator"][section]
        assert block["ops"] > 0
        assert block["ops_per_sec"] > 0
    assert report["summary"]["engine_events_per_sec"] > 0
    assert report["summary"]["allocator_ops_per_sec"] > 0
    pt = report["packet_train"]
    for entry in pt["entries"]:
        assert entry["events"]["per_packet"] > entry["events"]["train"] > 0
        assert entry["sim_time_identical"] is True
    # The same numbers CI gates on, at their authoritative thresholds.
    assert pt["summary"]["event_reduction_min"] >= 3.0
    assert pt["summary"]["events_per_mb_train_max"] <= 150
    assert report["summary"]["packet_train_event_reduction"] >= 3.0


def test_perf_main_writes_json(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    assert perf.main(["--quick", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-perf/1"
    assert report["summary"]["engine_events_per_sec"] > 0


def test_runner_parallel_output_identical_to_sequential(capsys):
    # fig1b is pure arithmetic (cheapest figure): a good smoke for the
    # process-pool path producing byte-identical output.
    assert runner.main(["fig1b", "fig4a", "--json"]) == 0
    sequential = capsys.readouterr().out
    assert runner.main(["fig1b", "fig4a", "--json", "--parallel", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential
    assert json.loads(sequential)["fig1b"]["series"]


def test_runner_rejects_unknown_experiment(capsys):
    assert runner.main(["nope"]) == 2


def test_runner_timings_on_stderr(capsys):
    assert runner.main(["fig1b", "--timings"]) == 0
    captured = capsys.readouterr()
    assert "[timing] fig1b" in captured.err
    assert "[timing]" not in captured.out
