"""Tests for the workload generators and the pattern runner."""

import pytest

from repro.bench.fileio import build_orfs
from repro.bench.workloads import (
    hot_cold,
    run_access_pattern,
    sequential,
    strided,
    uniform_random,
)
from repro.units import KiB, MiB, PAGE_SIZE


# -- generators --------------------------------------------------------------


def test_sequential_covers_file_exactly():
    reqs = list(sequential(100_000, 16 * KiB))
    assert sum(n for _, n in reqs) == 100_000
    offsets = [o for o, _ in reqs]
    assert offsets == sorted(offsets)
    assert offsets[0] == 0


def test_strided_covers_every_block_once():
    reqs = list(strided(256 * KiB, 4 * KiB, 64 * KiB))
    offsets = sorted(o for o, _ in reqs)
    assert offsets == list(range(0, 256 * KiB, 4 * KiB))


def test_strided_validates_stride():
    with pytest.raises(ValueError):
        list(strided(1 * MiB, 4096, 10_000))


def test_uniform_random_is_deterministic_and_aligned():
    a = list(uniform_random(1 * MiB, 8 * KiB, 50, seed=7))
    b = list(uniform_random(1 * MiB, 8 * KiB, 50, seed=7))
    assert a == b
    assert all(o % (8 * KiB) == 0 and o + n <= 1 * MiB for o, n in a)
    c = list(uniform_random(1 * MiB, 8 * KiB, 50, seed=8))
    assert c != a


def test_hot_cold_concentrates_on_hot_region():
    reqs = list(hot_cold(1 * MiB, 4 * KiB, 500, hot_fraction=0.1,
                         hot_hit_pct=90, seed=3))
    hot_limit = int(1 * MiB * 0.1)
    hot = sum(1 for o, _ in reqs if o < hot_limit)
    assert hot > 0.8 * len(reqs)


# -- the runner over ORFS ------------------------------------------------------


def test_hot_cold_gets_better_cache_ratio_than_uniform():
    rig = build_orfs("mx", file_size=MiB)
    node = rig.client_node

    def measure(pattern):
        for k in range(8):
            node.pagecache.invalidate_inode(k)
        proc = rig.env.process(
            run_access_pattern(node, "/orfs/bench", pattern))
        return rig.env.run(until=proc)

    uni = measure(uniform_random(MiB, PAGE_SIZE, 200, seed=5))
    hot = measure(hot_cold(MiB, PAGE_SIZE, 200, seed=5))
    assert hot.hit_ratio > uni.hit_ratio
    assert hot.throughput_mb_s > uni.throughput_mb_s


def test_direct_random_bypasses_cache_entirely():
    rig = build_orfs("mx", file_size=MiB)
    node = rig.client_node
    proc = rig.env.process(
        run_access_pattern(node, "/orfs/bench",
                           uniform_random(MiB, 8 * KiB, 32), direct=True))
    result = rig.env.run(until=proc)
    assert result.cache_misses == 0 and result.cache_hits == 0
    assert result.bytes_moved == 32 * 8 * KiB
