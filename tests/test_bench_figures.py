"""Tests for the figure drivers and the CLI runner (fast figures only)."""

import json

import pytest

from repro.bench.figures import FIGURES, fig1b, fig4a, run_figure
from repro.bench.runner import ALL, main


def test_registry_covers_every_paper_figure():
    expected = {"fig1b", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b",
                "fig6", "fig7a", "fig7b", "fig8a", "fig8b"}
    assert set(FIGURES) == expected
    assert ALL == sorted(expected) + ["table1"]


def test_fig1b_structure_and_determinism():
    a = fig1b()
    b = fig1b()
    assert a.series == b.series
    assert set(a.series) == {
        "Copy (P3 1.2GHz)", "Copy (P4 2.6GHz)", "Registration",
        "Deregistration", "Register+Dereg",
    }
    assert all(len(v) == len(a.xs) for v in a.series.values())
    rendered = a.render()
    assert "fig1b" in rendered and "256k" in rendered


def test_run_figure_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_figure("fig99")


def test_runner_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig5a" in out and "table1" in out


def test_runner_renders_figure(capsys):
    assert main(["fig4a"]) == 0
    out = capsys.readouterr().out
    assert "Physical Address" in out


def test_runner_json_mode(capsys):
    assert main(["fig4a", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "fig4a" in data
    series = data["fig4a"]["series"]
    assert set(series) == {"Memory Registration", "Physical Address"}
    assert len(series["Physical Address"]) == len(data["fig4a"]["xs"])


def test_runner_unknown_experiment_errors(capsys):
    assert main(["nonsense"]) == 2
    assert main(["nonsense", "--json"]) == 2
