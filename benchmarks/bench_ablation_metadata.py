"""Ablation: metadata access, user-space ORFA vs in-kernel ORFS.

Paper section 3.1: "meta-data access (file attributes) does not benefit
from the low latency of the network.  We then decided to work on ORFS
... This implementation benefits from VFS caches (Virtual File Systems)
improving meta-data access."

A stat-heavy walk (the `ls -l` of a build tree) over both clients: ORFA
pays a full LOOKUP round trip per path component on *every* call; ORFS
pays it once and then serves from the dentry cache.
"""

from conftest import run_once

from repro.bench.fileio import SERVER_PORT, CLIENT_PORT
from repro.cluster import node_pair
from repro.core import MxKernelChannel
from repro.orfa.client import OrfaClient
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import to_us

FILES = 16
REPEAT = 4


def _setup(api="mx"):
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, SERVER_PORT, api=api)
    env.run(until=server.start())
    # a directory of FILES entries
    d = env.run(until=env.process(server.fs.mkdir(1, "tree")))
    for i in range(FILES):
        env.run(until=env.process(server.fs.create(d.inode_id, f"f{i}")))
    return env, client_node, server_node, server


def _orfa_stat_walk():
    env, client_node, server_node, server = _setup()
    space = client_node.new_process_space()
    client = OrfaClient(client_node, CLIENT_PORT, space,
                        (server_node.node_id, SERVER_PORT), api="mx")
    env.run(until=env.process(client.setup()))

    def walk(env):
        t0 = env.now
        for _ in range(REPEAT):
            for i in range(FILES):
                yield from client.stat(f"/tree/f{i}")
        return env.now - t0

    elapsed = env.run(until=env.process(walk(env)))
    return elapsed / (REPEAT * FILES), server.requests_served


def _orfs_stat_walk():
    env, client_node, server_node, server = _setup()
    channel = MxKernelChannel(client_node, CLIENT_PORT)
    mount_orfs(client_node, channel, (server_node.node_id, SERVER_PORT))

    def cold_walk(env):
        t0 = env.now
        for i in range(FILES):
            yield from client_node.vfs.stat(f"/orfs/tree/f{i}")
        return env.now - t0

    def warm_walk(env):
        t0 = env.now
        for _ in range(REPEAT - 1):
            for i in range(FILES):
                yield from client_node.vfs.stat(f"/orfs/tree/f{i}")
        return env.now - t0

    cold = env.run(until=env.process(cold_walk(env)))
    warm = env.run(until=env.process(warm_walk(env)))
    return (cold / FILES, warm / ((REPEAT - 1) * FILES),
            server.requests_served)


def _both():
    orfa_us, orfa_reqs = _orfa_stat_walk()
    orfs_cold, orfs_warm, orfs_reqs = _orfs_stat_walk()
    return {"orfa_us": to_us(orfa_us), "orfa_reqs": orfa_reqs,
            "orfs_cold_us": to_us(orfs_cold),
            "orfs_warm_us": to_us(orfs_warm), "orfs_reqs": orfs_reqs}


def test_ablation_metadata_dcache(benchmark):
    r = run_once(benchmark, _both)
    print(f"\nstat() mean: ORFA {r['orfa_us']:.1f} us every time "
          f"({r['orfa_reqs']} server requests)")
    print(f"             ORFS {r['orfs_cold_us']:.1f} us cold, "
          f"{r['orfs_warm_us']:.1f} us warm "
          f"({r['orfs_reqs']} server requests)")
    benchmark.extra_info.update(r)
    # ORFS's dentry cache absorbs the repeats: far fewer server round
    # trips, and warm stats are an order of magnitude cheaper
    assert r["orfs_reqs"] < r["orfa_reqs"] / 2
    assert r["orfs_warm_us"] < r["orfa_us"] / 5
