"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one table or figure of the paper.
pytest-benchmark times the (deterministic) simulation run; the figures'
actual data — the simulated latencies/bandwidths — are printed as the
same series the paper plots and attached to ``benchmark.extra_info`` so
they land in the JSON output.  Light shape assertions guard the paper's
qualitative claims; the full paper-vs-measured record is EXPERIMENTS.md.
"""

from __future__ import annotations


def record_figure(benchmark, data) -> None:
    """Attach a FigureData's series to the benchmark record and print it."""
    benchmark.extra_info["figure"] = data.name
    benchmark.extra_info["xs"] = list(data.xs)
    benchmark.extra_info["series"] = {k: list(v) for k, v in data.series.items()}
    print()
    print(data.render())


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
