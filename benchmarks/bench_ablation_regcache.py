"""Ablation: registration-cache hit ratio vs direct-access throughput.

DESIGN.md section 5.  The paper measures only the two endpoints of this
knob (100 % hits vs 0 % hits, figure 3(b)); this ablation sweeps buffer
reuse to show the transition, plus the microscopic view: GMKRC hit cost
vs miss cost per acquire.
"""

from conftest import run_once

from repro.bench.fileio import build_orfs, orfs_sequential_read
from repro.cluster import node_pair
from repro.gm.kernel import GmKernelPort
from repro.gmkrc import Gmkrc
from repro.sim import Environment
from repro.units import MiB, PAGE_SIZE, to_us


def _endpoint_throughputs():
    """Direct 256 kB reads with the cache enabled vs disabled."""
    out = {}
    for enabled in (True, False):
        rig = build_orfs("gm", regcache_enabled=enabled, file_size=MiB)
        r = orfs_sequential_read(rig, 256 * 1024, MiB, direct=True)
        out[enabled] = r.throughput_mb_s
    return out


def _acquire_costs():
    """Per-acquire cost of a GMKRC hit vs a miss (16-page buffer)."""
    env = Environment()
    node, _ = node_pair(env)
    port = GmKernelPort(node, 2)
    cache = Gmkrc(port, node.vmaspy)
    space = node.new_process_space()
    vaddr = space.mmap(16 * PAGE_SIZE)
    costs = {}

    def script(env):
        t0 = env.now
        _, e = yield from cache.acquire(space, vaddr, 16 * PAGE_SIZE)
        costs["miss_us"] = to_us(env.now - t0)
        cache.release(e)
        t1 = env.now
        _, e = yield from cache.acquire(space, vaddr, 16 * PAGE_SIZE)
        costs["hit_us"] = to_us(env.now - t1)
        cache.release(e)

    env.run(until=env.process(script(env)))
    return costs


def test_ablation_regcache_endpoints(benchmark):
    result = run_once(benchmark, _endpoint_throughputs)
    print(f"\nregcache on : {result[True]:.1f} MB/s")
    print(f"regcache off: {result[False]:.1f} MB/s")
    benchmark.extra_info["throughput"] = {str(k): v for k, v in result.items()}
    loss = 1 - result[False] / result[True]
    assert 0.08 < loss < 0.30  # paper: ~20 % (figure 3(b))


def test_ablation_regcache_acquire_costs(benchmark):
    costs = run_once(benchmark, _acquire_costs)
    print(f"\nGMKRC miss: {costs['miss_us']:.1f} us   hit: {costs['hit_us']:.2f} us")
    benchmark.extra_info.update(costs)
    # a miss pays pinning + 3 us/page registration; a hit is ~free
    assert costs["miss_us"] > 40
    assert costs["hit_us"] < 1.0
