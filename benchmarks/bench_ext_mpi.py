"""Extension: the MPI layer — the baseline the paper's APIs target.

Section 2.2.2: MPI middleware "transparently registers buffers on the
flight and intercepts address space modifications", which is why GM is
fine for user-space MPI and painful in the kernel.  This benchmark
measures (a) MPI point-to-point latency over both stacks against the
raw API latencies, and (b) the cost of a 4-rank allreduce.
"""

from conftest import run_once

from repro.mpi import mpi_world
from repro.sim import Environment
from repro.units import PAGE_SIZE, to_us


def _p2p_one_way(api: str, rounds: int = 10) -> float:
    env = Environment()
    comms, nodes = mpi_world(env, 2, api=api)
    times = {}

    def program(comm):
        buf = comm.space.mmap(PAGE_SIZE)
        warmup = 2
        for i in range(rounds + warmup):
            if comm.rank == 0:
                if i == warmup:
                    times["t0"] = comm.env.now
                yield from comm.send(1, buf, 1, tag=1)
                yield from comm.recv(1, buf, PAGE_SIZE, tag=2)
            else:
                yield from comm.recv(0, buf, PAGE_SIZE, tag=1)
                yield from comm.send(0, buf, 1, tag=2)
        if comm.rank == 0:
            times["t1"] = comm.env.now

    procs = [env.process(program(c)) for c in comms]
    env.run(until=env.all_of(procs))
    return to_us((times["t1"] - times["t0"]) / (2 * rounds))


def _allreduce_us(api: str, ranks: int = 4, rounds: int = 10) -> float:
    env = Environment()
    comms, nodes = mpi_world(env, ranks, api=api)
    times = {}

    def program(comm):
        t0 = comm.env.now
        for _ in range(rounds):
            yield from comm.allreduce_ints([comm.rank])
        if comm.rank == 0:
            times["dt"] = comm.env.now - t0

    procs = [env.process(program(c)) for c in comms]
    env.run(until=env.all_of(procs))
    return to_us(times["dt"] / rounds)


def _sweep():
    return {
        "p2p_gm_us": _p2p_one_way("gm"),
        "p2p_mx_us": _p2p_one_way("mx"),
        "allreduce4_gm_us": _allreduce_us("gm"),
        "allreduce4_mx_us": _allreduce_us("mx"),
    }


def test_ext_mpi_overheads(benchmark):
    r = run_once(benchmark, _sweep)
    print(f"\nMPI 1-byte one-way: GM {r['p2p_gm_us']:.2f} us "
          f"(raw 6.7) | MX {r['p2p_mx_us']:.2f} us (raw 4.2)")
    print(f"4-rank allreduce  : GM {r['allreduce4_gm_us']:.1f} us | "
          f"MX {r['allreduce4_mx_us']:.1f} us")
    benchmark.extra_info.update(r)
    # the middleware adds only a small overhead over the raw API — the
    # paper's point that these interfaces serve user-space MPI well
    assert r["p2p_gm_us"] - 6.7 < 3.0
    assert r["p2p_mx_us"] - 4.2 < 3.0
    # the raw latency gap carries through to MPI and its collectives
    assert r["p2p_gm_us"] / r["p2p_mx_us"] > 1.3
    assert r["allreduce4_gm_us"] / r["allreduce4_mx_us"] > 1.2
