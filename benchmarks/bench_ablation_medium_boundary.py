"""Ablation: sweeping MX's medium/large message boundary.

Paper section 5.1: "Such an improvement [copy removal] might lead to
increase the medium message maximal size in this context since large
message bandwidth looks lower."  This sweep measures 48 kB transfers
under different medium/large boundaries, with the internal copies in
place and removed, quantifying that suggestion.
"""

from conftest import run_once
from dataclasses import replace

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import MxTransport
from repro.cluster import node_pair
from repro.hw.params import MX_STRATEGY
from repro.sim import Environment

SIZE = 48 * 1024
BOUNDARIES = (32 * 1024, 64 * 1024)


def _bw(boundary: int, no_copy: bool) -> float:
    strategy = replace(MX_STRATEGY, medium_max=boundary)
    env = Environment()
    a, b = node_pair(env)

    def make(node, peer):
        t = MxTransport(node, 1, peer_node=peer, peer_ep=1, context="kernel",
                        physical=True, no_send_copy=no_copy,
                        no_recv_copy=no_copy)
        t.endpoint.strategy = strategy
        return t

    ta, tb = make(a, 1), make(b, 0)
    prepare_pair(env, ta, tb, SIZE)
    return ping_pong(env, ta, tb, SIZE, rounds=5).bandwidth_mb_s


def _sweep():
    return {
        (boundary, nsc): _bw(boundary, nsc)
        for boundary in BOUNDARIES
        for nsc in (False, True)
    }


def test_ablation_medium_boundary(benchmark):
    result = run_once(benchmark, _sweep)
    print()
    for (boundary, nc), bw in result.items():
        mode = "copies removed" if nc else "with copies  "
        path = "medium" if SIZE <= boundary else "large "
        print(f"boundary {boundary // 1024:>3}k ({path}, {mode}): {bw:6.1f} MB/s")
    benchmark.extra_info["bw"] = {f"{b}/{n}": v for (b, n), v in result.items()}
    # With copies, the rendezvous large path beats the copy-burdened
    # medium path at 48 kB: the 32 kB boundary is right for stock MX...
    assert result[(32 * 1024, False)] > result[(64 * 1024, False)]
    # ...but with the copies removed, medium wins: raising the boundary
    # pays off, exactly as the paper suggests.
    assert result[(64 * 1024, True)] > result[(32 * 1024, True)]
