"""Figure 8(b): SOCKETS-GM vs SOCKETS-MX bandwidth (PCI-XE, 500 MB/s).

Paper claims reproduced here (section 5.3, table 1):
* "Medium message bandwidth improvement is up to 100 %" (our peak lands
  at 1 kB rather than 4 kB — see EXPERIMENTS.md);
* "large message is up to 50 % (for 1 MB)";
* SOCKETS-GM stays under ~70 % of the link capacity; SOCKETS-MX nears
  the full 500 MB/s.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig8b


def test_fig8b_sockets_bandwidth(benchmark):
    data = run_once(benchmark, fig8b)
    record_figure(benchmark, data)
    s = data.series
    gains = [mx / gm - 1 for mx, gm in zip(s["Sockets-MX"], s["Sockets-GM"])]
    # peak medium improvement approaches 100 %
    assert max(gains[:3]) > 0.55
    # large-message improvement ~50 %
    assert 0.30 < gains[-1] < 0.60, f"1 MB gain {gains[-1]:.2%} (paper: 50 %)"
    # link-capacity fractions (table 1)
    assert s["Sockets-GM"][-1] < 0.70 * 500
    assert s["Sockets-MX"][-1] > 0.93 * 500
