"""Extension: asynchronous file I/O depth sweep over ORFS.

The paper twice gestures at asynchronous I/O: Linux 2.6 had just gained
it (section 2.1), and MX's flexible completion "makes the implementation
of both synchronous and future asynchronous file requests easier"
(section 5.2).  This sweep issues O_DIRECT AIO reads at increasing queue
depth on both APIs and shows small-request throughput climbing toward
the wire as the depth hides the per-request latency.
"""

from conftest import run_once

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import KiB, PAGE_SIZE, bandwidth_mb_s

DEPTHS = (1, 2, 4, 8, 16)
CHUNK = 8 * KiB
TOTAL = 1024 * KiB


def _throughput(api: str, depth: int) -> float:
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, 3, api=api)
    env.run(until=server.start())
    channel = (MxKernelChannel if api == "mx" else GmKernelChannel)(client_node, 4)
    mount_orfs(client_node, channel, (server_node.node_id, 3))
    attrs = env.run(until=env.process(server.fs.create(1, "f")))
    server.fs.write_raw(attrs.inode_id, 0, bytes(TOTAL))
    space = client_node.new_process_space()
    bufs = [space.mmap(CHUNK) for _ in range(depth)]
    result = {}

    def app(env):
        fd = yield from client_node.vfs.open(
            "/orfs/f", OpenFlags.RDONLY | OpenFlags.DIRECT)
        t0 = env.now
        offset = 0
        inflight = []
        while offset < TOTAL or inflight:
            while offset < TOTAL and len(inflight) < depth:
                buf = bufs[len(inflight)]
                r = yield from client_node.vfs.aio_read(
                    fd, UserBuffer(space, buf, CHUNK), offset=offset)
                inflight.append(r)
                offset += CHUNK
            yield from client_node.vfs.aio_wait(inflight)
            inflight = []
        result["elapsed"] = env.now - t0
        yield from client_node.vfs.close(fd)

    env.run(until=env.process(app(env)))
    return bandwidth_mb_s(TOTAL, result["elapsed"])


def _sweep():
    return {api: [_throughput(api, d) for d in DEPTHS] for api in ("mx", "gm")}


def test_ext_aio_depth_sweep(benchmark):
    result = run_once(benchmark, _sweep)
    print("\nqueue depth      :", "  ".join(f"{d:>6}" for d in DEPTHS))
    for api, row in result.items():
        print(f"ORFS/{api} aio 8k  :", "  ".join(f"{v:6.1f}" for v in row))
    benchmark.extra_info["throughput"] = result
    for api in ("mx", "gm"):
        row = result[api]
        # depth hides latency: monotone-ish growth, big total gain
        assert row[-1] > 1.6 * row[0]
    # MX keeps its latency advantage at low depth...
    assert result["mx"][0] > result["gm"][0]
    # ...and both converge toward the wire once deep enough
    assert result["mx"][-1] > 170
