"""Ablation: host-CPU cycles consumed by copy-based vs zero-copy paths.

The paper's motivation (section 2.1): intermediate copies "are CPU
consuming while the user parallel application needs the CPU for its
computations".  This experiment streams the same bytes through a
copy-based socket stack (SOCKETS-GM) and the zero-copy one (SOCKETS-MX)
and compares how many host-CPU cycles the receiver spent — the cycles a
co-running computation would have lost.
"""

from conftest import run_once

from repro.cluster import node_pair
from repro.hw.params import PCI_XE
from repro.sim import Environment
from repro.sockets import SocketsGmModule, SocketsMxModule

MESSAGES = 16
SIZE = 256 * 1024


def _receiver_cpu_busy(kind: str) -> float:
    env = Environment()
    a, b = node_pair(env, link=PCI_XE)
    if kind == "mx":
        ma, mb = SocketsMxModule(a, 9), SocketsMxModule(b, 9)
    else:
        ma, mb = SocketsGmModule(a, 9), SocketsGmModule(b, 9)
    spa, spb = a.new_process_space(), b.new_process_space()
    va = spa.mmap(SIZE, populate=True)
    vb = spb.mmap(SIZE, populate=True)

    def server(env):
        yield from mb.listen()
        sock = yield from mb.accept()
        for _ in range(MESSAGES):
            yield from sock.recv(spb, vb, SIZE)

    def client(env):
        sock = yield from ma.connect(1, 9)
        for _ in range(MESSAGES):
            yield from sock.send(spa, va, SIZE)

    s = env.process(server(env))
    env.process(client(env))
    env.run(until=s)
    return b.cpu.resource.busy_time / max(1, env.now)


def _both():
    return {"gm": _receiver_cpu_busy("gm"), "mx": _receiver_cpu_busy("mx")}


def test_ablation_receiver_cpu_consumption(benchmark):
    result = run_once(benchmark, _both)
    print(f"\nreceiver CPU busy — Sockets-GM: {result['gm']:.1%}   "
          f"Sockets-MX: {result['mx']:.1%}")
    benchmark.extra_info["cpu_busy"] = result
    # the copy-based stack burns substantially more receiver CPU per
    # byte delivered than the zero-copy one
    assert result["gm"] > 1.5 * result["mx"]
