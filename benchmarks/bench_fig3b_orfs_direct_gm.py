"""Figure 3(b): ORFS direct access on GM and the registration cache.

Paper claims reproduced here (section 3.2):
* ordering GM raw > ORFA > ORFS (system calls + VFS traversal cost);
* "Without any cache hit, the performance is 20 % lower" — the
  no-registration-cache ORFS curve trails the cached one by ~15-25 %
  at large requests.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig3b


def test_fig3b_registration_cache_impact(benchmark):
    data = run_once(benchmark, fig3b)
    record_figure(benchmark, data)
    s = data.series
    large = -1  # 256 kB point
    assert s["GM Raw"][large] > s["ORFA w/ RegCache"][large]
    assert s["ORFA w/ RegCache"][large] > s["ORFS w/ RegCache"][large]
    loss = 1 - s["ORFS w/o RegCache"][large] / s["ORFS w/ RegCache"][large]
    assert 0.10 < loss < 0.30, f"no-cache loss {loss:.2%} (paper: ~20 %)"
