"""Extension: write-path throughput over ORFS (GM vs MX).

The paper evaluates reads; writes exercise the mirror-image mechanisms
(dirty page cache + writepage vs zero-copy direct_write with protocol
chunking), so the same interface effects should — and do — appear:

* buffered writes absorb into the page cache at memory speed and pay
  the network at writeback, page by page (GM loses there like
  figure 7(b));
* O_DIRECT writes stream in wsize chunks and approach the wire on both
  APIs, with MX slightly ahead (like figure 7(a)).
"""

from conftest import run_once

from repro.bench.fileio import build_orfs
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.units import MiB, bandwidth_mb_s, page_align_up

TOTAL = MiB


def _write_throughput(api: str, direct: bool) -> dict:
    rig = build_orfs(api, file_size=TOTAL)
    node = rig.client_node
    env = rig.env
    flags = OpenFlags.RDWR | OpenFlags.CREAT | (
        OpenFlags.DIRECT if direct else OpenFlags.RDWR)
    space = node.new_process_space()
    vaddr = space.mmap(page_align_up(TOTAL))
    space.write_bytes(vaddr, b"w" * TOTAL)
    out = {}

    def app(env):
        fd = yield from node.vfs.open("/orfs/out", flags)
        t0 = env.now
        yield from node.vfs.write(fd, UserBuffer(space, vaddr, TOTAL))
        out["write_ns"] = env.now - t0
        t1 = env.now
        yield from node.vfs.fsync(fd)
        out["fsync_ns"] = env.now - t1
        yield from node.vfs.close(fd)

    env.run(until=env.process(app(env)))
    visible = bandwidth_mb_s(TOTAL, out["write_ns"])
    durable = bandwidth_mb_s(TOTAL, out["write_ns"] + out["fsync_ns"])
    # correctness: the server holds the bytes after fsync
    assert rig.server.fs.read_raw(3, 0, 16) == b"w" * 16  # inode 3 = /orfs/out
    return {"visible": visible, "durable": durable}


def _sweep():
    return {
        (api, mode): _write_throughput(api, mode == "direct")
        for api in ("mx", "gm")
        for mode in ("buffered", "direct")
    }


def test_ext_write_paths(benchmark):
    r = run_once(benchmark, _sweep)
    print()
    for (api, mode), v in r.items():
        print(f"ORFS/{api} {mode:<8}: write() sees {v['visible']:7.1f} MB/s, "
              f"durable {v['durable']:6.1f} MB/s")
    benchmark.extra_info["throughput"] = {
        f"{a}/{m}": v for (a, m), v in r.items()}
    # buffered writes absorb at memory speed (far above the wire)...
    assert r[("mx", "buffered")]["visible"] > 400
    # ...but durability costs the per-page writeback; MX wins like 7(b)
    gain = (r[("mx", "buffered")]["durable"]
            / r[("gm", "buffered")]["durable"] - 1)
    assert 0.2 < gain < 0.6
    # O_DIRECT writes stream in wsize chunks: both APIs land well above
    # the buffered plateau and within a few percent of each other (the
    # tiny replies blunt the interface difference)
    assert r[("mx", "direct")]["durable"] >= 0.93 * r[("gm", "direct")]["durable"]
    assert r[("mx", "direct")]["durable"] > 130
