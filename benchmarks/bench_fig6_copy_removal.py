"""Figure 6: removing the medium-message copies (MX, kernel, physical).

Paper claims reproduced here (section 5.1):
* removing the send-side copy "leads to 17 % bandwidth improvement for
  32 kbytes messages";
* removing both copies (predicted — impossible on the 2005 NIC) adds
  "another 15 %";
* for a single page the send-copy removal "gives a 9 % improvement";
* just past the medium/large boundary, "large message bandwidth looks
  lower" than the no-copy medium trend — the argument for raising the
  32 kB boundary.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig6


def test_fig6_copy_removal(benchmark):
    data = run_once(benchmark, fig6)
    record_figure(benchmark, data)
    s = data.series
    i32k = data.xs.index(32 * 1024)
    i4k = data.xs.index(4096)
    base = s["MX Kernel"]
    nosend = s["MX Kernel No-send-copy"]
    nocopy = s["MX Kernel No-copy (predicted)"]

    send_gain_32k = nosend[i32k] / base[i32k] - 1
    assert 0.12 < send_gain_32k < 0.22, f"{send_gain_32k:.2%} (paper: 17 %)"

    recv_gain_32k = nocopy[i32k] / nosend[i32k] - 1
    assert 0.10 < recv_gain_32k < 0.25, f"{recv_gain_32k:.2%} (paper: ~15 %)"

    send_gain_4k = nosend[i4k] / base[i4k] - 1
    assert 0.05 < send_gain_4k < 0.13, f"{send_gain_4k:.2%} (paper: 9 %)"

    # the no-copy medium at 32 kB out-runs the large path at 64 kB
    i64k = data.xs.index(64 * 1024)
    assert nocopy[i32k] > base[i64k]
