"""Figure 5(a): small-message latency, GM vs MX, user vs kernel.

Paper claims reproduced here (section 5.1):
* MX 1-byte user latency 4.2 us; GM 6.7 us ("more than 50 % higher");
* GM kernel latency 2 us above GM user;
* MX kernel latency identical to MX user.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig5a


def test_fig5a_latency(benchmark):
    data = run_once(benchmark, fig5a)
    record_figure(benchmark, data)
    s = data.series
    assert abs(s["MX User"][0] - 4.2) < 0.3
    assert abs(s["GM User"][0] - 6.7) < 0.3
    assert s["GM User"][0] / s["MX User"][0] > 1.5
    assert 1.7 < s["GM Kernel"][0] - s["GM User"][0] < 2.3
    for mx_u, mx_k in zip(s["MX User"], s["MX Kernel"]):
        assert abs(mx_u - mx_k) < 0.15
