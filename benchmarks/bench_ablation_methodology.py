"""Ablation: ping-pong vs streaming bandwidth methodology.

The paper's plots are NetPIPE ping-pongs (a full round trip per point).
Applications that overlap communication see streaming rates instead.
This ablation measures both on identical transports and shows:

* streaming recovers most of the per-message latency at medium sizes;
* the copy-removal gain of figure 6 is a *ping-pong* phenomenon: under
  streaming the bounce copy pipelines with the wire and can even *win*
  — the buffered send completes at copy time, so the sender streams
  back-to-back, while the zero-copy in-place send must hold the buffer
  until its DMA finishes (one message serialized per loop here).  The
  copy still burns host CPU, though — see
  ``bench_ablation_cpu_consumption.py`` — which is why the paper's
  removal matters for real applications that need those cycles.
"""

from conftest import run_once

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.streams import stream
from repro.bench.transports import MxTransport
from repro.cluster import node_pair
from repro.sim import Environment

SIZES = (4096, 32 * 1024)


def _measure(no_send_copy: bool, mode: str, size: int) -> float:
    env = Environment()
    a, b = node_pair(env)
    ta = MxTransport(a, 1, peer_node=1, peer_ep=1, context="kernel",
                     physical=True, no_send_copy=no_send_copy)
    tb = MxTransport(b, 1, peer_node=0, peer_ep=1, context="kernel",
                     physical=True, no_send_copy=no_send_copy)
    prepare_pair(env, ta, tb, size)
    if mode == "pingpong":
        return ping_pong(env, ta, tb, size, rounds=8).bandwidth_mb_s
    return stream(env, ta, tb, size, messages=32).bandwidth_mb_s


def _sweep():
    out = {}
    for size in SIZES:
        for mode in ("pingpong", "stream"):
            for nsc in (False, True):
                out[(size, mode, nsc)] = _measure(nsc, mode, size)
    return out


def test_ablation_methodology(benchmark):
    result = run_once(benchmark, _sweep)
    print()
    for (size, mode, nsc), bw in sorted(result.items()):
        label = "no-send-copy" if nsc else "with copies "
        print(f"{size // 1024:>3}k {mode:<9} {label}: {bw:6.1f} MB/s")
    benchmark.extra_info["bw"] = {f"{s}/{m}/{n}": v
                                  for (s, m, n), v in result.items()}
    for size in SIZES:
        # streaming always beats ping-pong at the same size
        assert result[(size, "stream", False)] > result[(size, "pingpong", False)]
        # copy removal matters under ping-pong...
        pp_gain = (result[(size, "pingpong", True)]
                   / result[(size, "pingpong", False)] - 1)
        assert pp_gain > 0.08
        # ...but nearly vanishes under streaming (the copy pipelines)
        st_gain = (result[(size, "stream", True)]
                   / result[(size, "stream", False)] - 1)
        assert st_gain < pp_gain / 2
