"""Figure 7(a): ORFS direct file access over GM vs MX.

Paper claims reproduced here (section 5.2): "Direct file accesses on MX
are slightly better than over GM.  The difference is similar to their
raw bandwidth difference." — with GM enjoying 100 % registration-cache
hits in this benchmark.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig7a


def test_fig7a_orfs_direct(benchmark):
    data = run_once(benchmark, fig7a)
    record_figure(benchmark, data)
    s = data.series
    # MX direct at least as good as GM direct at the extremes
    assert s["ORFS/MX Direct"][0] >= s["ORFS/GM Direct"][0]
    assert s["ORFS/MX Direct"][-1] >= 0.98 * s["ORFS/GM Direct"][-1]
    # both track their raw curves at large requests
    assert s["ORFS/GM Direct"][-1] > 0.85 * s["GM"][-1]
    assert s["ORFS/MX Direct"][-1] > 0.85 * s["MX Kernel"][-1]
