"""Ablation: SOCKETS-GM's dispatch-thread penalty.

Paper section 5.3: "limited completion notification mechanisms in GM
require the use of an extra (dispatching) kernel thread which increases
the latency".  This ablation sweeps the thread's context-switch cost
(including 0, a hypothetical GM with direct wakeups) and shows the
one-way latency is offset one-for-one — i.e. how much of SOCKETS-GM's
15 us is structural to GM's notification model.
"""

from conftest import run_once

import repro.sockets.sockets_gm as sgm
from repro.cluster import node_pair
from repro.hw.params import PCI_XE
from repro.sim import Environment
from repro.sockets import SocketsGmModule
from repro.units import to_us

WAKE_COSTS_NS = (0, 2000, 4000, 8000)


def _one_way_us(wake_ns: int, size: int = 1, rounds: int = 8) -> float:
    original = sgm._KTHREAD_WAKE_NS
    sgm._KTHREAD_WAKE_NS = wake_ns
    try:
        env = Environment()
        a, b = node_pair(env, link=PCI_XE)
        ma, mb = SocketsGmModule(a, 9), SocketsGmModule(b, 9)
        spa, spb = a.new_process_space(), b.new_process_space()
        va = spa.mmap(4096, populate=True)
        vb = spb.mmap(4096, populate=True)
        times = {}

        def server(env):
            yield from mb.listen()
            sock = yield from mb.accept()
            for _ in range(rounds + 2):
                yield from sock.recv(spb, vb, size)
                yield from sock.send(spb, vb, size)

        def client(env):
            sock = yield from ma.connect(1, 9)
            for i in range(rounds + 2):
                if i == 2:
                    times["t0"] = env.now
                yield from sock.send(spa, va, size)
                yield from sock.recv(spa, va, size)
            times["t1"] = env.now

        env.process(server(env))
        env.run(until=env.process(client(env)))
        return to_us((times["t1"] - times["t0"]) / (2 * rounds))
    finally:
        sgm._KTHREAD_WAKE_NS = original


def _sweep():
    return {w: _one_way_us(w) for w in WAKE_COSTS_NS}


def test_ablation_dispatch_thread(benchmark):
    result = run_once(benchmark, _sweep)
    print()
    for wake, lat in result.items():
        print(f"kthread switch {wake / 1000:.0f} us -> one-way {lat:5.2f} us")
    benchmark.extra_info["latency_us"] = {str(k): v for k, v in result.items()}
    # latency moves one-for-one with the dispatch cost
    delta = result[8000] - result[0]
    assert 7.0 < delta < 9.0
    # even a zero-cost thread leaves SOCKETS-GM well above SOCKETS-MX's
    # 5 us: the bounce copies and GM's kernel latency remain
    assert result[0] > 10.0
