"""Figure 7(b): ORFS buffered file access over GM vs MX.

Paper claims reproduced here (section 5.2): "Buffered file access in
ORFS on MX shows a 40 % improvement over GM.  Network requests are
page-sized in this context.  But, MX raw performance is not better than
GM for such messages.  The ORFS/MX performance improvement is thus
caused by our improved kernel interface."
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig7b


def test_fig7b_orfs_buffered(benchmark):
    data = run_once(benchmark, fig7b)
    record_figure(benchmark, data)
    s = data.series
    gain = s["ORFS/MX Buffered"][-1] / s["ORFS/GM Buffered"][-1] - 1
    assert 0.25 < gain < 0.55, f"buffered MX gain {gain:.2%} (paper: 40 %)"
    # the gain is NOT explained by raw page-sized performance: raw GM
    # actually beats raw MX at 4 kB
    i4k = data.xs.index(4096)
    assert s["GM"][i4k] >= s["MX Kernel"][i4k]
    # both plateau well below their raw curves (page-sized splitting)
    assert s["ORFS/GM Buffered"][-1] < 0.5 * s["GM"][-1]
    assert s["ORFS/MX Buffered"][-1] < 0.6 * s["MX Kernel"][-1]
