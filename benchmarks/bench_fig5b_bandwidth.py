"""Figure 5(b): bandwidth of GM vs MX user vs MX kernel-physical.

Paper claims reproduced here (section 5.1):
* "GM large message bandwidth is the same than MX" (both near the
  250 MB/s PCI-XD rate; GM benefits from 100 % registration reuse);
* "The large message bandwidth is even higher with the kernel interface
  since the page locking overhead is lower."
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig5b


def test_fig5b_bandwidth(benchmark):
    data = run_once(benchmark, fig5b)
    record_figure(benchmark, data)
    s = data.series
    # large messages: all three near the link rate, GM ~ MX
    for name in s:
        assert 230 < s[name][-1] < 250
    assert abs(s["GM"][-1] - s["MX User"][-1]) < 10
    # kernel-physical >= user for large (no get_user_pages)
    assert s["MX Kernel Physical"][-1] >= s["MX User"][-1]
    # MX leads at 1 kB thanks to its lower base latency
    assert s["MX User"][0] > s["GM"][0]
