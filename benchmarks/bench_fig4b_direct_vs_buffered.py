"""Figure 4(b): ORFS/GM direct vs buffered file access.

Paper claims reproduced here (section 3.3):
* "4 kB accesses are faster through the page-cache compared to direct
  accesses, even if an additional copy ... is required" — the physical
  interface's efficiency;
* "an application requesting large data transfers will show much better
  performance in the direct case ... a large buffered access is split
  in page-sized requests" — buffered plateaus, direct approaches raw.
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig4b


def test_fig4b_direct_vs_buffered(benchmark):
    data = run_once(benchmark, fig4b)
    record_figure(benchmark, data)
    s = data.series
    i4k = data.xs.index(4096)
    # buffered beats direct at 4 kB requests
    assert s["ORFS/GM Buffered"][i4k] > s["ORFS/GM Direct"][i4k]
    # direct wins big at large requests; buffered is page-split-limited
    assert s["ORFS/GM Direct"][-1] > 2 * s["ORFS/GM Buffered"][-1]
    # buffered has plateaued (page-sized network requests)
    assert abs(s["ORFS/GM Buffered"][-1] - s["ORFS/GM Buffered"][-2]) < 5
    # direct approaches raw GM at large requests
    assert s["ORFS/GM Direct"][-1] > 0.85 * s["GM Raw"][-1]
