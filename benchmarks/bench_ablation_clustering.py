"""Ablation: Linux 2.6-style page-request clustering in buffered ORFS.

Paper section 3.3: "This issue [buffered accesses split into page-sized
requests] should disappear with LINUX 2.6 kernels which are able to
combine multiple page-sized accesses in a single request.  However,
this would require vectorial communication primitives, that is
something GM does not provide."

This sweep turns the clustering window up on both backends: ORFS/MX
climbs toward its direct-access throughput (vectorial readpages), while
ORFS/GM barely moves (no vectorial primitives — the window degrades to
per-page requests).
"""

from conftest import run_once

from repro.bench.fileio import build_orfs, orfs_sequential_read
from repro.units import MiB

WINDOWS = (1, 2, 4, 8, 16)


def _sweep():
    out = {}
    for api in ("mx", "gm"):
        rig = build_orfs(api, file_size=MiB)
        row = []
        for window in WINDOWS:
            rig.client_node.vfs.read_cluster_pages = window
            r = orfs_sequential_read(rig, 256 * 1024, MiB)
            row.append(r.throughput_mb_s)
        out[api] = row
    return out


def test_ablation_26_clustering(benchmark):
    result = run_once(benchmark, _sweep)
    print("\ncluster window :", "  ".join(f"{w:>6}" for w in WINDOWS))
    for api, row in result.items():
        print(f"ORFS/{api} buffered:", "  ".join(f"{v:6.1f}" for v in row))
    benchmark.extra_info["throughput"] = result
    mx, gm = result["mx"], result["gm"]
    # MX gains a lot from clustering (vectorial requests)...
    assert mx[-1] > 1.5 * mx[0]
    # ...GM cannot (requests stay page-sized)
    assert gm[-1] < 1.1 * gm[0]
    # with a 16-page window, MX buffered leaves GM far behind
    assert mx[-1] > 2.0 * gm[-1]
