"""Extension: the Network Block Device client (paper section 6).

The paper predicts NBD "should also benefit from our improved kernel
interface since its needs are similar to buffered distant file access".
This benchmark runs the implemented NBD client over both APIs and
checks the GM-to-MX gain sits in the same band as buffered ORFS
(figure 7(b)).
"""

from conftest import run_once

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.nbd import NbdDevice, NbdServer
from repro.sim import Environment
from repro.units import PAGE_SIZE, bandwidth_mb_s

BLOCKS = 512


def _throughput(api: str) -> float:
    env = Environment()
    client_node, server_node = node_pair(env)
    server = NbdServer(server_node, 3, api=api, device_blocks=BLOCKS)
    env.run(until=server.start())
    if api == "mx":
        channel = MxKernelChannel(client_node, 4)
    else:
        channel = GmKernelChannel(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, BLOCKS)
    space = client_node.new_process_space()
    size = BLOCKS * PAGE_SIZE
    vaddr = space.mmap(size)
    t0 = env.now

    def app(env):
        yield from dev.read(space, vaddr, 0, size)

    env.run(until=env.process(app(env)))
    return bandwidth_mb_s(size, env.now - t0)


def _both():
    return {"gm": _throughput("gm"), "mx": _throughput("mx")}


def test_ext_nbd_sequential_read(benchmark):
    result = run_once(benchmark, _both)
    print(f"\nNBD/GM: {result['gm']:.1f} MB/s   NBD/MX: {result['mx']:.1f} MB/s "
          f"(+{(result['mx'] / result['gm'] - 1) * 100:.0f} %)")
    benchmark.extra_info["throughput"] = result
    gain = result["mx"] / result["gm"] - 1
    # the same band as buffered ORFS: the paper's section-6 prediction
    assert 0.25 < gain < 0.55
