"""Table 1: the paper's summary of MX vs GM in-kernel performance.

Regenerates every row from the underlying experiments and prints the
composed table (the per-row claims are asserted by the individual
figure benchmarks; this target checks the composite renders and the two
headline ratios hold together).
"""

from conftest import run_once

from repro.bench.figures import table1


def test_table1_summary(benchmark):
    text = run_once(benchmark, table1)
    print()
    print(text)
    benchmark.extra_info["table"] = text
    assert "Kernel latency" in text
    assert "Buffered remote file access" in text
    assert "0-copy socket bandwidth" in text
