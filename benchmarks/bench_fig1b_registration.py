"""Figure 1(b): memcpy vs GM registration/deregistration overhead.

Paper claims reproduced here (section 2.2.2):
* registration costs ~3 us/page;
* deregistration adds a ~200 us base;
* copying beats register+deregister for every size up to 256 kB, so the
  model "is only interesting for large memory zones used several times".
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig1b


def test_fig1b_registration_vs_copy(benchmark):
    data = run_once(benchmark, fig1b)
    record_figure(benchmark, data)
    s = data.series
    # ~3 us/page registration slope
    per_page = (s["Registration"][-1] - s["Registration"][0]) / (
        (data.xs[-1] - data.xs[0]) / 4096)
    assert 2.5 < per_page < 3.6
    # ~200 us deregistration base
    assert all(d >= 200 for d in s["Deregistration"])
    # copy (even on the slow P3) beats register+deregister everywhere shown
    for copy, both in zip(s["Copy (P3 1.2GHz)"], s["Register+Dereg"]):
        assert copy < both
    # but registration alone undercuts the P3's copy at large sizes —
    # why pin-down caches (which amortize deregistration) make sense
    assert s["Registration"][-1] < s["Copy (P3 1.2GHz)"][-1]
