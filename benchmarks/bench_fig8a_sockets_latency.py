"""Figure 8(a): SOCKETS-GM vs SOCKETS-MX small-message latency (PCI-XE).

Paper claims reproduced here (section 5.3):
* SOCKETS-MX: 5 us one-way for 1-byte messages — "only a 1 us overhead
  over raw MX latency ... since a system call is involved (about
  400 ns)";
* SOCKETS-GM: 15 us one-way (dispatch kernel thread + bounce buffers).
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig8a


def test_fig8a_sockets_latency(benchmark):
    data = run_once(benchmark, fig8a)
    record_figure(benchmark, data)
    s = data.series
    assert abs(s["Sockets-MX"][0] - 5.0) < 0.7
    assert abs(s["Sockets-GM"][0] - 15.0) < 1.5
    # ~1 us overhead over raw MX (4.2 us)
    assert 0.7 < s["Sockets-MX"][0] - 4.2 < 1.7
    # MX keeps its ~3x advantage through the small sizes
    assert s["Sockets-GM"][0] / s["Sockets-MX"][0] > 2.5
