"""Figure 4(a): registered-virtual vs physical-address kernel primitives.

Paper claims reproduced here (section 3.3): "We measured a 0.5 us gain
on both the sender and the receiver's side on our MYRINET cards, that
is 10 % improvement."
"""

from conftest import record_figure, run_once

from repro.bench.figures import fig4a


def test_fig4a_physical_address_gain(benchmark):
    data = run_once(benchmark, fig4a)
    record_figure(benchmark, data)
    virt = data.series["Memory Registration"]
    phys = data.series["Physical Address"]
    # 0.5 us per side = 1 us total, at every size
    for v, p in zip(virt, phys):
        assert 0.8 < v - p < 1.2
    # ~10 % at the smallest sizes
    assert 0.07 < (virt[0] - phys[0]) / virt[0] < 0.15
