#!/usr/bin/env python3
"""The paper's opening scenario: an MPI computation that also does I/O.

Section 2.1: "Parallel applications running on clusters often want to
get as much performance for storage access as for communication between
computing nodes."  This example runs both on the same simulated cluster:

* a 1-D Jacobi heat stencil across 4 ranks — halo exchange with
  ``sendrecv``, global residual with ``allreduce`` (the communication
  the APIs were designed for);
* a periodic checkpoint of each rank's partition into ORFS (the storage
  access the paper argues deserves the same quality of interface).

The numbers the run prints: per-iteration halo-exchange time, residual
convergence, checkpoint time, and the fraction of wall time spent in
I/O vs communication.

Run:  python examples/mpi_stencil.py [gm|mx]
"""

import sys

from repro.core import GmKernelChannel, MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.mpi import mpi_world
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import PAGE_SIZE, to_ms, to_us

RANKS = 4
CELLS_PER_RANK = 512  # one int64 per cell -> one page per partition
ITERATIONS = 10
CHECKPOINT_EVERY = 5
SERVER_PORT = 3


def main(api: str = "mx") -> None:
    env = Environment()
    comms, nodes = mpi_world(env, RANKS, api=api)
    # The file server rides on rank 0's node (a common deployment).
    server = OrfaServer(nodes[0], SERVER_PORT, api=api)
    env.run(until=server.start())
    for i, node in enumerate(nodes):
        channel = (MxKernelChannel if api == "mx" else GmKernelChannel)(node, 50 + i)
        mount_orfs(node, channel, (nodes[0].node_id, SERVER_PORT))

    stats = {"halo_ns": 0, "ckpt_ns": 0, "residuals": []}

    def rank_program(comm):
        node = nodes[comm.rank]
        space = comm.space
        # int64 cells, fixed-point arithmetic (scaled by 1000)
        cells = [1000_000 if comm.rank == 0 else 0] * CELLS_PER_RANK
        halo_tx = space.mmap(PAGE_SIZE)
        halo_rx_lo = space.mmap(PAGE_SIZE)
        halo_rx_hi = space.mmap(PAGE_SIZE)
        ckpt_buf = space.mmap(8 * CELLS_PER_RANK)

        def pack(v):
            return v.to_bytes(8, "big", signed=True)

        for it in range(ITERATIONS):
            # --- halo exchange (left and right neighbours) ----------------
            t0 = env.now
            lo, hi = 0, 0
            left, right = comm.rank - 1, comm.rank + 1
            if right < comm.size:
                space.write_bytes(halo_tx, pack(cells[-1]))
                yield from comm.sendrecv(right, halo_tx, 8,
                                         right, halo_rx_hi, 8, tag=it % 100)
                hi = int.from_bytes(space.read_bytes(halo_rx_hi, 8), "big",
                                    signed=True)
            if left >= 0:
                space.write_bytes(halo_tx, pack(cells[0]))
                yield from comm.sendrecv(left, halo_tx, 8,
                                         left, halo_rx_lo, 8, tag=it % 100)
                lo = int.from_bytes(space.read_bytes(halo_rx_lo, 8), "big",
                                    signed=True)
            if comm.rank == 0:
                stats["halo_ns"] += env.now - t0

            # --- Jacobi update (fixed cost per cell on the CPU) -----------
            yield from node.cpu.work(CELLS_PER_RANK * 20)
            padded = [lo] + cells + [hi]
            new = [(padded[i - 1] + padded[i + 1]) // 2
                   for i in range(1, len(padded) - 1)]
            if comm.rank == 0:
                new[0] = 1000_000  # boundary condition
            diff = sum(abs(a - b) for a, b in zip(new, cells))
            cells = new

            # --- global residual ------------------------------------------
            [total] = yield from comm.allreduce_ints([diff])
            if comm.rank == 0:
                stats["residuals"].append(total)

            # --- periodic checkpoint into ORFS ----------------------------
            if (it + 1) % CHECKPOINT_EVERY == 0:
                t1 = env.now
                data = b"".join(pack(v) for v in cells)
                space.write_bytes(ckpt_buf, data)
                fd = yield from node.vfs.open(
                    f"/orfs/ckpt_r{comm.rank}_i{it}",
                    OpenFlags.RDWR | OpenFlags.CREAT)
                yield from node.vfs.write(
                    fd, UserBuffer(space, ckpt_buf, len(data)))
                yield from node.vfs.close(fd)
                if comm.rank == 0:
                    stats["ckpt_ns"] += env.now - t1
        return cells

    t_start = env.now  # after server setup (GM registers its rings here)
    procs = [env.process(rank_program(c), name=f"rank{c.rank}") for c in comms]
    env.run(until=env.all_of(procs))
    wall = env.now - t_start

    print(f"1-D Jacobi on {RANKS} ranks over {api.upper()} "
          f"({CELLS_PER_RANK} cells/rank, {ITERATIONS} iterations)")
    print("=" * 64)
    res = stats["residuals"]
    print(f"residual: {res[0]} -> {res[-1]} "
          f"({'monotone decrease' if all(a >= b for a, b in zip(res, res[1:])) else 'NOT MONOTONE'})")
    print(f"halo exchange: {to_us(stats['halo_ns'] / ITERATIONS):6.1f} us/iteration")
    print(f"checkpoints:   {to_ms(stats['ckpt_ns']):6.2f} ms total "
          f"({ITERATIONS // CHECKPOINT_EVERY} x {RANKS} partitions)")
    print(f"wall time:     {to_ms(wall):6.2f} ms")
    print(f"server handled {server.requests_served} file requests while "
          f"the stencil ran")
    # the checkpoints are on the server's FS: verify one
    names = env.run(until=env.process(server.fs.readdir(1)))
    print(f"checkpoint files on server: {len(names)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mx")
