#!/usr/bin/env python3
"""A distributed file system session over the simulated cluster.

The paper's motivating workload (section 2.1): a cluster application
that needs file access as fast as its MPI communication.  This example:

1. boots an ORFA file server on one node and mounts ORFS on another
   (over the MX kernel channel — swap one line for GM);
2. runs a realistic mixed workload: create a directory tree, write
   data files, stat and list them (metadata served by the VFS dentry
   cache after first touch), then read them back both buffered and
   O_DIRECT;
3. prints per-phase timings and the page-cache/dcache hit statistics
   that explain them.

Run:  python examples/distributed_fs.py [gm|mx]
"""

import sys

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.kernel import OpenFlags
from repro.kernel.vfs import UserBuffer
from repro.orfa.server import OrfaServer
from repro.orfs import mount_orfs
from repro.sim import Environment
from repro.units import MiB, PAGE_SIZE, to_ms

SERVER_PORT = 3
CLIENT_PORT = 4
FILES = 8
FILE_SIZE = 256 * 1024


def main(api: str = "mx") -> None:
    env = Environment()
    client_node, server_node = node_pair(env)
    server = OrfaServer(server_node, SERVER_PORT, api=api)
    env.run(until=server.start())
    if api == "mx":
        channel = MxKernelChannel(client_node, CLIENT_PORT)
    else:
        channel = GmKernelChannel(client_node, CLIENT_PORT)
    mount_orfs(client_node, channel, (server_node.node_id, SERVER_PORT))
    vfs = client_node.vfs
    space = client_node.new_process_space()
    payload = bytes(range(256)) * (FILE_SIZE // 256)
    buf = space.mmap(FILE_SIZE)
    space.write_bytes(buf, payload)
    timings: dict[str, float] = {}

    def phase(name, gen):
        t0 = env.now
        value = env.run(until=env.process(gen))
        timings[name] = to_ms(env.now - t0)
        return value

    def create_tree(env):
        yield from vfs.mkdir("/orfs/data")
        for i in range(FILES):
            fd = yield from vfs.open(f"/orfs/data/f{i}",
                                     OpenFlags.RDWR | OpenFlags.CREAT)
            yield from vfs.write(fd, UserBuffer(space, buf, FILE_SIZE))
            yield from vfs.close(fd)

    def metadata_walk(env):
        names = yield from vfs.readdir("/orfs/data")
        total = 0
        for name in names:
            attrs = yield from vfs.stat(f"/orfs/data/{name}")
            total += attrs.size
        return total

    def read_back(env, direct):
        flags = OpenFlags.RDONLY | (OpenFlags.DIRECT if direct else OpenFlags.RDONLY)
        out = space.mmap(FILE_SIZE)
        ok = 0
        for i in range(FILES):
            fd = yield from vfs.open(f"/orfs/data/f{i}", flags)
            n = yield from vfs.read(fd, UserBuffer(space, out, FILE_SIZE))
            if space.read_bytes(out, n) == payload:
                ok += 1
            yield from vfs.close(fd)
        return ok

    print(f"ORFS over {api.upper()} — mixed file-system workload")
    print("=" * 60)
    phase("create+write", create_tree(env))
    total = phase("metadata walk (cold)", metadata_walk(env))
    phase("metadata walk (warm dcache)", metadata_walk(env))
    # Drop the page cache so the buffered read measures network transfer.
    for inode in range(1, 32):
        client_node.pagecache.invalidate_inode(inode)
    ok = phase("buffered read (cold cache)", read_back(env, direct=False))
    assert ok == FILES, "data corruption!"
    ok = phase("buffered read (warm cache)", read_back(env, direct=False))
    assert ok == FILES
    ok = phase("O_DIRECT read", read_back(env, direct=True))
    assert ok == FILES

    for name, ms in timings.items():
        print(f"{name:<28} {ms:8.2f} ms")
    print("-" * 60)
    print(f"total data verified: {FILES} files x {FILE_SIZE // 1024} kB "
          f"(sizes sum to {total // 1024} kB)")
    print(f"dentry cache: {vfs.dentry_hits} hits / {vfs.dentry_misses} misses")
    print(f"page cache:   {client_node.pagecache.hits} hits / "
          f"{client_node.pagecache.misses} misses")
    print(f"server handled {server.requests_served} protocol requests")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mx")
