#!/usr/bin/env python3
"""Why registration caches need VMA SPY: a corruption scenario, averted.

The paper's section 2.2.2 warning, made concrete: "the cache must be
kept up-to-date with mapping changes.  As the application is not aware
of the caching of its address translations in the NIC, it might change
its address space (especially through free or munmap), thus making the
registered translation invalid."

This example:

1. registers a user buffer through GMKRC and sends from it;
2. has the process munmap the buffer and mmap a *new* one that lands at
   the same virtual address (the classic malloc-reuse pattern);
3. shows that VMA SPY invalidated the cached translation at munmap
   time, so the next acquire re-registers and the send carries the new
   buffer's bytes — not stale data from the old physical pages;
4. re-runs the same sequence with the spy's notifications counted, and
   prints the cache statistics.

Run:  python examples/registration_cache_pitfalls.py
"""

from repro.cluster import node_pair
from repro.gm.kernel import GmKernelPort
from repro.gmkrc import Gmkrc
from repro.mem.layout import sg_from_frames
from repro.sim import Environment
from repro.units import PAGE_SIZE


def main() -> None:
    env = Environment()
    node_a, node_b = node_pair(env)
    port_a = GmKernelPort(node_a, 2)
    port_b = GmKernelPort(node_b, 2)
    cache = Gmkrc(port_a, node_a.vmaspy, max_cached_pages=64)
    space = node_a.new_process_space()
    dst = node_b.kspace.kmalloc(PAGE_SIZE)
    received = []

    def receiver(env):
        for _ in range(2):
            yield from port_b.provide_receive_buffer_physical(
                sg_from_frames(dst.frames, 0, PAGE_SIZE)
            )
            event = yield from port_b.receive_event(blocking=True)
            received.append(node_b.kspace.read_bytes(dst.vaddr, event.size))

    def sender(env):
        # --- generation 1 -------------------------------------------------
        vaddr = space.mmap(PAGE_SIZE)
        space.write_bytes(vaddr, b"GENERATION-1")
        key, entry = yield from cache.acquire(space, vaddr, PAGE_SIZE)
        old_frame = entry.region.frames[0]
        yield from port_a.send_registered(1, 2, key, 12)
        cache.release(entry)
        yield env.timeout(50_000)

        # --- the dangerous pattern ---------------------------------------
        space.munmap(vaddr, PAGE_SIZE)  # VMA SPY fires here
        print(f"after munmap: cached entries = {cache.entry_count()} "
              f"(invalidations = {cache.invalidations})")
        vaddr2 = space.mmap(PAGE_SIZE)
        assert vaddr2 == vaddr, "allocator reused the virtual address"
        space.write_bytes(vaddr2, b"GENERATION-2")
        key2, entry2 = yield from cache.acquire(space, vaddr2, PAGE_SIZE)
        new_frame = entry2.region.frames[0]
        print(f"same virtual address {vaddr2:#x}: physical frame "
              f"{old_frame.pfn} -> {new_frame.pfn}")
        yield from port_a.send_registered(1, 2, key2, 12)
        cache.release(entry2)

    env.process(receiver(env))
    env.run(until=env.process(sender(env)))
    env.run()

    print(f"receiver got: {received[0]!r} then {received[1]!r}")
    assert received[0] == b"GENERATION-1"
    assert received[1] == b"GENERATION-2", (
        "STALE TRANSLATION — without VMA SPY this would be generation-1 "
        "bytes from the freed physical page"
    )
    print(f"cache: {cache.hits} hits, {cache.misses} misses, "
          f"{cache.invalidations} spy invalidations")
    print(f"VMA SPY delivered {node_a.vmaspy.notifications_delivered} "
          f"notifications")
    print("=> the second send carried the new buffer: coherence held.")


if __name__ == "__main__":
    main()
