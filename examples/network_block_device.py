#!/usr/bin/env python3
"""Remote partition mounting: the NBD client (paper section 6).

The paper's third in-kernel application, implemented as the promised
extension.  This example exports a block device from one node, "mounts"
it on another, and runs a small database-ish workload on the raw
device: write a record heap, sync, random point reads (cold vs cached),
then an in-place update with read-modify-write of partial blocks.

Run:  python examples/network_block_device.py [gm|mx]
"""

import sys

from repro.cluster import node_pair
from repro.core import GmKernelChannel, MxKernelChannel
from repro.nbd import NbdDevice, NbdServer
from repro.sim import Environment
from repro.units import PAGE_SIZE, to_ms, to_us

BLOCKS = 256
RECORD = 512  # "database" record size: sub-block, forces partial writes
RECORDS = 64


def main(api: str = "mx") -> None:
    env = Environment()
    client_node, server_node = node_pair(env)
    server = NbdServer(server_node, 3, api=api, device_blocks=BLOCKS)
    env.run(until=server.start())
    channel = (MxKernelChannel if api == "mx" else GmKernelChannel)(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, BLOCKS)
    space = client_node.new_process_space()
    rec_buf = space.mmap(PAGE_SIZE)
    out_buf = space.mmap(PAGE_SIZE)
    timings = {}

    def phase(name, gen):
        t0 = env.now
        env.run(until=env.process(gen))
        timings[name] = env.now - t0

    def write_heap(env):
        for i in range(RECORDS):
            space.write_bytes(rec_buf, bytes([i % 256]) * RECORD)
            yield from dev.write(space, rec_buf, i * RECORD, RECORD)
        yield from dev.flush()

    def point_reads(env):
        # pseudo-random probe order, deterministic
        for i in range(RECORDS):
            j = (i * 37) % RECORDS
            n = yield from dev.read(space, out_buf, j * RECORD, RECORD)
            assert space.read_bytes(out_buf, n) == bytes([j % 256]) * RECORD

    def update_in_place(env):
        space.write_bytes(rec_buf, b"\xff" * RECORD)
        yield from dev.write(space, rec_buf, 5 * RECORD, RECORD)
        yield from dev.flush()
        n = yield from dev.read(space, out_buf, 5 * RECORD, RECORD)
        assert space.read_bytes(out_buf, n) == b"\xff" * RECORD
        # the neighbouring record must be untouched (read-modify-write)
        n = yield from dev.read(space, out_buf, 6 * RECORD, RECORD)
        assert space.read_bytes(out_buf, n) == bytes([6 % 256]) * RECORD

    print(f"NBD over {api.upper()} — {BLOCKS * PAGE_SIZE // 1024} kB remote device")
    print("=" * 60)
    phase("write heap + flush", write_heap(env))
    client_node.pagecache.invalidate_inode(dev._cache_key)
    phase("random point reads (cold)", point_reads(env))
    phase("random point reads (cached)", point_reads(env))
    phase("in-place update", update_in_place(env))

    for name, ns in timings.items():
        print(f"{name:<28} {to_ms(ns):8.3f} ms")
    print("-" * 60)
    per_block = timings["random point reads (cold)"] / dev.blocks_read
    print(f"blocks read over the wire: {dev.blocks_read} "
          f"(~{to_us(per_block):.1f} us per cold block)")
    print(f"blocks written: {dev.blocks_written}")
    print("cached probe round trip was "
          f"{timings['random point reads (cold)'] / max(1, timings['random point reads (cached)']):.0f}x "
          "faster than cold — the block cache at work")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mx")
