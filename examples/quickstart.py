#!/usr/bin/env python3
"""Quickstart: two nodes, both network APIs, one message each way.

Builds the paper's two-node Myrinet platform, sends a message over the
GM API (explicit memory registration) and over the MX kernel API (typed
segments, no registration), and prints the measured one-way latencies —
reproducing in ~40 lines the 6.7 us vs 4.2 us headline of section 5.1.

Run:  python examples/quickstart.py
"""

from repro.bench.netpipe import ping_pong, prepare_pair
from repro.bench.transports import GmUserTransport, MxTransport
from repro.cluster import node_pair
from repro.sim import Environment


def measure(label: str, make_transport) -> float:
    env = Environment()
    node_a, node_b = node_pair(env)  # 2x dual-Xeon + PCI-XD Myrinet
    a = make_transport(node_a, peer=1)
    b = make_transport(node_b, peer=0)
    prepare_pair(env, a, b, max_size=4096)  # GM registers its buffers here
    result = ping_pong(env, a, b, size=1, rounds=20)
    print(f"{label:<12} 1-byte one-way latency: {result.one_way_us:5.2f} us")
    return result.one_way_us


def main() -> None:
    print("Goglin et al., CLUSTER 2005 — quickstart")
    print("=" * 56)
    gm = measure(
        "GM  (user)",
        lambda node, peer: GmUserTransport(node, 1, peer_node=peer, peer_port=1),
    )
    mx = measure(
        "MX  (user)",
        lambda node, peer: MxTransport(node, 1, peer_node=peer, peer_ep=1),
    )
    mx_k = measure(
        "MX (kernel)",
        lambda node, peer: MxTransport(node, 1, peer_node=peer, peer_ep=1,
                                       context="kernel"),
    )
    print("-" * 56)
    print(f"GM is {gm / mx:.2f}x slower than MX "
          f"(paper: 6.7 vs 4.2 us, 'more than 50 % higher')")
    print(f"MX kernel == MX user ({mx_k:.2f} vs {mx:.2f} us) — "
          f"the paper's headline kernel-API result")


if __name__ == "__main__":
    main()
