#!/usr/bin/env python3
"""Unmodified socket applications on the high-speed network.

The paper's second in-kernel application (section 5.3): a socket
protocol that lets existing binaries use Myrinet through plain
send/recv.  This example runs the same little client/server exchange —
a request, a streamed response, an echo check — over three stacks:

* SOCKETS-MX  (zero-copy, flexible MX kernel API)
* SOCKETS-GM  (dispatch kernel thread + bounce buffers)
* TCP/IP      (gigabit Ethernet with checksums and fragmentation)

and prints per-stack transfer time for the identical byte stream.

Run:  python examples/zero_copy_sockets.py
"""

from repro.cluster import node_pair
from repro.hw.params import PCI_XE
from repro.sim import Environment
from repro.sockets import SocketsGmModule, SocketsMxModule, ethernet_pair
from repro.units import MiB, bandwidth_mb_s, to_us

REQUEST = b"GET /dataset HTTP/1.0\r\n\r\n"
RESPONSE_CHUNK = 256 * 1024
CHUNKS = 8


def run_stack(kind: str) -> tuple[float, float]:
    env = Environment()
    node_a, node_b = node_pair(env, link=PCI_XE)
    if kind == "mx":
        ma, mb = SocketsMxModule(node_a, 9), SocketsMxModule(node_b, 9)
    elif kind == "gm":
        ma, mb = SocketsGmModule(node_a, 9), SocketsGmModule(node_b, 9)
    else:
        ma, mb = ethernet_pair(env, node_a, node_b)
    spa = node_a.new_process_space()
    spb = node_b.new_process_space()
    req_buf = spa.mmap(4096)
    spa.write_bytes(req_buf, REQUEST)
    resp_buf = spa.mmap(RESPONSE_CHUNK)
    srv_buf = spb.mmap(RESPONSE_CHUNK)
    chunk = bytes((i * 7) % 256 for i in range(RESPONSE_CHUNK))
    spb.write_bytes(srv_buf, chunk)
    stats = {}

    def server(env):
        if kind == "tcp":
            mb.listen()
        else:
            yield from mb.listen()
        sock = yield from mb.accept()
        n = yield from sock.recv(spb, spb.mmap(4096), 4096)
        assert n == len(REQUEST)
        for _ in range(CHUNKS):
            yield from sock.send(spb, srv_buf, RESPONSE_CHUNK)

    def client(env):
        if kind == "tcp":
            sock = yield from ma.connect()
        else:
            sock = yield from ma.connect(1, 9)
        t0 = env.now
        yield from sock.send(spa, req_buf, len(REQUEST))
        stats["first_byte"] = None
        received = 0
        while received < CHUNKS * RESPONSE_CHUNK:
            n = yield from sock.recv(spa, resp_buf, RESPONSE_CHUNK)
            if stats["first_byte"] is None:
                stats["first_byte"] = env.now - t0
            assert spa.read_bytes(resp_buf, n) == chunk[:n]
            received += n
        stats["elapsed"] = env.now - t0
        stats["bytes"] = received

    env.process(server(env))
    env.run(until=env.process(client(env)))
    return stats["first_byte"], stats["elapsed"]


def main() -> None:
    total = CHUNKS * RESPONSE_CHUNK
    print(f"request/response over three socket stacks "
          f"({total // MiB} MiB response)")
    print("=" * 66)
    print(f"{'stack':<12} {'first byte':>12} {'total':>12} {'throughput':>14}")
    for kind, label in (("mx", "Sockets-MX"), ("gm", "Sockets-GM"),
                        ("tcp", "TCP/GigE")):
        first, elapsed = run_stack(kind)
        print(f"{label:<12} {to_us(first):>9.1f} us {to_us(elapsed):>9.1f} us "
              f"{bandwidth_mb_s(total, elapsed):>9.1f} MB/s")
    print("-" * 66)
    print("Same application code, same bytes — the stack is the only change.")
    print("Note how streaming hides Sockets-GM's bounce copies (they overlap")
    print("the wire on the second CPU) while its first-byte latency cannot")
    print("hide the dispatch-thread hop — the ping-pong gap of figure 8(a).")


if __name__ == "__main__":
    main()
