"""repro — a full-system reproduction of Goglin, Glück & Vicat-Blanc
Primet, *An Efficient Network API for in-Kernel Applications in
Clusters* (IEEE Cluster 2005), as a discrete-event simulation.

Everything the paper builds on or evaluates is implemented here:

* the simulation engine (:mod:`repro.sim`) and hardware models
  (:mod:`repro.hw`): CPUs, PCI, links, switch, and the Myrinet NIC with
  its firmware pipeline and bounded translation table;
* the memory substrate (:mod:`repro.mem`): physical frames backing real
  bytes, address spaces, pinning, kernel memory, scatter/gather;
* the OS substrate (:mod:`repro.kernel`): page cache, VFS, VMA SPY,
  kernel threads;
* the network APIs: GM (:mod:`repro.gm`) with the paper's
  physical-address extensions and GMKRC (:mod:`repro.gmkrc`), and MX
  (:mod:`repro.mx`) with typed segments, message classes and copy
  removal;
* the paper's contribution distilled (:mod:`repro.core`): one kernel
  channel API with GM and MX backends;
* the in-kernel applications: ORFA/ORFS (:mod:`repro.orfa`,
  :mod:`repro.orfs`), the zero-copy sockets (:mod:`repro.sockets`), and
  the NBD extension (:mod:`repro.nbd`);
* the benchmark harness (:mod:`repro.bench`) regenerating every table
  and figure of the evaluation.

Quick start::

    from repro.cluster import node_pair
    from repro.sim import Environment
    from repro.bench.netpipe import ping_pong, prepare_pair
    from repro.bench.transports import MxTransport

    env = Environment()
    a, b = node_pair(env)
    ta = MxTransport(a, 1, peer_node=1, peer_ep=1)
    tb = MxTransport(b, 1, peer_node=0, peer_ep=1)
    prepare_pair(env, ta, tb, 4096)
    print(ping_pong(env, ta, tb, size=1).one_way_us)  # -> ~4.2 us
"""

from . import errors, units
from .cluster import Node, node_pair, star
from .sim import Environment

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Node",
    "errors",
    "node_pair",
    "star",
    "units",
    "__version__",
]
