"""The paper's primary contribution: an efficient in-kernel network API.

This package distils what the paper proposes (section 4) into one
abstraction that in-kernel applications — the ORFS client, the zero-copy
socket protocols, the NBD client — program against:

* **Typed memory segments** (user virtual / kernel virtual / physical),
  reusing :class:`repro.mx.MxSegment`, since the MX kernel interface is
  the design the authors upstreamed;
* **Vectorial transfers** — several non-contiguous segments in one
  operation (section 4.1);
* **Flexible completion** — handles that can be waited on singly or as
  a group, with cheap blocking waits (section 5.2);
* **No mandatory registration** — the channel hides whatever pinning or
  registration machinery its backend needs.

Two backends exist, mirroring the paper's comparison:

* :class:`MxKernelChannel` — a thin veneer over the MX kernel endpoint
  (everything maps 1:1: this API *is* MX's);
* :class:`GmKernelChannel` — the best that can be built over GM plus
  the paper's own extensions: physical-address primitives for
  kernel/physical memory, GMKRC (pin-down cache + VMA SPY) for user
  memory, and a dispatcher that demultiplexes GM's unified event queue
  into per-request completions — paying GM's limited-notification costs
  on every delivery.

Running the *same* ORFS/sockets code over both backends is exactly the
experiment of sections 5.2-5.3.
"""

from .channel import (
    ChannelRecv,
    ChannelSend,
    GmKernelChannel,
    KernelChannel,
    MxKernelChannel,
    UnsupportedOperation,
)
from ..mx.memtypes import MemType, MxSegment as TypedSegment

__all__ = [
    "ChannelRecv",
    "ChannelSend",
    "GmKernelChannel",
    "KernelChannel",
    "MemType",
    "MxKernelChannel",
    "TypedSegment",
    "UnsupportedOperation",
]
