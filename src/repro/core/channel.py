"""Kernel network channels: one API, a GM and an MX backend.

See the package docstring for the design rationale.  All methods that
consume simulated time are generators.  The result of a completed
receive is a :class:`ChannelCompletion` carrying the byte count, match
key and the sender's out-of-band protocol header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..cluster.node import Node
from ..errors import ReproError, TimeoutError_
from ..gm.kernel import GmKernelPort
from ..gmkrc.cache import Gmkrc
from ..mem.layout import PhysSegment, sg_from_kernel
from ..mx.api import MxEndpoint
from ..mx.memtypes import MemType, MxSegment
from ..sim import Event


class UnsupportedOperation(ReproError):
    """The backend API cannot express this operation (e.g. vectorial
    user-memory sends on GM, section 4.1)."""


@dataclass
class ChannelCompletion:
    """Receiver-visible outcome of one message."""

    size: int
    match: int
    meta: Any = None
    src_node: int = -1


@dataclass
class ChannelSend:
    """Handle for an in-flight send."""

    event: Event
    length: int


@dataclass
class ChannelRecv:
    """Handle for a posted receive."""

    event: Event
    capacity: int
    match: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.event.processed


class KernelChannel:
    """Abstract base: the paper's in-kernel communication interface."""

    supports_vectorial: bool = True

    def send(self, dst_node: int, dst_port: int, segments: Sequence[MxSegment],
             match: int = 0, meta: Any = None):
        raise NotImplementedError

    def post_recv(self, segments: Sequence[MxSegment],
                  match: Optional[int] = None):
        raise NotImplementedError

    def wait_send(self, handle: ChannelSend):
        raise NotImplementedError

    def wait_recv(self, handle: ChannelRecv, timeout_ns: Optional[int] = None):
        raise NotImplementedError

    def wait_any_recv(self, handles: Sequence[ChannelRecv]):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# MX backend
# ---------------------------------------------------------------------------


class MxKernelChannel(KernelChannel):
    """The MX kernel interface — the contribution, essentially verbatim."""

    supports_vectorial = True

    def __init__(self, node: Node, endpoint_id: int, **endpoint_flags):
        self.node = node
        self.endpoint = MxEndpoint(node, endpoint_id, context="kernel",
                                   **endpoint_flags)

    def send(self, dst_node: int, dst_port: int, segments: Sequence[MxSegment],
             match: int = 0, meta: Any = None):
        req = yield from self.endpoint.isend(dst_node, dst_port, segments,
                                             match=match, meta=meta)
        return ChannelSend(event=req.event, length=req.length)

    def post_recv(self, segments: Sequence[MxSegment],
                  match: Optional[int] = None):
        req = yield from self.endpoint.irecv(segments, match=match)
        handle = ChannelRecv(event=req.event, capacity=req.length, match=match)
        handle._req = req  # backend hook for wait_recv
        return handle

    def wait_send(self, handle: ChannelSend):
        if not handle.event.processed:
            yield handle.event
        yield from self.endpoint.cpu.work(self.endpoint.costs.host_event_ns)

    def wait_recv(self, handle: ChannelRecv, timeout_ns: Optional[int] = None):
        req = yield from self.endpoint.wait(handle._req, blocking=True,
                                            timeout_ns=timeout_ns)
        if req is None:
            raise TimeoutError_(
                f"receive not completed within {timeout_ns} ns"
            )
        return _mx_completion(req)

    def wait_any_recv(self, handles: Sequence[ChannelRecv]):
        req = yield from self.endpoint.wait_any(
            [h._req for h in handles], blocking=True
        )
        for h in handles:
            if h._req is req:
                return h, _mx_completion(req)
        raise ReproError("wait_any returned an unknown request")


def _mx_completion(req) -> ChannelCompletion:
    result = req.result
    if result is None:
        return ChannelCompletion(size=req.length, match=req.match)
    return ChannelCompletion(
        size=result.size, match=result.match, meta=result.meta,
        src_node=result.src_nic,
    )


# ---------------------------------------------------------------------------
# GM backend
# ---------------------------------------------------------------------------


class GmKernelChannel(KernelChannel):
    """The best-effort equivalent over GM plus the paper's extensions.

    * kernel-virtual and physical segments use the physical-address
      primitives (section 3.3);
    * user-virtual segments go through GMKRC (registration cache with
      VMA SPY coherence, section 3.2);
    * completions are demultiplexed from GM's unified event queue by a
      dispatcher that pays ``host_event + blocking_wakeup`` per event —
      the notification inflexibility of sections 5.2-5.3.

    ``supports_vectorial`` is False: GM cannot send several user-memory
    segments in one operation; only lists of *physical* pieces work
    (the paper's page-cache extension).
    """

    supports_vectorial = False

    def __init__(self, node: Node, port_id: int, regcache_enabled: bool = True,
                 max_cached_pages: int = 2048):
        self.node = node
        self.port = GmKernelPort(node, port_id)
        self.gmkrc = Gmkrc(self.port, node.vmaspy,
                           max_cached_pages=max_cached_pages,
                           enabled=regcache_enabled)
        self.env = node.env
        node.env.process(self._dispatcher(), name=f"gmch{port_id}.dispatch")

    # -- sending -------------------------------------------------------------

    def send(self, dst_node: int, dst_port: int, segments: Sequence[MxSegment],
             match: int = 0, meta: Any = None):
        handle = ChannelSend(event=self.env.event("gmch.send"),
                             length=sum(s.length for s in segments))
        user_segs = [s for s in segments if s.kind is MemType.USER_VIRTUAL]
        if user_segs and len(segments) > 1:
            raise UnsupportedOperation(
                "GM has no vectorial primitives: cannot send multiple "
                "segments involving user memory in one operation"
            )
        if user_segs:
            seg = user_segs[0]
            key, entry = yield from self.gmkrc.acquire(seg.space, seg.vaddr,
                                                       seg.length)
            yield from self.port.send_registered(
                dst_node, dst_port, key, seg.length, match=match,
                tag=("send", handle), meta=meta,
            )
            # GM sends complete out of the same registered region; the
            # cache entry stays referenced until the SENT event.
            handle._entry = entry
        else:
            sg = self._resolve_phys(segments)
            yield from self.port.send_physical(
                dst_node, dst_port, sg, match=match, tag=("send", handle),
                meta=meta,
            )
            handle._entry = None
        return handle

    def post_recv(self, segments: Sequence[MxSegment],
                  match: Optional[int] = None):
        handle = ChannelRecv(event=self.env.event("gmch.recv"),
                             capacity=sum(s.length for s in segments),
                             match=match)
        user_segs = [s for s in segments if s.kind is MemType.USER_VIRTUAL]
        if user_segs and len(segments) > 1:
            raise UnsupportedOperation(
                "GM cannot scatter one message across user-memory segments"
            )
        if user_segs:
            seg = user_segs[0]
            key, entry = yield from self.gmkrc.acquire(seg.space, seg.vaddr,
                                                       seg.length)
            yield from self.port.provide_receive_buffer_registered(
                key, seg.length, match=match, tag=("recv", handle),
            )
            handle._entry = entry
        else:
            sg = self._resolve_phys(segments)
            yield from self.port.provide_receive_buffer_physical(
                sg, match=match, tag=("recv", handle),
            )
            handle._entry = None
        return handle

    def _resolve_phys(self, segments: Sequence[MxSegment]) -> list[PhysSegment]:
        out: list[PhysSegment] = []
        for seg in segments:
            if seg.kind is MemType.KERNEL_VIRTUAL:
                out.extend(sg_from_kernel(self.node.kspace, seg.vaddr, seg.length))
            elif seg.kind is MemType.PHYSICAL:
                out.extend(seg.sg)
            else:  # pragma: no cover - guarded by callers
                raise UnsupportedOperation("unexpected user segment")
        return out

    # -- completion --------------------------------------------------------------

    def wait_send(self, handle: ChannelSend):
        if not handle.event.processed:
            yield handle.event
            # Second context switch: the dispatcher wakes this sleeper.
            yield from self.port.cpu.work(self.port.costs.blocking_wakeup_ns)
        return None

    def wait_recv(self, handle: ChannelRecv, timeout_ns: Optional[int] = None):
        if not handle.event.processed:
            if timeout_ns is None:
                yield handle.event
            else:
                timer = self.env.timeout(timeout_ns)
                yield self.env.any_of([handle.event, timer])
                if not handle.event.triggered:
                    raise TimeoutError_(
                        f"receive not completed within {timeout_ns} ns"
                    )
            yield from self.port.cpu.work(self.port.costs.blocking_wakeup_ns)
        return handle.event.value

    def wait_any_recv(self, handles: Sequence[ChannelRecv]):
        pending = [h for h in handles if not h.event.processed]
        if len(pending) == len(handles):
            yield self.env.any_of([h.event for h in handles])
            yield from self.port.cpu.work(self.port.costs.blocking_wakeup_ns)
        for h in handles:
            if h.event.processed:
                return h, h.event.value
        raise ReproError("wait_any_recv: no handle completed")

    # -- the event dispatcher -----------------------------------------------------

    def _dispatcher(self):
        """Drain GM's unified event queue forever, routing each event to
        its request handle.  Every delivery pays GM's blocking pickup
        (host_event + blocking_wakeup) — the structural cost the MX
        backend does not have."""
        while True:
            event = yield from self.port.receive_event(blocking=True)
            kind, handle = event.tag if isinstance(event.tag, tuple) else (None, None)
            if kind == "send":
                if handle._entry is not None:
                    self.gmkrc.release(handle._entry)
                handle.event.succeed(None)
            elif kind == "recv":
                if handle._entry is not None:
                    self.gmkrc.release(handle._entry)
                handle.event.succeed(
                    ChannelCompletion(
                        size=event.size, match=event.match, meta=event.meta,
                        src_node=event.src_node,
                    )
                )
            # Events with no routing tag are dropped (none are produced
            # by this channel).
