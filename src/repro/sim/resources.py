"""Contended resources and message channels for the event engine.

:class:`Resource` models a unit (or pool) of hardware that requests must
queue for — a PCI bus, a DMA engine, one direction of a network link,
the host CPU.  :class:`Store` is an unbounded FIFO channel used for
request queues between model components (e.g. the host-to-NIC doorbell
queue, a server's incoming-request queue).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from ..errors import SimulationError
from .engine import Environment, Event


class _Request(Event):
    """Event that fires when the resource grants this request."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource"):
        super().__init__(env, name=resource._req_name)
        self.resource = resource

    def release(self) -> None:
        """Return the granted slot to the resource."""
        self.resource.release(self)


class Resource:
    """A FIFO resource with ``capacity`` identical slots.

    Usage from a process::

        req = bus.request()
        yield req
        yield env.timeout(occupancy)
        req.release()

    ``acquire()`` is a convenience generator doing request+hold+release
    in one step for the very common "occupy for a fixed time" pattern.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._req_name = f"req:{name}"
        self._in_use = 0
        self._waiting: deque[_Request] = deque()
        # Invoked (if set) each time a request has to queue.  Lets an
        # analytic holder — the packet-train fast path — learn that the
        # resource just became contended and fall back to per-packet
        # simulation; None for everyone else, costing one load per queue.
        self.contention_cb: Optional[Any] = None
        # occupancy statistics
        self._busy_since: Optional[int] = None
        self.busy_time = 0
        self.grant_count = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Ask for a slot; the returned event fires when granted."""
        req = _Request(self.env, self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
            cb = self.contention_cb
            if cb is not None:
                cb()
        return req

    def release(self, req: _Request) -> None:
        """Release a previously granted slot."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def _grant(self, req: _Request) -> None:
        self._in_use += 1
        self.grant_count += 1
        if self._busy_since is None:
            self._busy_since = self.env.now
        req.succeed(req)

    def acquire(self, hold_ns: int):
        """Generator: wait for a slot, hold it ``hold_ns``, release it.

        Intended to be delegated to from a process::

            yield from bus.acquire(transfer_time)

        When a slot is free the grant is synchronous (state changes
        immediately, exactly as :meth:`request` would make it), skipping
        the grant event's queue round-trip — the dominant resource
        pattern in the simulator is an uncontended hold.
        """
        if self._in_use < self.capacity:
            # Inline _grant, minus the grant event: identical accounting
            # (a free slot implies no waiters, so FIFO order is moot).
            self._in_use += 1
            self.grant_count += 1
            if self._busy_since is None:
                self._busy_since = self.env.now
            try:
                if hold_ns > 0:
                    yield self.env.timeout(hold_ns)
            finally:
                self.release(None)  # release() never reads the request
            return
        req = self.request()
        yield req
        try:
            if hold_ns > 0:
                yield self.env.timeout(hold_ns)
        finally:
            req.release()

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this resource was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return busy / self.env.now if self.env.now else 0.0


class PriorityResource(Resource):
    """Resource whose waiters are granted in (priority, fifo) order.

    Lower priority value is served first.  Used for NIC firmware
    scheduling where small-message PIO requests preempt queued DMA
    descriptors in GM's MCP.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "presource"):
        super().__init__(env, capacity, name)
        self._pwaiting: list[tuple[int, int, _Request]] = []
        self._pseq = 0

    @property
    def queue_length(self) -> int:
        return len(self._pwaiting)

    def request(self, priority: int = 0) -> _Request:  # type: ignore[override]
        req = _Request(self.env, self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._pseq += 1
            heapq.heappush(self._pwaiting, (priority, self._pseq, req))
        return req

    def release(self, req: _Request) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        while self._pwaiting and self._in_use < self.capacity:
            _, _, nxt = heapq.heappop(self._pwaiting)
            self._grant(nxt)

    def acquire(self, hold_ns: int, priority: int = 0):
        """Priority-aware variant of :meth:`Resource.acquire`."""
        if self._in_use < self.capacity:
            # Free slot ⟹ empty queue ⟹ priority is moot: same
            # synchronous grant as the base class fast path.
            self._in_use += 1
            self.grant_count += 1
            if self._busy_since is None:
                self._busy_since = self.env.now
            try:
                if hold_ns > 0:
                    yield self.env.timeout(hold_ns)
            finally:
                self.release(None)
            return
        req = self.request(priority)
        yield req
        try:
            if hold_ns > 0:
                yield self.env.timeout(hold_ns)
        finally:
            req.release()


class Store:
    """Unbounded FIFO channel of Python objects between processes.

    ``put()`` never blocks (returns the stored item count); ``get()``
    returns an event firing with the next item, immediately if one is
    buffered.  Getters are served FIFO.
    """

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._get_name = f"get:{name}"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.put_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> int:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        self.put_count += 1
        if self._getters:
            # Inline succeed(): a queued getter is pending by
            # construction (cancel() removes withdrawn ones), so the
            # triggered-twice / scheduled-twice checks are vacuous.
            ev = self._getters.popleft()
            ev._value = item
            ev._scheduled = True
            self.env._immediate.append(ev)
        else:
            self._items.append(item)
        return len(self._items)

    def get(self) -> Event:
        """Event firing with the next item (immediately if buffered)."""
        ev = Event(self.env, name=self._get_name)
        if self._items:
            # Same inlining as put(): the event was created one line up.
            ev._value = self._items.popleft()
            ev._scheduled = True
            self.env._immediate.append(ev)
        else:
            self._getters.append(ev)
        return ev

    def cancel(self, getter: Event) -> bool:
        """Withdraw a pending getter (used by timed waits that lost the
        race against a timeout).  Returns True if the getter was still
        queued; False if it already fired or was never ours — in that
        case the caller must consume ``getter.value`` or re-``put`` it.
        """
        try:
            self._getters.remove(getter)
            return True
        except ValueError:
            return False

    def peek_all(self) -> tuple[Any, ...]:
        """Snapshot of buffered items (for tests and introspection)."""
        return tuple(self._items)
