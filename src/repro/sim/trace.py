"""Lightweight tracing and statistics collection.

Model components emit named trace records through a :class:`Tracer`;
benchmarks and tests subscribe to categories they care about.  Tracing
is off by default and costs one dict lookup per emit when disabled, so
it is safe to leave emit calls in hot paths.

:class:`Counter` and :class:`TimeSeries` are tiny accumulator helpers
used by the bench harness to derive throughput and latency statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, MutableSequence, Optional

#: Recommended ``record_everything(limit=...)`` for long bench runs: a
#: bounded buffer this size holds the newest ~64k records (a few tens of
#: MB at worst) instead of growing without bound for the whole run.
DEFAULT_RECORD_LIMIT = 1 << 16


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: (simulated time, category, label, payload)."""

    time: int
    category: str
    label: str
    payload: Any = None


class Tracer:
    """Pub/sub trace hub keyed by category string."""

    def __init__(self):
        self._subs: dict[str, list[Callable[[TraceRecord], None]]] = {}
        self._record_all: Optional[MutableSequence[TraceRecord]] = None

    def subscribe(self, category: str, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` for every record emitted in ``category``."""
        self._subs.setdefault(category, []).append(fn)

    def record_everything(self, limit: Optional[int] = None
                          ) -> MutableSequence[TraceRecord]:
        """Keep every record in a buffer; returns the live buffer.

        With ``limit=None`` (the default) the buffer is an unbounded
        list — fine for tests, unbounded growth on long runs.  With
        ``limit=N`` it is a ``deque(maxlen=N)``: once full, each new
        record evicts the oldest (O(1)).  Long bench runs should pass
        :data:`DEFAULT_RECORD_LIMIT`.

        Calling again with a different ``limit`` converts the existing
        buffer in place-of (keeping the newest records that fit) and
        returns the *new* buffer — previously returned references stop
        receiving records, so re-read the return value.
        """
        if limit is not None and limit < 1:
            raise ValueError(f"record limit must be >= 1, got {limit}")
        if self._record_all is None:
            self._record_all = [] if limit is None else deque(maxlen=limit)
        elif limit is None:
            if isinstance(self._record_all, deque):
                self._record_all = list(self._record_all)
        elif not isinstance(self._record_all, deque) \
                or self._record_all.maxlen != limit:
            self._record_all = deque(self._record_all, maxlen=limit)
        return self._record_all

    def wants(self, category: str) -> bool:
        """True if anything would observe an emit in ``category``.

        Hot paths check this before building expensive payload dicts, so
        disabled tracing costs one dict lookup with no argument
        construction.
        """
        return self._record_all is not None or category in self._subs

    def emit(self, time: int, category: str, label: str, payload: Any = None) -> None:
        """Publish a record; no-op unless someone subscribed."""
        subs = self._subs.get(category)
        if subs is None and self._record_all is None:
            return
        rec = TraceRecord(time, category, label, payload)
        if self._record_all is not None:
            self._record_all.append(rec)
        if subs:
            for fn in subs:
                fn(rec)


def render_record(rec: TraceRecord) -> str:
    """Serialize one record to a stable, diffable text line.

    Dict payloads are emitted with sorted keys so the line depends only
    on the record's content, never on construction order — fault tests
    compare whole rendered traces byte-for-byte across seeded runs.
    """
    return f"{rec.time:>12d} {rec.category}.{rec.label} {_fmt_payload(rec.payload)}"


def render_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize records to one line per record (trailing newline)."""
    return "".join(render_record(r) + "\n" for r in records)


def _fmt_payload(payload: Any) -> str:
    if payload is None:
        return "-"
    if isinstance(payload, dict):
        inner = " ".join(f"{k}={_fmt_payload(v)}" for k, v in sorted(payload.items()))
        return "{" + inner + "}"
    if isinstance(payload, str):
        return payload
    return str(payload)


@dataclass
class Counter:
    """Monotonic counter with a helper for deltas between checkpoints."""

    value: int = 0
    _mark: int = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def mark(self) -> None:
        """Checkpoint the current value for :meth:`since_mark`."""
        self._mark = self.value

    def since_mark(self) -> int:
        return self.value - self._mark


@dataclass
class TimeSeries:
    """Append-only (time, value) series with summary statistics."""

    points: list[tuple[int, float]] = field(default_factory=list)

    def append(self, time: int, value: float) -> None:
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def mean(self) -> float:
        vals = self.values()
        if not vals:
            raise ValueError("mean of empty series")
        return sum(vals) / len(vals)

    def minimum(self) -> float:
        vals = self.values()
        if not vals:
            raise ValueError("min of empty series")
        return min(vals)

    def maximum(self) -> float:
        vals = self.values()
        if not vals:
            raise ValueError("max of empty series")
        return max(vals)
