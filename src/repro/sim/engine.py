"""Core event loop, events and processes.

The engine is deliberately small and fully deterministic:

* :class:`Environment` owns the clock (``int`` nanoseconds) and two
  queues: a heap of ``(time, seq, event)`` triples for *delayed* events
  and a plain FIFO for *immediate* (delay-0) events.
* :class:`Event` is a one-shot future.  Callbacks registered on it run
  when it is *processed* (popped from a queue), not when triggered.
* :class:`Process` drives a generator; each yielded event suspends the
  generator until that event fires.  Values flow back through
  ``send``/``throw`` exactly like SimPy, so hardware models read as
  straight-line code.

Fast path
---------

Most events in the simulated system are delay-0: resource grants,
``Store`` puts, process initiation, process completion.  Routing them
through the heap costs a ``heappush``/``heappop`` pair each, so the
engine keeps a dedicated FIFO "immediate queue" for them instead.

Ordering stays bit-identical to the single-heap engine because of one
invariant: *heap entries at the current timestamp always predate every
queued immediate event*.  A heap entry at time ``T`` was scheduled while
``now < T`` (its delay was positive), whereas an immediate event is
created at ``now == T`` and is always drained before the clock advances
past ``T``.  Hence draining heap entries at the current time first, then
the immediate FIFO, reproduces exactly the global ``(time, seq)`` order
the heap alone would have produced.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ProcessInterrupt, SimulationError

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence with an optional value.

    Lifecycle: *pending* -> ``succeed``/``fail`` (triggered, queued) ->
    *processed* (callbacks run).  An event may only be triggered once;
    triggering twice is a bug in the model and raises.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False
        self.name = name

    # -- state queries -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` was called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        self._trigger(value, ok=True, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(exception, ok=False, delay=delay)
        return self

    def _trigger(self, value: Any, ok: bool, delay: int) -> None:
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} triggered twice")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._value = value
        self._ok = ok
        self.env._schedule(self, delay)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed, ``fn`` runs immediately —
        this makes late waiters on a completed request well defined.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        # Timeouts are the most-constructed event in the simulator:
        # inline Event.__init__ and _schedule (a fresh event cannot be
        # scheduled twice) and use a static name — the delay is
        # recoverable from the heap entry.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self.name = "timeout"
        if delay == 0:
            env._immediate.append(self)
        else:
            env._seq += 1
            heapq.heappush(env._heap, (env._now + delay, env._seq, self))


class _Start:
    """Minimal immediate-queue entry that kicks a new :class:`Process` off.

    Duck-types the slice of the :class:`Event` interface the dispatch
    loop and ``Process._resume`` touch (``callbacks``/``ok``/``value``)
    without paying for a full ``Event`` + ``succeed()`` per process.
    """

    __slots__ = ("callbacks",)

    ok = True
    value = None

    def __init__(self, callback: Callable[[Any], None]):
        self.callbacks: Optional[list[Callable[[Any], None]]] = [callback]


class Process(Event):
    """Wraps a generator; itself an Event that fires when the generator ends.

    The generator yields :class:`Event` objects.  When a yielded event
    fires OK its value is sent back in; when it fails, the exception is
    thrown into the generator (which may catch it).  ``interrupt()``
    throws :class:`ProcessInterrupt` at the current suspension point.
    """

    __slots__ = ("_gen", "_waiting_on", "_resume_cb")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"Process needs a generator, got {gen!r}")
        super().__init__(env, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # One bound method for the whole lifetime: registering a fresh
        # bound ``self._resume`` per wait would allocate every time.
        self._resume_cb = self._resume
        # Kick off the generator at the current time via a lightweight
        # startup entry on the immediate queue (no Event allocation).
        start = _Start(self._resume_cb)
        self._waiting_on: Optional[Any] = start
        env._immediate.append(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The event it was waiting on is detached: if it later fires, the
        process does not see it (matching SimPy semantics closely enough
        for our models, which re-issue their waits after interrupt).
        Detaching is O(1): ``_resume`` ignores any event that is no
        longer the current wait target, so the old target's callback
        list is never scanned — interrupt cost does not scale with how
        many other waiters that event has.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interrupt_ev = Event(self.env, name=f"interrupt:{self.name}")
        interrupt_ev.fail(ProcessInterrupt(cause))
        # Delivered unconditionally (not via the _waiting_on guard) so
        # stacked interrupts are all seen, as with the list-scan detach.
        interrupt_ev.add_callback(self._deliver)
        self._waiting_on = interrupt_ev

    # -- internal ------------------------------------------------------

    def _resume(self, event: Any) -> None:
        if event is not self._waiting_on:
            return  # stale firing of an event interrupt() detached us from
        self._deliver(event)

    def _deliver(self, event: Any) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessInterrupt as exc:
            # Interrupt escaped the generator uncaught: the process dies
            # with it, propagating to anything waiting on the process.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AllOf / AnyOf composites."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event], name: str):
        super().__init__(env, name=name)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different Environments")
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        # A Timeout is "triggered" at construction (its value is pre-set),
        # so membership must be judged by *processed* — has it actually
        # fired on the queue — not by triggered.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value.

    A failing child fails the composite immediately with that child's
    exception.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, name="AllOf")

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires; value maps event -> value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, name="AnyOf")

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())


class _Call(Event):
    """A pre-triggered event that invokes a plain callable when processed.

    The cheapest way to run ``fn(*args)`` at an absolute simulated time:
    one heap entry, no generator, no Process machinery.  Used by the
    packet-train fast path to deliver analytically-timed arrivals.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, env: "Environment", fn: Callable[..., Any], args: tuple):
        self.env = env
        self._fn = fn
        self._args = args
        self._value = None
        self._ok = True
        self._scheduled = False
        self.name = getattr(fn, "__name__", "call")
        self.callbacks = [self._run]

    def _run(self, _event: "Event") -> None:
        self._fn(*self._args)


class Environment:
    """The simulation world: clock, event queues, and process factory."""

    #: Events dispatched by *all* environments in this process since
    #: import.  ``run``/``step``/``run_window`` flush into it alongside
    #: the per-instance counter; the bench runner reads deltas around a
    #: figure (which may build several environments) for ``--timings``.
    lifetime_events_processed: int = 0

    def __init__(self):
        self._now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._immediate: deque[Any] = deque()
        self._seq: int = 0
        #: Total events dispatched by ``run``/``step`` over the
        #: environment's lifetime.  Deterministic (same model, same
        #: count), so perf gates can budget on it instead of wall-clock.
        self.events_processed: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process driving ``gen``; returns its Process event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling / running ---------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if event._scheduled:
            raise SimulationError(f"event {event!r} scheduled twice")
        event._scheduled = True
        if delay == 0:
            self._immediate.append(event)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def call_at(self, when: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        One heap (or immediate-queue) entry total — no Timeout, no
        Process.  ``when`` may equal ``now`` (queued as an immediate,
        i.e. after heap entries already due at this timestamp).
        """
        delay = when - self._now
        if delay < 0:
            raise SimulationError(f"call_at({when}) is in the past (now {self._now})")
        call = _Call(self, fn, args)
        self._schedule(call, delay)
        return call

    def schedule_bulk(self, entries: Iterable[tuple[int, Callable[..., Any], tuple]]) -> None:
        """Schedule many ``(when, fn, args)`` callbacks in one pass.

        Sequence numbers are assigned in entry order, so same-timestamp
        entries fire in the order given — exactly as if ``call_at`` had
        been called once per entry.  When the batch is large relative to
        the live heap, one ``heapify`` over the extended list beats
        per-entry sift-up.
        """
        heap = self._heap
        imm = self._immediate
        now = self._now
        pending: list[tuple[int, int, Event]] = []
        for when, fn, args in entries:
            if when < now:
                raise SimulationError(f"schedule_bulk entry at {when} is in the past (now {now})")
            call = _Call(self, fn, args)
            call._scheduled = True
            if when == now:
                imm.append(call)
            else:
                self._seq += 1
                pending.append((when, self._seq, call))
        if not pending:
            return
        # heappush is O(log n) each; heapify is O(n) total.  Pushing is
        # cheaper while the batch is small next to the heap.
        if len(pending) * 4 < len(heap):
            for entry in pending:
                heapq.heappush(heap, entry)
        else:
            heap.extend(pending)
            heapq.heapify(heap)

    def schedule_ranked(
            self,
            entries: Iterable[tuple[int, int, Callable[..., Any], tuple]],
    ) -> None:
        """Schedule ``(when, rank, fn, args)`` callbacks with explicit
        same-timestamp ordering.

        Ordinary scheduling breaks timestamp ties by insertion order
        (the monotone ``_seq`` counter), which is deterministic only
        when the *insertion* order is.  A sharded worker commits
        cross-border arrivals at window boundaries whose placement
        depends on wall-clock pipe batching, so insertion-order ties
        would leak wall-clock into the simulation.  Callers instead
        supply a ``rank`` that must be **negative** (sorting before
        every insertion-ordered event at the same timestamp — the
        conservative protocol's lookahead means the matching sequential
        arrival was scheduled at the send instant, at least one border
        propagation delay before any same-instant local competitor) and
        **unique** across the run.  Entries must be strictly in the
        future; a conservative worker only learns of an arrival at
        ``t`` while its clock is below ``t``.
        """
        heap = self._heap
        now = self._now
        for when, rank, fn, args in entries:
            if when <= now:
                raise SimulationError(
                    f"schedule_ranked entry at {when} is not in the future "
                    f"(now {now})")
            if rank >= 0:
                raise SimulationError(
                    f"schedule_ranked rank must be negative, got {rank}")
            call = _Call(self, fn, args)
            call._scheduled = True
            heapq.heappush(heap, (when, rank, call))

    def step(self) -> None:
        """Pop and process the next event; raises if both queues are empty."""
        heap = self._heap
        if heap and heap[0][0] == self._now:
            event = heapq.heappop(heap)[2]
        elif self._immediate:
            event = self._immediate.popleft()
        elif heap:
            when, _, event = heapq.heappop(heap)
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
        else:
            raise SimulationError("step() on an empty event queue")
        self.events_processed += 1
        Environment.lifetime_events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for fn in callbacks:
            fn(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None``: run until both queues drain.
        * ``until`` an ``int``: run until the clock reaches that time.
        * ``until`` an :class:`Event`: run until it is processed and
          return its value (raising its exception if it failed).

        The three loops below share one inlined dispatch body (instead
        of calling :meth:`step` per event) so the per-event cost is a
        couple of comparisons plus the callbacks themselves.  Branch
        order encodes the determinism invariant: heap entries at the
        current time fire before queued immediates, immediates fire
        before the clock advances.
        """
        heap = self._heap
        imm = self._immediate
        pop = heapq.heappop
        # Event accounting stays off the hot loop: bump a local int and
        # flush it to the instance counter once the loop exits (the
        # finally runs even when a callback raises).
        n = 0

        if until is None:
            try:
                while True:
                    if heap and heap[0][0] == self._now:
                        event = pop(heap)[2]
                    elif imm:
                        event = imm.popleft()
                    elif heap:
                        when, _, event = pop(heap)
                        self._now = when
                    else:
                        return None
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for fn in callbacks:
                        fn(event)
            finally:
                self.events_processed += n
                Environment.lifetime_events_processed += n

        if isinstance(until, Event):
            target = until
            try:
                while target.callbacks is not None:
                    if heap and heap[0][0] == self._now:
                        event = pop(heap)[2]
                    elif imm:
                        event = imm.popleft()
                    elif heap:
                        when, _, event = pop(heap)
                        self._now = when
                    else:
                        raise SimulationError(
                            f"event queue drained before {target!r} fired (deadlock?)"
                        )
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for fn in callbacks:
                        fn(event)
            finally:
                self.events_processed += n
                Environment.lifetime_events_processed += n
            if target.ok:
                return target.value
            raise target.value

        deadline = int(until)
        if deadline < self._now:
            raise SimulationError(f"cannot run until {deadline} < now {self._now}")
        try:
            while True:
                if heap and heap[0][0] == self._now:
                    event = pop(heap)[2]
                elif imm:
                    event = imm.popleft()
                elif heap and heap[0][0] <= deadline:
                    when, _, event = pop(heap)
                    self._now = when
                else:
                    break
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                for fn in callbacks:
                    fn(event)
        finally:
            self.events_processed += n
            Environment.lifetime_events_processed += n
        self._now = deadline
        return None

    def run_window(self, limit: int) -> int:
        """Process every queued event *strictly before* ``limit``.

        The sharded engine's inner loop: a shard granted horizon ``H``
        by its neighbours may only consume events with ``t < H`` — an
        event at exactly ``H`` could still be preempted by a cross-shard
        arrival at ``H`` (border grants are lower bounds with equality
        possible).  Unlike ``run(until=limit)`` the clock is **not**
        advanced to ``limit`` afterwards: it stays at the last processed
        event so later arrivals in ``[now, limit)``-adjacent windows can
        still be committed with ``schedule_bulk``.  Returns the number
        of events processed in this window.
        """
        heap = self._heap
        imm = self._immediate
        pop = heapq.heappop
        n = 0
        try:
            while True:
                # Immediates only exist at the current time, and the
                # current time is only reached by processing an event
                # strictly below ``limit`` — so ``imm`` non-empty
                # implies ``now < limit`` except at the very first
                # window, which the explicit check covers.
                if heap and heap[0][0] == self._now and self._now < limit:
                    event = pop(heap)[2]
                elif imm and self._now < limit:
                    event = imm.popleft()
                elif heap and heap[0][0] < limit:
                    when, _, event = pop(heap)
                    self._now = when
                else:
                    break
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                for fn in callbacks:
                    fn(event)
        finally:
            self.events_processed += n
            Environment.lifetime_events_processed += n
        return n

    def advance_to(self, when: int) -> None:
        """Jump the clock forward over a provably idle span.

        Used by shard workers at a phase barrier: every shard reports
        quiescence, the coordinator picks the global resume time, and
        each worker fast-forwards to it.  Refuses to skip over pending
        work — the span must genuinely be empty.
        """
        if when < self._now:
            raise SimulationError(f"advance_to({when}) is in the past (now {self._now})")
        if self._immediate or (self._heap and self._heap[0][0] < when):
            raise SimulationError(
                f"advance_to({when}) would skip over pending events (now {self._now})"
            )
        self._now = when

    def peek(self) -> Optional[int]:
        """Timestamp of the next queued event, or None if queues are empty."""
        if self._immediate:
            return self._now
        return self._heap[0][0] if self._heap else None
