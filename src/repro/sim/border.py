"""Shard borders: a Link whose far endpoint lives in another process.

The sharded engine (:mod:`repro.sim.shard`) partitions a cluster so
that shards touch only across :class:`~repro.hw.link.Link` wires.  The
wire is the one place in the simulator with a guaranteed minimum delay
between cause (transmission) and effect (delivery): the link's
``propagation_ns``.  That delay is the *conservative lookahead* — a
shard that has simulated up to time ``t`` cannot affect a neighbour
before ``t + propagation_ns``, so neighbours may safely run that far
ahead (FireSim applies the same token-per-link-latency idea between
distributed FPGA simulators).

Three pieces live here:

* :class:`BorderLink` — a ``Link`` subclass for a cut wire.  The local
  endpoint (NIC or switch port) attaches normally; the remote end is a
  stub.  Serialization, wire accounting, tracing and fault filtering
  all run locally exactly as on an ordinary link; only the final
  delivery hop is overridden (:meth:`Link._deliver_at`) to ship the
  item — with its absolute arrival timestamp — across a
  ``multiprocessing`` pipe instead of scheduling it on the local heap.
  Shipping at *emission* time rather than arrival time preserves the
  full propagation window as usable lookahead.

* :class:`BorderEnd` — the per-border runtime state: outbox of shipped
  items, staged inbox of received ones, and the two horizon counters of
  the null-token protocol.  ``("i", when, item)`` messages carry wire
  items; ``("h", horizon)`` messages are the null tokens ("I will not
  deliver anything to you before ``horizon``"); ``("m",)`` is a drain
  marker used by phase barriers.  Tokens are monotone, and a receiver
  only processes events *strictly before* its granted horizon, so an
  item arriving exactly at the horizon can never be missed.

* :class:`AsyncSender` — the per-worker outbound writer thread, so a
  full OS pipe can never deadlock two workers that are both mid-send
  at each other (the event loop keeps draining inbound instead).

Everything that crosses the pipe is plain picklable data: ``Message``,
``PacketTrain`` and ``TrainTruncation`` descriptors, with payloads
materialized chunk-by-chunk by :meth:`PayloadRef.__reduce__` (chunk
structure is preserved so the receiver's scatter-write op counts match
the sequential run byte-for-byte).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional

from ..errors import NetworkError, SimulationError
from ..hw.link import Link
from ..hw.params import LinkParams
from .engine import Environment


def _remote_stub(item: Any) -> None:  # pragma: no cover - never invoked
    raise SimulationError("remote border endpoint invoked locally")


class AsyncSender:
    """Dedicated outbound writer thread for a worker's border pipes.

    A ``Connection.send`` blocks when the OS pipe buffer is full — and a
    wire item carrying a large payload (a 256 KiB train is one pickled
    message) can exceed the buffer outright.  If two workers are both
    mid-``send`` on borders pointing at each other, neither is reading,
    and the run deadlocks; at fat-tree k=16 this is the common case,
    not a corner.  Routing every border write through one background
    thread breaks the cycle: the worker's event loop never blocks on a
    write, so it always returns to ``mpc.wait``/``pump`` and drains its
    inbound pipes, which is exactly what unblocks the *peer's* writer.

    One thread per worker keeps the global posting order, which
    preserves the per-pipe FIFO the protocol relies on (items flushed
    before the null token that vouches for them).  The quiescence check
    is unaffected: ``sent`` counts at post time can only make the
    coordinator see ``sent > received`` and keep waiting, never declare
    a false idle.
    """

    def __init__(self) -> None:
        self._q: queue.SimpleQueue = queue.SimpleQueue()
        self._exc: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="border-sender", daemon=True)
        self._thread.start()

    def post(self, conn, msg: tuple) -> None:
        """Queue ``msg`` for ``conn``; raises a prior writer failure."""
        if self._exc is not None:
            raise self._exc
        self._q.put((conn, msg))

    def _run(self) -> None:
        while True:
            entry = self._q.get()
            if entry is None:
                return
            conn, msg = entry
            try:
                conn.send(msg)
            except BaseException as exc:  # pragma: no cover - pipe teardown
                self._exc = exc
                return

    def close(self, timeout_s: float = 10.0) -> None:
        """Flush the queue and join the writer (end of worker life)."""
        self._q.put(None)
        self._thread.join(timeout=timeout_s)


class BorderEnd:
    """One shard's half of a cut link: pipe, queues, horizons."""

    def __init__(self, conn, name: str, index: int, lookahead_ns: int,
                 post: Optional[Callable[[tuple], None]] = None):
        if lookahead_ns <= 0:
            raise SimulationError(
                f"border {name!r} needs positive lookahead, got {lookahead_ns}"
            )
        self.conn = conn
        #: Outbound write path: an :class:`AsyncSender` post in workers
        #: (a blocking pipe write must never stall the event loop — see
        #: AsyncSender), a direct ``conn.send`` otherwise.
        self._post = post if post is not None else conn.send
        self.name = name
        #: Stable commit-order index (sorted border names within the
        #: shard) so same-timestamp arrivals from different borders are
        #: inserted deterministically.
        self.index = index
        self.lookahead_ns = lookahead_ns
        #: Latest horizon granted *to us* by the peer: we may process
        #: events strictly below it.
        self.horizon = 0
        #: Latest horizon we granted the peer (tokens must be monotone).
        self.granted = 0
        #: Items shipped by the local link this window: (when, item).
        self._outbox: list[tuple[int, Any]] = []
        #: Received, not-yet-committed arrivals: (when, rx_seq, item).
        self._staged: list[tuple[int, int, Any]] = []
        self._rx_seq = 0
        self._mark_seen = False
        #: Wire items sent/received over the border (termination check).
        self.sent = 0
        self.received = 0
        #: Local delivery callback, set by BorderLink.
        self.deliver: Optional[Callable[[Any], None]] = None

    # -- outbound ---------------------------------------------------------

    def ship(self, when: int, item: Any) -> None:
        """Queue ``item`` for delivery at absolute peer time ``when``."""
        self._outbox.append((when, item))

    def flush(self) -> None:
        """Send queued items.  Must precede :meth:`grant` — the pipe is
        FIFO, so a grant is only read after every item it vouches for."""
        if self._outbox:
            post = self._post
            for when, item in self._outbox:
                post(("i", when, item))
            self.sent += len(self._outbox)
            self._outbox.clear()

    def grant(self, horizon: int) -> None:
        """Send a null token if it improves on the last one."""
        if horizon > self.granted:
            self.granted = horizon
            self._post(("h", horizon))

    # -- inbound ----------------------------------------------------------

    def pump(self) -> bool:
        """Drain everything currently readable; True if anything arrived."""
        got = False
        conn = self.conn
        while conn.poll():
            self._dispatch(conn.recv())
            got = True
        return got

    def _dispatch(self, msg: tuple) -> None:
        tag = msg[0]
        if tag == "i":
            self._rx_seq += 1
            self._staged.append((msg[1], self._rx_seq, msg[2]))
            self.received += 1
        elif tag == "h":
            if msg[1] > self.horizon:
                self.horizon = msg[1]
        elif tag == "m":
            self._mark_seen = True
        else:  # pragma: no cover - protocol corruption
            raise SimulationError(f"unknown border message {msg!r}")

    def staged_min(self) -> Optional[int]:
        """Earliest staged arrival time, or None."""
        return min(t for t, _, _ in self._staged) if self._staged else None

    def has_staged(self) -> bool:
        return bool(self._staged)

    def take_due(self, limit: int) -> list[tuple[int, int, Any]]:
        """Remove and return staged arrivals strictly below ``limit``."""
        if not self._staged:
            return []
        due = [e for e in self._staged if e[0] < limit]
        if due:
            self._staged = [e for e in self._staged if e[0] >= limit]
        return due

    # -- barrier support --------------------------------------------------

    def send_mark(self) -> None:
        self._post(("m",))

    def drain_to_mark(self) -> None:
        """Blocking-read until the peer's drain marker.

        Called at a phase barrier, when the coordinator has verified
        that no wire items are in flight; anything still in the pipe is
        a stale null token (or the marker itself).
        """
        while not self._mark_seen:
            self._dispatch(self.conn.recv())
        self._mark_seen = False

    def reset_horizons(self, horizon: int) -> None:
        """Re-base both horizons after a barrier.

        Idle null-token exchange inflates horizons without bound; a
        barrier invalidates them (new work appears at the resume time),
        so both sides overwrite rather than max."""
        self.horizon = horizon
        self.granted = horizon

    def counts(self) -> tuple[int, int]:
        return (self.sent, self.received)


class BorderLink(Link):
    """A ``Link`` whose remote endpoint lives in a neighbouring shard.

    The constructor takes which end is local; the other end gets a stub
    so ``transmit``'s attachment check passes.  All outbound deliveries
    to the remote end are diverted into the border's outbox with their
    absolute arrival timestamps; inbound items from the peer are
    committed onto the local heap by the shard runner and delivered
    through the normal local endpoint callback.
    """

    is_border = True  # flow reservations must not cross shard borders

    def __init__(self, env: Environment, params: LinkParams, border: BorderEnd,
                 local_end: str = "a", name: str = "link"):
        if local_end not in ("a", "b"):
            raise NetworkError(f"link end must be 'a' or 'b', got {local_end!r}")
        if params.propagation_ns <= 0:
            raise NetworkError(
                f"border link {name!r} needs propagation > 0 for lookahead"
            )
        super().__init__(env, params, name)
        self.local_end = local_end
        self.remote_end = "b" if local_end == "a" else "a"
        self.border = border
        self._ends[self.remote_end] = _remote_stub
        border.deliver = self._deliver_local
        border.lookahead_ns = params.propagation_ns

    def _deliver_local(self, item: Any) -> None:
        deliver = self._ends[self.local_end]
        if deliver is None:  # pragma: no cover - misassembled topology
            raise NetworkError(
                f"border link {self.name!r} has no local endpoint attached"
            )
        deliver(item)

    def _deliver_at(self, to_end: str, when: int, item: Any) -> None:
        if to_end == self.remote_end:
            self.border.ship(when, item)
        else:
            super()._deliver_at(to_end, when, item)
