"""Discrete-event simulation engine.

A compact SimPy-style kernel: an :class:`Environment` holds an event
queue ordered by integer-nanosecond timestamps; :class:`Process` wraps a
generator that yields :class:`Event` objects (timeouts, other events,
composites, resource requests) and is resumed when they fire.

Design notes
------------
* Time is integer nanoseconds (see :mod:`repro.units`).  Two events at
  the same timestamp fire in schedule order (a monotonically increasing
  sequence number breaks ties), so runs are deterministic.
* Generator-based processes keep the hardware models readable: a NIC
  firmware loop is literally a ``while True`` loop with ``yield``\\ s for
  each pipeline stage.
* No wall-clock anywhere; the engine is pure.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from .resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "PriorityResource",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
