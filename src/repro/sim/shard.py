"""Sharded parallel simulation: one Environment per worker process.

A *scenario* object describes how to build a partitioned cluster and
what to run on it; :class:`ShardedSimulation` forks one worker per
shard, wires the cut links with ``multiprocessing`` pipes, and runs the
conservative null-token protocol of :mod:`repro.sim.border` until every
phase completes.  :func:`run_sequential` executes the *same* scenario
in a single Environment, which is both the reference for byte-identity
tests and the baseline for the perf comparison.

Scenario protocol (duck-typed; instances must survive ``fork``):

``nshards`` / ``nphases`` / ``observe``
    Worker count, phase count, and whether each worker installs a
    metrics registry (snapshots come back in the results).
``borders() -> [(link_name, shard_a, shard_b)]``
    The cut links.  Each named border becomes one duplex pipe.
``build(shard_id, env, hub) -> ctx``
    Construct this shard's slice of the topology.  Cut links are
    obtained from ``hub.border_link(name, params, local_end)``; the hub
    is a :class:`BorderHub` in workers and a :class:`_LocalHub` (which
    hands both "halves" the same :class:`_SequentialCutLink`) under
    :func:`run_sequential` — scenario code cannot tell the difference.
``phase(shard_id, phase_idx, env, ctx) -> [generator, ...]``
    Programs to run in this phase.  A phase ends when every program of
    every shard has finished and all shards are quiescent.
``result(shard_id, env, ctx) -> picklable``
    Collected once after the last phase.

Synchronization
---------------

Within a phase each worker loops: commit staged cross-border arrivals
strictly below ``limit = min(inbound horizons)`` — with explicit
negative heap ranks (:meth:`Environment.schedule_ranked`), so a
same-instant arbitration between a border arrival and a local event
resolves identically no matter which sync window the wall-clock grant
batching landed the item in.  The sequential reference delivers over
its cut links with the *same* rank rule (:class:`_SequentialCutLink`),
because the plain insertion-sequence order is information a parallel
run cannot reconstruct; with one deterministic tie rule on both sides
the two executions realize the same linearization of the same causal
partial order, and the identity gate demands byte-equality at every
scale.  After committing, the worker runs the local event window up to
``limit`` (:meth:`Environment.run_window`), flushes newly
emitted wire items, then grants each neighbour
``min(next local event, limit) + propagation_ns`` and blocks until a
neighbour's pipe has news.  Grants are monotone and positive-lookahead,
so the classic Chandy–Misra–Bryant liveness argument applies: the
minimum granted horizon rises by at least one propagation delay per
exchange round.

Lookahead is per-border (the cut link's ``propagation_ns``), so the
topology chooses the sync cadence.  Multi-switch fabrics exploit this
deliberately: :meth:`repro.cluster.topo.Fabric.propose_pods` confines
cuts to inter-pod trunks carrying ``FabricParams.inter_propagation_ns``
(a cable-length delay several times the intra-pod trunks'), so a
pod-per-shard fat-tree synchronizes in windows that fat lookahead wide
— the token exchange amortizes over whole packet pipelines.  Partial
:class:`~repro.cluster.topo.Fabric` builds install no analytic
FlowNetwork (a reservation needs a global path view; ``Link.is_border``
refuses the cut hops), so sharded fabric runs stay byte-identical to
sequential ones.

Between phases the coordinator runs a drain barrier: when every shard
reports idle with matched per-border sent/received counts (which proves
no wire item is in flight — a shard can only send after receiving,
so a stale matched report is impossible), it broadcasts ``quiesce``;
workers exchange drain markers to flush stale null tokens, then jump
their clocks to the global resume time ``T0 = max(shard completion
times)`` and re-base horizons at ``T0 + lookahead``.  The sequential
reference reproduces exactly this semantics by draining the event queue
between phases.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mpc
import sys
import time
import traceback
from typing import Any, Optional

from .. import obs
from ..errors import NetworkError, ShardError
from ..fleet.isolate import isolated_run
from ..hw.link import Link
from ..hw.params import LinkParams
from .engine import Environment
from .border import AsyncSender, BorderEnd, BorderLink

_INF = float("inf")

#: Base heap rank for cross-border arrivals: negative (sorts before all
#: insertion-sequenced local events at the same timestamp) with room
#: for ``border_index << 32 | per_border_seq`` to stay below zero.
_BORDER_RANK = -(1 << 62)

#: Default wall-clock budget for a sharded run; generous because CI
#: containers can be slow, but finite so a protocol bug fails loudly
#: instead of hanging the suite.
DEFAULT_TIMEOUT_S = 300.0


class BorderHub:
    """Worker-side factory for this shard's cut links."""

    def __init__(self, env: Environment, conns: dict,
                 sender: Optional[AsyncSender] = None):
        self.env = env
        self._conns = conns
        self._sender = sender
        self._indices = {name: i for i, name in enumerate(sorted(conns))}
        self.borders: dict[str, BorderEnd] = {}

    def border_link(self, name: str, params: LinkParams,
                    local_end: str = "a") -> BorderLink:
        conn = self._conns.get(name)
        if conn is None:
            raise ShardError(f"scenario built undeclared border {name!r}")
        if name in self.borders:
            raise ShardError(f"border {name!r} built twice")
        post = (None if self._sender is None
                else lambda msg, _c=conn: self._sender.post(_c, msg))
        end = BorderEnd(conn, name, self._indices[name],
                        params.propagation_ns, post=post)
        self.borders[name] = end
        return BorderLink(self.env, params, end, local_end=local_end, name=name)

    def missing(self) -> list[str]:
        return sorted(set(self._conns) - set(self.borders))


class _SequentialCutLink(Link):
    """Sequential-reference cut link with border-ranked deliveries.

    The sharded engine commits a border arrival onto the receiving
    shard's heap with an explicit negative rank — (border index within
    the shard, per-direction FIFO order) — so a same-timestamp arrival
    sorts before every local event at that instant regardless of which
    sync window committed it.  The sequential reference must apply the
    *same* tie rule: a plain ``call_at`` would order the arrival by its
    global insertion sequence, information a parallel run cannot
    reconstruct (an analytic train hold, for example, is scheduled a
    full wire occupancy before its completion instant and would
    out-sequence an arrival emitted only one propagation earlier).
    With ranked deliveries on both sides, the two executions realize
    the same linearization of the same causal partial order, so the
    identity gate can demand byte-equality.

    The rank folds in the *receiving* shard id above the border index.
    That keeps ranks unique across the one shared heap (two shards each
    have a border index 0; their ``_Call`` payloads are not orderable)
    without disturbing within-shard order — the sid is constant for
    every arrival a given shard receives, and cross-shard order at one
    instant cannot affect state (shards only interact through these
    very cut links, one propagation later).
    """

    is_border = True  # mirror BorderLink: flow reservations refuse cut hops

    def __init__(self, env: Environment, params: LinkParams, name: str,
                 hub: "_LocalHub"):
        if params.propagation_ns <= 0:
            raise NetworkError(
                f"border link {name!r} needs propagation > 0 for lookahead"
            )
        super().__init__(env, params, name)
        self._hub = hub
        self._rank_base = {"a": None, "b": None}
        self._next_seq = {"a": 1, "b": 1}  # BorderEnd._rx_seq starts at 1

    def _deliver_at(self, to_end: str, when: int, item: Any) -> None:
        base = self._rank_base[to_end]
        if base is None:
            base = self._hub.rank_base(self.name, to_end)
            self._rank_base[to_end] = base
        seq = self._next_seq[to_end]
        self._next_seq[to_end] = seq + 1
        self.env.schedule_ranked(
            ((when, base + seq, self._ends[to_end], (item,)),))


class _LocalHub:
    """Sequential-reference stand-in: both shards get the same link.

    Cut links are :class:`_SequentialCutLink`; the hub records which
    shard build attached each end so delivery ranks use the receiving
    shard's sorted-border index — the exact key :class:`BorderHub`
    assigns to its :class:`~repro.sim.border.BorderEnd` objects.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._links: dict[str, Link] = {}
        #: Set by run_sequential before each scenario.build(sid, ...).
        self.current_sid = 0
        #: (border name, link end) -> sid whose build attached that end.
        self._end_sid: dict[tuple[str, str], int] = {}
        self._order: Optional[dict[int, dict[str, int]]] = None

    def border_link(self, name: str, params: LinkParams,
                    local_end: str = "a") -> Link:
        link = self._links.get(name)
        if link is None:
            link = _SequentialCutLink(self.env, params, name, hub=self)
            self._links[name] = link
        self._end_sid[(name, local_end)] = self.current_sid
        return link

    def rank_base(self, name: str, to_end: str) -> int:
        """Delivery rank base for arrivals at ``to_end`` of border ``name``.

        Resolved lazily on first delivery, after every shard has built
        (workers enforce that each declared border is built, so the
        per-sid sorted name sets match ``BorderHub._indices`` exactly).
        """
        if self._order is None:
            by_sid: dict[int, set] = {}
            for (nm, _end), sid in self._end_sid.items():
                by_sid.setdefault(sid, set()).add(nm)
            self._order = {
                sid: {nm: i for i, nm in enumerate(sorted(names))}
                for sid, names in by_sid.items()}
        sid = self._end_sid[(name, to_end)]
        return _BORDER_RANK + (((sid << 16) | self._order[sid][name]) << 32)


class _ShardRunner:
    """The conservative event loop of one worker process."""

    def __init__(self, env: Environment, borders: list[BorderEnd], ctrl):
        self.env = env
        self.borders = borders
        self.ctrl = ctrl
        self._wait_list = [b.conn for b in borders] + [ctrl]

    def run_phase(self, programs: list, last_phase: bool) -> None:
        env = self.env
        borders = self.borders
        if not borders:
            # Degenerate single-shard partition: plain sequential run to
            # quiescence, then the normal idle/barrier handshake.
            if programs:
                env.run(until=env.all_of(programs))
            env.run()
        last_report: Optional[tuple] = None
        while True:
            if borders:
                limit = min(b.horizon for b in borders)
                due = []
                for b in borders:
                    for when, seq, item in b.take_due(limit):
                        due.append((when, b.index, seq, b.deliver, item))
                if due:
                    # Deterministic ordering: explicit negative heap
                    # ranks (border index, per-border FIFO order) make
                    # a same-timestamp arrival sort before every local
                    # event at that instant, no matter which sync
                    # window committed it.  Insertion-order ties would
                    # let wall-clock grant batching decide who wins a
                    # same-instant arbitration (a local event at t
                    # scheduled between two candidate commit windows
                    # lands on either side of the arrival's sequence
                    # number).  The sequential reference delivers over
                    # its cut links with the same rank rule
                    # (_SequentialCutLink), so both executions pick
                    # the same linearization.
                    env.schedule_ranked(
                        (when, _BORDER_RANK + (bi << 32) + seq,
                         deliver, (item,))
                        for when, bi, seq, deliver, item in due)
                env.run_window(limit)
                nxt = env.peek()
                t_next = limit if nxt is None else min(nxt, limit)
                # Items first, then the token vouching for them: the
                # pipe is FIFO, so when the peer reads a grant it has
                # already staged every item below it.
                for b in borders:
                    b.flush()
                    b.grant(t_next + b.lookahead_ns)
            done = (all(p.triggered for p in programs)
                    and env.peek() is None
                    and not any(b.has_staged() for b in borders))
            if done:
                report = (env.now, {b.name: b.counts() for b in borders})
                if report != last_report:
                    last_report = report
                    self.ctrl.send(("idle", env.now, report[1]))
            ready = mpc.wait(self._wait_list)
            directive = None
            for conn in ready:
                if conn is self.ctrl:
                    directive = self.ctrl.recv()
            for b in self.borders:
                b.pump()
            if directive is not None:
                tag = directive[0]
                if tag == "stop":
                    if not last_phase:
                        raise ShardError("stop received before the last phase")
                    return
                if tag == "quiesce":
                    if last_phase:
                        raise ShardError("quiesce received in the last phase")
                    self._barrier()
                    return
                raise ShardError(f"unknown control directive {directive!r}")

    def _barrier(self) -> None:
        for b in self.borders:
            b.send_mark()
        for b in self.borders:
            b.drain_to_mark()
        self.ctrl.send(("quiesced",))
        msg = self.ctrl.recv()
        if msg[0] != "barrier":
            raise ShardError(f"expected barrier directive, got {msg!r}")
        t0 = msg[1]
        self.env.advance_to(t0)
        for b in self.borders:
            b.reset_horizons(t0 + b.lookahead_ns)


def _worker_main(shard_id: int, scenario, conns: dict, ctrl) -> None:
    try:
        # Scrub state inherited across fork (ambient observability,
        # host-copy totals, id counters): this worker accounts only its
        # own shard, from a fresh-process-equivalent slate.
        with isolated_run(
                observe=getattr(scenario, "observe", False)) as registry:
            env = Environment()
            sender = AsyncSender()
            hub = BorderHub(env, conns, sender=sender)
            ctx = scenario.build(shard_id, env, hub)
            if hub.missing():
                raise ShardError(
                    f"shard {shard_id} never built declared borders "
                    f"{hub.missing()}")
            borders = [hub.borders[name] for name in sorted(hub.borders)]
            runner = _ShardRunner(env, borders, ctrl)
            nphases = scenario.nphases
            for k in range(nphases):
                programs = [env.process(gen, name=f"shard{shard_id}.p{k}")
                            for gen in scenario.phase(shard_id, k, env, ctx)]
                runner.run_phase(programs, last_phase=(k == nphases - 1))
            # Matched sent/received counts at the final idle mean the
            # queue is already drained; close() just joins the writer.
            sender.close()
            ctrl.send(("result", {
                "shard": shard_id,
                "now": env.now,
                "events_processed": env.events_processed,
                "metrics": registry.snapshot() if registry is not None else None,
                "payload": scenario.result(shard_id, env, ctx),
            }))
        ctrl.close()
    except BaseException:
        try:
            ctrl.send(("error", shard_id, traceback.format_exc()))
        except Exception:
            pass
        sys.exit(1)


class ShardedSimulation:
    """Coordinator: forks workers, drives barriers, collects results."""

    def __init__(self, scenario, timeout_s: float = DEFAULT_TIMEOUT_S):
        self.scenario = scenario
        self.timeout_s = timeout_s

    def run(self) -> "ShardResult":
        scenario = self.scenario
        nshards = scenario.nshards
        nphases = scenario.nphases
        if nshards < 1:
            raise ShardError(f"need at least one shard, got {nshards}")
        pairs = list(scenario.borders())
        for name, s0, s1 in pairs:
            if s0 == s1 or not (0 <= s0 < nshards and 0 <= s1 < nshards):
                raise ShardError(f"border {name!r} joins invalid shards {s0},{s1}")
        ctx = multiprocessing.get_context("fork")
        conns_for: list[dict] = [{} for _ in range(nshards)]
        parent_border_conns = []
        for name, s0, s1 in pairs:
            if name in conns_for[s0] or name in conns_for[s1]:
                raise ShardError(f"duplicate border name {name!r}")
            c0, c1 = ctx.Pipe()
            conns_for[s0][name] = c0
            conns_for[s1][name] = c1
            parent_border_conns += [c0, c1]
        ctrls = []
        procs = []
        try:
            for sid in range(nshards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(sid, scenario, conns_for[sid], child),
                    daemon=True, name=f"shard-{sid}")
                proc.start()
                child.close()
                ctrls.append(parent)
                procs.append(proc)
            # The parent holds no border pipe ends: close them so worker
            # exit is visible as EOF rather than a silent hang.
            for conn in parent_border_conns:
                conn.close()
            results = self._coordinate(pairs, ctrls, nshards, nphases)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10)
        result = ShardResult([results[sid] for sid in range(nshards)])
        # Credit worker event counts to the coordinator process so
        # ``Environment.lifetime_events_processed`` deltas (bench
        # --timings) account for sharded work too.
        Environment.lifetime_events_processed += result.events_processed
        return result

    def _coordinate(self, pairs, ctrls, nshards, nphases) -> dict:
        sid_of = {conn: sid for sid, conn in enumerate(ctrls)}
        idle: dict[int, Optional[tuple]] = {sid: None for sid in range(nshards)}
        quiesced: set[int] = set()
        results: dict[int, dict] = {}
        phase = 0
        awaiting_barrier = False
        stopped = False
        deadline = time.monotonic() + self.timeout_s
        while len(results) < nshards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardError(f"sharded run timed out after {self.timeout_s}s")
            ready = mpc.wait(ctrls, timeout=remaining)
            if not ready:
                raise ShardError(f"sharded run timed out after {self.timeout_s}s")
            for conn in ready:
                sid = sid_of[conn]
                try:
                    msg = conn.recv()
                except EOFError:
                    if sid in results:
                        continue
                    raise ShardError(f"shard {sid} exited without a result")
                tag = msg[0]
                if tag == "idle":
                    idle[sid] = (msg[1], msg[2])
                elif tag == "quiesced":
                    quiesced.add(sid)
                elif tag == "result":
                    results[msg[1]["shard"]] = msg[1]
                elif tag == "error":
                    raise ShardError(
                        f"shard {msg[1]} failed:\n{msg[2]}")
                else:
                    raise ShardError(f"unknown worker message {msg!r}")
            if awaiting_barrier:
                if len(quiesced) == nshards:
                    t0 = max(now for now, _counts in idle.values())
                    for conn in ctrls:
                        conn.send(("barrier", t0))
                    phase += 1
                    awaiting_barrier = False
                    quiesced = set()
                    idle = {sid: None for sid in range(nshards)}
                continue
            if stopped or not self._all_idle_matched(pairs, idle):
                continue
            if phase < nphases - 1:
                for conn in ctrls:
                    conn.send(("quiesce",))
                awaiting_barrier = True
            else:
                for conn in ctrls:
                    conn.send(("stop",))
                stopped = True
        return results

    @staticmethod
    def _all_idle_matched(pairs, idle) -> bool:
        if any(report is None for report in idle.values()):
            return False
        for name, s0, s1 in pairs:
            sent0, recv0 = idle[s0][1][name]
            sent1, recv1 = idle[s1][1][name]
            if sent0 != recv1 or sent1 != recv0:
                return False
        return True


class ShardResult:
    """Per-shard result dicts plus cross-shard merge helpers."""

    def __init__(self, shards: list[dict]):
        self.shards = shards

    @property
    def payloads(self) -> list[Any]:
        return [s["payload"] for s in self.shards]

    @property
    def now(self) -> int:
        """Global completion time: the latest shard clock."""
        return max(s["now"] for s in self.shards)

    @property
    def events_processed(self) -> int:
        return sum(s["events_processed"] for s in self.shards)

    @property
    def events_per_shard(self) -> list[int]:
        return [s["events_processed"] for s in self.shards]

    def merged_metrics(self) -> dict:
        snaps = [s["metrics"] for s in self.shards]
        if any(s is None for s in snaps):
            raise ShardError("scenario did not run with observe=True")
        return obs.merge_snapshots(snaps)


def run_sharded(scenario, timeout_s: float = DEFAULT_TIMEOUT_S) -> ShardResult:
    """Run ``scenario`` across worker processes."""
    return ShardedSimulation(scenario, timeout_s=timeout_s).run()


def run_sequential(scenario) -> ShardResult:
    """Run the same scenario in one Environment (reference/baseline).

    Phase barriers are reproduced by draining the event queue between
    phases — identical to "every shard idle, resume at the global last
    event time".  Returns a :class:`ShardResult` with a single
    pseudo-shard so callers compare the two modes uniformly.
    """
    def body(registry) -> ShardResult:
        env = Environment()
        hub = _LocalHub(env)
        ctxs = []
        for sid in range(scenario.nshards):
            hub.current_sid = sid
            ctxs.append(scenario.build(sid, env, hub))
        for k in range(scenario.nphases):
            programs = [env.process(gen, name=f"seq{sid}.p{k}")
                        for sid in range(scenario.nshards)
                        for gen in scenario.phase(sid, k, env, ctxs[sid])]
            # Full drain IS the phase barrier (and, unlike an all_of
            # join, adds no events the sharded workers wouldn't have).
            env.run()
            for program in programs:
                if not program.triggered:
                    raise ShardError(
                        f"phase {k} drained with program {program!r} "
                        "still pending (deadlock in scenario)")
        payloads = {sid: scenario.result(sid, env, ctxs[sid])
                    for sid in range(scenario.nshards)}
        return ShardResult([{
            "shard": 0,
            "now": env.now,
            "events_processed": env.events_processed,
            "metrics": registry.snapshot() if registry is not None else None,
            "payload": payloads,
        }])

    if not getattr(scenario, "observe", False):
        return body(None)
    with isolated_run(observe=True) as registry:
        return body(registry)


def merge_trace_records(per_shard: list) -> list:
    """Deterministically interleave per-shard TraceRecord lists.

    Sort key is (simulated time, shard index, per-shard emit order) —
    independent of wall-clock scheduling across workers.
    """
    tagged = []
    for si, records in enumerate(per_shard):
        tagged.extend(((rec.time, si, i), rec) for i, rec in enumerate(records))
    tagged.sort(key=lambda e: e[0])
    return [rec for _key, rec in tagged]
