"""NIC firmware substrates: the bounded translation table.

The MCP (Myrinet Control Program) request pipeline itself lives in
:mod:`repro.hw.nic`; this package holds the firmware data structure the
paper's registration story revolves around: the address-translation
table with a bounded number of entries (section 2.2.2: "the amount of
page translations that may be stored in the NIC is limited, useless
entries have to be deregistered").
"""

from .transtable import TranslationEntry, TranslationTable

__all__ = ["TranslationEntry", "TranslationTable"]
