"""The NIC's bounded virtual-to-physical translation table.

Introduced by U-Net/MM (paper section 2.2.1), this table is what memory
registration fills: one entry per registered page, keyed by
``(context, vpn)`` where *context* identifies the address space the
virtual page belongs to.  GM assumes one process per port, so the
context is normally the port; the paper's GMKRC shared-port trick
(section 3.2) instead encodes an address-space descriptor into the upper
bits of a 64-bit key — modeled faithfully in :mod:`repro.gmkrc.spaces`.

Capacity is bounded (real LANai cards held a few thousand entries).
When full, ``install`` fails unless the caller deregisters something —
which is exactly the pressure that makes pin-down caches evict lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import TranslationMiss, TranslationTableFull


@dataclass
class TranslationEntry:
    """One installed page translation."""

    context: int
    vpn: int
    pfn: int


class TranslationTable:
    """Fixed-capacity (context, vpn) -> pfn map on the NIC."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[tuple[int, int], TranslationEntry] = {}
        self.lookup_count = 0
        self.install_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def install(self, context: int, vpn: int, pfn: int) -> TranslationEntry:
        """Install one page translation; idempotent re-install updates pfn."""
        key = (context, vpn)
        existing = self._entries.get(key)
        if existing is not None:
            existing.pfn = pfn
            return existing
        if len(self._entries) >= self.capacity:
            raise TranslationTableFull(
                f"translation table full ({self.capacity} entries)"
            )
        entry = TranslationEntry(context, vpn, pfn)
        self._entries[key] = entry
        self.install_count += 1
        return entry

    def install_range(self, context: int, base_vpn: int,
                      pfns: Sequence[int]) -> None:
        """Install translations for ``base_vpn + i -> pfns[i]``, all or
        nothing.

        The vectorial form of :meth:`install` used by registration: the
        capacity check runs once over the fresh keys (re-installs are
        updates and need no slot), so a mid-range
        :class:`TranslationTableFull` can't leave a partial range behind.
        """
        entries = self._entries
        fresh = sum(1 for i in range(len(pfns))
                    if (context, base_vpn + i) not in entries)
        if len(entries) + fresh > self.capacity:
            raise TranslationTableFull(
                f"translation table full ({self.capacity} entries)"
            )
        for i, pfn in enumerate(pfns):
            key = (context, base_vpn + i)
            existing = entries.get(key)
            if existing is not None:
                existing.pfn = pfn
            else:
                entries[key] = TranslationEntry(context, base_vpn + i, pfn)
        self.install_count += fresh

    def remove(self, context: int, vpn: int) -> None:
        """Remove one translation (deregistration)."""
        try:
            del self._entries[(context, vpn)]
        except KeyError:
            raise TranslationMiss(
                f"no translation for context={context} vpn={vpn:#x}"
            ) from None

    def lookup(self, context: int, vpn: int) -> int:
        """Translate: returns the pfn, or raises :class:`TranslationMiss`.

        A miss on the real hardware is fatal for the communication (the
        NIC cannot page-fault); callers treat it as a hard error.
        """
        self.lookup_count += 1
        entry = self._entries.get((context, vpn))
        if entry is None:
            raise TranslationMiss(f"no translation for context={context} vpn={vpn:#x}")
        return entry.pfn

    def get(self, context: int, vpn: int) -> Optional[int]:
        """Single probe: the pfn, or None if not installed.

        Unlike :meth:`lookup` this is host-side bookkeeping (silent
        deregistration, cache maintenance), not a charged NIC
        translation, so it does not count toward ``lookup_count``.
        """
        entry = self._entries.get((context, vpn))
        return None if entry is None else entry.pfn

    def has(self, context: int, vpn: int) -> bool:
        return (context, vpn) in self._entries

    def drop_context(self, context: int) -> int:
        """Remove every entry of one context (port close / AS death).

        Returns the number of entries dropped.
        """
        victims = [k for k in self._entries if k[0] == context]
        for k in victims:
            del self._entries[k]
        return len(victims)
