"""Deterministic fault plans for the simulated fabric.

A :class:`FaultPlan` is a seeded description of everything that will go
wrong in a run: per-message drop/corrupt probabilities on links,
scheduled link down/up windows, NIC resets, node crashes.  The plan is
built declaratively, then :meth:`FaultPlan.install` arms it on a
topology — installing a :class:`LinkFaultInjector` on each link,
enabling the NIC reliable-delivery sublayer (unless opted out), and
scheduling the timed faults as ordinary simulation processes.

Determinism
-----------

Faults must not perturb the simulation except through the faults
themselves, and the same seed must reproduce the same run bit-for-bit:

* Every random decision comes from a private LCG stream derived from
  ``(seed, link name)`` — never from ``random`` or wall-clock.  Two
  links never share a stream, so adding traffic on one link cannot
  reshuffle the fault pattern on another.
* Injector decisions are made synchronously inside ``Link.transmit``
  (one ``filter()`` call per wire item, in wire order), so the draw
  sequence is fixed by the traffic, which is itself deterministic.
* Down windows are pure functions of simulated time; resets and crashes
  are scheduled at absolute simulated times.

Rendering the plan's trace (:func:`repro.sim.trace.render_trace`) after
two runs of the same seed therefore yields byte-identical text — the
fault suite asserts exactly this.

Interaction with packet-train coalescing
----------------------------------------

The analytic wire fast path (:mod:`repro.hw.train`) never runs where a
fault plan is armed: ``Link.train_block_reason`` answers ``"faults"``
for any link carrying an injector, so every fragment of a large message
is simulated per-packet there and presented to ``filter()`` one item at
a time, in wire order — exactly as before trains existed.  Drop and
corrupt draw sequences, down-window drops, and therefore rendered fault
traces are byte-identical to pre-train runs by construction, not by
sampling luck.  (FRAG pacing packets are individually exempt from
injection below — semantics ride the train's final per-packet item —
but refusing trains outright also keeps timed faults honest: a NIC
reset or link-down edge always finds per-packet wire holds it can
observe, never an opaque multi-packet analytic hold.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from .. import obs
from ..hw.link import Link
from ..hw.nic import MsgKind, Nic
from ..hw.params import DEFAULT_RELIABILITY, ReliabilityParams
from ..hw.switch import Switch
from ..sim import Environment
from ..sim.trace import Tracer


class _FaultRng:
    """Private LCG stream for one link's fault decisions (sim-safe:
    no global random state, no wall clock)."""

    def __init__(self, seed: int, stream: str):
        state = (seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
        for ch in stream:  # FNV-1a style mix of the stream name
            state = ((state ^ ord(ch)) * 16777619) & 0xFFFFFFFF
        self.state = state or 1

    def chance(self, prob: float) -> bool:
        """One draw: True with probability ``prob``."""
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state < int(prob * 0x80000000)


@dataclass
class LinkFaultSpec:
    """What can go wrong on one link (or on every link, key ``"*"``)."""

    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    down_windows: list[tuple[int, int]] = field(default_factory=list)

    def merged(self, other: "LinkFaultSpec") -> "LinkFaultSpec":
        """Specific spec layered over a wildcard spec."""
        return LinkFaultSpec(
            drop_prob=self.drop_prob or other.drop_prob,
            corrupt_prob=self.corrupt_prob or other.corrupt_prob,
            down_windows=self.down_windows + other.down_windows,
        )

    @property
    def active(self) -> bool:
        return bool(self.drop_prob or self.corrupt_prob or self.down_windows)


class LinkFaultInjector:
    """Per-link fault filter, consulted once per transmitted item.

    Installed as ``link.faults``; :meth:`filter` may pass the item
    through, return None (drop), or return a corrupted copy.  FRAG
    packets are never touched: they only pace the wire — the payload
    and all message semantics ride the final packet, which *is* subject
    to faults.
    """

    def __init__(self, env: Environment, spec: LinkFaultSpec,
                 rng: _FaultRng, tracer: Optional[Tracer],
                 link_name: str = "link"):
        self.env = env
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self.link_name = link_name
        # Injection accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        self._m_dropped = obs.counter("faults.drops", link=link_name)
        self._m_corrupted = obs.counter("faults.corrupts", link=link_name)
        self._m_down_drops = obs.counter("faults.down_drops", link=link_name)

    @property
    def dropped(self) -> int:
        return self._m_dropped.value

    @property
    def corrupted(self) -> int:
        return self._m_corrupted.value

    @property
    def down_drops(self) -> int:
        return self._m_down_drops.value

    @property
    def down(self) -> bool:
        now = self.env.now
        return any(start <= now < end for start, end in self.spec.down_windows)

    def _emit(self, label: str, payload) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "fault", label, payload)

    def _wants(self) -> bool:
        """Cheap pre-check so the per-item hot path skips building
        payload dicts when nothing listens to fault traces."""
        return self.tracer is not None and self.tracer.wants("fault")

    def filter(self, link: Link, item, nbytes: int):
        kind = getattr(item, "kind", None)
        if kind is MsgKind.FRAG:
            return item  # pacing packet: semantics ride the final packet
        if self.down:
            self._m_down_drops.inc()
            if self._wants():
                self._emit("link_down_drop", {
                    "link": link.name,
                    "kind": kind.value if kind is not None else "?",
                })
            return None
        if self.spec.drop_prob and self.rng.chance(self.spec.drop_prob):
            self._m_dropped.inc()
            if self._wants():
                self._emit("drop", {
                    "link": link.name,
                    "kind": kind.value if kind is not None else "?",
                    "seq": getattr(item, "seq", 0),
                })
            return None
        if self.spec.corrupt_prob and self.rng.chance(self.spec.corrupt_prob):
            self._m_corrupted.inc()
            if self._wants():
                self._emit("corrupt", {
                    "link": link.name,
                    "kind": kind.value if kind is not None else "?",
                    "seq": getattr(item, "seq", 0),
                })
            # Deliver a poisoned *copy*: the sender's stored original
            # stays clean, so a retransmission carries good bits.
            return replace(item, corrupted=True)
        return item


class FaultPlan:
    """A seeded, declarative plan of injected faults.

    Build it with the chainable methods, then arm it::

        plan = (FaultPlan(seed=7)
                .drop("wire", 0.05)
                .link_down("wire", ms(2), ms(3))
                .nic_reset(1, ms(5)))
        plan.install(env, nodes=[a, b])

    ``install`` also enables GM-firmware-style reliable delivery on
    every NIC it is handed (pass ``reliability=False`` to study raw
    loss).  With no plan installed anywhere, the simulation is
    bit-identical to a fault-free run.
    """

    def __init__(self, seed: int = 1, tracer: Optional[Tracer] = None):
        self.seed = seed
        self.tracer = tracer if tracer is not None else Tracer()
        self._specs: dict[str, LinkFaultSpec] = {}
        self._resets: list[tuple[int, int]] = []  # (at_ns, node_id)
        self._crashes: list[tuple[int, int]] = []
        #: (link, first_down_ns, down_ns, up_ns, count) flap trains, kept
        #: for the one-shot trace announcement at install time.
        self._flaps: list[tuple[str, int, int, int, int]] = []
        self.injectors: dict[str, LinkFaultInjector] = {}
        self._installed = False

    # -- declarative builders (chainable) ------------------------------------

    def _spec(self, link_name: str) -> LinkFaultSpec:
        return self._specs.setdefault(link_name, LinkFaultSpec())

    def affects_link(self, link_name: str) -> bool:
        """Would :meth:`install` put an injector on ``link_name``?

        The shard partitioner asks this to refuse cutting a faulted
        link: each direction of a cut link is filtered in a different
        worker process, so a shared LCG stream would interleave its
        draws differently than the sequential run.
        """
        wildcard = self._specs.get("*", LinkFaultSpec())
        spec = self._specs.get(link_name, LinkFaultSpec()).merged(wildcard)
        return spec.active

    def drop(self, link_name: str, prob: float) -> "FaultPlan":
        """Drop each non-FRAG item on ``link_name`` with probability
        ``prob``.  Use link name ``"*"`` for every installed link."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {prob}")
        self._spec(link_name).drop_prob = prob
        return self

    def corrupt(self, link_name: str, prob: float) -> "FaultPlan":
        """Corrupt (bit-error) each non-FRAG item with probability
        ``prob``; the receiving NIC's CRC check discards it."""
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"corrupt probability must be in [0, 1], got {prob}")
        self._spec(link_name).corrupt_prob = prob
        return self

    def link_down(self, link_name: str, start_ns: int, end_ns: int) -> "FaultPlan":
        """Take the link down for ``[start_ns, end_ns)`` of simulated time."""
        if end_ns <= start_ns:
            raise ValueError(f"empty down window [{start_ns}, {end_ns})")
        self._spec(link_name).down_windows.append((start_ns, end_ns))
        return self

    def link_flap(self, link_name: str, first_down_ns: int, down_ns: int,
                  up_ns: int, count: int) -> "FaultPlan":
        """Schedule a deterministic down/up *train*: ``count`` outages of
        ``down_ns`` each, separated by ``up_ns`` of restored carrier,
        the first starting at ``first_down_ns``.

        Unlike probabilistic drops this scripts an exact partition
        timeline, so failover tests can pin a flap against a protocol
        phase.  Each outage is an ordinary down window (rendered as
        ``fault.link_down``/``fault.link_up`` pairs in the trace); the
        train itself is announced once as ``fault.link_flap``.
        """
        if down_ns <= 0:
            raise ValueError(f"flap down time must be positive, got {down_ns}")
        if up_ns <= 0:
            raise ValueError(f"flap up time must be positive, got {up_ns}")
        if count < 1:
            raise ValueError(f"flap count must be >= 1, got {count}")
        if first_down_ns < 0:
            raise ValueError(f"flap start must be >= 0, got {first_down_ns}")
        start = first_down_ns
        for _ in range(count):
            self._spec(link_name).down_windows.append((start, start + down_ns))
            start += down_ns + up_ns
        self._flaps.append((link_name, first_down_ns, down_ns, up_ns, count))
        return self

    def nic_reset(self, node_id: int, at_ns: int) -> "FaultPlan":
        """Reset node ``node_id``'s NIC firmware at ``at_ns``."""
        self._resets.append((at_ns, node_id))
        return self

    def node_crash(self, node_id: int, at_ns: int) -> "FaultPlan":
        """Crash node ``node_id`` at ``at_ns``; its NIC goes dark."""
        self._crashes.append((at_ns, node_id))
        return self

    # -- arming --------------------------------------------------------------

    def install(
        self,
        env: Environment,
        nodes: Iterable = (),
        links: Iterable[Link] = (),
        nics: Iterable[Nic] = (),
        switches: Iterable[Switch] = (),
        reliability: bool = True,
        reliability_params: ReliabilityParams = DEFAULT_RELIABILITY,
    ) -> "FaultPlan":
        """Arm the plan on a topology.

        NICs are gathered from ``nodes`` and ``nics``; links from
        ``links``, the NICs' attached links, and the ``switches``'
        per-port links.  Injectors go on every gathered link whose name
        matches a spec (or the ``"*"`` wildcard); timed resets and
        crashes are scheduled as ordinary processes.
        """
        if self._installed:
            raise ValueError("fault plan already installed")
        self._installed = True
        all_nics: dict[int, Nic] = {}
        for node in nodes:
            all_nics[id(node.nic)] = node.nic
        for nic in nics:
            all_nics[id(nic)] = nic
        all_links: dict[int, Link] = {}
        for link in links:
            all_links[id(link)] = link
        for nic in all_nics.values():
            if nic._link is not None:
                all_links[id(nic._link)] = nic._link
        for switch in switches:
            switch.tracer = self.tracer
            for link in switch.all_links():  # host ports and trunks
                all_links[id(link)] = link
        for link_name, first_down, down, up, count in self._flaps:
            self.tracer.emit(0, "fault", "link_flap", {
                "link": link_name, "first_down_ns": first_down,
                "down_ns": down, "up_ns": up, "count": count,
            })
        wildcard = self._specs.get("*", LinkFaultSpec())
        for link in all_links.values():
            spec = self._specs.get(link.name, LinkFaultSpec()).merged(wildcard)
            if not spec.active:
                continue
            injector = LinkFaultInjector(
                env, spec, _FaultRng(self.seed, link.name), self.tracer,
                link_name=link.name,
            )
            link.faults = injector
            self.injectors[link.name] = injector
            for start, end in sorted(spec.down_windows):
                env.process(self._down_window(env, link, start, end),
                            name=f"fault.down.{link.name}")
        if reliability:
            for nic in all_nics.values():
                nic.enable_reliability(reliability_params, self.tracer)
        nic_by_id = {nic.node_id: nic for nic in all_nics.values()}
        for at_ns, node_id in sorted(self._resets):
            env.process(self._timed(env, at_ns, nic_by_id[node_id], "nic_reset"),
                        name=f"fault.reset.{node_id}")
        for at_ns, node_id in sorted(self._crashes):
            env.process(self._timed(env, at_ns, nic_by_id[node_id], "node_crash"),
                        name=f"fault.crash.{node_id}")
        return self

    def _down_window(self, env: Environment, link: Link, start: int, end: int):
        yield env.timeout(start)
        self.tracer.emit(env.now, "fault", "link_down", {"link": link.name})
        yield env.timeout(end - start)
        self.tracer.emit(env.now, "fault", "link_up", {"link": link.name})

    def _timed(self, env: Environment, at_ns: int, nic: Nic, what: str):
        yield env.timeout(at_ns)
        if what == "nic_reset":
            nic.reset()
        else:
            nic.crash()
        self.tracer.emit(env.now, "fault", what, {"node": nic.node_id})

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate injector counters for reports and tests."""
        return {
            "dropped": sum(i.dropped for i in self.injectors.values()),
            "corrupted": sum(i.corrupted for i in self.injectors.values()),
            "down_drops": sum(i.down_drops for i in self.injectors.values()),
        }
