"""Deterministic fault injection for the simulated fabric.

See :mod:`repro.faults.plan` for the model and determinism contract.
"""

from .plan import FaultPlan, LinkFaultInjector, LinkFaultSpec

__all__ = ["FaultPlan", "LinkFaultInjector", "LinkFaultSpec"]
