"""The ORFA/ORFS server: a user-space process over GM or MX.

Figure 2 of the paper: the server answers protocol requests against its
local filesystem (Ext2 under the VFS there; :class:`repro.kernel.MemFs`
here — the evaluation runs warm-cache, so an in-memory store with CPU
costs preserves the measured, network-bound behaviour).

The server is written once against a small transport seam with a GM and
an MX implementation, so ORFS/GM talks to a GM server and ORFS/MX to an
MX server, as on a real Myrinet where one driver owns the NIC.

Design notes, with provenance:

* **Read replies are served zero-copy from the warm file cache.**  The
  authors' earlier ORFA server work ([GP04a], cited in section 3.1)
  already transferred file data at near-raw network throughput, which is
  only possible sending straight from the (pre-registered, on GM) page
  cache.  We model that: a reply send charges a scatter/gather setup
  cost, not a data copy.  Transmit buffers are recycled only after their
  send completes, so in-flight reply data is never overwritten.
* **Requests are bounded to one medium message** (header + at most
  :data:`MAX_WRITE_CHUNK` of write payload); clients chunk larger writes
  — the rsize/wsize convention of every remote file protocol, and what
  keeps the server's receive ring at fixed 32 kB slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..cluster.node import Node
from ..errors import FsError, ProtocolError
from ..gm.api import GmEventKind, GmPort
from ..kernel.memfs import MemFs
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..sim import Store
from ..units import MiB, page_align_up
from .protocol import OrfaOp, OrfaReply, OrfaRequest

#: Server-side handler overhead per request (dispatch + fs bookkeeping).
SERVER_OP_NS = 2000
#: Building the reply's scatter/gather from the warm file cache.
SERVER_SG_NS = 500
#: Receive-ring slots and transmit buffers.
RING_SLOTS = 16
TX_SLOTS = 8
#: One request message must fit a ring slot (and MX's medium class).
RING_SLOT_BYTES = 32 * 1024
#: Largest write payload per request; clients chunk beyond this.
MAX_WRITE_CHUNK = 28 * 1024
#: Largest read reply (one client request never asks for more).
MAX_READ_REPLY = MiB


@dataclass
class _Incoming:
    request: OrfaRequest
    data: object  # PayloadRef (zero-copy views of the ring slot) or b""
    src_node: int
    src_port: int


class _GmServerTransport:
    """GM user-space side: registered ring + tx pool, unified event queue."""

    def __init__(self, node: Node, port_id: int):
        self.node = node
        self.space = node.new_process_space()
        self.port = GmPort(node, port_id, self.space)
        self.cpu = node.cpu
        self._ring: list[int] = []
        self._tx: list[int] = []
        self._tx_busy: list[bool] = [False] * TX_SLOTS
        self._tx_next = 0
        self._incoming: Store = Store(node.env, "orfasrv.in")

    def setup(self):
        for i in range(RING_SLOTS):
            vaddr = self.space.mmap(RING_SLOT_BYTES, populate=True)
            yield from self.port.register(vaddr, RING_SLOT_BYTES)
            self._ring.append(vaddr)
            yield from self.port.provide_receive_buffer(
                vaddr, RING_SLOT_BYTES, match=0, tag=("ring", i)
            )
        tx_size = page_align_up(MAX_READ_REPLY + 4096)
        for _ in range(TX_SLOTS):
            vaddr = self.space.mmap(tx_size, populate=True)
            yield from self.port.register(vaddr, tx_size)
            self._tx.append(vaddr)

    def recv_request(self):
        """Generator: next incoming request (draining the event queue)."""
        while len(self._incoming) == 0:
            event = yield from self.port.receive_event(blocking=True)
            yield from self._handle_event(event)
        item = yield self._incoming.get()
        return item

    def _handle_event(self, event):
        if event.kind is GmEventKind.SENT:
            kind, idx = event.tag
            if kind != "tx":
                raise ProtocolError(f"unexpected SENT tag {event.tag!r}")
            self._tx_busy[idx] = False
            return
        if not isinstance(event.meta, OrfaRequest):
            raise ProtocolError(f"non-ORFA message: {event.meta!r}")
        kind, idx = event.tag
        # GM deposited the message into the registered ring slot; take
        # zero-copy views of it — recycling the slot below is safe
        # because the frames detach copy-on-write when rewritten.
        data = self.space.read_payload(self._ring[idx], event.size) if event.size else b""
        self._incoming.put(
            _Incoming(
                request=event.meta,
                data=data,
                src_node=event.src_node,
                src_port=event.src_port,
            )
        )
        # Recycle the ring slot.
        yield from self.port.provide_receive_buffer(
            self._ring[idx], RING_SLOT_BYTES, match=0, tag=("ring", idx)
        )

    def _take_tx(self):
        """Generator: index of a free tx buffer, draining events if all
        are in flight."""
        while True:
            for _ in range(TX_SLOTS):
                idx = self._tx_next
                self._tx_next = (self._tx_next + 1) % TX_SLOTS
                if not self._tx_busy[idx]:
                    return idx
            event = yield from self.port.receive_event(blocking=True)
            yield from self._handle_event(event)

    def send_reply(self, dst: _Incoming, reply: OrfaReply, data: bytes):
        idx = yield from self._take_tx()
        vaddr = self._tx[idx]
        yield from self.cpu.work(SERVER_SG_NS)
        if data:
            # Zero-copy from the warm file cache: the bytes appear in the
            # (pre-registered) transmit region without a CPU copy charge
            # — see the module docstring.
            self.space.write_bytes(vaddr, data)
        size = reply.data_wire_size(len(data))
        self._tx_busy[idx] = True
        yield from self.port.send(
            dst.src_node, dst.src_port, vaddr, size,
            match=reply.request_id, tag=("tx", idx), meta=reply,
        )


class _MxServerTransport:
    """MX user-space side: endpoint ring + tx pool, wait_any completion."""

    def __init__(self, node: Node, port_id: int):
        self.node = node
        self.space = node.new_process_space()
        self.endpoint = MxEndpoint(node, port_id, context="user")
        self.cpu = node.cpu
        self._ring: list[tuple[int, object]] = []  # (vaddr, posted request)
        self._tx: list[int] = []
        self._tx_reqs: list[Optional[object]] = [None] * TX_SLOTS
        self._tx_next = 0

    def setup(self):
        for i in range(RING_SLOTS):
            vaddr = self.space.mmap(RING_SLOT_BYTES, populate=True)
            req = yield from self.endpoint.irecv(
                [MxSegment.user(self.space, vaddr, RING_SLOT_BYTES)],
                match=0, tag=i,
            )
            self._ring.append((vaddr, req))
        tx_size = page_align_up(MAX_READ_REPLY + 4096)
        for _ in range(TX_SLOTS):
            vaddr = self.space.mmap(tx_size, populate=True)
            self._tx.append(vaddr)

    def recv_request(self):
        req = yield from self.endpoint.wait_any(
            [r for _, r in self._ring], blocking=True
        )
        idx = req.tag
        vaddr, _ = self._ring[idx]
        completion = req.result
        if not isinstance(completion.meta, OrfaRequest):
            raise ProtocolError(f"non-ORFA message: {completion.meta!r}")
        if completion.data is not None:
            data = completion.data
        elif completion.size:
            data = self.space.read_payload(vaddr, completion.size)
        else:
            data = b""
        incoming = _Incoming(
            request=completion.meta,
            data=data,
            src_node=completion.src_nic,
            src_port=completion.src_port,
        )
        new_req = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, vaddr, RING_SLOT_BYTES)],
            match=0, tag=idx,
        )
        self._ring[idx] = (vaddr, new_req)
        return incoming

    def send_reply(self, dst: _Incoming, reply: OrfaReply, data: bytes):
        idx = self._tx_next
        self._tx_next = (self._tx_next + 1) % TX_SLOTS
        pending = self._tx_reqs[idx]
        if pending is not None and not pending.completed:
            yield from self.endpoint.wait(pending)
        vaddr = self._tx[idx]
        yield from self.cpu.work(SERVER_SG_NS)
        if data:
            # Zero-copy from the warm file cache (module docstring).
            self.space.write_bytes(vaddr, data)
        size = reply.data_wire_size(len(data))
        req = yield from self.endpoint.isend(
            dst.src_node, dst.src_port,
            [MxSegment.user(self.space, vaddr, size)],
            match=reply.request_id, meta=reply,
        )
        self._tx_reqs[idx] = req


class OrfaServer:
    """The file server process: protocol dispatch over MemFs."""

    def __init__(self, node: Node, port_id: int, api: str = "mx",
                 fs: Optional[MemFs] = None, tolerant: bool = False):
        if api not in ("gm", "mx"):
            raise ProtocolError(f"api must be 'gm' or 'mx', got {api!r}")
        self.node = node
        self.api = api
        self.fs = fs or MemFs(node.env, node.cpu)
        self.cpu = node.cpu
        #: Tolerant servers answer EIO to protocol-violating requests
        #: instead of dying — the posture for fault-injection runs.  The
        #: strict default makes protocol bugs loud in tests.
        self.tolerant = tolerant
        if api == "gm":
            self.transport = _GmServerTransport(node, port_id)
        else:
            self.transport = _MxServerTransport(node, port_id)
        # Served-request accounting on the metrics registry (an
        # unregistered per-instance counter while none is installed).
        self._m_served = obs.counter(
            "orfa.server.requests", node=node.node_id, api=api
        )

    @property
    def requests_served(self) -> int:
        return self._m_served.value

    def start(self):
        """Start the server; the returned event fires once the receive
        ring is posted (clients must wait for it)."""
        setup = self.node.env.process(self.transport.setup(), name="orfasrv.setup")
        self.node.env.process(self._serve_after(setup), name="orfasrv.loop")
        return setup

    def _serve_after(self, setup):
        if not setup.processed:
            yield setup
        while True:
            incoming = yield from self.transport.recv_request()
            yield from self._handle(incoming)

    def _handle(self, incoming: _Incoming):
        req = incoming.request
        reply = OrfaReply(request_id=req.request_id)
        data = b""
        yield from self.cpu.work(SERVER_OP_NS)
        try:
            if req.op is OrfaOp.LOOKUP:
                reply.attrs = yield from self.fs.lookup(req.inode, req.name)
            elif req.op is OrfaOp.GETATTR:
                reply.attrs = yield from self.fs.getattr(req.inode)
            elif req.op is OrfaOp.CREATE:
                reply.attrs = yield from self.fs.create(req.inode, req.name)
            elif req.op is OrfaOp.MKDIR:
                reply.attrs = yield from self.fs.mkdir(req.inode, req.name)
            elif req.op is OrfaOp.UNLINK:
                yield from self.fs.unlink(req.inode, req.name)
            elif req.op is OrfaOp.READDIR:
                reply.names = yield from self.fs.readdir(req.inode)
            elif req.op is OrfaOp.TRUNCATE:
                yield from self.fs.truncate(req.inode, req.length)
            elif req.op is OrfaOp.READ:
                if req.length > MAX_READ_REPLY:
                    raise ProtocolError(
                        f"read of {req.length} exceeds {MAX_READ_REPLY}"
                    )
                data = self.fs.read_raw(req.inode, req.offset, req.length)
                reply.count = len(data)
            elif req.op is OrfaOp.WRITE:
                payload = (incoming.data or b"")[: req.length]
                # Writes do cost a server copy: payload moves from the
                # receive ring into the file store.
                yield from self.cpu.copy(len(payload))
                reply.count = self.fs.write_raw(req.inode, req.offset, payload)
            else:  # pragma: no cover - enum is exhaustive
                raise ProtocolError(f"unknown op {req.op}")
        except FsError as exc:
            reply.status = exc.errno_name
        except ProtocolError:
            # A garbled request (e.g. truncated by an injected fault that
            # slipped past the CRC model) must not kill a tolerant server
            # loop: answer EIO and keep serving.
            if not self.tolerant:
                raise
            reply.status = "EIO"
            data = b""
        self._m_served.inc()
        if obs.metrics_enabled():
            obs.counter("orfa.server.ops", op=req.op.name.lower()).inc()
        yield from self.transport.send_reply(incoming, reply, data)
