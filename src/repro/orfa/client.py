"""The ORFA user-space client: a library intercepting remote file access.

Figure 2(a): "a user-space library transparently intercepting all remote
file access" [GP04b].  Each file operation costs a library interception
(cheap — no syscall, no VFS), but *every* operation goes to the server:
there are no client-side metadata caches, which is exactly why the paper
moved on to the in-kernel ORFS ("meta-data access does not benefit from
the low latency of the network", section 3.1).

Data transfers are zero-copy into the application's buffers:

* on **GM**, through the user-level registration cache (the same
  pin-down-cache machinery as GMKRC, kept coherent by the library's
  interception of mmap/munmap — modeled by the same address-space
  listeners);
* on **MX**, by passing user-virtual segments (MX pins internally).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..cluster.node import Node
from ..errors import Ebadf, Eio, FsError, NetworkError, ProtocolError
from ..gm.api import GmEventKind, GmPort
from ..gmkrc.cache import Gmkrc
from ..kernel.vfs import InodeAttrs
from ..mem.addrspace import AddressSpace
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..units import page_align_up
from .protocol import OrfaOp, OrfaRequest
from .server import MAX_READ_REPLY, MAX_WRITE_CHUNK, RING_SLOT_BYTES

#: Cost of the library's interception of one libc call (PLT hook).
LIB_CALL_NS = 500

_ERRNO_EXC = {"ENOENT": "Enoent", "EEXIST": "Eexist", "EISDIR": "Eisdir",
              "ENOTDIR": "Enotdir", "ENOTEMPTY": "Enotempty",
              "EINVAL": "Einval"}


def _raise_status(status: str):
    from .. import errors

    exc = getattr(errors, _ERRNO_EXC.get(status, ""), None)
    if exc is not None:
        raise exc()
    raise FsError(status)


@dataclass
class _OrfaFile:
    attrs: InodeAttrs
    offset: int = 0


class _GmClientSide:
    """GM user port + registration caches for app buffers and requests."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.port = GmPort(node, port_id, space)
        self.regcache = Gmkrc(self.port, node.vmaspy, max_cached_pages=4096)
        self._req_buf = None
        self._reply_buf = None
        # Request ids whose reply we stopped waiting for (RPC timeout):
        # a late reply to one of these is skipped, not a protocol error.
        self._stale_ids: set[int] = set()

    def setup(self):
        size = page_align_up(RING_SLOT_BYTES)
        self._req_buf = self.space.mmap(size, populate=True)
        self._reply_buf = self.space.mmap(size, populate=True)
        yield from self.port.register(self._req_buf, size)
        yield from self.port.register(self._reply_buf, size)

    def call_meta(self, dst, req: OrfaRequest, timeout_ns: Optional[int] = None):
        """Generator: request with header-only reply (metadata ops)."""
        yield from self.port.provide_receive_buffer(
            self._reply_buf, 4096, match=req.request_id
        )
        yield from self.port.send(
            dst[0], dst[1], self._req_buf, req.wire_size(), meta=req
        )
        return (yield from self._await_reply(req.request_id, timeout_ns))

    def call_read(self, dst, req: OrfaRequest, vaddr: int,
                  timeout_ns: Optional[int] = None):
        """Generator: READ with the data landing in the app buffer."""
        key, entry = yield from self.regcache.acquire(self.space, vaddr, req.length)
        try:
            yield from self.port.provide_receive_buffer_registered(
                key, req.length, match=req.request_id
            )
            yield from self.port.send(
                dst[0], dst[1], self._req_buf, req.wire_size(), meta=req
            )
            reply = yield from self._await_reply(req.request_id, timeout_ns)
        finally:
            self.regcache.release(entry)
        return reply

    def call_write(self, dst, req: OrfaRequest, vaddr: int,
                   timeout_ns: Optional[int] = None):
        """Generator: WRITE; the payload is copied into the registered
        request buffer (GM cannot send a header+user-data vector)."""
        yield from self.port.provide_receive_buffer(
            self._reply_buf, 4096, match=req.request_id
        )
        # The modeled staging copy is charged as before; the host relays
        # the app pages into the request buffer without joining them.
        yield from self.node.cpu.copy(req.length)
        self.space.write_payload(self._req_buf, self.space.read_payload(vaddr, req.length))
        # The staged payload travels inside the request message.
        yield from self.port.send(
            dst[0], dst[1], self._req_buf, req.wire_size() + req.length, meta=req,
        )
        return (yield from self._await_reply(req.request_id, timeout_ns))

    def _await_reply(self, request_id: int, timeout_ns: Optional[int] = None):
        deadline = None if timeout_ns is None else self.node.env.now + timeout_ns
        while True:
            if deadline is None:
                event = yield from self.port.receive_event(blocking=True)
            else:
                remain = deadline - self.node.env.now
                if remain <= 0:
                    event = None
                else:
                    event = yield from self.port.receive_event(
                        blocking=True, timeout_ns=remain
                    )
                if event is None:
                    self._stale_ids.add(request_id)
                    return None
            if event.kind is GmEventKind.SENT:
                continue
            if event.match != request_id:
                if event.match in self._stale_ids:
                    # Late reply to an abandoned (timed-out) request:
                    # the retry already re-asked with a fresh id.
                    self._stale_ids.discard(event.match)
                    continue
                raise ProtocolError(f"unexpected reply match {event.match}")
            return event.meta


class _MxClientSide:
    """MX user endpoint: user-virtual segments, no registration."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.endpoint = MxEndpoint(node, port_id, context="user")
        self._req_buf = None
        self._reply_buf = None

    def setup(self):
        size = page_align_up(4096)
        self._req_buf = self.space.mmap(size, populate=True)
        self._reply_buf = self.space.mmap(size, populate=True)
        return
        yield  # pragma: no cover

    def call_meta(self, dst, req: OrfaRequest, timeout_ns: Optional[int] = None):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, self._reply_buf, 4096)],
            match=req.request_id,
        )
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, self._req_buf, req.wire_size())],
            match=0, meta=req,
        )
        return (yield from self._finish(send, recv, timeout_ns))

    def call_read(self, dst, req: OrfaRequest, vaddr: int,
                  timeout_ns: Optional[int] = None):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, vaddr, req.length)],
            match=req.request_id,
        )
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, self._req_buf, req.wire_size())],
            match=0, meta=req,
        )
        return (yield from self._finish(send, recv, timeout_ns))

    def call_write(self, dst, req: OrfaRequest, vaddr: int,
                   timeout_ns: Optional[int] = None):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, self._reply_buf, 4096)],
            match=req.request_id,
        )
        # MX sends the user payload directly (no staging copy).
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, vaddr, req.length)],
            match=0, meta=req,
        )
        return (yield from self._finish(send, recv, timeout_ns))

    def _finish(self, send, recv, timeout_ns: Optional[int]):
        """Wait for the send and then the matching reply.

        On timeout, returns None and abandons the posted receive — the
        retry posts a fresh one under a new request id, so a late reply
        to the stale id completes silently without confusing anyone.
        """
        if timeout_ns is None:
            yield from self.endpoint.wait(send)
            done = yield from self.endpoint.wait(recv, blocking=True)
            return done.result.meta
        deadline = self.node.env.now + timeout_ns
        done = yield from self.endpoint.wait(send, timeout_ns=timeout_ns)
        if done is None:
            return None
        remain = deadline - self.node.env.now
        if remain <= 0:
            return None
        done = yield from self.endpoint.wait(recv, blocking=True,
                                             timeout_ns=remain)
        if done is None:
            return None
        return done.result.meta


class OrfaClient:
    """The intercepting library's client state for one process."""

    _request_ids = itertools.count(1)

    def __init__(self, node: Node, port_id: int, space: AddressSpace,
                 server: tuple[int, int], api: str = "mx",
                 timeout_ns: Optional[int] = None, max_retries: int = 2,
                 tracer=None):
        if api not in ("gm", "mx"):
            raise ProtocolError(f"api must be 'gm' or 'mx', got {api!r}")
        self.node = node
        self.space = space
        self.server = server
        self.api = api
        self.cpu = node.cpu
        #: Per-RPC reply deadline; None (the default) waits forever — the
        #: original ORFA behavior over a reliable fabric.
        self.timeout_ns = timeout_ns
        #: Extra attempts after the first times out; exhaustion raises Eio.
        self.max_retries = max_retries
        self.tracer = tracer
        if api == "gm":
            self.side = _GmClientSide(node, port_id, space)
        else:
            self.side = _MxClientSide(node, port_id, space)
        self._files: dict[int, _OrfaFile] = {}
        self._next_fd = 3

    def setup(self):
        """Generator: one-time library initialization."""
        yield from self.side.setup()

    # -- protocol helpers ------------------------------------------------------

    def _call(self, make_req, side_call, *extra):
        """Generator: one RPC with the client's timeout/retry budget.

        Each attempt gets a *fresh* request id (the server replies match
        by id, so a late reply to a timed-out attempt can never be taken
        for the retry's answer).  When the budget is exhausted — or the
        fabric reports the peer unreachable — the failure surfaces as
        :class:`Eio`, the errno a kernel client would hand the VFS.
        READ and WRITE are idempotent, so at-least-once execution is
        safe; CREATE retried after a lost *reply* may observe EEXIST
        (documented at-least-once hazard).
        """
        attempts = 1 if self.timeout_ns is None else 1 + self.max_retries
        env = self.node.env
        t0 = env.now
        for attempt in range(attempts):
            req = make_req(next(OrfaClient._request_ids))
            op = req.op.name.lower()
            span = obs.span_begin(
                env, "orfa", f"rpc.{op}", pid=self.node.node_id,
                tid=attempt, request_id=req.request_id,
            )
            try:
                reply = yield from side_call(self.server, req, *extra,
                                             timeout_ns=self.timeout_ns)
            except NetworkError as exc:
                obs.span_end(env, span, outcome="error")
                if obs.metrics_enabled():
                    obs.counter("orfa.request.failures",
                                node=self.node.node_id, op=op).inc()
                raise Eio(f"orfa {op}: {exc}") from exc
            if reply is not None:
                obs.span_end(env, span, outcome="ok")
                if obs.metrics_enabled():
                    obs.counter("orfa.requests",
                                node=self.node.node_id, op=op).inc()
                    # Total RPC latency including timed-out attempts, so
                    # the histogram reflects what the caller waited.
                    obs.histogram("orfa.request.latency_ns",
                                  op=op).observe(env.now - t0)
                return reply
            obs.span_end(env, span, outcome="timeout")
            if obs.metrics_enabled():
                obs.counter("orfa.request.timeouts",
                            node=self.node.node_id, op=op).inc()
            if self.tracer is not None:
                self.tracer.emit(self.node.env.now, "rpc", "timeout", {
                    "op": op,
                    "attempt": attempt + 1,
                    "request_id": req.request_id,
                })
        if obs.metrics_enabled():
            obs.counter("orfa.request.failures",
                        node=self.node.node_id, op=op).inc()
        raise Eio(
            f"orfa {op}: no reply after {attempts} attempts "
            f"of {self.timeout_ns} ns each"
        )

    def _rpc_meta(self, op: OrfaOp, inode: int = 0, name: str = "",
                  length: int = 0) -> "generator":
        reply = yield from self._call(
            lambda rid: OrfaRequest(op=op, request_id=rid, inode=inode,
                                    name=name, length=length),
            self.side.call_meta,
        )
        if not reply.ok:
            _raise_status(reply.status)
        return reply

    def _resolve(self, path: str):
        """Generator: LOOKUP every component — no client dcache (the
        ORFA metadata weakness the paper measures)."""
        attrs = None
        inode = 1  # server root
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts:
            reply = yield from self._rpc_meta(OrfaOp.GETATTR, inode=inode)
            return reply.attrs
        for name in parts:
            reply = yield from self._rpc_meta(OrfaOp.LOOKUP, inode=inode, name=name)
            attrs = reply.attrs
            inode = attrs.inode_id
        return attrs

    # -- intercepted libc calls ----------------------------------------------------

    def open(self, path: str, create: bool = False):
        """Generator: open(2) as the library intercepts it."""
        yield from self.cpu.work(LIB_CALL_NS)
        try:
            attrs = yield from self._resolve(path)
        except FsError:
            if not create:
                raise
            parent_path, _, name = path.rstrip("/").rpartition("/")
            parent = yield from self._resolve(parent_path or "/")
            reply = yield from self._rpc_meta(OrfaOp.CREATE,
                                              inode=parent.inode_id, name=name)
            attrs = reply.attrs
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OrfaFile(attrs=attrs)
        return fd

    def close(self, fd: int):
        yield from self.cpu.work(LIB_CALL_NS)
        if fd not in self._files:
            raise Ebadf(str(fd))
        del self._files[fd]

    def stat(self, path: str):
        yield from self.cpu.work(LIB_CALL_NS)
        attrs = yield from self._resolve(path)
        return attrs

    def mkdir(self, path: str):
        yield from self.cpu.work(LIB_CALL_NS)
        parent_path, _, name = path.rstrip("/").rpartition("/")
        parent = yield from self._resolve(parent_path or "/")
        yield from self._rpc_meta(OrfaOp.MKDIR, inode=parent.inode_id, name=name)

    def read(self, fd: int, vaddr: int, length: int):
        """Generator: read(2); data lands zero-copy in [vaddr, vaddr+len)."""
        yield from self.cpu.work(LIB_CALL_NS)
        f = self._file(fd)
        remaining = min(length, max(0, f.attrs.size - f.offset))
        done = 0
        while remaining > 0:
            chunk = min(remaining, MAX_READ_REPLY)
            offset = f.offset + done
            reply = yield from self._call(
                lambda rid: OrfaRequest(op=OrfaOp.READ, request_id=rid,
                                        inode=f.attrs.inode_id,
                                        offset=offset, length=chunk),
                self.side.call_read, vaddr + done,
            )
            if not reply.ok:
                _raise_status(reply.status)
            done += reply.count
            remaining -= reply.count
            if reply.count < chunk:
                break
        f.offset += done
        return done

    def write(self, fd: int, vaddr: int, length: int):
        """Generator: write(2), chunked to the protocol's wsize."""
        yield from self.cpu.work(LIB_CALL_NS)
        f = self._file(fd)
        done = 0
        while done < length:
            chunk = min(length - done, MAX_WRITE_CHUNK)
            offset = f.offset + done
            reply = yield from self._call(
                lambda rid: OrfaRequest(op=OrfaOp.WRITE, request_id=rid,
                                        inode=f.attrs.inode_id,
                                        offset=offset, length=chunk),
                self.side.call_write, vaddr + done,
            )
            if not reply.ok:
                _raise_status(reply.status)
            done += reply.count
        f.offset += done
        if f.offset > f.attrs.size:
            f.attrs.size = f.offset
        return done

    def seek(self, fd: int, offset: int) -> None:
        self._file(fd).offset = offset

    def _file(self, fd: int) -> _OrfaFile:
        f = self._files.get(fd)
        if f is None:
            raise Ebadf(str(fd))
        return f
