"""The ORFA user-space client: a library intercepting remote file access.

Figure 2(a): "a user-space library transparently intercepting all remote
file access" [GP04b].  Each file operation costs a library interception
(cheap — no syscall, no VFS), but *every* operation goes to the server:
there are no client-side metadata caches, which is exactly why the paper
moved on to the in-kernel ORFS ("meta-data access does not benefit from
the low latency of the network", section 3.1).

Data transfers are zero-copy into the application's buffers:

* on **GM**, through the user-level registration cache (the same
  pin-down-cache machinery as GMKRC, kept coherent by the library's
  interception of mmap/munmap — modeled by the same address-space
  listeners);
* on **MX**, by passing user-virtual segments (MX pins internally).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..cluster.node import Node
from ..errors import Ebadf, FsError, ProtocolError
from ..gm.api import GmEventKind, GmPort
from ..gmkrc.cache import Gmkrc
from ..kernel.vfs import InodeAttrs
from ..mem.addrspace import AddressSpace
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..units import page_align_up
from .protocol import OrfaOp, OrfaRequest
from .server import MAX_READ_REPLY, MAX_WRITE_CHUNK, RING_SLOT_BYTES

#: Cost of the library's interception of one libc call (PLT hook).
LIB_CALL_NS = 500

_ERRNO_EXC = {"ENOENT": "Enoent", "EEXIST": "Eexist", "EISDIR": "Eisdir",
              "ENOTDIR": "Enotdir", "ENOTEMPTY": "Enotempty",
              "EINVAL": "Einval"}


def _raise_status(status: str):
    from .. import errors

    exc = getattr(errors, _ERRNO_EXC.get(status, ""), None)
    if exc is not None:
        raise exc()
    raise FsError(status)


@dataclass
class _OrfaFile:
    attrs: InodeAttrs
    offset: int = 0


class _GmClientSide:
    """GM user port + registration caches for app buffers and requests."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.port = GmPort(node, port_id, space)
        self.regcache = Gmkrc(self.port, node.vmaspy, max_cached_pages=4096)
        self._req_buf = None
        self._reply_buf = None

    def setup(self):
        size = page_align_up(RING_SLOT_BYTES)
        self._req_buf = self.space.mmap(size, populate=True)
        self._reply_buf = self.space.mmap(size, populate=True)
        yield from self.port.register(self._req_buf, size)
        yield from self.port.register(self._reply_buf, size)

    def call_meta(self, dst, req: OrfaRequest):
        """Generator: request with header-only reply (metadata ops)."""
        yield from self.port.provide_receive_buffer(
            self._reply_buf, 4096, match=req.request_id
        )
        yield from self.port.send(
            dst[0], dst[1], self._req_buf, req.wire_size(), meta=req
        )
        return (yield from self._await_reply(req.request_id))

    def call_read(self, dst, req: OrfaRequest, vaddr: int):
        """Generator: READ with the data landing in the app buffer."""
        key, entry = yield from self.regcache.acquire(self.space, vaddr, req.length)
        yield from self.port.provide_receive_buffer_registered(
            key, req.length, match=req.request_id
        )
        yield from self.port.send(
            dst[0], dst[1], self._req_buf, req.wire_size(), meta=req
        )
        reply = yield from self._await_reply(req.request_id)
        self.regcache.release(entry)
        return reply

    def call_write(self, dst, req: OrfaRequest, vaddr: int):
        """Generator: WRITE; the payload is copied into the registered
        request buffer (GM cannot send a header+user-data vector)."""
        yield from self.port.provide_receive_buffer(
            self._reply_buf, 4096, match=req.request_id
        )
        yield from self.node.cpu.copy(req.length)
        data = self.space.read_bytes(vaddr, req.length)
        self.space.write_bytes(self._req_buf, data)
        # The staged payload travels inside the request message.
        yield from self.port.send(
            dst[0], dst[1], self._req_buf, req.wire_size() + req.length, meta=req,
        )
        return (yield from self._await_reply(req.request_id))

    def _await_reply(self, request_id: int):
        while True:
            event = yield from self.port.receive_event(blocking=True)
            if event.kind is GmEventKind.SENT:
                continue
            if event.match != request_id:
                raise ProtocolError(f"unexpected reply match {event.match}")
            return event.meta


class _MxClientSide:
    """MX user endpoint: user-virtual segments, no registration."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.endpoint = MxEndpoint(node, port_id, context="user")
        self._req_buf = None
        self._reply_buf = None

    def setup(self):
        size = page_align_up(4096)
        self._req_buf = self.space.mmap(size, populate=True)
        self._reply_buf = self.space.mmap(size, populate=True)
        return
        yield  # pragma: no cover

    def call_meta(self, dst, req: OrfaRequest):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, self._reply_buf, 4096)],
            match=req.request_id,
        )
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, self._req_buf, req.wire_size())],
            match=0, meta=req,
        )
        yield from self.endpoint.wait(send)
        done = yield from self.endpoint.wait(recv, blocking=True)
        return done.result.meta

    def call_read(self, dst, req: OrfaRequest, vaddr: int):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, vaddr, req.length)],
            match=req.request_id,
        )
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, self._req_buf, req.wire_size())],
            match=0, meta=req,
        )
        yield from self.endpoint.wait(send)
        done = yield from self.endpoint.wait(recv, blocking=True)
        return done.result.meta

    def call_write(self, dst, req: OrfaRequest, vaddr: int):
        recv = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, self._reply_buf, 4096)],
            match=req.request_id,
        )
        # MX sends the user payload directly (no staging copy).
        send = yield from self.endpoint.isend(
            dst[0], dst[1],
            [MxSegment.user(self.space, vaddr, req.length)],
            match=0, meta=req,
        )
        yield from self.endpoint.wait(send)
        done = yield from self.endpoint.wait(recv, blocking=True)
        return done.result.meta


class OrfaClient:
    """The intercepting library's client state for one process."""

    _request_ids = itertools.count(1)

    def __init__(self, node: Node, port_id: int, space: AddressSpace,
                 server: tuple[int, int], api: str = "mx"):
        if api not in ("gm", "mx"):
            raise ProtocolError(f"api must be 'gm' or 'mx', got {api!r}")
        self.node = node
        self.space = space
        self.server = server
        self.api = api
        self.cpu = node.cpu
        if api == "gm":
            self.side = _GmClientSide(node, port_id, space)
        else:
            self.side = _MxClientSide(node, port_id, space)
        self._files: dict[int, _OrfaFile] = {}
        self._next_fd = 3

    def setup(self):
        """Generator: one-time library initialization."""
        yield from self.side.setup()

    # -- protocol helpers ------------------------------------------------------

    def _rpc_meta(self, op: OrfaOp, inode: int = 0, name: str = "",
                  length: int = 0) -> "generator":
        req = OrfaRequest(op=op, request_id=next(OrfaClient._request_ids),
                          inode=inode, name=name, length=length)
        reply = yield from self.side.call_meta(self.server, req)
        if not reply.ok:
            _raise_status(reply.status)
        return reply

    def _resolve(self, path: str):
        """Generator: LOOKUP every component — no client dcache (the
        ORFA metadata weakness the paper measures)."""
        attrs = None
        inode = 1  # server root
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts:
            reply = yield from self._rpc_meta(OrfaOp.GETATTR, inode=inode)
            return reply.attrs
        for name in parts:
            reply = yield from self._rpc_meta(OrfaOp.LOOKUP, inode=inode, name=name)
            attrs = reply.attrs
            inode = attrs.inode_id
        return attrs

    # -- intercepted libc calls ----------------------------------------------------

    def open(self, path: str, create: bool = False):
        """Generator: open(2) as the library intercepts it."""
        yield from self.cpu.work(LIB_CALL_NS)
        try:
            attrs = yield from self._resolve(path)
        except FsError:
            if not create:
                raise
            parent_path, _, name = path.rstrip("/").rpartition("/")
            parent = yield from self._resolve(parent_path or "/")
            reply = yield from self._rpc_meta(OrfaOp.CREATE,
                                              inode=parent.inode_id, name=name)
            attrs = reply.attrs
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OrfaFile(attrs=attrs)
        return fd

    def close(self, fd: int):
        yield from self.cpu.work(LIB_CALL_NS)
        if fd not in self._files:
            raise Ebadf(str(fd))
        del self._files[fd]

    def stat(self, path: str):
        yield from self.cpu.work(LIB_CALL_NS)
        attrs = yield from self._resolve(path)
        return attrs

    def mkdir(self, path: str):
        yield from self.cpu.work(LIB_CALL_NS)
        parent_path, _, name = path.rstrip("/").rpartition("/")
        parent = yield from self._resolve(parent_path or "/")
        yield from self._rpc_meta(OrfaOp.MKDIR, inode=parent.inode_id, name=name)

    def read(self, fd: int, vaddr: int, length: int):
        """Generator: read(2); data lands zero-copy in [vaddr, vaddr+len)."""
        yield from self.cpu.work(LIB_CALL_NS)
        f = self._file(fd)
        remaining = min(length, max(0, f.attrs.size - f.offset))
        done = 0
        while remaining > 0:
            chunk = min(remaining, MAX_READ_REPLY)
            req = OrfaRequest(op=OrfaOp.READ,
                              request_id=next(OrfaClient._request_ids),
                              inode=f.attrs.inode_id, offset=f.offset + done,
                              length=chunk)
            reply = yield from self.side.call_read(self.server, req, vaddr + done)
            if not reply.ok:
                _raise_status(reply.status)
            done += reply.count
            remaining -= reply.count
            if reply.count < chunk:
                break
        f.offset += done
        return done

    def write(self, fd: int, vaddr: int, length: int):
        """Generator: write(2), chunked to the protocol's wsize."""
        yield from self.cpu.work(LIB_CALL_NS)
        f = self._file(fd)
        done = 0
        while done < length:
            chunk = min(length - done, MAX_WRITE_CHUNK)
            req = OrfaRequest(op=OrfaOp.WRITE,
                              request_id=next(OrfaClient._request_ids),
                              inode=f.attrs.inode_id, offset=f.offset + done,
                              length=chunk)
            reply = yield from self.side.call_write(self.server, req, vaddr + done)
            if not reply.ok:
                _raise_status(reply.status)
            done += reply.count
        f.offset += done
        if f.offset > f.attrs.size:
            f.attrs.size = f.offset
        return done

    def seek(self, fd: int, offset: int) -> None:
        self._file(fd).offset = offset

    def _file(self, fd: int) -> _OrfaFile:
        f = self._files.get(fd)
        if f is None:
            raise Ebadf(str(fd))
        return f
