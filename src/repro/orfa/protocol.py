"""The ORFA wire protocol: requests and replies.

Messages consist of a fixed-size header plus an optional data payload.
The header travels as the simulator's out-of-band ``meta`` object (its
wire bytes are accounted in the message size); file data travels as real
bytes so end-to-end correctness is testable.

Replies are matched to requests by ``request_id`` (the client posts its
reply buffer with that match key before sending the request, so reply
data can land directly in its final destination — page-cache frame or
pinned user buffer — with zero copies at the client).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..kernel.vfs import InodeAttrs

#: Wire size of a request header (operation, ids, offsets, lengths).
REQUEST_WIRE_BYTES = 64
#: Wire size of a reply header; it rides along the data payload as
#: protocol metadata and is small enough to be folded into the message's
#: fixed costs (documented simplification).
REPLY_HEADER_BYTES = 32
#: Per-entry wire cost of a readdir reply.
DIRENT_WIRE_BYTES = 32


class OrfaOp(enum.Enum):
    LOOKUP = "lookup"
    GETATTR = "getattr"
    CREATE = "create"
    MKDIR = "mkdir"
    UNLINK = "unlink"
    READDIR = "readdir"
    TRUNCATE = "truncate"
    READ = "read"
    WRITE = "write"


@dataclass
class OrfaRequest:
    """One client request."""

    op: OrfaOp
    request_id: int
    inode: int = 0  # target inode (or parent for namespace ops)
    name: str = ""  # child name for namespace ops
    offset: int = 0
    length: int = 0  # read/write length, or truncate size

    def wire_size(self) -> int:
        """Bytes of the request message, excluding write payload."""
        return REQUEST_WIRE_BYTES + len(self.name.encode())


@dataclass
class OrfaReply:
    """One server reply header (data payload travels beside it)."""

    request_id: int
    status: str = "OK"  # "OK" or an errno name ("ENOENT", ...)
    attrs: Optional[InodeAttrs] = None
    names: list[str] = field(default_factory=list)
    count: int = 0  # bytes read/written

    @property
    def ok(self) -> bool:
        return self.status == "OK"

    def data_wire_size(self, data_len: int) -> int:
        """Bytes of the reply message given its payload length."""
        return max(1, data_len + DIRENT_WIRE_BYTES * len(self.names))
