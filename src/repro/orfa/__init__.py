"""ORFA: the paper's Optimized Remote File-system Access protocol.

The experimentation protocol of section 3.1, optimizing point-to-point
communication between a file-access client and a server:

* :mod:`repro.orfa.protocol` — the request/reply wire protocol;
* :mod:`repro.orfa.server` — the server (figure 2): a user-space
  process answering requests from an in-memory ext2 stand-in
  (:class:`repro.kernel.MemFs`), over either GM or MX;
* :mod:`repro.orfa.client` — the *user-space* ORFA client (figure
  2(a)): a library that transparently intercepts file calls, with its
  own user-level registration cache on GM.

The in-kernel client (ORFS, figure 2(b)) lives in :mod:`repro.orfs`.
"""

from .client import OrfaClient
from .protocol import OrfaOp, OrfaReply, OrfaRequest, REQUEST_WIRE_BYTES
from .server import OrfaServer

__all__ = [
    "OrfaClient",
    "OrfaOp",
    "OrfaReply",
    "OrfaRequest",
    "OrfaServer",
    "REQUEST_WIRE_BYTES",
]
