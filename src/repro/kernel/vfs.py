"""The VFS: inodes, dentry cache, file descriptors, read/write paths.

This is the layer the paper's figure 2(b) shows between the application
and the ORFS client: system calls enter here, the dentry/inode caches
absorb metadata traffic (the reason ORFS beats user-space ORFA on
metadata, section 3.1), and the two data paths diverge:

* **buffered** (default): per-page traffic through the
  :class:`repro.kernel.pagecache.PageCache` — misses call the owning
  filesystem's ``readpage``; the user copy in/out is charged to the CPU.
  Writes dirty cache pages and are written back on ``fsync``/``close``.
* **direct** (``O_DIRECT``): bypasses the page cache entirely and hands
  the user buffer to the filesystem's ``direct_read``/``direct_write``
  (paper section 2.3.2) — for ORFS that becomes a zero-copy network
  transfer straight into user memory.

All operations that consume simulated time are generator processes;
cost constants come from :class:`repro.hw.params.CpuParams`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..errors import Ebadf, Einval, Eisdir, Enoent
from ..hw.cpu import Cpu
from ..mem.addrspace import AddressSpace
from ..sim import Environment
from ..units import PAGE_SIZE
from .pagecache import PageCache


class OpenFlags(enum.Flag):
    """open(2) flags the model distinguishes."""

    RDONLY = 0
    WRONLY = enum.auto()
    RDWR = enum.auto()
    CREAT = enum.auto()
    TRUNC = enum.auto()
    DIRECT = enum.auto()  # O_DIRECT: bypass the page cache


@dataclass
class InodeAttrs:
    """File metadata as the VFS caches it."""

    inode_id: int
    size: int
    is_dir: bool = False


@dataclass
class UserBuffer:
    """A user-space buffer handed through a syscall."""

    space: AddressSpace
    vaddr: int
    length: int


class FileSystemOps(Protocol):
    """What a mounted filesystem implements.

    Every method is a simulation generator (``yield from`` it); return
    values arrive via StopIteration.  ``fs_name`` labels the mount.
    """

    fs_name: str

    def lookup(self, parent_id: int, name: str): ...
    def getattr(self, inode_id: int): ...
    def create(self, parent_id: int, name: str): ...
    def mkdir(self, parent_id: int, name: str): ...
    def unlink(self, parent_id: int, name: str): ...
    def readdir(self, inode_id: int): ...
    def truncate(self, inode_id: int, size: int): ...
    def root_inode(self) -> int: ...
    def readpage(self, inode_id: int, index: int, frame): ...
    def writepage(self, inode_id: int, index: int, frame, length: int): ...
    def direct_read(self, inode_id: int, offset: int, buf: UserBuffer): ...
    def direct_write(self, inode_id: int, offset: int, buf: UserBuffer): ...


@dataclass
class _OpenFile:
    fs: FileSystemOps
    attrs: InodeAttrs
    flags: OpenFlags
    offset: int = 0
    path: str = ""


@dataclass
class AioRequest:
    """One in-flight asynchronous I/O operation (an iocb)."""

    kind: str  # "read" | "write"
    event: object = None  # fires when the transfer completes
    nbytes: int = 0
    error: Optional[Exception] = None

    @property
    def completed(self) -> bool:
        return self.event.processed


_DENTRY_HIT_NS = 200  # hash lookup per component on a warm dcache


class Vfs:
    """One node's virtual filesystem switch."""

    def __init__(self, env: Environment, cpu: Cpu, pagecache: PageCache):
        self.env = env
        self.cpu = cpu
        self.pagecache = pagecache
        self._mounts: dict[str, FileSystemOps] = {}
        # dentry cache: absolute path -> (fs, InodeAttrs)
        self._dentries: dict[str, tuple[FileSystemOps, InodeAttrs]] = {}
        self._files: dict[int, _OpenFile] = {}
        self._next_fd = 3
        # live file mappings: (asid, base vaddr) -> (file, offset, npages)
        self._mappings: dict[tuple[int, int], tuple] = {}
        self.dentry_hits = 0
        self.dentry_misses = 0

    # -- mounting ------------------------------------------------------------

    def mount(self, mountpoint: str, fs: FileSystemOps) -> None:
        """Attach a filesystem under ``mountpoint`` (e.g. '/orfs')."""
        mountpoint = mountpoint.rstrip("/") or "/"
        if mountpoint in self._mounts:
            raise Einval(f"{mountpoint} already mounted")
        self._mounts[mountpoint] = fs

    def _resolve_mount(self, path: str) -> tuple[FileSystemOps, str]:
        """Longest-prefix mount match; returns (fs, fs-relative path)."""
        if not path.startswith("/"):
            raise Einval(f"path must be absolute: {path!r}")
        best = None
        for mp in self._mounts:
            if path == mp or path.startswith(mp + "/") or mp == "/":
                if best is None or len(mp) > len(best):
                    best = mp
        if best is None:
            raise Enoent(f"no filesystem mounted for {path!r}")
        rel = path[len(best):].strip("/") if best != "/" else path.strip("/")
        return self._mounts[best], rel

    # -- path resolution -------------------------------------------------------

    def _lookup_path(self, path: str):
        """Generator: resolve ``path`` to (fs, InodeAttrs) via the dcache."""
        fs, rel = self._resolve_mount(path)
        cached = self._dentries.get(path)
        if cached is not None:
            self.dentry_hits += 1
            yield from self.cpu.work(_DENTRY_HIT_NS)
            return cached
        self.dentry_misses += 1
        parent = fs.root_inode()
        attrs = yield from fs.getattr(parent)
        if rel:
            for component in rel.split("/"):
                attrs = yield from fs.lookup(attrs.inode_id, component)
        self._dentries[path] = (fs, attrs)
        return fs, attrs

    def _invalidate_dentry(self, path: str) -> None:
        self._dentries.pop(path, None)

    # -- namespace operations ---------------------------------------------------

    def stat(self, path: str):
        """Generator: stat(2)."""
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        fs, attrs = yield from self._lookup_path(path)
        # Refresh size from cache-coherent open files if any.
        return attrs

    def mkdir(self, path: str):
        """Generator: mkdir(2)."""
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        parent_path, name = self._split(path)
        fs, parent = yield from self._lookup_path(parent_path)
        attrs = yield from fs.mkdir(parent.inode_id, name)
        self._dentries[path] = (fs, attrs)
        return attrs

    def readdir(self, path: str):
        """Generator: full directory listing."""
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        fs, attrs = yield from self._lookup_path(path)
        if not attrs.is_dir:
            raise Einval(f"{path} is not a directory")
        names = yield from fs.readdir(attrs.inode_id)
        return names

    def unlink(self, path: str):
        """Generator: unlink(2); drops cache pages and the dentry."""
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        parent_path, name = self._split(path)
        fs, parent = yield from self._lookup_path(parent_path)
        cached = self._dentries.get(path)
        if cached is not None:
            self.pagecache.invalidate_inode(cached[1].inode_id)
        yield from fs.unlink(parent.inode_id, name)
        self._invalidate_dentry(path)

    # -- open / close ----------------------------------------------------------

    def open(self, path: str, flags: OpenFlags = OpenFlags.RDONLY):
        """Generator: open(2); returns an fd."""
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        parent_path, name = self._split(path)
        try:
            fs, attrs = yield from self._lookup_path(path)
        except Enoent:
            if not flags & OpenFlags.CREAT:
                raise
            fs, parent = yield from self._lookup_path(parent_path)
            attrs = yield from fs.create(parent.inode_id, name)
            self._dentries[path] = (fs, attrs)
        if attrs.is_dir:
            raise Eisdir(path)
        if flags & OpenFlags.TRUNC:
            yield from fs.truncate(attrs.inode_id, 0)
            self.pagecache.invalidate_inode(attrs.inode_id)
            attrs.size = 0
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OpenFile(fs=fs, attrs=attrs, flags=flags, path=path)
        return fd

    def close(self, fd: int):
        """Generator: close(2); flushes this file's dirty pages."""
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self._writeback(f)
        del self._files[fd]

    def fsync(self, fd: int):
        """Generator: fsync(2)."""
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self._writeback(f)

    # -- data paths --------------------------------------------------------------

    def read(self, fd: int, buf: UserBuffer):
        """Generator: read(2) at the file offset; returns bytes read."""
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        if f.flags & OpenFlags.DIRECT:
            n = yield from self._direct_read(f, buf)
        else:
            n = yield from self._buffered_read(f, buf)
        f.offset += n
        return n

    def write(self, fd: int, buf: UserBuffer):
        """Generator: write(2) at the file offset; returns bytes written."""
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        if f.flags & OpenFlags.DIRECT:
            n = yield from self._direct_write(f, buf)
        else:
            n = yield from self._buffered_write(f, buf)
        f.offset += n
        if f.offset > f.attrs.size:
            f.attrs.size = f.offset
        return n

    def seek(self, fd: int, offset: int) -> None:
        """lseek(2) — free of simulated cost (pure bookkeeping)."""
        self._file(fd).offset = offset

    def file_size(self, fd: int) -> int:
        return self._file(fd).attrs.size

    # -- buffered path ------------------------------------------------------------

    #: Pages per backing-store read.  1 = the Linux 2.4 readpage model
    #: ("data transfers are processed per page", paper section 3.3).
    #: Larger values model Linux 2.6's request clustering, "which are
    #: able to combine multiple page-sized accesses in a single request"
    #: — and need the filesystem to implement vectorial ``readpages``.
    read_cluster_pages: int = 1

    def _buffered_read(self, f: _OpenFile, buf: UserBuffer):
        """Per-page walk through the page cache, with optional 2.6-style
        clustering of adjacent missing pages into one readpages call."""
        remaining = min(buf.length, max(0, f.attrs.size - f.offset))
        done = 0
        pos = f.offset
        inode = f.attrs.inode_id
        while remaining > 0:
            index = pos // PAGE_SIZE
            in_page = pos % PAGE_SIZE
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self.pagecache.find(inode, index)
            if page is not None and not page.uptodate and page.fill_event is not None:
                # Someone else is filling this page: wait on the page lock.
                yield page.fill_event
            elif page is None or not page.uptodate:
                if page is None:
                    page = self.pagecache.add(inode, index)
                cluster = self._missing_run(f, inode, index, page, remaining)
                locks = []
                for p in cluster:
                    p.fill_event = self.env.event("pagelock")
                    locks.append(p.fill_event)
                try:
                    if len(cluster) > 1 and hasattr(f.fs, "readpages"):
                        yield from f.fs.readpages(
                            inode, index, [p.frame for p in cluster])
                    else:
                        yield from f.fs.readpage(inode, index, page.frame)
                finally:
                    for p, lock in zip(cluster, locks):
                        p.uptodate = True
                        p.fill_event = None
                        lock.succeed()
            # copy page-cache -> user buffer ("an additional copy from the
            # page-cache to the application", section 3.3); the modeled
            # copy cost is charged, the host relays page views zero-copy
            yield from self.cpu.copy(chunk)
            buf.space.write_payload(buf.vaddr + done, page.payload(in_page, chunk))
            pos += chunk
            done += chunk
            remaining -= chunk
        return done

    def _missing_run(self, f: _OpenFile, inode: int, index: int, first,
                     remaining: int) -> list:
        """The run of consecutive not-uptodate pages starting at ``index``
        (bounded by the cluster window, the request and the file size)."""
        window = min(
            self.read_cluster_pages,
            -(-remaining // PAGE_SIZE),
            -(-max(0, f.attrs.size - index * PAGE_SIZE) // PAGE_SIZE),
        )
        run = [first]
        for i in range(index + 1, index + window):
            page = self.pagecache.find(inode, i)
            if page is not None and (page.uptodate or page.fill_event is not None):
                break  # resident, or already being filled by someone else
            if page is None:
                page = self.pagecache.add(inode, i)
            run.append(page)
        return run

    def _buffered_write(self, f: _OpenFile, buf: UserBuffer):
        remaining = buf.length
        done = 0
        pos = f.offset
        inode = f.attrs.inode_id
        while remaining > 0:
            index = pos // PAGE_SIZE
            in_page = pos % PAGE_SIZE
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self.pagecache.find(inode, index)
            if page is None:
                page = self.pagecache.add(inode, index)
                # Read-modify-write: if the page holds any existing file
                # content (its start lies below EOF) and this write does
                # not cover the whole page, fetch it first — otherwise
                # writeback would clobber the uncovered bytes with zeros.
                covers_existing = index * PAGE_SIZE < f.attrs.size
                overwrites_fully = in_page == 0 and chunk == PAGE_SIZE
                if covers_existing and not overwrites_fully:
                    yield from f.fs.readpage(inode, index, page.frame)
                page.uptodate = True
            yield from self.cpu.copy(chunk)
            page.fill(in_page, buf.space.read_payload(buf.vaddr + done, chunk))
            page.dirty = True
            pos += chunk
            done += chunk
            remaining -= chunk
        return done

    def _writeback(self, f: _OpenFile):
        """Flush this file's dirty pages via the filesystem's writepage."""
        size = f.attrs.size
        for page in self.pagecache.dirty_pages(f.attrs.inode_id):
            length = min(PAGE_SIZE, size - page.index * PAGE_SIZE)
            if length <= 0:
                page.dirty = False
                continue
            yield from f.fs.writepage(f.attrs.inode_id, page.index, page.frame, length)
            page.dirty = False

    # -- file-backed mmap ---------------------------------------------------------

    #: building the mapping (VMA + PTE installs), per call
    _MMAP_SETUP_NS = 1200

    def mmap_file(self, fd: int, space, length: int, offset: int = 0):
        """Generator: map ``length`` bytes of the file at ``offset`` into
        ``space`` (MAP_SHARED semantics).

        The mapping installs the *page-cache frames themselves* into the
        process page table, so every mapper of the file sees one copy —
        and those pages are exactly the pinned, physically-addressable
        memory the paper's kernel API moves without copies.  Pages are
        faulted in (fetched from the backing filesystem) eagerly.

        Stores through the mapping are NOT tracked by write-protect
        faults (simplification); call :meth:`msync` to mark the mapped
        range dirty and write it back.  Returns the base virtual address.
        """
        f = self._file(fd)
        if offset % PAGE_SIZE:
            raise Einval(f"mmap offset must be page aligned, got {offset}")
        if length <= 0:
            raise Einval(f"mmap length must be positive, got {length}")
        yield from self.cpu.syscall()
        yield from self.cpu.work(self._MMAP_SETUP_NS)
        npages = -(-length // PAGE_SIZE)
        frames = []
        inode = f.attrs.inode_id
        for i in range(npages):
            index = offset // PAGE_SIZE + i
            page = self.pagecache.find(inode, index)
            if page is None:
                page = self.pagecache.add(inode, index)
            if not page.uptodate:
                yield from f.fs.readpage(inode, index, page.frame)
                page.uptodate = True
            frames.append(page.frame)
        vaddr = space.map_frames(frames)
        self._mappings[(space.asid, vaddr)] = (f, offset, npages)
        return vaddr

    def msync(self, space, vaddr: int):
        """Generator: mark a mapping's pages dirty and write them back."""
        key = (space.asid, vaddr)
        mapping = self._mappings.get(key)
        if mapping is None:
            raise Einval(f"msync of unknown mapping {vaddr:#x}")
        f, offset, npages = mapping
        yield from self.cpu.syscall()
        inode = f.attrs.inode_id
        for i in range(npages):
            page = self.pagecache.find(inode, offset // PAGE_SIZE + i)
            if page is not None:
                page.dirty = True
        yield from self._writeback(f)

    def munmap_file(self, space, vaddr: int):
        """Generator: unmap a file mapping (the cache pages survive)."""
        key = (space.asid, vaddr)
        mapping = self._mappings.pop(key, None)
        if mapping is None:
            raise Einval(f"munmap of unknown mapping {vaddr:#x}")
        _, _, npages = mapping
        yield from self.cpu.syscall()
        space.munmap(vaddr, npages * PAGE_SIZE)

    # -- asynchronous I/O (the Linux 2.6 feature of paper section 2.1) ---------

    #: submitting one iocb into the kernel's AIO context
    _AIO_SUBMIT_NS = 900

    def aio_read(self, fd: int, buf: UserBuffer, offset: int):
        """Generator: io_submit one read at an explicit offset.

        Returns an :class:`AioRequest` immediately after submission; the
        actual transfer proceeds concurrently (several outstanding AIO
        requests against an O_DIRECT ORFS file pipeline on the wire —
        the "future asynchronous file requests" of paper section 5.2).
        """
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self.cpu.work(self._AIO_SUBMIT_NS)
        req = AioRequest(kind="read", event=self.env.event("aio"))
        self.env.process(self._aio_run(f, buf, offset, req, write=False),
                         name="aio.read")
        return req

    def aio_write(self, fd: int, buf: UserBuffer, offset: int):
        """Generator: io_submit one write at an explicit offset."""
        f = self._file(fd)
        yield from self.cpu.syscall()
        yield from self.cpu.work(self._AIO_SUBMIT_NS)
        req = AioRequest(kind="write", event=self.env.event("aio"))
        self.env.process(self._aio_run(f, buf, offset, req, write=True),
                         name="aio.write")
        return req

    def _aio_run(self, f: _OpenFile, buf: UserBuffer, offset: int,
                 req: "AioRequest", write: bool):
        # Positioned I/O: operate on a shadow of the open file so the
        # shared offset is untouched (pread/pwrite semantics).
        shadow = _OpenFile(fs=f.fs, attrs=f.attrs, flags=f.flags,
                           offset=offset, path=f.path)
        yield from self.cpu.work(self.cpu.params.vfs_traversal_ns)
        try:
            if write:
                if f.flags & OpenFlags.DIRECT:
                    n = yield from self._direct_write(shadow, buf)
                else:
                    n = yield from self._buffered_write(shadow, buf)
                if offset + n > f.attrs.size:
                    f.attrs.size = offset + n
            else:
                if f.flags & OpenFlags.DIRECT:
                    n = yield from self._direct_read(shadow, buf)
                else:
                    n = yield from self._buffered_read(shadow, buf)
        except Exception as exc:  # surfaced through io_getevents
            req.error = exc
            req.event.succeed(req)
            return
        req.nbytes = n
        req.event.succeed(req)

    def aio_wait(self, requests):
        """Generator: io_getevents — wait for all of ``requests``."""
        pending = [r.event for r in requests if not r.event.processed]
        if pending:
            yield self.env.all_of(pending)
        yield from self.cpu.syscall()
        for r in requests:
            if r.error is not None:
                raise r.error
        return [r.nbytes for r in requests]

    # -- direct path ----------------------------------------------------------------

    _ODIRECT_SETUP_NS = 1500  # 2.4-era bio/alignment bookkeeping per request

    def _direct_read(self, f: _OpenFile, buf: UserBuffer):
        self._check_direct_alignment(f, buf)
        yield from self.cpu.work(self._ODIRECT_SETUP_NS)
        length = min(buf.length, max(0, f.attrs.size - f.offset))
        if length == 0:
            return 0
        n = yield from f.fs.direct_read(
            f.attrs.inode_id, f.offset, UserBuffer(buf.space, buf.vaddr, length)
        )
        return n

    def _direct_write(self, f: _OpenFile, buf: UserBuffer):
        self._check_direct_alignment(f, buf)
        yield from self.cpu.work(self._ODIRECT_SETUP_NS)
        n = yield from f.fs.direct_write(f.attrs.inode_id, f.offset, buf)
        return n

    def _check_direct_alignment(self, f: _OpenFile, buf: UserBuffer) -> None:
        # Linux 2.4 O_DIRECT demands sector alignment of offset and address.
        if f.offset % 512 or buf.vaddr % 512:
            raise Einval(
                f"O_DIRECT requires 512-byte alignment "
                f"(offset={f.offset}, vaddr={buf.vaddr:#x})"
            )

    # -- helpers ---------------------------------------------------------------------

    def _file(self, fd: int) -> _OpenFile:
        f = self._files.get(fd)
        if f is None:
            raise Ebadf(f"fd {fd}")
        return f

    @staticmethod
    def _split(path: str) -> tuple[str, str]:
        path = path.rstrip("/")
        i = path.rfind("/")
        parent = path[:i] or "/"
        return parent, path[i + 1:]
