"""The operating-system substrate: page cache, VFS, VMA SPY, kthreads.

This package models the Linux 2.4 machinery the paper's in-kernel
applications live in:

* :mod:`repro.kernel.pagecache` — per-inode page cache whose pages are
  *pinned physical frames not mapped in virtual memory*, the property
  that makes memory registration the wrong tool for buffered file access
  (paper section 2.3.1).
* :mod:`repro.kernel.vfs` — inodes, dentry cache, file descriptors, and
  the generic buffered/direct read-write paths that a filesystem client
  (ORFS, or the local :mod:`repro.kernel.memfs`) plugs into.
* :mod:`repro.kernel.vmaspy` — the paper's generic infrastructure for
  notifying kernel modules of address-space modifications (section 3.2),
  built over :class:`repro.mem.AddressSpace` listeners.
* :mod:`repro.kernel.threads` — kernel threads with wakeup latency, the
  mechanism whose cost burdens SOCKETS-GM (section 5.3).
"""

from .memfs import MemFs
from .pagecache import PageCache
from .threads import KernelThread
from .vfs import FileSystemOps, OpenFlags, Vfs
from .vmaspy import VmaSpy
from .writeback import WritebackDaemon

__all__ = [
    "FileSystemOps",
    "KernelThread",
    "MemFs",
    "OpenFlags",
    "PageCache",
    "Vfs",
    "VmaSpy",
    "WritebackDaemon",
]
