"""Background writeback: the kupdate/bdflush daemon.

Without it, dirty page-cache pages persist until ``fsync``/``close`` —
fine for benchmarks, wrong for long-running workloads (a crashed client
would lose everything, and dirty pages are unevictable, so cache
pressure eventually stalls writers; see
:meth:`repro.kernel.pagecache.PageCache._evict_one`).

:class:`WritebackDaemon` is the 2.4-style kupdate: it wakes on an
interval and writes back every dirty page older than ``max_age`` (or
all of them under memory pressure), through the owning filesystem's
``writepage``.  Filesystems register per-inode so the daemon knows whom
to call.
"""

from __future__ import annotations

from ..hw.cpu import Cpu
from ..kernel.pagecache import PageCache
from ..sim import Environment
from ..units import PAGE_SIZE, ms


class WritebackDaemon:
    """The per-node dirty-page flusher."""

    def __init__(self, env: Environment, cpu: Cpu, pagecache: PageCache,
                 interval_ns: int = ms(500), name: str = "kupdated"):
        self.env = env
        self.cpu = cpu
        self.pagecache = pagecache
        self.interval_ns = interval_ns
        self.name = name
        self._owners: dict[int, tuple[object, int]] = {}  # inode -> (fs, size)
        self.pages_written = 0
        self.sweeps = 0
        self._running = True
        env.process(self._loop(), name=name)

    def register_inode(self, inode_id: int, fs, size: int) -> None:
        """Tell the daemon which filesystem writes back ``inode_id``
        (and the current file size, bounding the last partial page)."""
        self._owners[inode_id] = (fs, size)

    def update_size(self, inode_id: int, size: int) -> None:
        fs, _ = self._owners.get(inode_id, (None, 0))
        if fs is not None:
            self._owners[inode_id] = (fs, size)

    def stop(self) -> None:
        """Stop after the current sweep (daemon exits its loop)."""
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.interval_ns)
            yield from self.sweep()

    def sweep(self):
        """Generator: write back every dirty page with a known owner."""
        self.sweeps += 1
        for page in self.pagecache.dirty_pages():
            owner = self._owners.get(page.inode_id)
            if owner is None:
                continue  # not ours (e.g. a raw block cache with its own flusher)
            fs, size = owner
            length = min(PAGE_SIZE, size - page.index * PAGE_SIZE)
            if length <= 0:
                page.dirty = False
                continue
            yield from fs.writepage(page.inode_id, page.index, page.frame,
                                    length)
            page.dirty = False
            self.pages_written += 1
