"""VMA SPY: notification of address-space modifications to kernel modules.

One of the paper's contributions (section 3.2): "the LINUX kernel does
not provide any mechanism for such tracing in a kernel context.  Thus,
we developed a generic infrastructure called VMA SPY allowing any
external module to ask for notification of address space modifications
(for instance, mapping or protection change, or fork)."

(Historically this is the ancestor of what mainline Linux much later
grew as mmu-notifiers.)

The spy multiplexes any number of watcher modules over the raw listener
hook of :class:`repro.mem.AddressSpace`, adds per-kind filtering, keeps
registration bookkeeping so watchers can be detached cleanly when a
module unloads, and guarantees watchers are called *before* the
modification takes effect (inherited from the AddressSpace contract), so
a registration cache can still resolve the translations it must
invalidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .. import obs
from ..errors import KernelError
from ..mem.addrspace import AddressSpace, AddressSpaceChange, ChangeKind

WatchCallback = Callable[[AddressSpaceChange], None]


@dataclass
class _Watch:
    """One module's subscription on one address space."""

    space: AddressSpace
    callback: WatchCallback
    kinds: Optional[frozenset[ChangeKind]]  # None = all kinds
    active: bool = True


class VmaSpy:
    """The per-kernel VMA SPY registry."""

    def __init__(self, name: str = "vmaspy"):
        self.name = name
        self._watches: list[_Watch] = []
        self._hooked: dict[int, tuple[AddressSpace, Callable]] = {}
        # Delivery accounting on the metrics registry (an unregistered
        # per-instance counter while no registry is installed).
        self._m_delivered = obs.counter("vmaspy.notifications", spy=name)

    @property
    def notifications_delivered(self) -> int:
        return self._m_delivered.value

    def watch(
        self,
        space: AddressSpace,
        callback: WatchCallback,
        kinds: Optional[set[ChangeKind]] = None,
    ) -> _Watch:
        """Subscribe ``callback`` to modifications of ``space``.

        ``kinds`` restricts delivery (e.g. only UNMAP and FORK); by
        default every modification is delivered.  Returns a handle for
        :meth:`unwatch`.
        """
        watch = _Watch(
            space=space,
            callback=callback,
            kinds=frozenset(kinds) if kinds is not None else None,
        )
        self._watches.append(watch)
        if space.asid not in self._hooked:
            hook = self._make_hook(space.asid)
            space.add_listener(hook)
            self._hooked[space.asid] = (space, hook)
        return watch

    def unwatch(self, watch: _Watch) -> None:
        """Detach a subscription (module unload)."""
        if not watch.active:
            raise KernelError("unwatch of an already-detached VMA SPY watch")
        watch.active = False
        self._watches.remove(watch)
        asid = watch.space.asid
        if not any(w.space.asid == asid for w in self._watches):
            space, hook = self._hooked.pop(asid)
            space.remove_listener(hook)

    def watch_count(self, space: Optional[AddressSpace] = None) -> int:
        """Number of active watches (optionally on one space)."""
        if space is None:
            return len(self._watches)
        return sum(1 for w in self._watches if w.space.asid == space.asid)

    def _make_hook(self, asid: int) -> Callable[[AddressSpaceChange], None]:
        def hook(change: AddressSpaceChange) -> None:
            # Snapshot: a watcher may unwatch itself during delivery.
            for watch in list(self._watches):
                if not watch.active or watch.space.asid != asid:
                    continue
                if watch.kinds is not None and change.kind not in watch.kinds:
                    continue
                self._m_delivered.inc()
                watch.callback(change)

        return hook
