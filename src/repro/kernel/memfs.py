"""MemFs: an in-memory filesystem (the ext2 stand-in).

Plays two roles:

* the **server-side backing store** behind the ORFA/ORFS server (the
  paper's server runs Ext2 under the VFS, figure 2(b)); the evaluation
  runs with a warm server cache, so an in-memory store with CPU-copy
  costs preserves the measured behaviour (network-bound transfers);
* a **local filesystem** for exercising the VFS paths in tests without
  any network.

Optionally a ``disk_latency_ns`` can be charged on first-touch of a
page, to model cold-cache physical reads (off by default, matching the
paper's warm-cache methodology).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..errors import Eexist, Einval, Eisdir, Enoent, Enotdir, Enotempty
from ..hw.cpu import Cpu
from ..mem.sglist import PayloadRef, write_chunks
from ..sim import Environment
from ..units import PAGE_SIZE
from .vfs import InodeAttrs, UserBuffer

_OP_COST_NS = 600  # hash/btree bookkeeping per metadata operation


@dataclass
class _MemInode:
    inode_id: int
    is_dir: bool
    data: bytearray = field(default_factory=bytearray)
    children: dict[str, int] = field(default_factory=dict)  # dirs only

    @property
    def size(self) -> int:
        return len(self.data)

    def attrs(self) -> InodeAttrs:
        return InodeAttrs(inode_id=self.inode_id, size=self.size, is_dir=self.is_dir)


class MemFs:
    """In-memory tree of directories and regular files."""

    fs_name = "memfs"

    def __init__(self, env: Environment, cpu: Cpu, disk_latency_ns: int = 0):
        self.env = env
        self.cpu = cpu
        self.disk_latency_ns = disk_latency_ns
        self._ids = itertools.count(1)
        root_id = next(self._ids)
        self._inodes: dict[int, _MemInode] = {root_id: _MemInode(root_id, is_dir=True)}
        self._root_id = root_id
        self._touched_pages: set[tuple[int, int]] = set()

    # -- namespace ----------------------------------------------------------

    def root_inode(self) -> int:
        return self._root_id

    def lookup(self, parent_id: int, name: str):
        yield from self.cpu.work(_OP_COST_NS)
        parent = self._dir(parent_id)
        child_id = parent.children.get(name)
        if child_id is None:
            raise Enoent(name)
        return self._inodes[child_id].attrs()

    def getattr(self, inode_id: int):
        yield from self.cpu.work(_OP_COST_NS)
        return self._inode(inode_id).attrs()

    def create(self, parent_id: int, name: str):
        yield from self.cpu.work(_OP_COST_NS)
        return self._new_child(parent_id, name, is_dir=False)

    def mkdir(self, parent_id: int, name: str):
        yield from self.cpu.work(_OP_COST_NS)
        return self._new_child(parent_id, name, is_dir=True)

    def unlink(self, parent_id: int, name: str):
        yield from self.cpu.work(_OP_COST_NS)
        parent = self._dir(parent_id)
        child_id = parent.children.get(name)
        if child_id is None:
            raise Enoent(name)
        child = self._inodes[child_id]
        if child.is_dir and child.children:
            raise Enotempty(name)
        del parent.children[name]
        del self._inodes[child_id]

    def readdir(self, inode_id: int):
        yield from self.cpu.work(_OP_COST_NS)
        return sorted(self._dir(inode_id).children)

    def truncate(self, inode_id: int, size: int):
        yield from self.cpu.work(_OP_COST_NS)
        inode = self._file(inode_id)
        if size < len(inode.data):
            del inode.data[size:]
        else:
            inode.data.extend(bytes(size - len(inode.data)))

    # -- data: page interface (buffered path) -----------------------------------

    def readpage(self, inode_id: int, index: int, frame):
        inode = self._file(inode_id)
        yield from self._maybe_disk(inode_id, index)
        start = index * PAGE_SIZE
        chunk = bytes(inode.data[start : start + PAGE_SIZE])
        yield from self.cpu.copy(max(1, len(chunk)))
        if chunk:
            frame.write(0, chunk)
        if len(chunk) < PAGE_SIZE:
            frame.write(len(chunk), bytes(PAGE_SIZE - len(chunk)))
        return len(chunk)

    def writepage(self, inode_id: int, index: int, frame, length: int):
        inode = self._file(inode_id)
        yield from self._maybe_disk(inode_id, index)
        yield from self.cpu.copy(length)
        start = index * PAGE_SIZE
        end = start + length
        if len(inode.data) < end:
            inode.data.extend(bytes(end - len(inode.data)))
        inode.data[start:end] = frame.read(0, length)
        return length

    # -- data: direct interface ---------------------------------------------------

    def direct_read(self, inode_id: int, offset: int, buf: UserBuffer):
        inode = self._file(inode_id)
        n = min(buf.length, max(0, inode.size - offset))
        yield from self.cpu.copy(n)
        buf.space.write_bytes(buf.vaddr, bytes(inode.data[offset : offset + n]))
        return n

    def direct_write(self, inode_id: int, offset: int, buf: UserBuffer):
        inode = self._file(inode_id)
        yield from self.cpu.copy(buf.length)
        data = buf.space.read_bytes(buf.vaddr, buf.length)
        end = offset + len(data)
        if len(inode.data) < end:
            inode.data.extend(bytes(end - len(inode.data)))
        inode.data[offset:end] = data
        return len(data)

    # -- raw access for servers (no VFS in between) ---------------------------------

    def read_raw(self, inode_id: int, offset: int, length: int) -> bytes:
        """Zero-cost data peek used by protocol servers that charge their
        own copy/transfer costs explicitly."""
        inode = self._file(inode_id)
        return bytes(inode.data[offset : offset + length])

    def write_raw(self, inode_id: int, offset: int, data) -> int:
        """Accepts ``bytes`` or a :class:`repro.mem.PayloadRef`; payload
        chunks are deposited one by one, never joined."""
        inode = self._file(inode_id)
        end = offset + len(data)
        if len(inode.data) < end:
            inode.data.extend(bytes(end - len(inode.data)))
        if isinstance(data, PayloadRef):
            pos = offset
            for chunk in write_chunks(data):
                inode.data[pos : pos + len(chunk)] = chunk
                pos += len(chunk)
        else:
            inode.data[offset:end] = data
        return len(data)

    # -- internals --------------------------------------------------------------------

    def _maybe_disk(self, inode_id: int, index: int):
        if self.disk_latency_ns and (inode_id, index) not in self._touched_pages:
            self._touched_pages.add((inode_id, index))
            yield self.env.timeout(self.disk_latency_ns)
        else:
            return
            yield  # pragma: no cover - keeps this a generator

    def _inode(self, inode_id: int) -> _MemInode:
        inode = self._inodes.get(inode_id)
        if inode is None:
            raise Enoent(f"inode {inode_id}")
        return inode

    def _dir(self, inode_id: int) -> _MemInode:
        inode = self._inode(inode_id)
        if not inode.is_dir:
            raise Enotdir(f"inode {inode_id}")
        return inode

    def _file(self, inode_id: int) -> _MemInode:
        inode = self._inode(inode_id)
        if inode.is_dir:
            raise Eisdir(f"inode {inode_id}")
        return inode

    def _new_child(self, parent_id: int, name: str, is_dir: bool) -> InodeAttrs:
        if not name or "/" in name:
            raise Einval(f"bad name {name!r}")
        parent = self._dir(parent_id)
        if name in parent.children:
            raise Eexist(name)
        inode_id = next(self._ids)
        self._inodes[inode_id] = _MemInode(inode_id, is_dir=is_dir)
        parent.children[name] = inode_id
        return self._inodes[inode_id].attrs()
