"""The page cache: per-inode radix tree of resident, pinned frames.

Models the property the paper's buffered-access argument rests on
(section 2.3.1): "Pages of the page-cache are already locked in physical
memory and generally not mapped in virtual memory.  But, their physical
address is easy to obtain since a distributed file system client runs in
a kernel context."  Accordingly, cache pages here are raw
:class:`repro.mem.Frame` objects with a pin reference and *no* virtual
mapping — the only sensible way to hand them to a NIC is by physical
address, which is exactly what the paper adds to GM and designs into MX.

Eviction is global LRU over clean pages, bounded by ``max_pages``.
Dirty pages must be written back (by the owning filesystem) before they
become evictable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..errors import KernelError
from ..mem.phys import Frame, PhysicalMemory
from ..mem.sglist import PayloadRef, seal, write_chunks
from ..units import PAGE_SIZE


@dataclass
class CachedPage:
    """One resident page of one file."""

    inode_id: int
    index: int  # page index within the file
    frame: Frame
    dirty: bool = False
    uptodate: bool = False  # filled from backing store / server
    # Page lock: while one context fills the page, concurrent readers
    # wait on this event instead of issuing duplicate backing reads
    # (lock_page/wait_on_page semantics).
    fill_event: object = None

    def payload(self, offset: int = 0, length: Optional[int] = None) -> PayloadRef:
        """Zero-copy view of part of this page as a :class:`PayloadRef`
        (copy-on-write: a later write to the page detaches first)."""
        if length is None:
            length = PAGE_SIZE - offset
        return seal(PayloadRef.from_chunks([self.frame.view(offset, length)]))

    def fill(self, offset: int, payload: PayloadRef) -> None:
        """Scatter a :class:`PayloadRef` into this page at ``offset``."""
        if obs.metrics_enabled():
            obs.counter("pagecache.fills").inc()
        pos = offset
        for chunk in write_chunks(payload):
            self.frame.write(pos, chunk)
            pos += len(chunk)


class PageCache:
    """Global page cache over all inodes of one node's kernel."""

    def __init__(self, phys: PhysicalMemory, max_pages: int = 65536,
                 name: str = "pagecache"):
        if max_pages < 1:
            raise ValueError(f"max_pages must be >= 1, got {max_pages}")
        self.phys = phys
        self.max_pages = max_pages
        self.name = name
        # (inode_id, index) -> CachedPage, in LRU order (oldest first)
        self._pages: OrderedDict[tuple[int, int], CachedPage] = OrderedDict()
        # Cache accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        self._m_hits = obs.counter("pagecache.hits", cache=name)
        self._m_misses = obs.counter("pagecache.misses", cache=name)
        self._m_evictions = obs.counter("pagecache.evictions", cache=name)

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def evictions(self) -> int:
        return self._m_evictions.value

    def __len__(self) -> int:
        return len(self._pages)

    def find(self, inode_id: int, index: int) -> Optional[CachedPage]:
        """Look up a page; refreshes its LRU position on hit."""
        key = (inode_id, index)
        page = self._pages.get(key)
        if page is None:
            self._m_misses.inc()
            return None
        self._m_hits.inc()
        self._pages.move_to_end(key)
        return page

    def add(self, inode_id: int, index: int) -> CachedPage:
        """Allocate and insert a fresh (not-uptodate) page.

        The frame is pinned for its whole cache residency.  Raises if
        the page already exists — callers must ``find`` first.
        """
        key = (inode_id, index)
        if key in self._pages:
            raise KernelError(f"page {key} already in cache")
        if len(self._pages) >= self.max_pages:
            self._evict_one()
        frame = self.phys.alloc()
        frame.pin()
        page = CachedPage(inode_id, index, frame)
        self._pages[key] = page
        return page

    def remove(self, inode_id: int, index: int) -> None:
        """Drop one page (truncate); dirty pages are discarded too."""
        key = (inode_id, index)
        page = self._pages.pop(key, None)
        if page is None:
            return
        self._release(page)

    def invalidate_inode(self, inode_id: int) -> int:
        """Drop every page of one inode; returns how many were dropped.

        Dirty pages are discarded — callers flush first if they care.
        """
        victims = [k for k in self._pages if k[0] == inode_id]
        for key in victims:
            self._release(self._pages.pop(key))
        return len(victims)

    def dirty_pages(self, inode_id: Optional[int] = None) -> list[CachedPage]:
        """All dirty pages (optionally of one inode), in index order."""
        pages = [
            p
            for p in self._pages.values()
            if p.dirty and (inode_id is None or p.inode_id == inode_id)
        ]
        return sorted(pages, key=lambda p: (p.inode_id, p.index))

    def _evict_one(self) -> None:
        for key, page in self._pages.items():
            if not page.dirty:
                del self._pages[key]
                self._release(page)
                self._m_evictions.inc()
                return
        raise KernelError(
            "page cache full of dirty pages — writeback must run first"
        )

    def _release(self, page: CachedPage) -> None:
        page.frame.unpin()
        if not page.frame.pinned:
            self.phys.free(page.frame)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
