"""Kernel threads: work queues with context-switch wakeup latency.

SOCKETS-GM needs "an extra (dispatching) kernel thread which increases
the latency" (paper section 5.3) because GM's completion notification
cannot wake the right sleeper directly.  This module provides that
thread: work items are queued, and each item pays a wakeup latency (if
the thread was idle) plus scheduled CPU time before its handler runs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..hw.cpu import Cpu
from ..sim import Environment, Store

# A blocked-to-running context switch on 2.4 (wake_up + schedule), ~4 us
# on the era's Xeons.
DEFAULT_WAKEUP_NS = 4000


class KernelThread:
    """A daemon thread processing queued work items one at a time.

    ``handler(item)`` must be a generator (simulation process body); it
    runs to completion before the next item is taken.  If the queue was
    empty when an item arrives, the wakeup latency is charged first —
    back-to-back items only pay it once, matching how a busy kthread
    stays on-CPU.
    """

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        handler: Callable[[Any], Generator],
        wakeup_ns: int = DEFAULT_WAKEUP_NS,
        name: str = "kthread",
    ):
        self.env = env
        self.cpu = cpu
        self.handler = handler
        self.wakeup_ns = wakeup_ns
        self.name = name
        self._queue = Store(env, f"{name}.q")
        self._idle = True
        self.items_processed = 0
        self.wakeups = 0
        env.process(self._loop(), name=name)

    def submit(self, item: Any) -> None:
        """Queue a work item for the thread."""
        self._queue.put(item)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _loop(self):
        while True:
            if len(self._queue) == 0:
                self._idle = True
            item = yield self._queue.get()
            if self._idle:
                self._idle = False
                self.wakeups += 1
                yield from self.cpu.work(self.wakeup_ns)
            yield from self.handler(item)
            self.items_processed += 1
