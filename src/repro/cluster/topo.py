"""Datacenter fabric topologies: k-ary fat-trees and dragonflies.

The paper's experiments are two-node, but the wire model underneath
(cut-through links, crossbar switches, packet pacing) composes into the
multi-stage fabrics its cluster-filesystem workloads would actually run
on.  This module builds them:

* :func:`fat_tree` — the k-ary Clos of Al-Fares et al.: ``k`` pods of
  ``k/2`` edge and ``k/2`` aggregation switches plus ``(k/2)²`` cores,
  ``k³/4`` hosts; every host pair has ``(k/2)²`` equal-cost paths
  through the core (``k=8`` → 128 hosts, ``k=16`` → 1024 hosts);
* :func:`dragonfly` — all-to-all-connected groups of routers with one
  global link per group pair, the low-diameter long-cable topology.

A :class:`Fabric` owns the shared node→switch locator, assigns each
switch a mixed per-switch ECMP seed (identical seeds on every stage
would polarize: all flows entering a pod would leave it through one
core), computes shortest-path routing tables by BFS over the switch
graph, and — the point of the exercise — installs one
:class:`repro.hw.flow.FlowNetwork` across the fabric so steady
transfers collapse into analytic flow reservations
(:mod:`repro.hw.flow`; ``set_flow_mode`` toggles the fidelity).

Sharding
--------

A fabric can be built *partially* for the sharded engine: pass the
``assignment`` from :func:`Fabric.propose_pods` (switch/node name →
shard), this worker's ``shard_id``, and the scenario ``hub``.  Only
local switches and hosts are instantiated; trunks crossing the cut come
from ``hub.border_link`` (becoming :class:`~repro.sim.border.BorderLink`
stubs), and everything else about the construction — node ids, ECMP
seeds, routing tables — is derived from the *global* topology, so every
worker ends up with consistent state.  Inter-pod trunks carry the fat
``FabricParams.inter_propagation_ns``, which *is* the conservative
lookahead of those borders — pod-grained sharding gets its sync window
for free from the cable length.  Partial fabrics install no
FlowNetwork: a reservation needs a global view of its path, and
``Link.is_border`` would refuse the cut hops anyway.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import NetworkError
from ..hw.flow import FlowNetwork
from ..hw.link import Link
from ..hw.params import (DEFAULT_FABRIC, DEFAULT_FLOW, FabricParams,
                         FlowParams, HostParams, LinkParams, NicParams,
                         PCI_XD, trunk_params)
from ..hw.switch import Switch
from ..hw.wire import ecmp_hash
from ..sim import Environment
from .node import Node, star
from .partition import TopoLink, propose_partition

#: Routing tables are a pure function of the abstract switch graph (the
#: adjacency, the host locator, and which switches need tables) — no
#: Environment state enters the BFS.  Fleet sweeps rebuild the same
#: fabric for every grid point that varies only load/fidelity/fault, so
#: the tables are memoized process-wide by structural signature.  The
#: cache can only change build *time*, never results: a hit hands back
#: the exact tuples a fresh BFS would compute (tests assert the bytes).
_ROUTE_CACHE: dict = {}
_ROUTE_CACHE_STATS = {"hits": 0, "misses": 0}


def route_cache_stats() -> dict:
    """Process-wide route-memo counters (for perf tests and the CLI)."""
    return dict(_ROUTE_CACHE_STATS)


def clear_route_cache() -> None:
    _ROUTE_CACHE.clear()
    _ROUTE_CACHE_STATS["hits"] = 0
    _ROUTE_CACHE_STATS["misses"] = 0


class Fabric:
    """A multi-switch topology under construction.

    Builders call :meth:`add_switch` / :meth:`add_hosts` /
    :meth:`add_trunk` in a fixed global order, then :meth:`finalize`.
    The same calls are made whether or not an element is local to this
    shard — remote elements only advance the deterministic id/seed/port
    counters — so partial builds agree with each other and with the
    monolithic build.
    """

    def __init__(self, env: Environment, link: LinkParams = PCI_XD,
                 host: Optional[HostParams] = None,
                 fabric: FabricParams = DEFAULT_FABRIC,
                 flow: Optional[FlowParams] = DEFAULT_FLOW,
                 name: str = "fab", hub=None, shard_id: int = 0,
                 assignment: Optional[dict[str, int]] = None):
        self.env = env
        self.link_params = link
        self.host_params = host or HostParams(nic=NicParams(link=link))
        self.params = fabric
        self.flow_params = flow
        self.name = name
        self.hub = hub
        self.shard_id = shard_id
        self.assignment = assignment
        #: Locally instantiated machines / switches.
        self.nodes: list[Node] = []
        self.switches: dict[str, Switch] = {}
        #: node id -> edge-switch name, shared by reference with every
        #: local switch (global: covers remote hosts too).
        self.locator: dict[int, str] = {}
        #: switch name -> group tag (pod number; cores use ``-1``).
        self.group_of: dict[str, int] = {}
        self._switch_names: list[str] = []  # global, creation order
        self._adj: dict[str, list[tuple[int, str]]] = {}  # name -> [(port, peer)]
        self._ports: dict[str, itertools.count] = {}
        self._node_name: dict[int, str] = {}  # global id -> host name
        self._host_prop: dict[int, int] = {}  # id -> uplink propagation
        self._trunk_topo: list[TopoLink] = []
        self._peer_sw: dict[Link, tuple[str, str]] = {}
        self.trunk_links: dict[str, Link] = {}  # locally built trunks
        self._next_id = 0
        self.flownet: Optional[FlowNetwork] = None
        self._finalized = False

    # -- construction ------------------------------------------------------

    def _local(self, sw_name: str) -> bool:
        return (self.assignment is None
                or self.assignment.get(sw_name, self.shard_id) == self.shard_id)

    def add_switch(self, sw_name: str, group: int = -1) -> Optional[Switch]:
        """Declare a switch; instantiate it when local to this shard.

        The ECMP seed mixes the fabric seed with the global creation
        index, so parallel stages hash independently (no polarization).
        """
        if sw_name in self._adj:
            raise NetworkError(f"switch {sw_name!r} declared twice")
        idx = len(self._switch_names)
        self._switch_names.append(sw_name)
        self._adj[sw_name] = []
        self._ports[sw_name] = itertools.count()
        self.group_of[sw_name] = group
        if not self._local(sw_name):
            return None
        sw = Switch(
            self.env, self.link_params,
            crossing_ns=self.params.crossing_ns,
            name=sw_name,
            routing=self.params.routing,
            ecmp_seed=ecmp_hash(idx, 0, 0, 0, self.params.ecmp_seed),
            egress_buffer_bytes=self.params.egress_buffer_bytes,
        )
        self.switches[sw_name] = sw
        return sw

    def add_hosts(self, sw_name: str, n: int,
                  name_prefix: Optional[str] = None) -> list[int]:
        """Hang ``n`` hosts off a declared switch; returns their ids.

        Ids are allocated from the global counter whether or not the
        switch is local; only local hosts get :class:`Node` objects.
        """
        prefix = name_prefix if name_prefix is not None else f"{self.name}.h"
        first = self._next_id
        self._next_id += n
        ids = list(range(first, first + n))
        for node_id in ids:
            self.locator[node_id] = sw_name
            self._node_name[node_id] = f"{prefix}{node_id}"
            self._host_prop[node_id] = self.link_params.propagation_ns
        if self._local(sw_name):
            nodes, _sw = star(self.env, n, link=self.link_params,
                              host=self.host_params, name_prefix=prefix,
                              base_id=first, switch=self.switches[sw_name])
            self.nodes.extend(nodes)
        return ids

    def add_trunk(self, a: str, b: str,
                  propagation_ns: Optional[int] = None) -> None:
        """Cable two declared switches together.

        Propagation defaults by locality: switches sharing a group tag
        get ``intra_propagation_ns``, others the fat
        ``inter_propagation_ns`` (the sharded lookahead window).
        """
        for sw_name in (a, b):
            if sw_name not in self._adj:
                raise NetworkError(f"trunk references unknown switch {sw_name!r}")
        if propagation_ns is None:
            same = (self.group_of[a] == self.group_of[b]
                    and self.group_of[a] >= 0)
            propagation_ns = (self.params.intra_propagation_ns if same
                              else self.params.inter_propagation_ns)
        pa = next(self._ports[a])
        pb = next(self._ports[b])
        tname = f"{self.name}.t.{a}:{pa}-{b}:{pb}"
        self._adj[a].append((pa, b))
        self._adj[b].append((pb, a))
        self._trunk_topo.append(TopoLink(tname, a, b, propagation_ns))
        la, lb = self._local(a), self._local(b)
        if not la and not lb:
            return
        params = trunk_params(self.link_params, propagation_ns)
        if la and lb:
            link = Link(self.env, params, name=tname)
        else:
            if self.hub is None:
                raise NetworkError(
                    f"trunk {tname!r} crosses the shard cut but the fabric "
                    "has no border hub")
            link = self.hub.border_link(tname, params,
                                        local_end="a" if la else "b")
        if la:
            self.switches[a].attach_trunk(pa, link, "a")
        if lb:
            self.switches[b].attach_trunk(pb, link, "b")
        self._peer_sw[link] = (a, b)
        self.trunk_links[tname] = link

    def finalize(self) -> None:
        """Compute routing tables, install them, and (on a monolithic
        build) wire the analytic flow engine into every NIC."""
        if self._finalized:
            raise NetworkError(f"fabric {self.name!r} finalized twice")
        self._finalized = True
        routes = self._routes()
        for sw_name, sw in self.switches.items():
            # Each switch gets a private top-level dict so a cached
            # routes value can never be mutated through a switch.
            sw.set_topology(self.locator, dict(routes[sw_name]))
        if (self.flow_params is not None and self.assignment is None
                and self.hub is None):
            self.flownet = FlowNetwork(self.env, self.flow_params,
                                       path_fn=self._flow_path,
                                       name=self.name)
            for node in self.nodes:
                node.nic.flownet = self.flownet

    def _route_signature(self):
        """Structural identity of the routing problem: switch creation
        order, full adjacency, host placement, and which switches are
        local (partial builds route only their own subset)."""
        return (
            tuple(self._switch_names),
            tuple((sw, tuple(self._adj[sw])) for sw in self._switch_names),
            tuple(sorted(self.locator.items())),
            tuple(sorted(self.switches)),
        )

    def _routes(self) -> dict[str, dict[str, tuple[int, ...]]]:
        """Shortest-path tables for every local switch, memoized by
        :func:`_route_signature` across fabric builds in this process."""
        sig = self._route_signature()
        cached = _ROUTE_CACHE.get(sig)
        if cached is not None:
            _ROUTE_CACHE_STATS["hits"] += 1
            return cached
        _ROUTE_CACHE_STATS["misses"] += 1
        targets = sorted(set(self.locator.values()))
        routes: dict[str, dict[str, tuple[int, ...]]] = {
            s: {} for s in self.switches
        }
        for target in targets:
            dist = self._bfs(target)
            for sw_name in self.switches:
                if sw_name == target:
                    continue
                d = dist.get(sw_name)
                if d is None:
                    raise NetworkError(
                        f"switch {sw_name!r} cannot reach {target!r}")
                cands = tuple(sorted(
                    port for port, peer in self._adj[sw_name]
                    if dist.get(peer) == d - 1))
                if not cands:  # pragma: no cover - BFS guarantees one
                    raise NetworkError(
                        f"no shortest-path port from {sw_name!r} to {target!r}")
                routes[sw_name][target] = cands
        _ROUTE_CACHE[sig] = routes
        return routes

    def _bfs(self, target: str) -> dict[str, int]:
        dist = {target: 0}
        frontier = [target]
        while frontier:
            nxt = []
            for sw_name in frontier:
                d = dist[sw_name] + 1
                for _port, peer in self._adj[sw_name]:
                    if peer not in dist:
                        dist[peer] = d
                        nxt.append(peer)
            frontier = nxt
        return dist

    # -- flow-engine integration -------------------------------------------

    def _flow_path(self, src_nic: int, src_port: int, dst_nic: int,
                   dst_port: int):
        """Freeze the ECMP path a (src, dst) addressing tuple will take:
        ``[(link, from_end, switch-or-None), ...]`` from the source host
        uplink to the destination host port, or ``None`` when no stable
        path exists (adaptive routing, unknown destination)."""
        sw_name = self.locator.get(src_nic)
        if sw_name is None or dst_nic not in self.locator:
            return None
        sw = self.switches.get(sw_name)
        if sw is None:
            return None
        uplink = sw._links.get(src_nic)
        if uplink is None:
            return None
        hops = [(uplink, "b", None)]  # the NIC holds end "b" (star())
        for _ in range(len(self._switch_names)):
            nxt = sw.peek_route(src_nic, src_port, dst_nic, dst_port)
            if nxt is None:
                return None
            link, end = nxt
            hops.append((link, end, sw))
            if link is sw._links.get(dst_nic):
                return hops
            a, b = self._peer_sw.get(link, (None, None))
            peer = b if a == sw.name else a
            if peer is None:
                return None
            sw = self.switches.get(peer)
            if sw is None:  # pragma: no cover - partial fabrics refuse above
                return None
        return None  # pragma: no cover - routing loop

    def path(self, src_nic: int, dst_nic: int, src_port: int = 0,
             dst_port: int = 0):
        """Public probe of the frozen ECMP path (tests, debugging)."""
        return self._flow_path(src_nic, src_port, dst_nic, dst_port)

    # -- partitioner integration -------------------------------------------

    def topolinks(self) -> list[TopoLink]:
        """The abstract wire graph: host uplinks plus trunks, with the
        entity names :func:`propose_partition` expects."""
        links = [
            TopoLink(f"{self.locator[nid]}.l{nid}", self._node_name[nid],
                     self.locator[nid], self._host_prop[nid])
            for nid in sorted(self.locator)
        ]
        links.extend(self._trunk_topo)
        return links

    def entities(self) -> list[str]:
        return [self._node_name[nid] for nid in sorted(self._node_name)] \
            + list(self._switch_names)

    def propose_pods(self, nshards: int) -> dict[str, int]:
        """Pod-grained shard assignment: only inter-group trunks (fat
        propagation = fat lookahead) are eligible cuts, so hosts stay
        with their edge switches and pods stay whole."""
        return propose_partition(
            self.entities(), self.topolinks(), nshards,
            min_cut_propagation_ns=self.params.inter_propagation_ns)


class _NowhereLocal(dict):
    """An assignment under which no element is ever local: ``get``
    returns a shard id that matches nothing, so builders walk the full
    declaration sequence without instantiating any hardware."""

    def get(self, key, default=None):
        return -1


def plan_fabric(builder, *args, **kwargs):
    """Build only the *abstract* topology of ``builder`` — no hosts,
    switches, links or flow engine are created.

    The returned :class:`Fabric` supports everything derived from the
    declaration sequence (:meth:`Fabric.propose_pods`,
    :meth:`Fabric.topolinks`, :meth:`Fabric.entities`, the locator), at
    planning cost instead of build cost: the sharded benchmark uses it
    to compute the pod assignment and the border list before any worker
    pays for a partial build."""
    return builder(Environment(), *args, shard_id=0,
                   assignment=_NowhereLocal(), **kwargs)


# -- builders --------------------------------------------------------------


def fat_tree(env: Environment, k: int, link: LinkParams = PCI_XD,
             host: Optional[HostParams] = None,
             fabric: FabricParams = DEFAULT_FABRIC,
             flow: Optional[FlowParams] = DEFAULT_FLOW,
             name: str = "ft", hub=None, shard_id: int = 0,
             assignment: Optional[dict[str, int]] = None) -> Fabric:
    """The k-ary fat-tree (Al-Fares et al.): ``k³/4`` hosts.

    ``k`` even: ``(k/2)²`` core switches, then per pod ``k/2``
    aggregation and ``k/2`` edge switches with ``k/2`` hosts per edge.
    Aggregation switch ``j`` of every pod uplinks to cores
    ``[j·k/2, (j+1)·k/2)``; every cross-pod host pair sees ``(k/2)²``
    equal-cost paths.  Host ids are dense from 0 in pod/edge order.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    f = Fabric(env, link=link, host=host, fabric=fabric, flow=flow,
               name=name, hub=hub, shard_id=shard_id, assignment=assignment)
    cores = [f"{name}.core{c}" for c in range(half * half)]
    for core in cores:
        f.add_switch(core, group=-1)
    for pod in range(k):
        edges = [f"{name}.p{pod}e{i}" for i in range(half)]
        aggs = [f"{name}.p{pod}a{j}" for j in range(half)]
        for sw_name in edges + aggs:
            f.add_switch(sw_name, group=pod)
        for edge in edges:
            f.add_hosts(edge, half)
        for edge in edges:
            for agg in aggs:
                f.add_trunk(edge, agg)
        for j, agg in enumerate(aggs):
            for c in range(j * half, (j + 1) * half):
                f.add_trunk(agg, cores[c])
    f.finalize()
    return f


def dragonfly(env: Environment, groups: int = 4, routers: int = 4,
              hosts: int = 2, link: LinkParams = PCI_XD,
              host: Optional[HostParams] = None,
              fabric: FabricParams = DEFAULT_FABRIC,
              flow: Optional[FlowParams] = DEFAULT_FLOW,
              name: str = "df", hub=None, shard_id: int = 0,
              assignment: Optional[dict[str, int]] = None) -> Fabric:
    """A dragonfly: ``groups`` all-to-all groups of ``routers`` routers
    (``hosts`` hosts each), one global link per group pair.

    Global link between groups ``a < b`` lands on router ``(b-1) mod R``
    in ``a`` and router ``a mod R`` in ``b`` (the palmtree layout), so
    global links spread evenly over routers.  Minimal routing emerges
    from BFS: local→global→local, at most three switch-to-switch hops.
    """
    if groups < 2 or routers < 1 or hosts < 1:
        raise ValueError(
            f"dragonfly needs >=2 groups, >=1 routers and hosts, got "
            f"{groups}/{routers}/{hosts}")
    f = Fabric(env, link=link, host=host, fabric=fabric, flow=flow,
               name=name, hub=hub, shard_id=shard_id, assignment=assignment)
    names = [[f"{name}.g{g}r{r}" for r in range(routers)]
             for g in range(groups)]
    for g in range(groups):
        for r in range(routers):
            f.add_switch(names[g][r], group=g)
        for r in range(routers):
            f.add_hosts(names[g][r], hosts)
        for r1 in range(routers):
            for r2 in range(r1 + 1, routers):
                f.add_trunk(names[g][r1], names[g][r2])
    for a in range(groups):
        for b in range(a + 1, groups):
            f.add_trunk(names[a][(b - 1) % routers], names[b][a % routers])
    f.finalize()
    return f
