"""Topology partitioning for the sharded engine.

A partition assigns every topology *entity* (node or switch) to a
shard.  The one hard rule: shards may only touch across a
:class:`~repro.hw.link.Link` with positive propagation delay and no
fault specification — the propagation delay is the conservative
lookahead of the border protocol (zero lookahead would force lock-step
execution), and a cut fault stream would interleave its LCG draws
differently than the sequential run (each direction of a cut link lives
in a different worker).

:func:`propose_partition` therefore *contracts* every uncuttable link
first (union-find), then distributes the resulting components over
shards greedily by size.  Every cut it proposes is sound by
construction; :func:`validate_partition` re-checks any assignment
independently (useful for hand-written partitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import PartitionError


@dataclass(frozen=True)
class TopoLink:
    """One wire of the abstract topology graph.

    ``a``/``b`` are entity ids (node names, switch names); latency and
    fault status are all the partitioner needs to know about the link.
    """

    name: str
    a: str
    b: str
    propagation_ns: int
    has_faults: bool = False

    @property
    def cuttable(self) -> bool:
        return self.propagation_ns > 0 and not self.has_faults


def cut_links(links: Iterable[TopoLink],
              assignment: dict[str, int]) -> list[TopoLink]:
    """Links whose endpoints land in different shards."""
    return [l for l in links if assignment[l.a] != assignment[l.b]]


def validate_partition(links: Iterable[TopoLink],
                       assignment: dict[str, int]) -> None:
    """Raise :class:`PartitionError` unless every cut is a sound border."""
    for link in links:
        sa = assignment.get(link.a)
        sb = assignment.get(link.b)
        if sa is None or sb is None:
            missing = link.a if sa is None else link.b
            raise PartitionError(
                f"entity {missing!r} of link {link.name!r} has no shard")
        if sa == sb:
            continue
        if link.propagation_ns <= 0:
            raise PartitionError(
                f"cut link {link.name!r} has zero propagation: "
                "no lookahead window across this border")
        if link.has_faults:
            raise PartitionError(
                f"cut link {link.name!r} carries a fault stream: "
                "its LCG draws would diverge across processes")


def propose_partition(entities: Sequence[str], links: Sequence[TopoLink],
                      nshards: int, *,
                      min_cut_propagation_ns: int = 0) -> dict[str, int]:
    """Assign entities to ``nshards`` shards, cutting only sound links.

    Uncuttable links are contracted so their endpoints stay co-shard;
    the resulting components are spread greedily (largest first, onto
    the currently lightest shard).  Deterministic: ties break on the
    lexicographically smallest member entity and the lowest shard id.
    Raises if fewer components than shards exist — the caller asked for
    more parallelism than the topology's sound cuts allow.

    ``min_cut_propagation_ns`` additionally contracts every link whose
    propagation is below the threshold, even if it would be a sound cut.
    The border protocol's sync cadence is set by the *smallest* cut-link
    propagation, so a multi-switch fabric wants its cuts confined to the
    fat inter-pod trunks: passing their propagation here keeps hosts
    glued to their edge switches and pods glued together, and every
    proposed cut then carries the full fat lookahead
    (:mod:`repro.cluster.topo` uses this for pod-grained sharding).
    """
    if nshards < 1:
        raise PartitionError(f"need at least one shard, got {nshards}")
    entities = list(entities)
    known = set(entities)
    if len(known) != len(entities):
        raise PartitionError("duplicate entity ids")
    parent = {e: e for e in entities}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for link in links:
        if link.a not in known or link.b not in known:
            missing = link.a if link.a not in known else link.b
            raise PartitionError(
                f"link {link.name!r} references unknown entity {missing!r}")
        if not link.cuttable or link.propagation_ns < min_cut_propagation_ns:
            ra, rb = find(link.a), find(link.b)
            if ra != rb:
                parent[ra] = rb

    groups: dict[str, list[str]] = {}
    for e in entities:
        groups.setdefault(find(e), []).append(e)
    components = sorted(groups.values(), key=lambda g: (-len(g), min(g)))
    if len(components) < nshards:
        raise PartitionError(
            f"topology has only {len(components)} separable component(s); "
            f"cannot fill {nshards} shards without cutting a zero-lookahead "
            "or faulted link")

    loads = [0] * nshards
    assignment: dict[str, int] = {}
    for component in components:
        shard = min(range(nshards), key=lambda s: (loads[s], s))
        loads[shard] += len(component)
        for e in component:
            assignment[e] = shard
    return assignment
