"""Cluster assembly: nodes and topologies.

A :class:`Node` is one complete machine — CPU, physical memory, kernel
(page cache, VFS, VMA SPY), and a Myrinet NIC.  :func:`node_pair` builds
the paper's two-node experimental platform; :func:`star` builds a
switch-centred cluster for multi-client scenarios.
"""

from .node import Node, node_pair, star
from .partition import (
    TopoLink,
    cut_links,
    propose_partition,
    validate_partition,
)

__all__ = [
    "Node",
    "TopoLink",
    "cut_links",
    "node_pair",
    "propose_partition",
    "star",
    "validate_partition",
]
