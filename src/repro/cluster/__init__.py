"""Cluster assembly: nodes and topologies.

A :class:`Node` is one complete machine — CPU, physical memory, kernel
(page cache, VFS, VMA SPY), and a Myrinet NIC.  :func:`node_pair` builds
the paper's two-node experimental platform; :func:`star` builds a
switch-centred cluster for multi-client scenarios.
"""

from .node import Node, node_pair, star

__all__ = ["Node", "node_pair", "star"]
