"""One cluster node and topology builders.

``node_pair`` reproduces the paper's platform: two 2.6 GHz dual-Xeon
nodes with 2 GB RAM and PCI-XD Myrinet cards back to back (section 3.1);
pass ``link=PCI_XE`` for the socket experiments of section 5.3.
"""

from __future__ import annotations

from ..hw.cpu import Cpu
from ..hw.link import Link
from ..hw.nic import Nic
from ..hw.params import HostParams, LinkParams, NicParams, PCI_XD
from ..hw.switch import Switch
from ..kernel.pagecache import PageCache
from ..kernel.vfs import Vfs
from ..kernel.vmaspy import VmaSpy
from ..mem.addrspace import AddressSpace
from ..mem.kmem import KernelSpace
from ..mem.phys import PhysicalMemory
from ..sim import Environment


class Node:
    """A complete cluster machine."""

    def __init__(self, env: Environment, node_id: int, params: HostParams,
                 name: str = ""):
        self.env = env
        self.node_id = node_id
        self.params = params
        self.name = name or f"node{node_id}"
        self.phys = PhysicalMemory(params.memory_frames)
        self.cpu = Cpu(env, params.cpu, capacity=params.cpu_cores,
                       name=f"{self.name}.cpu")
        self.kspace = KernelSpace(self.phys)
        self.pagecache = PageCache(self.phys, max_pages=params.memory_frames // 2,
                                   name=f"{self.name}.pagecache")
        self.vfs = Vfs(env, self.cpu, self.pagecache)
        self.vmaspy = VmaSpy(name=f"{self.name}.vmaspy")
        self.nic = Nic(env, params.nic, self.phys, node_id, name=f"{self.name}.nic")

    def new_process_space(self) -> AddressSpace:
        """Create the address space of a fresh user process on this node."""
        return AddressSpace(self.phys)


def node_pair(
    env: Environment,
    link: LinkParams = PCI_XD,
    host: HostParams | None = None,
) -> tuple[Node, Node]:
    """Two nodes joined by a direct link (the paper's platform)."""
    params = host or HostParams(nic=NicParams(link=link))
    a = Node(env, 0, params, name="nodeA")
    b = Node(env, 1, params, name="nodeB")
    wire = Link(env, link, name="wire")
    a.nic.attach_link(wire, "a")
    b.nic.attach_link(wire, "b")
    return a, b


def star(
    env: Environment,
    n_nodes: int,
    link: LinkParams = PCI_XD,
    host: HostParams | None = None,
    *,
    name_prefix: str = "node",
    switch_name: str = "switch",
    base_id: int = 0,
    switch: Switch | None = None,
) -> tuple[list[Node], Switch]:
    """``n_nodes`` nodes around one crossbar switch.

    ``name_prefix`` threads into node (and therefore NIC and metric)
    names as ``{name_prefix}{node_id}``; multi-switch topologies pass a
    per-group prefix so names stay unambiguous fabric-wide.  ``base_id``
    offsets the node ids (fabric builders assign globally unique ids),
    and ``switch`` lets a builder hang the nodes off an existing edge
    switch instead of creating a fresh one — :mod:`repro.cluster.topo`
    reuses this for every edge/router group it populates.  The defaults
    reproduce the classic single-switch star exactly.
    """
    if n_nodes < (1 if switch is not None else 2):
        raise ValueError(f"a star needs at least 2 nodes, got {n_nodes}")
    params = host or HostParams(nic=NicParams(link=link))
    if switch is None:
        switch = Switch(env, link, name=switch_name)
    nodes = []
    for i in range(n_nodes):
        node_id = base_id + i
        node = Node(env, node_id, params, name=f"{name_prefix}{node_id}")
        uplink, end = switch.add_node(node_id)
        node.nic.attach_link(uplink, end)
        nodes.append(node)
    return nodes, switch
