"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError`, so callers can
catch the whole stack with one except clause while tests can pin down
exactly which layer failed.  Error classes mirror the error conditions
of the systems they model (e.g. GM's ``GM_STATUS`` codes, POSIX errno
values in the VFS layer).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the repro package."""


# -- simulation engine -------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of or inconsistency inside the discrete-event engine."""


class ProcessInterrupt(SimulationError):
    """A process was interrupted while waiting; carries the cause."""

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ShardError(SimulationError):
    """Failure in the sharded (multi-process) simulation harness."""


class PartitionError(ShardError):
    """A proposed topology partition violates the lookahead rules."""


# -- memory subsystem --------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for memory-subsystem failures (frame/VA management)."""


class OutOfMemory(MemoryError_):
    """No free physical frame available."""


class BadAddress(MemoryError_):
    """Access to an unmapped or out-of-range virtual address (SIGSEGV)."""


class ProtectionFault(MemoryError_):
    """Access violating the VMA protection bits."""


class PinningError(MemoryError_):
    """Unbalanced pin/unpin or pinning an unmapped page."""


# -- NIC / network -----------------------------------------------------------


class NicError(ReproError):
    """Base class for NIC and firmware failures."""


class TranslationTableFull(NicError):
    """No free entry in the NIC translation table and nothing evictable."""


class TranslationMiss(NicError):
    """The NIC was asked to translate an address it has no entry for."""


class PortError(NicError):
    """Port/endpoint misuse: closed port, bad id, duplicate open."""


class NetworkError(ReproError):
    """Link or fabric level failure (down link, no route)."""


class TimeoutError_(ReproError):
    """An operation exceeded its deadline (simulated time, never wall
    clock).  Raised by timed waits on transports; upper layers retry or
    surface :class:`Eio`."""


class LinkDown(NetworkError):
    """The link carrier is gone and nothing masks it (no reliable
    delivery layer to retransmit around the outage)."""


class MessageDropped(NetworkError):
    """A message was lost and will not be recovered: either the fabric
    is unreliable, or the reliable-delivery layer exhausted its
    retransmission budget and declared the peer unreachable."""


class NodeCrashed(NetworkError):
    """The target (or local) node has crashed; its NIC accepts nothing."""


# -- GM / MX APIs ------------------------------------------------------------


class GMError(ReproError):
    """GM API error (models GM_STATUS != GM_SUCCESS)."""


class GMRegistrationError(GMError):
    """register/deregister misuse: double registration, unknown region."""


class GMSendQueueFull(GMError):
    """Too many pending send requests on a GM port (GM bounds these)."""


class MXError(ReproError):
    """MX API error (models mx_return_t != MX_SUCCESS)."""


class MXBadSegment(MXError):
    """A vectorial segment descriptor is malformed or of the wrong type."""


# -- kernel ------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for in-kernel subsystem failures."""


class FsError(KernelError):
    """File-system error carrying a POSIX-style errno name."""

    def __init__(self, errno_name: str, message: str = ""):
        super().__init__(f"[{errno_name}] {message}" if message else errno_name)
        self.errno_name = errno_name


class Enoent(FsError):
    """No such file or directory."""

    def __init__(self, message: str = ""):
        super().__init__("ENOENT", message)


class Eexist(FsError):
    """File already exists."""

    def __init__(self, message: str = ""):
        super().__init__("EEXIST", message)


class Eisdir(FsError):
    """Target is a directory."""

    def __init__(self, message: str = ""):
        super().__init__("EISDIR", message)


class Enotdir(FsError):
    """A path component is not a directory."""

    def __init__(self, message: str = ""):
        super().__init__("ENOTDIR", message)


class Enotempty(FsError):
    """Directory not empty."""

    def __init__(self, message: str = ""):
        super().__init__("ENOTEMPTY", message)


class Ebadf(FsError):
    """Bad file descriptor."""

    def __init__(self, message: str = ""):
        super().__init__("EBADF", message)


class Einval(FsError):
    """Invalid argument (e.g. misaligned O_DIRECT transfer)."""

    def __init__(self, message: str = ""):
        super().__init__("EINVAL", message)


class Eio(FsError):
    """I/O error: the storage/file client exhausted its retry budget
    (lost replies, crashed server) and surfaces the failure to the VFS
    instead of hanging forever.

    ``reason`` names which failure path fired so callers can choose a
    recovery: ``"timeout"`` (replies never came — the same server may
    still answer a retry), ``"dead_peer"`` (the fabric's reliability
    layer declared the peer unreachable — fail over, do not retry the
    same server) or ``"network"`` (other fabric errors).
    """

    def __init__(self, message: str = "", reason: str = ""):
        super().__init__("EIO", message)
        self.reason = reason


# -- protocol / sockets ------------------------------------------------------


class ProtocolError(ReproError):
    """Malformed or unexpected message in a wire protocol (ORFA, sockets)."""


class SocketError(ReproError):
    """Socket layer misuse: not connected, already closed."""
