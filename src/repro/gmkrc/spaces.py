"""Address-space descriptors in the high bits of 64-bit pointers.

Paper section 3.2: "Our shared port model prevents the network interface
card from knowing which address space a given virtual address belongs
to.  We solved this problem by recompiling the card firmware with 64
bits pointers on 32 bits host and by storing a descriptor of the address
space in the most significant bits.  This strategy is transparently
implemented inside GMKRC so that in-kernel users still pass normal 32
bits pointers to the GMKRC API."

On the 32-bit host every virtual address fits in the low 32 bits, so the
upper 32 carry the descriptor (the asid).  The encoding is what GMKRC
uses as translation-table key namespace; user code never sees it.
"""

from __future__ import annotations

from ..errors import GMError

_ADDR_BITS = 32
_ADDR_MASK = (1 << _ADDR_BITS) - 1
_MAX_ASID = (1 << 31) - 1  # descriptor must itself fit the upper word


def encode_key(asid: int, vaddr: int) -> int:
    """Pack (address-space descriptor, 32-bit virtual address) into a
    64-bit firmware pointer."""
    if not 0 < asid <= _MAX_ASID:
        raise GMError(f"asid {asid} out of descriptor range")
    if not 0 <= vaddr <= _ADDR_MASK:
        raise GMError(f"vaddr {vaddr:#x} does not fit a 32-bit host pointer")
    return (asid << _ADDR_BITS) | vaddr


def decode_key(key: int) -> tuple[int, int]:
    """Unpack a 64-bit firmware pointer into (asid, vaddr)."""
    if key < 0 or key >= 1 << 64:
        raise GMError(f"key {key:#x} is not a 64-bit value")
    return key >> _ADDR_BITS, key & _ADDR_MASK
