"""GMKRC: the GM Kernel Registration Cache (paper section 3.2).

A pin-down cache [Tezuka et al. 98] living in the kernel: registrations
are kept after use and deregistration is delayed until page pressure,
so re-used buffers skip the ~3 us/page registration and the ~200 us
deregistration entirely.  Coherence with the owning process's address
space is maintained by VMA SPY notifications (munmap/mprotect/fork
invalidate overlapping entries *before* the mapping changes).

Because one shared kernel GM port serves many processes, and "GM assumes
a port can only be used by a single process", GMKRC disambiguates
colliding virtual addresses by "recompiling the card firmware with 64
bits pointers on 32 bits host and storing a descriptor of the address
space in the most significant bits" — :mod:`repro.gmkrc.spaces`
implements exactly that encoding.
"""

from .cache import CacheEntry, Gmkrc
from .spaces import decode_key, encode_key

__all__ = ["CacheEntry", "Gmkrc", "decode_key", "encode_key"]
