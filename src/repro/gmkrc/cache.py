"""The pin-down cache over a shared kernel GM port.

Behaviour (paper sections 2.2.2 and 3.2):

* ``acquire(space, vaddr, length)`` returns the encoded key under which
  the range is registered on the port, registering on the flight on a
  miss.  Hits are (nearly) free; misses pay GM's full registration cost.
* Deregistration is **lazy**: entries persist after ``release`` and are
  only deregistered when the cached-page budget is exceeded (LRU among
  unreferenced entries) — "deregistration is delayed until it is really
  required (when no more pages can be registered)".
* VMA SPY keeps the cache coherent: munmap/mprotect/fork/exit of a
  watched space invalidates overlapping entries *before* the mapping
  changes, preventing the stale-translation corruption the paper warns
  about.
* ``enabled=False`` degrades the cache to register-per-acquire (still
  with lazy deregistration), the configuration behind the "20 % lower"
  ORFS measurement of section 3.2/figure 3(b).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..errors import GMError
from ..gm.api import GmPort
from ..kernel.vmaspy import VmaSpy
from ..mem.addrspace import AddressSpace, AddressSpaceChange, ChangeKind
from ..units import PAGE_MASK, page_align_up
from .spaces import encode_key

#: CPU cost of the cache lookup itself (hash + interval check).
_LOOKUP_NS = 300
#: Bookkeeping cost of tearing down an invalidated entry from a VMA SPY
#: callback (translation removal is piggybacked on the unmap).
_INVALIDATE_NS = 700


@dataclass
class CacheEntry:
    """One cached registration: a page-aligned range of one space."""

    space: AddressSpace
    base: int  # page aligned
    length: int  # page aligned
    key_base: int  # encoded 64-bit key of ``base``
    region: object  # the underlying GmRegion
    refcount: int = 0
    last_use: int = 0
    valid: bool = True
    ins_seq: int = 0  # installation order (lookup/eviction tie-break)

    @property
    def npages(self) -> int:
        return self.length >> 12

    def covers(self, vaddr: int, length: int) -> bool:
        return self.valid and self.base <= vaddr and vaddr + length <= self.base + self.length

    def overlaps(self, start: int, length: int) -> bool:
        return self.base < start + length and start < self.base + self.length


class _SpaceIndex:
    """Sorted interval index over one address space's cache entries.

    ``order`` holds ``(base, ins_seq)`` pairs kept sorted; ``by_key``
    maps the same pair to the entry.  A covering-range lookup bisects to
    the last entry whose base is ``<= vaddr`` and walks left; since
    bases decrease leftwards and no entry is longer than ``max_len``
    (a high-water mark), the walk stops as soon as even a maximal entry
    rooted there could no longer reach the end of the queried range —
    O(log n + candidates) instead of the old full-list scan.
    """

    __slots__ = ("order", "by_key", "max_len")

    def __init__(self):
        self.order: list[tuple[int, int]] = []
        self.by_key: dict[tuple[int, int], CacheEntry] = {}
        self.max_len = 0

    def add(self, entry: CacheEntry) -> None:
        key = (entry.base, entry.ins_seq)
        insort(self.order, key)
        self.by_key[key] = entry
        if entry.length > self.max_len:
            self.max_len = entry.length

    def remove(self, entry: CacheEntry) -> None:
        key = (entry.base, entry.ins_seq)
        del self.by_key[key]
        i = bisect_right(self.order, key) - 1
        assert self.order[i] == key
        self.order.pop(i)
        # max_len stays a high-water mark; shrinking it would need a
        # rescan and only costs lookup candidates, not correctness.

    def find_covering(self, vaddr: int, length: int) -> Optional[CacheEntry]:
        """First-*installed* valid entry covering ``[vaddr, vaddr+length)``
        (exactly what the old insertion-ordered scan returned)."""
        order = self.order
        end = vaddr + length
        floor = end - self.max_len  # leftmost base that could still cover
        i = bisect_right(order, (vaddr, float("inf"))) - 1
        best: Optional[CacheEntry] = None
        while i >= 0:
            key = order[i]
            if key[0] < floor:
                break
            entry = self.by_key[key]
            if entry.covers(vaddr, length) and (best is None or entry.ins_seq < best.ins_seq):
                best = entry
            i -= 1
        return best

    def entries_in_ins_order(self) -> list[CacheEntry]:
        return sorted(self.by_key.values(), key=lambda e: e.ins_seq)


class Gmkrc:
    """Registration cache bound to one GM port.

    Normally a shared *kernel* port (GMKRC proper); the same mechanism
    also serves the user-space ORFA client's registration cache, where
    the "VMA SPY" role is played by the shared library intercepting the
    application's address-space calls (paper section 3.1).
    """

    def __init__(
        self,
        port: GmPort,
        vmaspy: VmaSpy,
        max_cached_pages: int = 2048,
        enabled: bool = True,
        coherent: bool = True,
    ):
        """``coherent=False`` disables the VMA SPY subscription — the
        broken configuration the paper warns about (section 2.2.2): the
        cache keeps serving translations that munmap/fork invalidated,
        and transfers silently hit the *old* physical pages.  Exists for
        failure-injection tests and the pitfalls example; never use it
        for anything else."""
        self.port = port
        self.vmaspy = vmaspy
        self.max_cached_pages = max_cached_pages
        self.enabled = enabled
        self.coherent = coherent
        self.env = port.env
        self.cpu = port.cpu
        self._spaces: dict[int, _SpaceIndex] = {}  # asid -> interval index
        # Entries in last_use order, oldest first (touches are monotonic
        # in simulated time, so moving a touched entry to the end keeps
        # the dict sorted); keyed by installation sequence.
        self._lru: "OrderedDict[int, CacheEntry]" = OrderedDict()
        self._ins_seq = 0
        self._cached_pages = 0
        self._watched: dict[int, object] = {}  # asid -> vmaspy watch handle
        # Cache accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        _labels = dict(node=port.node.node_id, port=port.port_id)
        self._m_hits = obs.counter("gmkrc.hits", **_labels)
        self._m_misses = obs.counter("gmkrc.misses", **_labels)
        self._m_inval = obs.counter("gmkrc.invalidations", **_labels)
        self._m_lazy = obs.counter("gmkrc.lazy_deregistrations", **_labels)

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def invalidations(self) -> int:
        return self._m_inval.value

    @property
    def lazy_deregistrations(self) -> int:
        return self._m_lazy.value

    # -- the public API (paper: "in-kernel users still pass normal 32 bits
    # pointers to the GMKRC API") -------------------------------------------------

    def acquire(self, space: AddressSpace, vaddr: int, length: int):
        """Generator: ensure [vaddr, vaddr+length) of ``space`` is
        registered; returns (encoded key vaddr, CacheEntry).

        The returned key is what the caller passes to the shared port's
        ``send_registered``/``provide_receive_buffer_registered``.
        """
        if length <= 0:
            raise GMError("acquire of empty range")
        yield from self.cpu.work(_LOOKUP_NS)
        entry = self._find(space, vaddr, length)
        if entry is not None:
            if self.enabled:
                self._m_hits.inc()
            else:
                # Cache disabled: the range gets registered again on
                # every access.  The translations and pins are already in
                # place, so only the registration *cost* recurs — this is
                # the "without any cache hit" regime behind the 20 %
                # slowdown of figure 3(b).
                self._m_misses.inc()
                base = vaddr & ~PAGE_MASK
                npages = (page_align_up(vaddr + length) - base) >> 12
                yield from self.cpu.pin_pages(npages)
                yield from self.cpu.work(
                    self.port.domain.register_cost_ns(npages)
                )
            entry.refcount += 1
            self._touch(entry)
            return encode_key(space.asid, vaddr), entry
        self._m_misses.inc()
        entry = yield from self._install(space, vaddr, length)
        entry.refcount += 1
        return encode_key(space.asid, vaddr), entry

    def release(self, entry: CacheEntry) -> None:
        """Drop a use reference; the registration stays cached."""
        if entry.refcount <= 0:
            raise GMError("unbalanced GMKRC release")
        entry.refcount -= 1
        self._touch(entry)

    # -- internals --------------------------------------------------------------------

    def _touch(self, entry: CacheEntry) -> None:
        entry.last_use = self.env.now
        self._lru.move_to_end(entry.ins_seq)

    def _find(self, space: AddressSpace, vaddr: int, length: int
              ) -> Optional[CacheEntry]:
        index = self._spaces.get(space.asid)
        if index is None:
            return None
        return index.find_covering(vaddr, length)

    def _drop(self, entry: CacheEntry) -> None:
        entry.valid = False
        self._spaces[entry.space.asid].remove(entry)
        del self._lru[entry.ins_seq]
        self._cached_pages -= entry.npages

    def _install(self, space: AddressSpace, vaddr: int, length: int):
        base = vaddr & ~PAGE_MASK
        aligned_len = page_align_up(vaddr + length) - base
        yield from self._make_room(aligned_len >> 12)
        key_base = encode_key(space.asid, base)
        region = yield from self.port.domain.register_user(
            space, base, aligned_len, key_vaddr=key_base
        )
        self._ins_seq += 1
        entry = CacheEntry(
            space=space,
            base=base,
            length=aligned_len,
            key_base=key_base,
            region=region,
            last_use=self.env.now,
            ins_seq=self._ins_seq,
        )
        index = self._spaces.get(space.asid)
        if index is None:
            index = self._spaces[space.asid] = _SpaceIndex()
        index.add(entry)
        self._lru[entry.ins_seq] = entry
        self._cached_pages += entry.npages
        self._ensure_watch(space)
        return entry

    def _pick_victim(self) -> Optional[CacheEntry]:
        """Oldest unreferenced entry; among equal ``last_use``, the
        earliest-installed one (the old scan's ``min`` tie-break)."""
        best: Optional[CacheEntry] = None
        for entry in self._lru.values():
            if best is not None and entry.last_use != best.last_use:
                break  # LRU order: later entries can only be newer
            if entry.refcount == 0 and (best is None or entry.ins_seq < best.ins_seq):
                best = entry
        return best

    def _make_room(self, need_pages: int):
        """Lazily deregister LRU unreferenced entries until the new
        registration fits the page budget."""
        while self._cached_pages + need_pages > self.max_cached_pages:
            victim = self._pick_victim()
            if victim is None:
                raise GMError(
                    "GMKRC budget exceeded and every entry is in use"
                )
            # This is where the deferred ~200 us deregistration bill
            # finally comes due.
            yield from self.port.domain.deregister(victim.region)
            self._drop(victim)
            self._m_lazy.inc()

    # -- VMA SPY coherence -----------------------------------------------------------

    def _ensure_watch(self, space: AddressSpace) -> None:
        if not self.coherent or space.asid in self._watched:
            return
        handle = self.vmaspy.watch(space, self._on_change)
        self._watched[space.asid] = handle

    def _on_change(self, change: AddressSpaceChange) -> None:
        """Invalidate cached registrations made stale by the change.

        Runs synchronously *before* the address space mutates (the VMA
        SPY contract), so translations are still resolvable.  FORK and
        EXIT flush every entry of the space; UNMAP/PROTECT only the
        overlapping ones.
        """
        space = change.space
        index = self._spaces.get(space.asid)
        if index is None:
            doomed: list[CacheEntry] = []
        elif change.kind in (ChangeKind.FORK, ChangeKind.EXIT):
            doomed = index.entries_in_ins_order()
        else:
            doomed = [
                e
                for e in index.entries_in_ins_order()
                if e.overlaps(change.start, change.length)
            ]
        for entry in doomed:
            self.port.domain.remove_silently(entry.region)
            self._drop(entry)
            self._m_inval.inc()
        if change.kind is ChangeKind.EXIT:
            handle = self._watched.pop(space.asid, None)
            if handle is not None:
                self.vmaspy.unwatch(handle)

    # -- introspection ------------------------------------------------------------------

    def cached_pages(self) -> int:
        return self._cached_pages

    def entry_count(self) -> int:
        return len(self._lru)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
