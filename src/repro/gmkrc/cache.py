"""The pin-down cache over a shared kernel GM port.

Behaviour (paper sections 2.2.2 and 3.2):

* ``acquire(space, vaddr, length)`` returns the encoded key under which
  the range is registered on the port, registering on the flight on a
  miss.  Hits are (nearly) free; misses pay GM's full registration cost.
* Deregistration is **lazy**: entries persist after ``release`` and are
  only deregistered when the cached-page budget is exceeded (LRU among
  unreferenced entries) — "deregistration is delayed until it is really
  required (when no more pages can be registered)".
* VMA SPY keeps the cache coherent: munmap/mprotect/fork/exit of a
  watched space invalidates overlapping entries *before* the mapping
  changes, preventing the stale-translation corruption the paper warns
  about.
* ``enabled=False`` degrades the cache to register-per-acquire (still
  with lazy deregistration), the configuration behind the "20 % lower"
  ORFS measurement of section 3.2/figure 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..errors import GMError
from ..gm.api import GmPort
from ..kernel.vmaspy import VmaSpy
from ..mem.addrspace import AddressSpace, AddressSpaceChange, ChangeKind
from ..units import PAGE_MASK, page_align_up
from .spaces import encode_key

#: CPU cost of the cache lookup itself (hash + interval check).
_LOOKUP_NS = 300
#: Bookkeeping cost of tearing down an invalidated entry from a VMA SPY
#: callback (translation removal is piggybacked on the unmap).
_INVALIDATE_NS = 700


@dataclass
class CacheEntry:
    """One cached registration: a page-aligned range of one space."""

    space: AddressSpace
    base: int  # page aligned
    length: int  # page aligned
    key_base: int  # encoded 64-bit key of ``base``
    region: object  # the underlying GmRegion
    refcount: int = 0
    last_use: int = 0
    valid: bool = True

    @property
    def npages(self) -> int:
        return self.length >> 12

    def covers(self, vaddr: int, length: int) -> bool:
        return self.valid and self.base <= vaddr and vaddr + length <= self.base + self.length

    def overlaps(self, start: int, length: int) -> bool:
        return self.base < start + length and start < self.base + self.length


class Gmkrc:
    """Registration cache bound to one GM port.

    Normally a shared *kernel* port (GMKRC proper); the same mechanism
    also serves the user-space ORFA client's registration cache, where
    the "VMA SPY" role is played by the shared library intercepting the
    application's address-space calls (paper section 3.1).
    """

    def __init__(
        self,
        port: GmPort,
        vmaspy: VmaSpy,
        max_cached_pages: int = 2048,
        enabled: bool = True,
        coherent: bool = True,
    ):
        """``coherent=False`` disables the VMA SPY subscription — the
        broken configuration the paper warns about (section 2.2.2): the
        cache keeps serving translations that munmap/fork invalidated,
        and transfers silently hit the *old* physical pages.  Exists for
        failure-injection tests and the pitfalls example; never use it
        for anything else."""
        self.port = port
        self.vmaspy = vmaspy
        self.max_cached_pages = max_cached_pages
        self.enabled = enabled
        self.coherent = coherent
        self.env = port.env
        self.cpu = port.cpu
        self._entries: list[CacheEntry] = []
        self._watched: dict[int, object] = {}  # asid -> vmaspy watch handle
        # Cache accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        _labels = dict(node=port.node.node_id, port=port.port_id)
        self._m_hits = obs.counter("gmkrc.hits", **_labels)
        self._m_misses = obs.counter("gmkrc.misses", **_labels)
        self._m_inval = obs.counter("gmkrc.invalidations", **_labels)
        self._m_lazy = obs.counter("gmkrc.lazy_deregistrations", **_labels)

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def invalidations(self) -> int:
        return self._m_inval.value

    @property
    def lazy_deregistrations(self) -> int:
        return self._m_lazy.value

    # -- the public API (paper: "in-kernel users still pass normal 32 bits
    # pointers to the GMKRC API") -------------------------------------------------

    def acquire(self, space: AddressSpace, vaddr: int, length: int):
        """Generator: ensure [vaddr, vaddr+length) of ``space`` is
        registered; returns (encoded key vaddr, CacheEntry).

        The returned key is what the caller passes to the shared port's
        ``send_registered``/``provide_receive_buffer_registered``.
        """
        if length <= 0:
            raise GMError("acquire of empty range")
        yield from self.cpu.work(_LOOKUP_NS)
        entry = self._find(space, vaddr, length)
        if entry is not None:
            if self.enabled:
                self._m_hits.inc()
            else:
                # Cache disabled: the range gets registered again on
                # every access.  The translations and pins are already in
                # place, so only the registration *cost* recurs — this is
                # the "without any cache hit" regime behind the 20 %
                # slowdown of figure 3(b).
                self._m_misses.inc()
                base = vaddr & ~PAGE_MASK
                npages = (page_align_up(vaddr + length) - base) >> 12
                yield from self.cpu.pin_pages(npages)
                yield from self.cpu.work(
                    self.port.domain.register_cost_ns(npages)
                )
            entry.refcount += 1
            entry.last_use = self.env.now
            return encode_key(space.asid, vaddr), entry
        self._m_misses.inc()
        entry = yield from self._install(space, vaddr, length)
        entry.refcount += 1
        return encode_key(space.asid, vaddr), entry

    def release(self, entry: CacheEntry) -> None:
        """Drop a use reference; the registration stays cached."""
        if entry.refcount <= 0:
            raise GMError("unbalanced GMKRC release")
        entry.refcount -= 1
        entry.last_use = self.env.now

    # -- internals --------------------------------------------------------------------

    def _find(self, space: AddressSpace, vaddr: int, length: int
              ) -> Optional[CacheEntry]:
        for entry in self._entries:
            if entry.space.asid == space.asid and entry.covers(vaddr, length):
                return entry
        return None

    def _install(self, space: AddressSpace, vaddr: int, length: int):
        base = vaddr & ~PAGE_MASK
        aligned_len = page_align_up(vaddr + length) - base
        yield from self._make_room(aligned_len >> 12)
        key_base = encode_key(space.asid, base)
        region = yield from self.port.domain.register_user(
            space, base, aligned_len, key_vaddr=key_base
        )
        entry = CacheEntry(
            space=space,
            base=base,
            length=aligned_len,
            key_base=key_base,
            region=region,
            last_use=self.env.now,
        )
        self._entries.append(entry)
        self._ensure_watch(space)
        return entry

    def _make_room(self, need_pages: int):
        """Lazily deregister LRU unreferenced entries until the new
        registration fits the page budget."""
        while self.cached_pages() + need_pages > self.max_cached_pages:
            victims = [e for e in self._entries if e.refcount == 0]
            if not victims:
                raise GMError(
                    "GMKRC budget exceeded and every entry is in use"
                )
            victim = min(victims, key=lambda e: e.last_use)
            # This is where the deferred ~200 us deregistration bill
            # finally comes due.
            yield from self.port.domain.deregister(victim.region)
            victim.valid = False
            self._entries.remove(victim)
            self._m_lazy.inc()

    # -- VMA SPY coherence -----------------------------------------------------------

    def _ensure_watch(self, space: AddressSpace) -> None:
        if not self.coherent or space.asid in self._watched:
            return
        handle = self.vmaspy.watch(space, self._on_change)
        self._watched[space.asid] = handle

    def _on_change(self, change: AddressSpaceChange) -> None:
        """Invalidate cached registrations made stale by the change.

        Runs synchronously *before* the address space mutates (the VMA
        SPY contract), so translations are still resolvable.  FORK and
        EXIT flush every entry of the space; UNMAP/PROTECT only the
        overlapping ones.
        """
        space = change.space
        if change.kind in (ChangeKind.FORK, ChangeKind.EXIT):
            doomed = [e for e in self._entries if e.space.asid == space.asid]
        else:
            doomed = [
                e
                for e in self._entries
                if e.space.asid == space.asid and e.overlaps(change.start, change.length)
            ]
        for entry in doomed:
            self.port.domain.remove_silently(entry.region)
            entry.valid = False
            self._entries.remove(entry)
            self._m_inval.inc()
        if change.kind is ChangeKind.EXIT:
            handle = self._watched.pop(space.asid, None)
            if handle is not None:
                self.vmaspy.unwatch(handle)

    # -- introspection ------------------------------------------------------------------

    def cached_pages(self) -> int:
        return sum(e.npages for e in self._entries)

    def entry_count(self) -> int:
        return len(self._entries)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
