"""repro.load — deterministic open-loop workload generation.

Seeded arrival processes (:mod:`~repro.load.arrivals`: Poisson and
self-similar Pareto-on/off), weighted op mixes
(:mod:`~repro.load.mix`), the open-/closed-loop driver
(:mod:`~repro.load.driver`) and the per-stack workload adapters
(:mod:`~repro.load.workloads`: ORFA file ops, NBD block traffic,
sockets request-response over MX/GM/TCP).

The determinism contract: a schedule is a pure function of
``(arrival process, mix, seed)`` — every generator owns string-seeded
RNGs, so co-resident generators never perturb each other and the same
spec replays byte-identically in any process.
"""

from .arrivals import (ArrivalProcess, LoadSpecError, ParetoOnOffArrivals,
                       PoissonArrivals, make_arrivals)
from .driver import (LATENCY_BOUNDS, LoadGen, LoadResult, ScheduledOp,
                     jain_fairness, run_load)
from .mix import MIXES, OpChoice, OpMix, make_mix
from .workloads import (MAX_OP_BYTES, NbdWorkload, OrfaWorkload, RrWorkload,
                        make_workload)

__all__ = [
    "ArrivalProcess",
    "LATENCY_BOUNDS",
    "LoadGen",
    "LoadResult",
    "LoadSpecError",
    "MAX_OP_BYTES",
    "MIXES",
    "NbdWorkload",
    "OpChoice",
    "OpMix",
    "OrfaWorkload",
    "ParetoOnOffArrivals",
    "PoissonArrivals",
    "RrWorkload",
    "ScheduledOp",
    "jain_fairness",
    "make_arrivals",
    "make_mix",
    "make_workload",
    "run_load",
]
