"""The load driver: runs a drawn schedule against a workload adapter.

Open-loop mode (the default) replays an absolute arrival schedule: a
dispatcher process releases each request at its drawn time into the
issuing client's FIFO queue, and each client executes its queue
*sequentially* (one in-flight op per client — both what the GM-side
protocol objects require and what makes queueing delay visible).  Per-op
latency is measured from the *scheduled arrival* to completion, so once
the offered rate exceeds the service rate, queue wait dominates and the
tail explodes — the saturation knee.

Closed-loop mode is the fallback for calibration: each client issues its
next op as soon as the previous completes (plus a think time), latency
is pure service time, and the system can never be pushed past
saturation.

Everything is recorded twice: into the ambient :mod:`repro.obs`
registry (histogram ``load.op_latency_ns`` on a wide 1-2-5 ladder,
counters ``load.ops`` / ``load.failures``) and into the returned
:class:`LoadResult` (offered vs achieved rate, p50/p95/p99 via the
histogram's documented upper-bound :meth:`~repro.obs.registry.Histogram.
quantile`, and Jain's fairness index over per-client completions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..errors import Eio, NetworkError, SocketError
from ..sim import Environment, Store
from .arrivals import ArrivalProcess, LoadSpecError
from .mix import OpMix

#: Latency bucket ladder: 1-2-5 steps from 1 us to 50 s.  Wide enough
#: that a saturated open-loop run never overflows (overflow would turn
#: p99 into inf and break the results table).
LATENCY_BOUNDS = tuple(m * 10 ** e for e in range(3, 11) for m in (1, 2, 5))


@dataclass(frozen=True)
class ScheduledOp:
    """One drawn request: when it arrives, who issues it, what it does."""

    index: int
    at_ns: int
    client: int
    op: str
    size: int


class LoadGen:
    """A deterministic (arrivals, mix, seed) -> schedule generator.

    The schedule is a pure function of the constructor arguments: the
    arrival process and the mix each own a string-seeded RNG, so two
    generators never perturb each other no matter how their draws
    interleave, and re-drawing the same generator is byte-identical.
    Requests are dealt round-robin over ``n_clients`` issuing clients.
    """

    def __init__(self, arrivals: ArrivalProcess, mix: OpMix, seed: int,
                 n_ops: int, n_clients: int):
        if n_ops <= 0 or n_clients <= 0:
            raise LoadSpecError(
                f"need n_ops > 0 and n_clients > 0, got {n_ops}/{n_clients}")
        self.arrivals = arrivals
        self.mix = mix
        self.seed = seed
        self.n_ops = n_ops
        self.n_clients = n_clients

    def schedule(self) -> list[ScheduledOp]:
        times = self.arrivals.times(self.n_ops)
        ops = self.mix.sequence(self.seed, self.n_ops)
        return [
            ScheduledOp(index=i, at_ns=t, client=i % self.n_clients,
                        op=c.op, size=c.size)
            for i, (t, c) in enumerate(zip(times, ops))
        ]


@dataclass
class LoadResult:
    """One load run, condensed to the numbers the fleet table carries."""

    workload: str
    mode: str
    n_clients: int
    offered_ops: int
    achieved_ops: int
    failed_ops: int
    elapsed_ns: int
    offered_rate_ops_s: float
    achieved_rate_ops_s: float
    per_client_ops: list = field(default_factory=list)
    fairness: float = 1.0
    mean_ns: float = 0.0
    p50_ns: float = 0.0
    p95_ns: float = 0.0
    p99_ns: float = 0.0

    #: The flat (column, value) view rendered into the results table.
    COLUMNS = ("workload", "mode", "n_clients", "offered_ops",
               "achieved_ops", "failed_ops", "elapsed_ns",
               "offered_rate_ops_s", "achieved_rate_ops_s", "fairness",
               "mean_ns", "p50_ns", "p95_ns", "p99_ns")

    def row(self) -> dict:
        return {c: getattr(self, c) for c in self.COLUMNS}


def jain_fairness(shares) -> float:
    """Jain's index over per-client completions: 1.0 is perfectly fair,
    1/n is one client taking everything.  Empty/all-zero => 1.0."""
    xs = [float(x) for x in shares]
    total_sq = sum(xs) ** 2
    denom = len(xs) * sum(x * x for x in xs)
    return 1.0 if denom == 0 else total_sq / denom


class _Recorder:
    """Shared per-run accounting: obs instruments + result tallies."""

    def __init__(self, workload_name: str, n_clients: int):
        self.hist = obs.histogram("load.op_latency_ns",
                                  buckets=LATENCY_BOUNDS,
                                  workload=workload_name)
        self.per_client = [0] * n_clients
        self.failed = 0
        self.total_latency = 0
        self.last_completion_ns = 0
        self.workload_name = workload_name

    def done(self, client: int, op: str, latency_ns: int, now: int) -> None:
        self.hist.observe(latency_ns)
        if obs.metrics_enabled():
            obs.counter("load.ops", workload=self.workload_name,
                        op=op, client=client).inc()
        self.per_client[client] += 1
        self.total_latency += latency_ns
        self.last_completion_ns = max(self.last_completion_ns, now)

    def fail(self, client: int, op: str) -> None:
        if obs.metrics_enabled():
            obs.counter("load.failures", workload=self.workload_name,
                        op=op, client=client).inc()
        self.failed += 1


#: Op failures the driver absorbs (counted, run continues): give-ups
#: from retry budgets and fault-plan-induced network errors.
_OP_ERRORS = (Eio, NetworkError, SocketError)


def _dispatch(env: Environment, sched, queues):
    """Open-loop release: each request enters its client's queue at its
    drawn absolute time, whatever the clients are doing."""
    for item in sched:
        dt = item.at_ns - env.now
        if dt > 0:
            yield env.timeout(dt)
        queues[item.client].put(item)


def _open_worker(env, workload, client, queue, n_items, rec: _Recorder):
    for _ in range(n_items):
        item = yield queue.get()
        try:
            yield from workload.op(client, item.op, item.size)
        except _OP_ERRORS:
            rec.fail(client, item.op)
            continue
        rec.done(client, item.op, env.now - item.at_ns, env.now)


def _closed_worker(env, workload, client, items, think_ns, rec: _Recorder):
    for item in items:
        t0 = env.now
        try:
            yield from workload.op(client, item.op, item.size)
        except _OP_ERRORS:
            rec.fail(client, item.op)
        else:
            rec.done(client, item.op, env.now - t0, env.now)
        if think_ns > 0:
            yield env.timeout(think_ns)


def run_load(env: Environment, workload, gen: LoadGen, mode: str = "open",
             think_ns: int = 0) -> LoadResult:
    """Run one generator against one workload on a live Environment.

    ``workload`` is an adapter from :mod:`repro.load.workloads` (already
    set up on ``env``); ``mode`` is ``"open"`` (replay the drawn arrival
    schedule) or ``"closed"`` (each client re-issues on completion with
    ``think_ns`` between ops).
    """
    if mode not in ("open", "closed"):
        raise LoadSpecError(f"mode must be 'open' or 'closed', got {mode!r}")
    sched = gen.schedule()
    rec = _Recorder(workload.name, gen.n_clients)
    t_start = env.now
    if mode == "open":
        queues = [Store(env, f"load.q{c}") for c in range(gen.n_clients)]
        counts = [0] * gen.n_clients
        for item in sched:
            counts[item.client] += 1
        env.process(_dispatch(env, sched, queues), name="load.dispatch")
        workers = [
            env.process(_open_worker(env, workload, c, queues[c],
                                     counts[c], rec),
                        name=f"load.client{c}")
            for c in range(gen.n_clients)
        ]
    else:
        by_client: list[list] = [[] for _ in range(gen.n_clients)]
        for item in sched:
            by_client[item.client].append(item)
        workers = [
            env.process(_closed_worker(env, workload, c, by_client[c],
                                       think_ns, rec),
                        name=f"load.client{c}")
            for c in range(gen.n_clients)
        ]
    env.run(until=env.all_of(workers))

    achieved = sum(rec.per_client)
    elapsed = max(1, (rec.last_completion_ns or env.now) - t_start)
    q = rec.hist.quantile

    def _q(p: float) -> float:
        v = q(p)
        return 0.0 if v is None else float(v)

    return LoadResult(
        workload=workload.name,
        mode=mode,
        n_clients=gen.n_clients,
        offered_ops=gen.n_ops,
        achieved_ops=achieved,
        failed_ops=rec.failed,
        elapsed_ns=elapsed,
        offered_rate_ops_s=float(gen.arrivals.rate_ops_per_s),
        achieved_rate_ops_s=achieved * 1e9 / elapsed,
        per_client_ops=list(rec.per_client),
        fairness=jain_fairness(rec.per_client),
        mean_ns=(rec.total_latency / achieved) if achieved else 0.0,
        p50_ns=_q(0.50),
        p95_ns=_q(0.95),
        p99_ns=_q(0.99),
    )
