"""Operation mixes: what each arriving request actually does.

A mix is a weighted set of ``(op, size)`` choices — e.g. 80 % 4 KiB
reads, 20 % 4 KiB writes — sampled by a seeded RNG that is private to
the mix, so the drawn op sequence is a pure function of ``(mix, seed)``
and never shifts when another generator shares the process.

The op vocabulary is interpreted by the workload adapters
(:mod:`repro.load.workloads`): ``read``/``write`` are data ops at the
drawn size, ``stat`` is a metadata round-trip (size ignored), ``rr`` is
one request-response exchange whose request is ``size`` bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..units import KiB
from .arrivals import LoadSpecError

OPS = ("read", "write", "stat", "rr")


@dataclass(frozen=True)
class OpChoice:
    op: str
    size: int
    weight: float

    def __post_init__(self):
        if self.op not in OPS:
            raise LoadSpecError(
                f"unknown op {self.op!r}; known: {', '.join(OPS)}")
        if self.size < 0 or self.weight <= 0:
            raise LoadSpecError(
                f"op choice needs size >= 0 and weight > 0, got {self}")


class OpMix:
    """A named, weighted op distribution with deterministic sampling."""

    def __init__(self, name: str, choices: list[OpChoice]):
        if not choices:
            raise LoadSpecError("an op mix needs at least one choice")
        self.name = name
        self.choices = tuple(choices)
        self._weights = [c.weight for c in self.choices]

    def sequence(self, seed: int, n: int) -> list[OpChoice]:
        """The first ``n`` drawn ops for ``seed`` — a pure function."""
        rng = random.Random(f"repro.load.mix.{self.name}.{seed}")
        return rng.choices(self.choices, weights=self._weights, k=n)

    def __repr__(self) -> str:
        return f"OpMix({self.name!r}, {list(self.choices)!r})"


#: The stock mixes experiment specs refer to by name.
MIXES = {
    # Pure sequential-style 4 KiB reads: the paper's file-access shape.
    "read4k": OpMix("read4k", [OpChoice("read", 4 * KiB, 1.0)]),
    # 80/20 read/write at 4 KiB — a block-store OLTP-ish mix.
    "rw4k": OpMix("rw4k", [OpChoice("read", 4 * KiB, 4.0),
                           OpChoice("write", 4 * KiB, 1.0)]),
    # Large sequential reads (64 KiB) with occasional writes.
    "stream64k": OpMix("stream64k", [OpChoice("read", 64 * KiB, 7.0),
                                     OpChoice("write", 64 * KiB, 1.0)]),
    # Metadata-heavy: the ORFA weakness the paper measures (no dcache).
    "meta": OpMix("meta", [OpChoice("stat", 0, 3.0),
                           OpChoice("read", 4 * KiB, 1.0)]),
    # Request-response: 1 KiB requests (sockets latency workloads).
    "rr1k": OpMix("rr1k", [OpChoice("rr", KiB, 1.0)]),
}


def make_mix(spec) -> OpMix:
    """Resolve a mix spec: a stock name, or ``{"name": ..., "choices":
    [{"op": ..., "size": ..., "weight": ...}, ...]}``."""
    if isinstance(spec, str):
        mix = MIXES.get(spec)
        if mix is None:
            raise LoadSpecError(
                f"unknown mix {spec!r}; known: {', '.join(sorted(MIXES))}")
        return mix
    if isinstance(spec, dict) and "choices" in spec:
        choices = [OpChoice(c["op"], int(c["size"]), float(c["weight"]))
                   for c in spec["choices"]]
        return OpMix(spec.get("name", "custom"), choices)
    raise LoadSpecError(f"bad mix spec {spec!r}")
