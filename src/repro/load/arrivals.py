"""Deterministic open-loop arrival processes.

An open-loop generator decides *when* requests enter the system from a
pre-drawn schedule, independent of when earlier requests complete — the
discipline that actually exposes saturation: once the service rate falls
behind the offered rate, queues build and tail latency explodes, which a
closed-loop client (who politely waits for each reply) can never show
[Schroeder et al., NSDI'06].

Two processes, both yielding integer-nanosecond absolute arrival times
from a seeded :class:`random.Random` (string-seeded, so the stream is
independent of ``PYTHONHASHSEED`` and identical on every platform):

* :class:`PoissonArrivals` — exponential inter-arrivals at a fixed rate;
  the memoryless baseline.
* :class:`ParetoOnOffArrivals` — an on/off source with Pareto-distributed
  period lengths (shape ``alpha`` <= 2 gives infinite variance), the
  classic self-similar traffic construction [Willinger et al.,
  SIGCOMM'95]: during ON periods requests arrive at a peak rate scaled
  so the *long-run mean* equals the configured rate; OFF periods are
  silent.

Same ``(process, seed, rate)`` => byte-identical schedule, regardless of
what else shares the process or the simulation Environment — each
instance owns its RNG and never reads global randomness.
"""

from __future__ import annotations

import itertools
import random

from ..errors import ReproError


class LoadSpecError(ReproError):
    """A malformed workload/arrival specification."""


def _rng(kind: str, seed: int) -> random.Random:
    # String seeding hashes via SHA-512 inside random.seed(version=2):
    # stable across processes, platforms and PYTHONHASHSEED.
    return random.Random(f"repro.load.{kind}.{seed}")


class ArrivalProcess:
    """Base: a reproducible stream of absolute arrival times (ns)."""

    kind = "abstract"

    def __init__(self, seed: int, rate_ops_per_s: float):
        if rate_ops_per_s <= 0:
            raise LoadSpecError(
                f"offered rate must be positive, got {rate_ops_per_s}")
        self.seed = seed
        self.rate_ops_per_s = rate_ops_per_s

    def iter_times(self):
        """A fresh infinite iterator of absolute arrival times (int ns,
        strictly increasing).  Each call restarts the stream from the
        seed — two iterators from one process are identical."""
        raise NotImplementedError

    def times(self, n: int) -> list[int]:
        """The first ``n`` arrival times."""
        return list(itertools.islice(self.iter_times(), n))


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrivals at ``rate_ops_per_s``."""

    kind = "poisson"

    def iter_times(self):
        rng = _rng(self.kind, self.seed)
        rate_per_ns = self.rate_ops_per_s / 1e9
        t = 0
        while True:
            t += max(1, round(rng.expovariate(rate_per_ns)))
            yield t


class ParetoOnOffArrivals(ArrivalProcess):
    """Self-similar on/off arrivals with Pareto period lengths.

    ON and OFF period durations are drawn from Pareto distributions with
    shape ``alpha`` (1 < alpha <= 2: finite mean, infinite variance) and
    means ``on_mean_ns`` / ``off_mean_ns``.  Inside an ON period,
    arrivals are evenly spaced at the peak rate
    ``rate * (on_mean + off_mean) / on_mean`` so the long-run average
    matches the configured offered rate while the burst structure stays
    heavy-tailed at every timescale.
    """

    kind = "pareto_on_off"

    def __init__(self, seed: int, rate_ops_per_s: float,
                 alpha: float = 1.5, on_mean_ns: int = 2_000_000,
                 off_mean_ns: int = 2_000_000):
        super().__init__(seed, rate_ops_per_s)
        if not 1.0 < alpha:
            raise LoadSpecError(f"pareto shape must exceed 1, got {alpha}")
        if on_mean_ns <= 0 or off_mean_ns <= 0:
            raise LoadSpecError("on/off period means must be positive")
        self.alpha = alpha
        self.on_mean_ns = on_mean_ns
        self.off_mean_ns = off_mean_ns

    def _period(self, rng: random.Random, mean_ns: int) -> int:
        # paretovariate(a) has scale 1 and mean a/(a-1); rescale so the
        # drawn period has the configured mean.
        scale = mean_ns * (self.alpha - 1.0) / self.alpha
        return max(1, round(scale * rng.paretovariate(self.alpha)))

    def iter_times(self):
        rng = _rng(self.kind, self.seed)
        duty = self.on_mean_ns / (self.on_mean_ns + self.off_mean_ns)
        peak_rate_per_ns = (self.rate_ops_per_s / duty) / 1e9
        spacing = max(1, round(1.0 / peak_rate_per_ns))
        t = 0
        while True:
            on = self._period(rng, self.on_mean_ns)
            # Evenly spaced arrivals while the source is ON.
            for k in range(max(1, on // spacing)):
                yield t + k * spacing
            t += on + self._period(rng, self.off_mean_ns)


_PROCESSES = {
    cls.kind: cls for cls in (PoissonArrivals, ParetoOnOffArrivals)
}


def make_arrivals(spec: dict, seed: int,
                  rate_ops_per_s: float) -> ArrivalProcess:
    """Build an arrival process from a spec fragment.

    ``spec`` is ``{"process": "poisson"}`` or ``{"process":
    "pareto_on_off", "alpha": 1.5, ...}``; ``seed`` and the offered rate
    come from the enclosing experiment point so one spec fragment can be
    swept over many loads.
    """
    kind = spec.get("process", "poisson")
    cls = _PROCESSES.get(kind)
    if cls is None:
        raise LoadSpecError(
            f"unknown arrival process {kind!r}; known: "
            f"{', '.join(sorted(_PROCESSES))}")
    kwargs = {k: v for k, v in spec.items() if k != "process"}
    try:
        return cls(seed, rate_ops_per_s, **kwargs)
    except TypeError as exc:
        raise LoadSpecError(f"bad {kind} arrival spec {spec!r}: {exc}") from exc
