"""Workload adapters: one ``op(client, op, size)`` generator per stack.

An adapter owns the protocol objects for one server node plus N client
nodes on an already-built cluster (a star or a fabric), sets them up at
construction (running the Environment as needed), and exposes the
uniform interface the load driver executes:

* :class:`OrfaWorkload` — the user-space ORFA file client: ``read`` /
  ``write`` run sequentially through a per-client pre-opened file
  (wrapping at EOF), ``stat`` is the full no-dcache LOOKUP path.
* :class:`NbdWorkload` — the in-kernel NBD block device: buffered
  reads/writes through the page cache with the touched range
  invalidated after each op, so every op really crosses the network
  (the open-loop generator is measuring the wire, not the cache).
* :class:`RrWorkload` — request-response over kernel sockets:
  SOCKETS-MX, SOCKETS-GM (one server module per client — the 4-slot
  bounce pools are per-module) or the TCP/IP baseline (a dedicated
  gigabit Ethernet pair per client; TCP stacks are point-to-point, so
  this path ignores the fabric and models commodity NICs on the side).

Every client executes at most one op at a time (the driver guarantees
it), which is also what the GM-side client objects require.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import Node
from ..core import GmKernelChannel, MxKernelChannel
from ..nbd.device import BLOCK_SIZE, NbdDevice, NbdServer
from ..orfa.client import OrfaClient
from ..orfa.server import OrfaServer
from ..sim import Environment
from ..sockets.sockets_gm import SocketsGmModule
from ..sockets.sockets_mx import SocketsMxModule
from ..sockets.tcpip import ethernet_pair
from ..units import KiB, MiB, page_align_up
from .arrivals import LoadSpecError

SERVER_PORT = 3
CLIENT_PORT = 4

#: Largest single op an adapter accepts (buffer sizing).
MAX_OP_BYTES = 256 * KiB


def _buffer(space, nbytes: int = MAX_OP_BYTES) -> int:
    return space.mmap(page_align_up(nbytes), populate=True)


class OrfaWorkload:
    """N user-space ORFA clients against one ORFA server."""

    ops = ("read", "write", "stat")

    def __init__(self, env: Environment, server_node: Node,
                 client_nodes: list[Node], api: str = "mx",
                 file_bytes: int = MiB):
        self.name = f"orfa-{api}"
        self.env = env
        self.file_bytes = file_bytes
        self.server = OrfaServer(server_node, SERVER_PORT, api=api)
        env.run(until=self.server.start())
        self._clients: list[OrfaClient] = []
        self._paths: list[str] = []
        self._fds: list[int] = []
        self._bufs: list[int] = []
        self._spaces = []
        self._offsets: list[int] = []
        for i, node in enumerate(client_nodes):
            space = node.new_process_space()
            client = OrfaClient(node, CLIENT_PORT, space,
                                (server_node.node_id, SERVER_PORT), api=api)
            env.run(until=env.process(client.setup()))
            path = f"load{i}"
            attrs = env.run(until=env.process(self.server.fs.create(1, path)))
            self.server.fs.write_raw(attrs.inode_id, 0, bytes(file_bytes))
            fd = env.run(until=env.process(client.open(f"/{path}")))
            self._clients.append(client)
            self._paths.append(f"/{path}")
            self._fds.append(fd)
            self._spaces.append(space)
            self._bufs.append(_buffer(space))
            self._offsets.append(0)

    def op(self, client: int, op: str, size: int):
        c = self._clients[client]
        if op == "stat":
            yield from c.stat(self._paths[client])
            return
        size = max(1, min(size, MAX_OP_BYTES, self.file_bytes))
        if self._offsets[client] + size > self.file_bytes:
            c.seek(self._fds[client], 0)
            self._offsets[client] = 0
        if op == "write":
            n = yield from c.write(self._fds[client], self._bufs[client], size)
        else:  # read (and anything data-shaped)
            n = yield from c.read(self._fds[client], self._bufs[client], size)
        self._offsets[client] += n


class NbdWorkload:
    """N in-kernel NBD block clients against one block server."""

    ops = ("read", "write")

    def __init__(self, env: Environment, server_node: Node,
                 client_nodes: list[Node], api: str = "mx",
                 device_blocks: int = 512):
        self.name = f"nbd-{api}"
        self.env = env
        self.device_blocks = device_blocks
        self.server = NbdServer(server_node, SERVER_PORT, api=api,
                                device_blocks=device_blocks)
        env.run(until=self.server.start())
        self._devs: list[NbdDevice] = []
        self._spaces = []
        self._bufs: list[int] = []
        self._offsets: list[int] = []
        nbytes = device_blocks * BLOCK_SIZE
        for i, node in enumerate(client_nodes):
            if api == "mx":
                channel = MxKernelChannel(node, CLIENT_PORT)
            else:
                channel = GmKernelChannel(node, CLIENT_PORT)
            dev = NbdDevice(node, channel,
                            (server_node.node_id, SERVER_PORT),
                            self.server.device_inode, device_blocks)
            space = node.new_process_space()
            self._devs.append(dev)
            self._spaces.append(space)
            self._bufs.append(_buffer(space))
            # Stagger start offsets so clients touch disjoint extents.
            self._offsets.append((i * nbytes // max(1, len(client_nodes)))
                                 // BLOCK_SIZE * BLOCK_SIZE)

    def op(self, client: int, op: str, size: int):
        dev = self._devs[client]
        nbytes = self.device_blocks * BLOCK_SIZE
        size = max(1, min(size, MAX_OP_BYTES, nbytes))
        off = self._offsets[client]
        if off + size > nbytes:
            off = 0
        if op == "write":
            yield from dev.write(self._spaces[client], self._bufs[client],
                                 off, size)
            yield from dev.flush()
        else:
            yield from dev.read(self._spaces[client], self._bufs[client],
                                off, size)
        # Drop the cached pages: the next op must cross the wire again.
        dev.node.pagecache.invalidate_inode(-self.server.device_inode)
        self._offsets[client] = off + ((size + BLOCK_SIZE - 1)
                                       // BLOCK_SIZE * BLOCK_SIZE)


@dataclass
class _RrClient:
    sock: object
    space: object
    vaddr: int


class RrWorkload:
    """Request-response over kernel sockets: mx, gm or the TCP baseline."""

    ops = ("rr",)

    def __init__(self, env: Environment, server_node: Node,
                 client_nodes: list[Node], api: str = "mx",
                 resp_bytes: int = 128):
        if api not in ("mx", "gm", "tcp"):
            raise LoadSpecError(f"rr api must be mx, gm or tcp, got {api!r}")
        self.name = f"rr-{api}"
        self.env = env
        self.resp_bytes = resp_bytes
        self._clients: list[_RrClient] = []
        if api == "mx":
            server_mod = SocketsMxModule(server_node, SERVER_PORT)
            env.run(until=env.process(server_mod.listen()))
            for i, node in enumerate(client_nodes):
                mod = SocketsMxModule(node, CLIENT_PORT)
                sock = env.run(until=env.process(
                    mod.connect(server_node.node_id, SERVER_PORT)))
                ssock = env.run(until=env.process(server_mod.accept()))
                self._add(env, node, sock, ssock, server_node)
        elif api == "gm":
            # One shared server module: each module registers its whole
            # MiB-slot bounce pool, so per-client modules would overflow
            # the NIC translation table.  Beyond four concurrent clients
            # the 4-slot pools add queueing on the bounce free-list —
            # which is the real SOCKETS-GM behavior, not an artifact.
            server_mod = SocketsGmModule(server_node, SERVER_PORT)
            env.run(until=server_mod.ready)
            env.run(until=env.process(server_mod.listen()))
            for i, node in enumerate(client_nodes):
                mod = SocketsGmModule(node, CLIENT_PORT)
                env.run(until=mod.ready)
                sock = env.run(until=env.process(
                    mod.connect(server_node.node_id, SERVER_PORT)))
                ssock = env.run(until=env.process(server_mod.accept()))
                self._add(env, node, sock, ssock, server_node)
        else:  # tcp: a dedicated point-to-point Ethernet pair per client
            for node in client_nodes:
                ca, sb = ethernet_pair(env, node, server_node)
                sb.listen()
                sock = env.run(until=env.process(ca.connect()))
                ssock = env.run(until=env.process(sb.accept()))
                self._add(env, node, sock, ssock, server_node)

    def _add(self, env, node, sock, ssock, server_node) -> None:
        space = node.new_process_space()
        vaddr = _buffer(space)
        self._clients.append(_RrClient(sock, space, vaddr))
        sspace = server_node.new_process_space()
        svaddr = _buffer(sspace)
        env.process(self._echo(ssock, sspace, svaddr),
                    name=f"load.echo{len(self._clients) - 1}")

    def _echo(self, ssock, space, vaddr):
        while True:
            yield from ssock.recv(space, vaddr, MAX_OP_BYTES)
            yield from ssock.send(space, vaddr, self.resp_bytes)

    def op(self, client: int, op: str, size: int):
        c = self._clients[client]
        size = max(1, min(size, MAX_OP_BYTES))
        yield from c.sock.send(c.space, c.vaddr, size)
        yield from c.sock.recv(c.space, c.vaddr, self.resp_bytes)


_WORKLOADS = {"orfa": OrfaWorkload, "nbd": NbdWorkload, "rr": RrWorkload}


def make_workload(spec: dict, env: Environment, server_node: Node,
                  client_nodes: list[Node]):
    """Build a workload adapter from a spec fragment like
    ``{"kind": "orfa", "api": "mx"}`` (extra keys become constructor
    keyword arguments)."""
    kind = spec.get("kind")
    cls = _WORKLOADS.get(kind)
    if cls is None:
        raise LoadSpecError(
            f"unknown workload kind {kind!r}; known: "
            f"{', '.join(sorted(_WORKLOADS))}")
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    try:
        return cls(env, server_node, client_nodes, **kwargs)
    except TypeError as exc:
        raise LoadSpecError(f"bad {kind} workload spec {spec!r}: {exc}") from exc
