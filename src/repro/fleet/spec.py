"""Declarative experiment-fleet specifications.

A fleet spec is a JSON-friendly dict declaring a *grid* of experiment
points — the cross product of topology × fidelity mode × workload ×
arrival process × offered load × fault plan — plus the scalar knobs
every point shares (seed, op count, client count, op mix, loop mode).
:meth:`FleetSpec.points` expands the grid in a fixed, documented order
(the declared order of each axis, axes nested topology-outermost), so
point indexes are stable and the results table row order is a pure
function of the spec.

Example::

    {
      "name": "quickstart",
      "seed": 1,
      "n_ops": 160,
      "n_clients": 4,
      "mix": "read4k",
      "grid": {
        "topology": [{"kind": "star", "n": 8},
                     {"kind": "fat_tree", "k": 4}],
        "mode": ["train", "flow"],
        "workload": [{"kind": "orfa", "api": "mx"}],
        "arrivals": [{"process": "poisson"}],
        "offered_load": [4000, 16000, 64000],
        "faults": [null]
      }
    }

Axis entries are validated up front — a bad spec fails before any
simulation runs, with the axis and entry named.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..load.arrivals import LoadSpecError, make_arrivals
from ..load.mix import make_mix


class FleetSpecError(ReproError):
    """A malformed fleet specification."""


#: Grid axes in expansion order (outermost first) with their defaults.
GRID_AXES = (
    ("topology", [{"kind": "star", "n": 8}]),
    ("mode", ["train"]),
    ("workload", [{"kind": "orfa", "api": "mx"}]),
    ("arrivals", [{"process": "poisson"}]),
    ("offered_load", [8000]),
    ("faults", [None]),
)

MODES = ("packet", "train", "flow")

#: topology kind -> (required int params, host-count function)
_TOPOLOGIES = {
    "star": (("n",), lambda t: t["n"]),
    "fat_tree": (("k",), lambda t: t["k"] ** 3 // 4),
    "dragonfly": (("groups", "routers", "hosts"),
                  lambda t: t["groups"] * t["routers"] * t["hosts"]),
}

_FAULT_KINDS = ("link_flap", "nic_reset", "node_crash")


def topology_label(topo: dict) -> str:
    """Compact, unique axis label: ``star8``, ``ft4``, ``df4x4x2``."""
    kind = topo["kind"]
    if kind == "star":
        return f"star{topo['n']}"
    if kind == "fat_tree":
        return f"ft{topo['k']}"
    return f"df{topo['groups']}x{topo['routers']}x{topo['hosts']}"


def topology_hosts(topo: dict) -> int:
    return _TOPOLOGIES[topo["kind"]][1](topo)


def fault_label(fault: Optional[dict]) -> str:
    if fault is None:
        return "none"
    target = fault.get("link", fault.get("node", "?"))
    return f"{fault['kind']}@{target}"


@dataclass(frozen=True)
class RunPoint:
    """One expanded grid point (picklable; crosses the process pool)."""

    index: int
    topology: dict
    mode: str
    workload: dict
    arrivals: dict
    offered_load: float
    fault: Optional[dict]
    seed: int

    def config(self) -> dict:
        """The deterministic config block of this point's results row."""
        return {
            "index": self.index,
            "topology": topology_label(self.topology),
            "mode": self.mode,
            "workload": "-".join(
                str(self.workload[k]) for k in ("kind", "api")
                if k in self.workload),
            "arrivals": self.arrivals.get("process", "poisson"),
            "offered_load": self.offered_load,
            "fault": fault_label(self.fault),
            "seed": self.seed,
        }

    def label(self) -> str:
        c = self.config()
        return (f"{c['topology']}/{c['mode']}/{c['workload']}/"
                f"{c['arrivals']}/{c['offered_load']:g}/{c['fault']}")


def _validate_topology(topo, axis="topology"):
    if not isinstance(topo, dict) or "kind" not in topo:
        raise FleetSpecError(f"{axis} entries need a 'kind', got {topo!r}")
    spec = _TOPOLOGIES.get(topo["kind"])
    if spec is None:
        raise FleetSpecError(
            f"unknown topology kind {topo['kind']!r}; known: "
            f"{', '.join(sorted(_TOPOLOGIES))}")
    for param in spec[0]:
        if not isinstance(topo.get(param), int) or topo[param] <= 0:
            raise FleetSpecError(
                f"topology {topo!r} needs positive int {param!r}")


def _validate_fault(fault):
    if fault is None:
        return
    if not isinstance(fault, dict) or fault.get("kind") not in _FAULT_KINDS:
        raise FleetSpecError(
            f"fault entries need kind in {_FAULT_KINDS}, got {fault!r}")
    if fault["kind"] == "link_flap" and "link" not in fault:
        raise FleetSpecError(f"link_flap fault needs 'link': {fault!r}")
    if fault["kind"] in ("nic_reset", "node_crash") and "node" not in fault:
        raise FleetSpecError(f"{fault['kind']} fault needs 'node': {fault!r}")


class FleetSpec:
    """A validated fleet specification."""

    def __init__(self, name: str, seed: int, n_ops: int, n_clients: int,
                 mix, grid: dict, loop: str = "open", think_us: int = 0):
        if n_ops <= 0 or n_clients <= 0:
            raise FleetSpecError(
                f"need n_ops > 0 and n_clients > 0, got {n_ops}/{n_clients}")
        if loop not in ("open", "closed"):
            raise FleetSpecError(f"loop must be open or closed, got {loop!r}")
        self.name = name
        self.seed = seed
        self.n_ops = n_ops
        self.n_clients = n_clients
        self.mix = mix
        self.loop = loop
        self.think_us = think_us
        known = {axis for axis, _default in GRID_AXES}
        unknown = set(grid) - known
        if unknown:
            raise FleetSpecError(
                f"unknown grid axes {sorted(unknown)}; known: "
                f"{sorted(known)}")
        self.grid = {}
        for axis, default in GRID_AXES:
            values = grid.get(axis, default)
            if not isinstance(values, list) or not values:
                raise FleetSpecError(
                    f"grid axis {axis!r} must be a non-empty list, "
                    f"got {values!r}")
            self.grid[axis] = values
        self._validate()

    def _validate(self) -> None:
        try:
            make_mix(self.mix)
        except LoadSpecError as exc:
            raise FleetSpecError(str(exc)) from exc
        for topo in self.grid["topology"]:
            _validate_topology(topo)
            if topology_hosts(topo) - 1 < self.n_clients:
                raise FleetSpecError(
                    f"topology {topology_label(topo)} has "
                    f"{topology_hosts(topo)} hosts; needs at least "
                    f"{self.n_clients + 1} (server + n_clients)")
        for mode in self.grid["mode"]:
            if mode not in MODES:
                raise FleetSpecError(
                    f"unknown fidelity mode {mode!r}; known: {MODES}")
        for arr in self.grid["arrivals"]:
            try:
                make_arrivals(arr, self.seed, 1000.0)
            except LoadSpecError as exc:
                raise FleetSpecError(str(exc)) from exc
        for load in self.grid["offered_load"]:
            if not isinstance(load, (int, float)) or load <= 0:
                raise FleetSpecError(
                    f"offered_load entries must be positive numbers, "
                    f"got {load!r}")
        for fault in self.grid["faults"]:
            _validate_fault(fault)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        if not isinstance(data, dict):
            raise FleetSpecError(f"spec must be an object, got {type(data)}")
        known = {"name", "seed", "n_ops", "n_clients", "mix", "grid",
                 "loop", "think_us"}
        unknown = set(data) - known
        if unknown:
            raise FleetSpecError(
                f"unknown spec keys {sorted(unknown)}; known: "
                f"{sorted(known)}")
        return cls(
            name=data.get("name", "fleet"),
            seed=int(data.get("seed", 1)),
            n_ops=int(data.get("n_ops", 160)),
            n_clients=int(data.get("n_clients", 4)),
            mix=data.get("mix", "read4k"),
            grid=data.get("grid", {}),
            loop=data.get("loop", "open"),
            think_us=int(data.get("think_us", 0)),
        )

    @classmethod
    def from_file(cls, path: str) -> "FleetSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetSpecError(f"cannot load spec {path!r}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "n_ops": self.n_ops,
            "n_clients": self.n_clients,
            "mix": self.mix,
            "loop": self.loop,
            "think_us": self.think_us,
            "grid": self.grid,
        }

    def points(self) -> list[RunPoint]:
        """Expand the grid, topology-outermost, in declared entry order."""
        axes = [self.grid[axis] for axis, _default in GRID_AXES]
        return [
            RunPoint(index=i, topology=topo, mode=mode, workload=wl,
                     arrivals=arr, offered_load=float(load), fault=fault,
                     seed=self.seed)
            for i, (topo, mode, wl, arr, load, fault)
            in enumerate(itertools.product(*axes))
        ]
