"""Per-run isolation of process-global simulator state.

A deterministic run is hermetic inside its :class:`~repro.sim.Environment`
except for a handful of process-global accumulators the simulator keeps
for convenience: the host-copy accounting hook, the ambient obs
registry/timeline, the fidelity mode switches, and the module/class
level id counters (request ids, connection ids, rendezvous ids, ...).
None of those ids change simulated *timing*, but they leak into traces
and make an Nth in-process run differ from the same run in a fresh
process — which breaks the fleet contract that sequential in-process
sweeps and forked parallel sweeps produce byte-identical results.

:func:`isolated_run` scrubs all of it for the duration of a block:

* uninstalls any ambient obs registry/timeline (installing a fresh
  registry for the block when ``observe=True``);
* zeroes ``HOST_COPIES`` for the block, then *adds back* the outer
  totals on exit (an enclosing perf bench keeps reading cumulative
  numbers, exactly as :mod:`repro.nbd.chaos` always did);
* saves and restores the packet-train / flow fidelity switches;
* re-seeds every known global id counter to its import-time start, so
  ids inside the block match a fresh process (``reset_counters=False``
  opts out for callers nested inside a live outer simulation).

The sharded engine's fork workers (:mod:`repro.sim.shard`) and the NBD
chaos harness (:mod:`repro.nbd.chaos`) delegate their scrub here, so
there is exactly one definition of "clean slate".
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Optional

from .. import obs
from ..mem.sglist import HOST_COPIES

#: Every process-global id counter in the simulator, with its
#: import-time starting value: (module, attribute-or-class, attr, start).
#: Kept in one place so a new counter is a one-line addition.
_COUNTERS = (
    ("repro.gm.api", "GmPort", "_context_ids", 1000),
    ("repro.hw.nic", "Nic", "_rndv_ids", 1),
    ("repro.hw.train", None, "_train_ids", 1),
    ("repro.nbd.client", "ReplicatedNbdDevice", "_req_ids", 7_000_000),
    ("repro.nbd.device", "NbdDevice", "_request_ids", 2_000_000),
    ("repro.nbd.replica", None, "_req_ids", 5_000_000),
    ("repro.orfa.client", "OrfaClient", "_request_ids", 1),
    ("repro.orfs.client", "OrfsClient", "_request_ids", 1_000_000),
    ("repro.sockets.base", None, "_conn_ids", 0x5000),
)


def reset_id_counters() -> None:
    """Re-seed every global id counter to its fresh-process start."""
    import importlib

    for mod_name, cls_name, attr, start in _COUNTERS:
        mod = importlib.import_module(mod_name)
        owner = getattr(mod, cls_name) if cls_name else mod
        setattr(owner, attr, itertools.count(start))


@contextmanager
def isolated_run(observe: bool = True,
                 registry: Optional[obs.MetricsRegistry] = None,
                 reset_counters: bool = True):
    """Context manager: run one hermetic scenario, then restore.

    Yields the installed :class:`~repro.obs.MetricsRegistry` (a fresh
    one, or ``registry`` if given) when ``observe`` is true, else
    ``None``.  On exit the previously ambient registry/timeline, the
    fidelity switches, and the outer host-copy totals are restored.
    """
    from ..hw import flow as flowmod
    from ..hw import train as trainmod

    saved_registry = obs.uninstall_registry()
    saved_timeline = obs.uninstall_timeline()
    saved_flow = flowmod.flow_mode_enabled()
    saved_coalescing = trainmod.coalescing_enabled()
    copies_base = HOST_COPIES.snapshot()
    HOST_COPIES.reset()
    if reset_counters:
        reset_id_counters()
    installed = None
    if observe:
        installed = obs.install_registry(registry)
    try:
        yield installed
    finally:
        if installed is not None:
            obs.uninstall_registry()
        flowmod.set_flow_mode(saved_flow)
        trainmod.set_coalescing(saved_coalescing)
        HOST_COPIES.copies += copies_base["copies"]
        HOST_COPIES.nbytes += copies_base["nbytes"]
        if saved_registry is not None:
            obs.install_registry(saved_registry)
        if saved_timeline is not None:
            obs.install_timeline(saved_timeline)
