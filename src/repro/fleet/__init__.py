"""repro.fleet — declarative experiment sweeps over isolated runs.

Two halves:

* :mod:`repro.fleet.isolate` — the per-run global-state scrub (host-copy
  accounting, obs registry/timeline, fidelity switches, id counters)
  that makes back-to-back in-process runs byte-identical to
  fresh-process runs.  The sharded engine's fork workers and the NBD
  chaos harness use the same discipline.
* :mod:`repro.fleet.spec` / :mod:`repro.fleet.runner` — an experiment
  spec declaring a grid over {topology, fidelity mode, workload + API,
  arrival process, offered load, fault plan}; the runner expands the
  grid, fans runs out over a process pool, and collects per-run obs
  snapshots into one tidy deterministic results table (JSON + CSV).
  Same spec + seed => byte-identical results files, sequential or
  parallel.

CLI: ``python -m repro.bench fleet --spec SPEC.json [--parallel N]
[--out PREFIX]``.

The package namespace is lazy (PEP 562): :mod:`repro.sim.shard` and
:mod:`repro.nbd.chaos` import :mod:`repro.fleet.isolate` for the scrub,
and must not drag the whole sweep runner (and its workload imports) in
behind it.
"""

from .isolate import isolated_run, reset_id_counters

_LAZY = {
    "FleetSpec": "spec",
    "FleetSpecError": "spec",
    "RunPoint": "spec",
    "FLEET_SCHEMA": "runner",
    "FleetResult": "runner",
    "render_csv": "runner",
    "render_json": "runner",
    "run_fleet": "runner",
    "run_point": "runner",
}

__all__ = ["isolated_run", "reset_id_counters", *sorted(_LAZY)]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
