"""The sweep runner: expand a fleet spec, run every point, tabulate.

Each grid point runs under :func:`repro.fleet.isolate.isolated_run` —
fresh metrics registry, zeroed host-copy accounting, fresh-process id
counters, fidelity switches scoped to the point — in its own
:class:`~repro.sim.Environment`.  That makes a point hermetic, which
buys the fleet contract for free:

* *same spec + seed => byte-identical results files*, and
* *sequential in-process == parallel fresh-process*: ``--parallel N``
  fans points out over a fork :class:`~concurrent.futures.
  ProcessPoolExecutor` (the :mod:`repro.bench.runner` discipline) and
  reassembles rows in point order, so the rendered JSON/CSV bytes never
  depend on worker scheduling.

Grid points that share a topology reuse the memoized fabric routing
tables (:mod:`repro.cluster.topo`'s route cache) — a build-time
optimization the byte-identity contract itself proves harmless, since
parallel workers start cold while sequential runs hit the cache.

No wall-clock value ever enters a results file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..cluster.node import star
from ..cluster.topo import dragonfly, fat_tree
from ..faults.plan import FaultPlan
from ..hw import flow as flowmod
from ..hw import train as trainmod
from ..hw.params import host_params
from ..load import LoadGen, make_arrivals, make_mix, make_workload, run_load
from ..sim import Environment
from ..units import us
from .isolate import isolated_run
from .spec import FleetSpec, RunPoint

#: Spec-file field reference (``python -m repro.bench fleet --schema``).
FLEET_SCHEMA = {
    "name": "str: label stamped into the results files",
    "seed": "int: master seed for arrivals, op mixes and fault plans",
    "n_ops": "int: requests drawn per grid point",
    "n_clients": "int: issuing clients (one in-flight op each)",
    "mix": "str stock mix name, or {name, choices:[{op,size,weight}]}",
    "loop": "'open' (replay drawn arrival times) or 'closed'",
    "think_us": "int: closed-loop think time between ops",
    "grid": {
        "topology": "[{kind: star, n} | {kind: fat_tree, k} | "
                    "{kind: dragonfly, groups, routers, hosts}]",
        "mode": "[packet | train | flow] (flow needs a fabric topology)",
        "workload": "[{kind: orfa|nbd|rr, api: mx|gm|tcp, ...}]",
        "arrivals": "[{process: poisson | pareto_on_off, ...}]",
        "offered_load": "[ops per second, > 0]",
        "faults": "[null | {kind: link_flap, link, ...} | "
                  "{kind: nic_reset|node_crash, node, at_us}]",
    },
}

_CONFIG_COLS = ("index", "topology", "mode", "workload", "arrivals",
                "offered_load", "fault", "seed")
_METRIC_COLS = ("n_clients", "offered_ops", "achieved_ops", "failed_ops",
                "elapsed_ns", "offered_rate_ops_s", "achieved_rate_ops_s",
                "fairness", "mean_ns", "p50_ns", "p95_ns", "p99_ns")
_EXTRA_COLS = ("sim_ns", "events")


def _build_topology(env: Environment, topo: dict):
    """Instantiate one grid topology; returns (nodes, switches)."""
    kind = topo["kind"]
    if kind == "star":
        nodes, switch = star(env, topo["n"])
        return nodes, [switch]
    # Fabric hosts get a reduced frame pool — big enough for server
    # rings, load buffers and page caches, small enough that fabric
    # builds with dozens of hosts stay cheap.
    host = host_params(memory_frames=16384)
    if kind == "fat_tree":
        fabric = fat_tree(env, topo["k"], host=host)
    else:
        fabric = dragonfly(env, topo["groups"], topo["routers"],
                           topo["hosts"], host=host)
    return fabric.nodes, list(fabric.switches.values())


def _pick_clients(nodes, n_clients: int):
    """Evenly spread client hosts over ids 1..n-1 (0 is the server), so
    fabric clients land in different pods/groups."""
    n = len(nodes)
    return [nodes[1 + (i * (n - 1)) // n_clients] for i in range(n_clients)]


def _install_fault(env, fault: dict, seed: int, nodes, switches) -> None:
    plan = FaultPlan(seed=seed)
    at = us(int(fault.get("at_us", 600)))
    if fault["kind"] == "link_flap":
        plan.link_flap(fault["link"], at,
                       down_ns=us(int(fault.get("down_us", 400))),
                       up_ns=us(int(fault.get("up_us", 250))),
                       count=int(fault.get("count", 2)))
    elif fault["kind"] == "nic_reset":
        plan.nic_reset(int(fault["node"]), at)
    else:
        plan.node_crash(int(fault["node"]), at)
    plan.install(env, nodes=nodes, switches=switches)


def run_point(spec: FleetSpec, point: RunPoint) -> dict:
    """Run one grid point hermetically; returns its results row."""
    with isolated_run(observe=True):
        # Fidelity is scoped to the point (isolated_run restores): on a
        # star there is no FlowNetwork, so "flow" degrades to "train".
        flowmod.set_flow_mode(point.mode == "flow")
        trainmod.set_coalescing(point.mode != "packet")
        env = Environment()
        nodes, switches = _build_topology(env, point.topology)
        if point.fault is not None:
            _install_fault(env, point.fault, point.seed, nodes, switches)
        workload = make_workload(point.workload, env, nodes[0],
                                 _pick_clients(nodes, spec.n_clients))
        arrivals = make_arrivals(point.arrivals, point.seed,
                                 point.offered_load)
        gen = LoadGen(arrivals, make_mix(spec.mix), point.seed,
                      spec.n_ops, spec.n_clients)
        ev0 = env.events_processed
        res = run_load(env, workload, gen, mode=spec.loop,
                       think_ns=us(spec.think_us))
        metrics = res.row()
        metrics["per_client_ops"] = list(res.per_client_ops)
        return {
            "config": point.config(),
            "metrics": metrics,
            "sim_ns": env.now,
            "events": env.events_processed - ev0,
        }


def _pool_worker(args) -> dict:
    spec, point = args
    return run_point(spec, point)


@dataclass
class FleetResult:
    """An expanded, executed fleet: the spec and one row per point."""

    spec: dict
    rows: list

    def row_cells(self, row: dict) -> dict:
        cells = {c: row["config"][c] for c in _CONFIG_COLS}
        cells.update({c: row["metrics"][c] for c in _METRIC_COLS})
        cells.update({c: row[c] for c in _EXTRA_COLS})
        return cells


def run_fleet(spec: FleetSpec, parallel: int = 1) -> FleetResult:
    """Run every grid point; rows come back in point (spec) order."""
    points = spec.points()
    if parallel > 1 and len(points) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=parallel) as pool:
            rows = list(pool.map(_pool_worker,
                                 [(spec, p) for p in points]))
    else:
        rows = [run_point(spec, p) for p in points]
    return FleetResult(spec=spec.to_dict(), rows=rows)


def render_json(result: FleetResult) -> str:
    """The canonical results document: sorted keys, trailing newline,
    nothing wall-clock-derived — byte-identical across reruns."""
    return json.dumps({"spec": result.spec, "points": result.rows},
                      indent=2, sort_keys=True) + "\n"


def _cell(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_csv(result: FleetResult) -> str:
    """One tidy row per grid point (config columns, then metrics)."""
    columns = (*_CONFIG_COLS, *_METRIC_COLS, *_EXTRA_COLS)
    lines = [",".join(columns)]
    for row in result.rows:
        cells = result.row_cells(row)
        lines.append(",".join(_cell(cells[c]) for c in columns))
    return "\n".join(lines) + "\n"
