"""The ORFS kernel client: FileSystemOps over a kernel network channel.

Every VFS operation becomes one or more ORFA requests.  Requests go out
of a small pool of kmalloc'ed buffers (kernel-virtual segments — already
pinned, cheap); replies land where they belong:

* metadata replies in a kernel reply buffer,
* ``readpage`` data in the page-cache frame (physical segment),
* ``direct_read`` data in the pinned user buffer (user segment).

Reply matching by request id means the receive is posted *before* the
request is sent, so the data DMA needs no intermediate buffer at the
client — the whole point of the paper's kernel API work.
"""

from __future__ import annotations

import itertools

from ..cluster.node import Node
from ..core.channel import KernelChannel
from ..errors import FsError, ProtocolError
from ..kernel.vfs import UserBuffer
from ..mem.layout import sg_from_frames
from ..mx.memtypes import MxSegment
from ..orfa.protocol import OrfaOp, OrfaReply, OrfaRequest
from ..orfa.server import MAX_READ_REPLY, MAX_WRITE_CHUNK
from ..units import PAGE_SIZE

#: Client-side bookkeeping per request (request build, id allocation).
CLIENT_OP_NS = 400

_ERRNO_EXC = {"ENOENT": "Enoent", "EEXIST": "Eexist", "EISDIR": "Eisdir",
              "ENOTDIR": "Enotdir", "ENOTEMPTY": "Enotempty",
              "EINVAL": "Einval"}


def _raise_status(status: str):
    from .. import errors

    exc = getattr(errors, _ERRNO_EXC.get(status, ""), None)
    if exc is not None:
        raise exc()
    raise FsError(status)


class OrfsClient:
    """FileSystemOps implementation speaking ORFA over a KernelChannel."""

    fs_name = "orfs"
    _request_ids = itertools.count(1_000_000)

    def __init__(self, node: Node, channel: KernelChannel,
                 server: tuple[int, int]):
        self.node = node
        self.channel = channel
        self.server = server
        self.cpu = node.cpu
        # kmalloc'ed request buffer (requests are serialized per client
        # instance by the VFS paths that call us).
        self._req_buf = node.kspace.kmalloc(4096)
        self._reply_buf = node.kspace.kmalloc(4096)
        self.requests_sent = 0

    # -- request machinery ---------------------------------------------------

    def _rpc(self, req: OrfaRequest, reply_segments=None, send_segments=None):
        """Generator: one request/reply exchange.

        ``reply_segments`` defaults to the kernel reply buffer;
        ``send_segments`` (for writes) carries payload instead of the
        request buffer.
        """
        yield from self.cpu.work(CLIENT_OP_NS)
        if reply_segments is None:
            reply_segments = [MxSegment.kernel(self._reply_buf.vaddr, 4096)]
        recv = yield from self.channel.post_recv(reply_segments,
                                                 match=req.request_id)
        if send_segments is None:
            send_segments = [MxSegment.kernel(self._req_buf.vaddr,
                                              req.wire_size())]
        send = yield from self.channel.send(self.server[0], self.server[1],
                                            send_segments, match=0, meta=req)
        self.requests_sent += 1
        completion = yield from self.channel.wait_recv(recv)
        if not send.event.processed:
            yield from self.channel.wait_send(send)
        reply = completion.meta
        if not isinstance(reply, OrfaReply):
            raise ProtocolError(f"bad reply: {reply!r}")
        if not reply.ok:
            _raise_status(reply.status)
        return reply

    def _new_request(self, op: OrfaOp, **kw) -> OrfaRequest:
        return OrfaRequest(op=op, request_id=next(OrfsClient._request_ids), **kw)

    # -- FileSystemOps: namespace ------------------------------------------------

    def root_inode(self) -> int:
        return 1  # MemFs root

    def lookup(self, parent_id: int, name: str):
        reply = yield from self._rpc(
            self._new_request(OrfaOp.LOOKUP, inode=parent_id, name=name))
        return reply.attrs

    def getattr(self, inode_id: int):
        reply = yield from self._rpc(
            self._new_request(OrfaOp.GETATTR, inode=inode_id))
        return reply.attrs

    def create(self, parent_id: int, name: str):
        reply = yield from self._rpc(
            self._new_request(OrfaOp.CREATE, inode=parent_id, name=name))
        return reply.attrs

    def mkdir(self, parent_id: int, name: str):
        reply = yield from self._rpc(
            self._new_request(OrfaOp.MKDIR, inode=parent_id, name=name))
        return reply.attrs

    def unlink(self, parent_id: int, name: str):
        yield from self._rpc(
            self._new_request(OrfaOp.UNLINK, inode=parent_id, name=name))

    def readdir(self, inode_id: int):
        reply = yield from self._rpc(
            self._new_request(OrfaOp.READDIR, inode=inode_id))
        return reply.names

    def truncate(self, inode_id: int, size: int):
        yield from self._rpc(
            self._new_request(OrfaOp.TRUNCATE, inode=inode_id, length=size))

    # -- FileSystemOps: buffered data path ------------------------------------------

    def readpage(self, inode_id: int, index: int, frame):
        """Fill one page-cache frame: reply data lands in the frame by
        physical address (section 3.3)."""
        req = self._new_request(OrfaOp.READ, inode=inode_id,
                                offset=index * PAGE_SIZE, length=PAGE_SIZE)
        reply = yield from self._rpc(
            req,
            reply_segments=[MxSegment.physical(
                sg_from_frames([frame], 0, PAGE_SIZE))],
        )
        if reply.count < PAGE_SIZE:
            frame.write(reply.count, bytes(PAGE_SIZE - reply.count))
        return reply.count

    def readpages(self, inode_id: int, start_index: int, frames):
        """Fill several consecutive page-cache frames with one vectorial
        request (the Linux 2.6 clustering the paper anticipates in
        section 3.3).  GM has no vectorial primitives (section 4.1), so
        that backend degrades to per-page requests."""
        if not self.channel.supports_vectorial:
            for i, frame in enumerate(frames):
                yield from self.readpage(inode_id, start_index + i, frame)
            return len(frames) * PAGE_SIZE
        length = len(frames) * PAGE_SIZE
        req = self._new_request(OrfaOp.READ, inode=inode_id,
                                offset=start_index * PAGE_SIZE, length=length)
        reply = yield from self._rpc(
            req,
            reply_segments=[MxSegment.physical(sg_from_frames(frames))],
        )
        # Zero-fill whatever the file did not cover (EOF tail).
        pos = reply.count
        while pos < length:
            frame = frames[pos // PAGE_SIZE]
            in_page = pos % PAGE_SIZE
            n = PAGE_SIZE - in_page
            frame.write(in_page, bytes(n))
            pos += n
        return reply.count

    def writepage(self, inode_id: int, index: int, frame, length: int):
        """Write one dirty page back: payload travels straight from the
        page-cache frame (physical segment)."""
        req = self._new_request(OrfaOp.WRITE, inode=inode_id,
                                offset=index * PAGE_SIZE, length=length)
        reply = yield from self._rpc(
            req,
            send_segments=[MxSegment.physical(
                sg_from_frames([frame], 0, length))],
        )
        return reply.count

    # -- FileSystemOps: direct data path -----------------------------------------------

    def direct_read(self, inode_id: int, offset: int, buf: UserBuffer):
        """O_DIRECT read: data lands zero-copy in the user buffer."""
        done = 0
        while done < buf.length:
            chunk = min(buf.length - done, MAX_READ_REPLY)
            req = self._new_request(OrfaOp.READ, inode=inode_id,
                                    offset=offset + done, length=chunk)
            reply = yield from self._rpc(
                req,
                reply_segments=[MxSegment.user(buf.space, buf.vaddr + done,
                                               chunk)],
            )
            done += reply.count
            if reply.count < chunk:
                break
        return done

    def direct_write(self, inode_id: int, offset: int, buf: UserBuffer):
        """O_DIRECT write: payload travels straight from the user buffer,
        chunked to the protocol's wsize."""
        done = 0
        while done < buf.length:
            chunk = min(buf.length - done, MAX_WRITE_CHUNK)
            req = self._new_request(OrfaOp.WRITE, inode=inode_id,
                                    offset=offset + done, length=chunk)
            reply = yield from self._rpc(
                req,
                send_segments=[MxSegment.user(buf.space, buf.vaddr + done,
                                              chunk)],
            )
            done += reply.count
        return done


def mount_orfs(node: Node, channel: KernelChannel, server: tuple[int, int],
               mountpoint: str = "/orfs") -> OrfsClient:
    """Create an ORFS client over ``channel`` and mount it."""
    client = OrfsClient(node, channel, server)
    node.vfs.mount(mountpoint, client)
    return client
