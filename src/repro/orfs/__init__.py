"""ORFS: the in-kernel ORFA client (figure 2(b)).

"A file-system in the kernel forwards to a distant server the requests
that come from an application through system layers."  ORFS plugs into
the node's VFS (:class:`repro.kernel.Vfs`) as a
:class:`repro.kernel.FileSystemOps`, so it gets the dentry/inode caches
for free (the metadata win over user-space ORFA, section 3.1) and both
kernel data paths:

* **buffered** — the VFS fills page-cache frames through our
  ``readpage``, which receives reply data *directly into the frame* by
  physical address (the paper's section 3.3 page-cache strategy);
* **direct** (``O_DIRECT``) — ``direct_read``/``direct_write`` move data
  zero-copy between the application's user buffer and the wire.

The network side is a :class:`repro.core.KernelChannel`, so the same
client runs over GM (with GMKRC + the physical primitives) and over MX —
the exact comparison of the paper's section 5.2.
"""

from .client import OrfsClient, mount_orfs

__all__ = ["OrfsClient", "mount_orfs"]
