"""The MPI communicator: point-to-point and collectives over GM or MX.

Semantics subset (documented restrictions):

* explicit ``source`` and ``tag`` on receives (no wildcards) — the NIC
  matching is exact, as GM's and MX's was;
* collectives must be called in the same order by every rank (the MPI
  standard's own requirement), since collective tags are sequenced
  per communicator;
* messages are byte ranges of the rank's address space; ``*_ints``
  helpers pack ``int64`` vectors for the reduction collectives.

The GM side is the paper's section-2.2.2 middleware: a user-level
pin-down cache registers application buffers on the flight (kept
coherent through the intercepted address-space calls), and a polling
progress engine drains the unified event queue — no blocking wakeups,
which is exactly why GM performs well here and poorly in the kernel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .. import obs
from ..cluster.node import Node
from ..cluster import star, node_pair
from ..errors import ReproError
from ..gm.api import GmPort
from ..gmkrc.cache import Gmkrc
from ..hw.params import LinkParams, PCI_XD
from ..mem.addrspace import AddressSpace
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..sim import Environment, Event
from ..units import page_align_up

#: tag space partition: user tags below, collective tags above
MAX_USER_TAG = 1 << 14
_COLLECTIVE_TAG_BASE = MAX_USER_TAG


class MpiError(ReproError):
    """MPI layer misuse."""


def _match_key(src_rank: int, tag: int) -> int:
    return (src_rank << 20) | tag


@dataclass
class MpiRequest:
    """Handle for a nonblocking MPI operation."""

    kind: str  # "send" | "recv"
    event: Event
    length: int = 0
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.event.processed


class _GmRank:
    """GM user port + middleware registration cache + polling progress."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.port = GmPort(node, port_id, space)
        self.cache = Gmkrc(self.port, node.vmaspy, max_cached_pages=8192)
        node.env.process(self._progress(), name=f"mpi.gm{port_id}")

    def _progress(self):
        """The polling progress engine: drain the unified event queue and
        fire request events (and release cache references)."""
        while True:
            event = yield from self.port.receive_event()
            kind, req, entry = event.tag
            if entry is not None:
                self.cache.release(entry)
            if kind == "recv":
                req.result = event
            req.event.succeed(req)

    def isend(self, dst: tuple[int, int], vaddr: int, length: int, match: int):
        req = MpiRequest("send", self.node.env.event("mpi.send"), length)
        key, entry = yield from self.cache.acquire(self.space, vaddr, length)
        yield from self.port.send_registered(
            dst[0], dst[1], key, length, match=match,
            tag=("send", req, entry),
        )
        return req

    def irecv(self, vaddr: int, length: int, match: int):
        req = MpiRequest("recv", self.node.env.event("mpi.recv"), length)
        key, entry = yield from self.cache.acquire(self.space, vaddr, length)
        yield from self.port.provide_receive_buffer_registered(
            key, length, match=match, tag=("recv", req, entry),
        )
        return req

    def wait(self, req: MpiRequest):
        if not req.event.processed:
            yield req.event
        return req


class _MxRank:
    """The thin MX mapping (MPICH-MX style)."""

    def __init__(self, node: Node, port_id: int, space: AddressSpace):
        self.node = node
        self.space = space
        self.endpoint = MxEndpoint(node, port_id, context="user")

    def isend(self, dst: tuple[int, int], vaddr: int, length: int, match: int):
        mx_req = yield from self.endpoint.isend(
            dst[0], dst[1], [MxSegment.user(self.space, vaddr, length)],
            match=match,
        )
        req = MpiRequest("send", mx_req.event, length)
        return req

    def irecv(self, vaddr: int, length: int, match: int):
        mx_req = yield from self.endpoint.irecv(
            [MxSegment.user(self.space, vaddr, length)], match=match,
        )
        req = MpiRequest("recv", mx_req.event, length)
        req._mx = mx_req
        return req

    def wait(self, req: MpiRequest):
        if not req.event.processed:
            yield req.event
        yield from self.endpoint.cpu.work(self.endpoint.costs.host_event_ns)
        mx_req = getattr(req, "_mx", None)
        if mx_req is not None and mx_req.result is not None:
            req.result = mx_req.result
        return req


class Communicator:
    """One rank's handle on the world communicator."""

    def __init__(self, rank: int, size: int, node: Node, api: str,
                 base_port: int, peers: list[tuple[int, int]]):
        self.rank = rank
        self.size = size
        self.node = node
        self.env = node.env
        self.api = api
        self.space = node.new_process_space()
        port_id = base_port + rank
        if api == "gm":
            self._rank = _GmRank(node, port_id, self.space)
        else:
            self._rank = _MxRank(node, port_id, self.space)
        self._peers = peers  # rank -> (node_id, port_id)
        self._coll_seq = itertools.count(0)
        # scratch buffers for collectives
        self._scratch = self.space.mmap(page_align_up(64 * 1024), populate=True)
        self._scratch2 = self.space.mmap(page_align_up(64 * 1024), populate=True)

    # -- helpers ---------------------------------------------------------------

    def _check_peer(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} out of range (size {self.size})")
        if rank == self.rank:
            raise MpiError("self-sends are not supported")
        return self._peers[rank]

    @staticmethod
    def _check_tag(tag: int) -> None:
        if not 0 <= tag < MAX_USER_TAG:
            raise MpiError(f"tag {tag} out of range [0, {MAX_USER_TAG})")

    # -- point-to-point -----------------------------------------------------------

    def isend(self, dst: int, vaddr: int, length: int, tag: int = 0):
        """Generator: nonblocking send; returns an :class:`MpiRequest`."""
        self._check_tag(tag)
        req = yield from self._isend(dst, vaddr, length, tag)
        return req

    def _isend(self, dst: int, vaddr: int, length: int, tag: int):
        peer = self._check_peer(dst)
        req = yield from self._rank.isend(
            peer, vaddr, length, _match_key(self.rank, tag))
        return req

    def irecv(self, src: int, vaddr: int, length: int, tag: int = 0):
        """Generator: nonblocking receive (explicit source and tag)."""
        self._check_tag(tag)
        req = yield from self._irecv(src, vaddr, length, tag)
        return req

    def _irecv(self, src: int, vaddr: int, length: int, tag: int):
        self._check_peer(src)
        req = yield from self._rank.irecv(
            vaddr, length, _match_key(src, tag))
        return req

    def wait(self, req: MpiRequest):
        """Generator: wait for one request."""
        result = yield from self._rank.wait(req)
        return result

    def send(self, dst: int, vaddr: int, length: int, tag: int = 0):
        """Generator: blocking send."""
        self._check_tag(tag)
        req = yield from self._isend(dst, vaddr, length, tag)
        yield from self.wait(req)

    def _send(self, dst: int, vaddr: int, length: int, tag: int):
        req = yield from self._isend(dst, vaddr, length, tag)
        yield from self.wait(req)

    def recv(self, src: int, vaddr: int, length: int, tag: int = 0):
        """Generator: blocking receive; returns bytes received."""
        self._check_tag(tag)
        n = yield from self._recv(src, vaddr, length, tag)
        return n

    def _recv(self, src: int, vaddr: int, length: int, tag: int):
        req = yield from self._irecv(src, vaddr, length, tag)
        yield from self.wait(req)
        # the actual message size (may undershoot the posted buffer)
        return req.result.size if req.result is not None else req.length

    def sendrecv(self, dst: int, send_vaddr: int, send_len: int,
                 src: int, recv_vaddr: int, recv_len: int, tag: int = 0):
        """Generator: simultaneous send+receive (deadlock-free exchange)."""
        self._check_tag(tag)
        yield from self._sendrecv(dst, send_vaddr, send_len,
                                  src, recv_vaddr, recv_len, tag)

    def _sendrecv(self, dst, send_vaddr, send_len, src, recv_vaddr,
                  recv_len, tag):
        rreq = yield from self._irecv(src, recv_vaddr, recv_len, tag)
        sreq = yield from self._isend(dst, send_vaddr, send_len, tag)
        yield from self.wait(rreq)
        yield from self.wait(sreq)

    # -- collectives ------------------------------------------------------------------

    def _coll_tag(self) -> int:
        return _COLLECTIVE_TAG_BASE + (next(self._coll_seq) % MAX_USER_TAG)

    def _observed(self, op: str, gen):
        """Generator wrapper: per-collective latency histogram and
        timeline span around one collective call.  Purely observational
        (no simulated-time cost); zero-cost with no registry/timeline
        installed beyond one enabled-check per collective."""
        t0 = self.env.now
        span = obs.span_begin(self.env, "mpi", op,
                              pid=self.node.node_id, tid=self.rank)
        result = yield from gen
        obs.span_end(self.env, span)
        if obs.metrics_enabled():
            obs.histogram("mpi.collective.latency_ns",
                          op=op, api=self.api).observe(self.env.now - t0)
        return result

    def barrier(self):
        """Generator: dissemination barrier (ceil(log2 n) rounds)."""
        return (yield from self._observed("barrier", self._barrier()))

    def _barrier(self):
        tag = self._coll_tag()
        n = self.size
        if n == 1:
            return
        k = 1
        while k < n:
            dst = (self.rank + k) % n
            src = (self.rank - k) % n
            yield from self._sendrecv(dst, self._scratch, 1,
                                      src, self._scratch2, 1, tag)
            k *= 2

    def bcast(self, root: int, vaddr: int, length: int):
        """Generator: binomial-tree broadcast of [vaddr, vaddr+length)."""
        return (yield from self._observed(
            "bcast", self._bcast(root, vaddr, length)))

    def _bcast(self, root: int, vaddr: int, length: int):
        tag = self._coll_tag()
        n = self.size
        if n == 1:
            return
        rel = (self.rank - root) % n
        # receive phase (non-root): the parent differs at my lowest set bit
        mask = 1
        while mask < n:
            if rel & mask:
                parent = (rel - mask + root) % n
                yield from self._recv(parent, vaddr, length, tag)
                break
            mask *= 2
        # send phase: forward to children at decreasing bit positions
        mask //= 2
        while mask >= 1:
            if rel + mask < n:
                child = (rel + mask + root) % n
                yield from self._send(child, vaddr, length, tag)
            mask //= 2

    def gather_bytes(self, root: int, data: bytes):
        """Generator: gather equal-sized byte blobs at ``root``.

        Returns the rank-ordered list at the root, None elsewhere.
        """
        return (yield from self._observed(
            "gather", self._gather_bytes(root, data)))

    def _gather_bytes(self, root: int, data: bytes):
        tag = self._coll_tag()
        length = len(data)
        if length > 32 * 1024:
            raise MpiError("gather blobs are limited to 32 kB")
        if self.rank == root:
            out: list[Optional[bytes]] = [None] * self.size
            out[root] = data
            for src in range(self.size):
                if src == root:
                    continue
                n = yield from self._recv(src, self._scratch, length, tag)
                out[src] = self.space.read_bytes(self._scratch, n)
            return out
        self.space.write_bytes(self._scratch, data)
        yield from self._send(root, self._scratch, length, tag)
        return None

    # -- integer reductions ----------------------------------------------------------

    @staticmethod
    def _pack(values: Sequence[int]) -> bytes:
        return b"".join(v.to_bytes(8, "big", signed=True) for v in values)

    @staticmethod
    def _unpack(data: bytes) -> list[int]:
        return [int.from_bytes(data[i:i + 8], "big", signed=True)
                for i in range(0, len(data), 8)]

    _OPS = {
        "sum": lambda a, b: a + b,
        "max": max,
        "min": min,
    }

    def reduce_ints(self, root: int, values: Sequence[int], op: str = "sum"):
        """Generator: elementwise reduction to ``root`` (binomial tree).

        Returns the reduced list at the root, None elsewhere.
        """
        if op not in self._OPS:
            raise MpiError(f"unknown op {op!r}; choose from {sorted(self._OPS)}")
        return (yield from self._observed(
            "reduce", self._reduce_ints(root, values, op)))

    def _reduce_ints(self, root: int, values: Sequence[int], op: str):
        tag = self._coll_tag()
        fn = self._OPS[op]
        n = self.size
        acc = list(values)
        length = 8 * len(acc)
        if length > 32 * 1024:
            raise MpiError("reduction vectors are limited to 4096 elements")
        rel = (self.rank - root) % n
        mask = 1
        while mask < n:
            if rel & mask:
                parent_rel = rel & ~mask
                parent = (parent_rel + root) % n
                self.space.write_bytes(self._scratch, self._pack(acc))
                yield from self._send(parent, self._scratch, length, tag)
                return None if self.rank != root else acc
            child_rel = rel | mask
            if child_rel < n:
                child = (child_rel + root) % n
                got = yield from self._recv(child, self._scratch2, length, tag)
                other = self._unpack(self.space.read_bytes(self._scratch2, got))
                acc = [fn(a, b) for a, b in zip(acc, other)]
            mask *= 2
        return acc if self.rank == root else None

    def allreduce_ints(self, values: Sequence[int], op: str = "sum"):
        """Generator: reduce to rank 0, then broadcast the result.

        Observed as one ``allreduce`` on top of its constituent reduce
        and bcast observations (nested collectives each count)."""
        if op not in self._OPS:
            raise MpiError(f"unknown op {op!r}; choose from {sorted(self._OPS)}")
        return (yield from self._observed(
            "allreduce", self._allreduce_ints(values, op)))

    def _allreduce_ints(self, values: Sequence[int], op: str):
        reduced = yield from self.reduce_ints(0, values, op)
        length = 8 * len(values)
        if self.rank == 0:
            self.space.write_bytes(self._scratch, self._pack(reduced))
        yield from self.bcast(0, self._scratch, length)
        return self._unpack(self.space.read_bytes(self._scratch, length))


def mpi_world(env: Environment, n_ranks: int, api: str = "mx",
              link: LinkParams = PCI_XD, base_port: int = 30,
              nodes: Optional[list[Node]] = None
              ) -> tuple[list[Communicator], list[Node]]:
    """Build an ``n_ranks``-process world (one rank per node).

    Two ranks get a direct link; more go through a switch.  Returns the
    per-rank communicators and the nodes (for building workloads).
    """
    if api not in ("gm", "mx"):
        raise MpiError(f"api must be 'gm' or 'mx', got {api!r}")
    if nodes is None:
        if n_ranks == 2:
            a, b = node_pair(env, link=link)
            nodes = [a, b]
        else:
            nodes, _ = star(env, n_ranks, link=link)
    if len(nodes) != n_ranks:
        raise MpiError(f"{n_ranks} ranks need {n_ranks} nodes, got {len(nodes)}")
    peers = [(node.node_id, base_port + rank)
             for rank, node in enumerate(nodes)]
    comms = [Communicator(rank, n_ranks, node, api, base_port, peers)
             for rank, node in enumerate(nodes)]
    return comms, nodes
