"""A small MPI layer over GM and MX — the workload the APIs were built for.

The paper frames everything against MPI: "Standard parallel computing
libraries such as MPI or VIA have fortunately been implemented on top of
these specific network software interfaces.  This leads to parallel
applications making the most out of the underlying high-speed network"
(section 2.2.2) — and GM's registration model works for MPI precisely
because "a middle-ware (for instance MPI) between GM and applications
... transparently registers buffers on the flight and intercepts address
space modifications".

This package implements that middleware and a practical MPI subset:

* point-to-point: ``send``/``recv`` (blocking), ``isend``/``irecv`` +
  ``wait``, with communicator-scoped tag matching;
* collectives: ``barrier`` (dissemination), ``bcast`` (binomial tree),
  ``reduce``/``allreduce`` (binomial + op), ``gather``;
* on **GM**: the textbook middleware pin-down cache
  (:class:`repro.gmkrc.Gmkrc` over a user port, coherent through the
  intercepted address-space calls);
* on **MX**: the thin direct mapping MPICH-MX used.

It exists both as a substrate credibility check (the paper's baseline
workload runs well on both stacks) and as the compute side of the
examples (halo exchange overlapping ORFS I/O).
"""

from .comm import Communicator, MpiRequest, mpi_world

__all__ = ["Communicator", "MpiRequest", "mpi_world"]
