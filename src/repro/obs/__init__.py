"""repro.obs — deterministic metrics & timeline observability.

Two halves, both keyed to *simulated* time and both pure observers
(they never create simulation events, so enabling them cannot change
simulated time or figure output):

* :mod:`repro.obs.registry` — a hierarchical metrics registry
  (counters, gauges, fixed-bucket histograms with label sets) that is
  zero-cost when disabled and snapshots to stable sorted JSON;
* :mod:`repro.obs.timeline` — span/instant tracing exported as Chrome
  trace events (Perfetto-loadable), with a bridge that turns existing
  :class:`repro.sim.trace.Tracer` records into timeline instants.

Typical component instrumentation::

    from .. import obs

    class Thing:
        def __init__(self, node_id):
            self._m_ops = obs.counter("thing.ops", node=node_id)

        def op(self):
            self._m_ops.inc()
            span = obs.span_begin(self.env, "thing", "op", pid=self.node_id)
            ...
            obs.span_end(self.env, span)

Benchmark entry points install a registry/timeline
(``python -m repro.bench all --metrics out.json --timeline out.trace.json``),
run, and write the snapshots; with nothing installed every helper
degrades to an unregistered accumulator or a no-op.
"""

from .registry import (
    LATENCY_BUCKETS_NS,
    NULL_HISTOGRAM,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    active_registry,
    counter,
    gauge,
    histogram,
    install_registry,
    installed_registry,
    merge_snapshots,
    metric_key,
    metrics_enabled,
    register_collector,
    snapshot_quantile,
    snapshot_to_json,
    uninstall_registry,
)
from .timeline import (
    Span,
    Timeline,
    TimelineError,
    active_timeline,
    install_timeline,
    instant,
    span_begin,
    span_end,
    timeline_enabled,
    uninstall_timeline,
    validate_chrome_trace,
)

__all__ = [
    "LATENCY_BUCKETS_NS",
    "NULL_HISTOGRAM",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsError",
    "Span",
    "Timeline",
    "TimelineError",
    "active_registry",
    "active_timeline",
    "counter",
    "gauge",
    "histogram",
    "install_registry",
    "install_timeline",
    "installed_registry",
    "instant",
    "merge_snapshots",
    "metric_key",
    "metrics_enabled",
    "register_collector",
    "snapshot_quantile",
    "snapshot_to_json",
    "span_begin",
    "span_end",
    "timeline_enabled",
    "uninstall_registry",
    "uninstall_timeline",
    "validate_chrome_trace",
]
