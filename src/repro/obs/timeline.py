"""Span/timeline tracing on simulated time, exported as Chrome trace
events (the JSON Perfetto / ``chrome://tracing`` loads directly).

A :class:`Timeline` collects three event shapes:

* **spans** (``begin``/``end``) — complete ``"X"`` events with a
  duration, e.g. one NIC transmit or one ORFA RPC;
* **instants** (``instant``) — point ``"i"`` events;
* **bridged trace records** — :meth:`attach` subscribes to categories of
  an existing :class:`repro.sim.trace.Tracer` and converts every
  :class:`~repro.sim.trace.TraceRecord` into an instant event, so the
  fault/reliability traces PR 2 added appear on the same timeline
  without touching their emitters (existing subscribers keep working —
  ``attach`` is just one more subscriber).

Times are simulated integer nanoseconds; the Chrome format's ``ts`` and
``dur`` are microseconds, so values are divided by 1000 (exact for the
common ns granularities, deterministic floats otherwise).  ``pid`` is
used as the node id and ``tid`` as the port/rank, which is how the
trace groups per-node lanes in the viewer.

Like the metrics registry, the timeline only *observes*: no simulation
events are created, so enabling it cannot change simulated time.  The
module-level helpers (:func:`span_begin` / :func:`span_end` /
:func:`instant`) are no-ops while no timeline is installed.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from ..errors import ReproError


class TimelineError(ReproError):
    """Timeline misuse."""


_SCALAR = (str, int, float, bool, type(None))


def _clean_args(args: dict) -> dict:
    """Chrome trace args must be JSON-serializable; coerce the rest."""
    return {k: (v if isinstance(v, _SCALAR) else str(v)) for k, v in args.items()}


class Span:
    """An open span: created by :meth:`Timeline.begin`, closed by
    :meth:`Timeline.end` (which emits the complete event)."""

    __slots__ = ("category", "name", "start_ns", "pid", "tid", "args")

    def __init__(self, category: str, name: str, start_ns: int,
                 pid: int, tid: int, args: dict):
        self.category = category
        self.name = name
        self.start_ns = start_ns
        self.pid = pid
        self.tid = tid
        self.args = args


class Timeline:
    """An append-only list of Chrome trace events on simulated time."""

    def __init__(self):
        self._events: list[dict] = []

    def __len__(self) -> int:
        return len(self._events)

    # -- recording ---------------------------------------------------------

    def begin(self, time_ns: int, category: str, name: str,
              pid: int = 0, tid: int = 0, **args) -> Span:
        """Open a span at ``time_ns``; nothing is recorded until
        :meth:`end` closes it."""
        return Span(category, name, time_ns, pid, tid, args)

    def end(self, time_ns: int, span: Span, **args) -> None:
        """Close ``span``, emitting one complete ('X') event."""
        if time_ns < span.start_ns:
            raise TimelineError(
                f"span {span.name!r} ends at {time_ns} before start {span.start_ns}"
            )
        event = {
            "ph": "X",
            "cat": span.category,
            "name": span.name,
            "pid": span.pid,
            "tid": span.tid,
            "ts": span.start_ns / 1000,
            "dur": (time_ns - span.start_ns) / 1000,
        }
        merged = {**span.args, **args}
        if merged:
            event["args"] = _clean_args(merged)
        self._events.append(event)

    def instant(self, time_ns: int, category: str, name: str,
                pid: int = 0, tid: int = 0, **args) -> None:
        """Record a point ('i') event."""
        event = {
            "ph": "i",
            "s": "t",
            "cat": category,
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts": time_ns / 1000,
        }
        if args:
            event["args"] = _clean_args(args)
        self._events.append(event)

    # -- Tracer bridge -----------------------------------------------------

    def attach(self, tracer, categories: Iterable[str]) -> None:
        """Subscribe to ``categories`` of a :class:`repro.sim.trace.
        Tracer`; each record becomes an instant event.  Other subscribers
        are unaffected."""
        for category in categories:
            tracer.subscribe(category, self._bridge)

    def _bridge(self, rec) -> None:
        payload = rec.payload if isinstance(rec.payload, dict) else (
            {} if rec.payload is None else {"payload": rec.payload}
        )
        self.instant(rec.time, rec.category, rec.label, **payload)

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome trace object (JSON Object Format)."""
        return {"traceEvents": list(self._events), "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        """Stable (sorted-key, compact) JSON — byte-identical for
        identical event sequences."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())


_KNOWN_PHASES = frozenset("XBEibnesfMCP")


def validate_chrome_trace(trace) -> list[str]:
    """Validate a Chrome trace object; returns a list of problems
    (empty = valid).  Accepts the JSON Object Format (dict with
    ``traceEvents``) or the bare JSON Array Format."""
    errors: list[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["traceEvents is missing or not a list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return [f"trace must be a dict or list, got {type(trace).__name__}"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: ts missing or not a number")
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: name missing or not a string")
        for field in ("pid", "tid"):
            if field in ev and not isinstance(ev[field], int):
                errors.append(f"{where}: {field} not an integer")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if ph == "i" and ev.get("s", "t") not in ("t", "p", "g"):
            errors.append(f"{where}: bad instant scope {ev.get('s')!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args not an object")
    return errors


# -- the ambient active timeline -------------------------------------------

_active_tl: Optional[Timeline] = None


def install_timeline(timeline: Optional[Timeline] = None) -> Timeline:
    """Make ``timeline`` (or a fresh one) the process-wide active
    timeline used by the span helpers."""
    global _active_tl
    if _active_tl is not None:
        raise TimelineError("a timeline is already installed")
    _active_tl = timeline if timeline is not None else Timeline()
    return _active_tl


def uninstall_timeline() -> Optional[Timeline]:
    global _active_tl
    timeline, _active_tl = _active_tl, None
    return timeline


def active_timeline() -> Optional[Timeline]:
    return _active_tl


def timeline_enabled() -> bool:
    return _active_tl is not None


def span_begin(env, category: str, name: str, pid: int = 0, tid: int = 0,
               **args) -> Optional[Span]:
    """Open a span at ``env.now`` on the active timeline; returns None
    (and costs one attribute check) when no timeline is installed."""
    tl = _active_tl
    if tl is None:
        return None
    return tl.begin(env.now, category, name, pid=pid, tid=tid, **args)


def span_end(env, span: Optional[Span], **args) -> None:
    """Close a span from :func:`span_begin`; no-op on None."""
    if span is None:
        return
    tl = _active_tl
    if tl is not None:
        tl.end(env.now, span, **args)


def instant(env, category: str, name: str, pid: int = 0, tid: int = 0,
            **args) -> None:
    """Record an instant at ``env.now``; no-op when no timeline."""
    tl = _active_tl
    if tl is not None:
        tl.instant(env.now, category, name, pid=pid, tid=tid, **args)
