"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design rules (see docs/DESIGN_OBS.md):

* **Deterministic.**  Metrics observe the simulation, they never touch
  it: no instrument creates events, acquires resources, or advances
  simulated time.  Snapshots serialize with sorted keys, so the same
  seed yields byte-identical JSON.
* **Zero-cost when disabled.**  Components create their instruments
  through the module-level helpers (:func:`counter`, :func:`gauge`,
  :func:`histogram`).  With no registry installed the helpers hand back
  *unregistered* live objects (counters/gauges) or a shared no-op
  histogram, so per-component attribute aliases (``nic.messages_sent``
  and friends) keep their classic per-instance semantics and hot paths
  pay one integer add at most.
* **Aggregation when enabled.**  With a registry installed
  (:func:`install_registry`), instruments are get-or-create by
  ``name{label=value,...}`` key, so identically-labeled instruments —
  including ones from *different* :class:`~repro.sim.Environment`
  instances built during one run — share one accumulator.  That is the
  point (cluster-wide totals), but it means per-instance attribute
  aliases read shared aggregates while a registry is active; tests that
  want isolation install a fresh registry per scenario (or none).

Hierarchy is by dotted name (``nic.tx.retransmits``); label sets are
kwargs (``node=0, peer=1``) and render sorted, so a key is stable
regardless of construction order.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Optional, Sequence

from ..errors import ReproError


class ObsError(ReproError):
    """Observability subsystem misuse."""


#: Shared latency bucket ladder (simulated nanoseconds): 1 us .. 10 ms.
#: Latency histograms observe integer sim-ns so sums stay integral and
#: snapshots byte-identical across runs.
LATENCY_BUCKETS_NS = (
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
)

#: Message/transfer size ladder (bytes): 64 B .. 4 MB.
SIZE_BUCKETS = (
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
)


def _quantile(bounds: Sequence[int], bucket_counts: Sequence[int],
              count: int, q: float) -> Optional[float]:
    """Shared quantile kernel (see :meth:`Histogram.quantile`)."""
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1], got {q}")
    if count == 0:
        return None
    rank = max(1, math.ceil(q * count))
    cum = 0
    for bound, c in zip(bounds, bucket_counts):
        cum += c
        if cum >= rank:
            return bound
    return math.inf


def snapshot_quantile(hist_snapshot: dict, q: float) -> Optional[float]:
    """:meth:`Histogram.quantile` over a *snapshot* dict (the
    ``histograms[key]`` entry of a registry snapshot, including merged
    per-shard snapshots) — same bucket-upper-bound semantics."""
    bounds = [b for b, _c in hist_snapshot["buckets"]]
    counts = [c for _b, c in hist_snapshot["buckets"]]
    return _quantile(bounds, counts, hist_snapshot["count"], q)


def metric_key(name: str, labels: dict) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("key", "value")

    def __init__(self, key: str = ""):
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    # alias matching repro.sim.trace.Counter's verb
    add = inc

    def __repr__(self) -> str:
        return f"Counter({self.key!r}, value={self.value})"


class Gauge:
    """A settable level (also supports inc/dec for occupancy tracking)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str = ""):
        self.key = key
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({self.key!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations <= each bound,
    plus an overflow bucket, total count and sum."""

    __slots__ = ("key", "bounds", "bucket_counts", "overflow", "count", "sum")

    def __init__(self, key: str = "", buckets: Sequence[int] = LATENCY_BUCKETS_NS):
        bounds = tuple(buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObsError(f"histogram buckets must be strictly increasing, got {bounds}")
        self.key = key
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        i = bisect_left(self.bounds, value)
        if i < len(self.bounds):
            self.bucket_counts[i] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.sum += value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile with *bucket-upper-bound* semantics.

        Returns the upper bound of the first bucket whose cumulative
        count reaches rank ``ceil(q * count)`` (rank 1 for q == 0) — the
        smallest bound b such that at least a q-fraction of observations
        were <= b.  The true quantile lies at or below the returned
        bound, so bucketed quantiles are conservative (never understate
        a latency) and, for a fixed ladder, monotone in q and stable
        under merges.  Observations past the last bound land in the
        overflow bucket, for which no finite upper bound exists:
        ``math.inf`` is returned.  An empty histogram returns ``None``.
        """
        return _quantile(self.bounds, self.bucket_counts, self.count, q)

    def snapshot(self) -> dict:
        return {
            "buckets": [[b, c] for b, c in zip(self.bounds, self.bucket_counts)],
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.key!r}, count={self.count}, sum={self.sum})"


class _NullHistogram:
    """Shared no-op stand-in handed out while no registry is installed,
    so hot paths skip the bisect and the per-call allocation."""

    __slots__ = ()

    def observe(self, value) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> int:
        return 0


NULL_HISTOGRAM = _NullHistogram()

#: Module-level pull collectors: run against *every* registry at
#: snapshot time (e.g. repro.mem publishes HOST_COPIES through one).
_collectors: list[Callable[["MetricsRegistry"], None]] = []


def register_collector(fn: Callable[["MetricsRegistry"], None]) -> None:
    """Add a global pull collector, invoked as ``fn(registry)`` by every
    :meth:`MetricsRegistry.snapshot`.  Idempotent per function object."""
    if fn not in _collectors:
        _collectors.append(fn)


class MetricsRegistry:
    """Hierarchical instrument store, get-or-create by key."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._local_collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(key)
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(key)
        return g

    def histogram(self, name: str, buckets: Optional[Sequence[int]] = None,
                  **labels) -> Histogram:
        key = metric_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(
                key, buckets if buckets is not None else LATENCY_BUCKETS_NS
            )
        elif buckets is not None and tuple(buckets) != h.bounds:
            raise ObsError(
                f"histogram {key!r} already exists with buckets {h.bounds}"
            )
        return h

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Registry-local pull collector (see :func:`register_collector`)."""
        if fn not in self._local_collectors:
            self._local_collectors.append(fn)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Run all collectors, then return a plain-dict snapshot."""
        for fn in _collectors:
            fn(self)
        for fn in self._local_collectors:
            fn(self)
        return {
            "schema": "repro-obs/1",
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.snapshot() for k, h in self._histograms.items()},
        }

    def to_json(self) -> str:
        """Stable, sorted JSON — byte-identical for identical contents."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())


# -- the ambient active registry ------------------------------------------

_active: Optional[MetricsRegistry] = None


def install_registry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Make ``registry`` (or a fresh one) the process-wide active
    registry; instruments created afterwards register into it."""
    global _active
    if _active is not None:
        raise ObsError("a metrics registry is already installed")
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def uninstall_registry() -> Optional[MetricsRegistry]:
    """Deactivate and return the active registry (None if none was)."""
    global _active
    registry, _active = _active, None
    return registry


def active_registry() -> Optional[MetricsRegistry]:
    return _active


def metrics_enabled() -> bool:
    return _active is not None


@contextmanager
def installed_registry(registry: Optional[MetricsRegistry] = None):
    """Context manager: install a registry for the block, then uninstall."""
    reg = install_registry(registry)
    try:
        yield reg
    finally:
        uninstall_registry()


def counter(name: str, **labels) -> Counter:
    """Get-or-create a counter in the active registry; with no registry
    installed, return a fresh unregistered (but live) Counter."""
    if _active is None:
        return Counter(metric_key(name, labels))
    return _active.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """Like :func:`counter`, for gauges."""
    if _active is None:
        return Gauge(metric_key(name, labels))
    return _active.gauge(name, **labels)


def histogram(name: str, buckets: Optional[Sequence[int]] = None, **labels):
    """Get-or-create a histogram; a shared no-op when disabled (unlike
    counters, nothing aliases per-instance histogram state)."""
    if _active is None:
        return NULL_HISTOGRAM
    return _active.histogram(name, buckets=buckets, **labels)


# -- snapshot merging (sharded runs) ---------------------------------------


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters and gauges sum per metric key; histograms sum bucket
    counts positionally (bounds must agree), plus overflow/count/sum.
    Every instrument in the simulator is either additive (byte/event
    counters, busy time, copy totals) or owned by exactly one shard
    (per-node gauges — the other shards never create the key, or create
    it still zero), so summation reproduces exactly the single-process
    registry for a deterministic workload.
    """
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for snap in snapshots:
        if snap.get("schema") != "repro-obs/1":
            raise ObsError(f"cannot merge snapshot with schema {snap.get('schema')!r}")
        for key, value in snap["counters"].items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap["gauges"].items():
            gauges[key] = gauges.get(key, 0) + value
        for key, h in snap["histograms"].items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": [list(b) for b in h["buckets"]],
                    "overflow": h["overflow"],
                    "count": h["count"],
                    "sum": h["sum"],
                }
                continue
            if [b for b, _ in merged["buckets"]] != [b for b, _ in h["buckets"]]:
                raise ObsError(f"histogram {key!r} bucket bounds differ across shards")
            for slot, (_, c) in zip(merged["buckets"], h["buckets"]):
                slot[1] += c
            merged["overflow"] += h["overflow"]
            merged["count"] += h["count"]
            merged["sum"] += h["sum"]
    return {
        "schema": "repro-obs/1",
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def snapshot_to_json(snapshot: dict) -> str:
    """Render a snapshot dict exactly as :meth:`MetricsRegistry.to_json`
    would — byte-identical for identical contents."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
