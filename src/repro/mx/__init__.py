"""MX (Myrinet Express): the next-generation Myrinet interface.

Models MX as the paper co-designed it (section 4.2), including the
kernel API the authors contributed upstream:

* :class:`MxEndpoint` — isend/irecv with integer match bits, request
  objects, and flexible completion (``test``, ``wait``, ``wait_any``) —
  the notification flexibility ORFS and SOCKETS-MX benefit from.
* **Vectorial segments** with explicit memory types
  (:class:`MxSegment`): *user virtual* (MX pins and translates),
  *kernel virtual* (already pinned, translate only), *physical* (caller
  pinned) — the paper's three-address-type design.
* **Message classes** (section 5.1): small messages (<=128 B) go by
  programmed I/O; medium messages (to 32 kB) are copied through
  pre-registered bounce buffers on both sides; large messages use an
  RTS/CTS rendezvous with internal pinning.
* **Copy removal**: ``no_send_copy=True`` sends physically resolvable
  medium messages straight from their segments (+17 % at 32 kB,
  figure 6); ``no_recv_copy=True`` models the *predicted* receive-side
  removal (impossible on the real 2005 hardware because "the NIC does
  not know the address of the receive buffer").
"""

from .api import MxEndpoint, MxRequest
from .memtypes import MemType, MxSegment

__all__ = ["MemType", "MxEndpoint", "MxRequest", "MxSegment"]
