"""MX endpoints: isend/irecv, message classes, flexible completion.

One :class:`MxEndpoint` class serves user and kernel contexts — the
paper's headline result is precisely that the MX kernel interface
performs identically to the user one ("we designed a very generic core
infrastructure so that kernel communications would not suffer of a
user-oriented design", section 5.1).  Context only changes which memory
types are accepted and where addresses resolve.

Message classes (section 5.1) and their completion semantics:

========  ============  =====================================================
class      size          handling
========  ============  =====================================================
small      <= 128 B      host PIO-writes the payload with the descriptor;
                         send request completes at once
medium     <= 32 kB      host copies into a pre-registered bounce ring; the
                         send completes when the copy does (buffered send);
                         the receiver copies out of its ring at match time
large      >  32 kB      RTS/CTS rendezvous; user segments are pinned
                         internally; zero-copy DMA both sides; the send
                         completes when the data has left the host
========  ============  =====================================================

``no_send_copy`` / ``no_recv_copy`` implement the paper's section 5.1
copy-removal experiment for medium messages whose segments resolve to
physical addresses without the bounce buffer (kernel/physical types).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from .. import obs
from ..cluster.node import Node
from ..errors import MXBadSegment, MXError
from ..hw.nic import NicPort, PostedReceive, SendDescriptor
from ..hw.params import (
    ApiCosts,
    MX_KERNEL_COSTS,
    MX_STRATEGY,
    MX_USER_COSTS,
    MxStrategyParams,
)
from ..mem.layout import PhysSegment, sg_from_kernel, sg_from_user
from ..mem.sglist import PayloadRef, seal, write_chunks
from ..sim import Event
from .memtypes import MemType, MxSegment, total_length, user_pages

#: per-byte cost of PIO-writing a small payload through the doorbell
_PIO_PER_BYTE_NS = 3
#: mx_test poll cost
_TEST_NS = 100


@dataclass
class MxRequest:
    """Handle for one in-flight MX operation."""

    kind: str  # "send" | "recv"
    length: int
    match: int
    event: Event = None  # fires when the request is complete
    tag: Any = None
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.event.processed


class MxEndpoint:
    """One MX endpoint (user process or kernel module)."""

    def __init__(
        self,
        node: Node,
        endpoint_id: int,
        context: str = "user",
        strategy: MxStrategyParams = MX_STRATEGY,
        no_send_copy: bool = False,
        no_recv_copy: bool = False,
    ):
        if context not in ("user", "kernel"):
            raise MXError(f"context must be 'user' or 'kernel', got {context!r}")
        self.node = node
        self.endpoint_id = endpoint_id
        self.context = context
        self.costs: ApiCosts = MX_USER_COSTS if context == "user" else MX_KERNEL_COSTS
        self.strategy = strategy
        self.no_send_copy = no_send_copy
        self.no_recv_copy = no_recv_copy
        self.env = node.env
        self.cpu = node.cpu
        self.nic_port: NicPort = node.nic.open_port(endpoint_id, self.costs)
        self._open = True
        # Per-class send accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        _labels = dict(node=node.node_id, ep=endpoint_id)
        self._m_small = obs.counter("mx.sends", cls="small", **_labels)
        self._m_medium = obs.counter("mx.sends", cls="medium", **_labels)
        self._m_medium_zc = obs.counter(
            "mx.sends", cls="medium_zero_copy", **_labels
        )
        self._m_large = obs.counter("mx.sends", cls="large", **_labels)

    @property
    def sends_small(self) -> int:
        return self._m_small.value

    @property
    def sends_medium(self) -> int:
        return self._m_medium.value

    @property
    def sends_medium_zero_copy(self) -> int:
        return self._m_medium_zc.value

    @property
    def sends_large(self) -> int:
        return self._m_large.value

    # -- segment validation / resolution --------------------------------------

    def _check_segments(self, segments: Sequence[MxSegment]) -> None:
        if not segments:
            raise MXBadSegment("a transfer needs at least one segment")
        for seg in segments:
            if seg.kind is not MemType.USER_VIRTUAL and self.context == "user":
                raise MXBadSegment(
                    f"user endpoints only pass user-virtual memory, got {seg.kind}"
                )

    def _gather_payload(self, segments: Sequence[MxSegment]) -> PayloadRef:
        """Host-side gather of the payload into zero-copy chunk views
        (used by the PIO and bounce-ring copy paths)."""
        parts = []
        for seg in segments:
            if seg.kind is MemType.USER_VIRTUAL:
                parts.append(seg.space.read_payload(seg.vaddr, seg.length))
            elif seg.kind is MemType.KERNEL_VIRTUAL:
                parts.append(self.node.kspace.read_payload(seg.vaddr, seg.length))
            else:
                parts.append(PayloadRef.from_phys(self.node.phys, seg.sg))
        return seal(PayloadRef.concat(parts))

    def _scatter_payload(self, segments: Sequence[MxSegment], data: PayloadRef) -> None:
        """Host-side scatter of a received payload into its segments."""
        offset = 0
        for seg in segments:
            if offset >= data.length:
                break
            take = min(seg.length, data.length - offset)
            part = data.slice(offset, take)
            if seg.kind is MemType.USER_VIRTUAL:
                seg.space.write_payload(seg.vaddr, part)
            elif seg.kind is MemType.KERNEL_VIRTUAL:
                self.node.kspace.write_payload(seg.vaddr, part)
            else:
                self.node.phys.write_phys_sg(seg.sg, part)
            offset += take

    def _resolve_sg(self, segments: Sequence[MxSegment]) -> list[PhysSegment]:
        """Physical scatter/gather for zero-copy paths (pages must be
        resident/pinned by the time this is called)."""
        out: list[PhysSegment] = []
        for seg in segments:
            if seg.kind is MemType.USER_VIRTUAL:
                out.extend(sg_from_user(seg.space, seg.vaddr, seg.length))
            elif seg.kind is MemType.KERNEL_VIRTUAL:
                out.extend(sg_from_kernel(self.node.kspace, seg.vaddr, seg.length))
            else:
                out.extend(seg.sg)
        return out

    def _zero_copy_eligible(self, segments: Sequence[MxSegment]) -> bool:
        """Medium copy removal applies when every segment already has a
        physical resolution the NIC can use without the bounce ring —
        i.e. no user-virtual pieces ("this optimization is possible
        since the network card interface does only manipulate physical
        addresses in MX", section 5.1)."""
        return all(seg.kind is not MemType.USER_VIRTUAL for seg in segments)

    # -- sending ---------------------------------------------------------------------

    def isend(
        self,
        dst_node: int,
        dst_endpoint: int,
        segments: Sequence[MxSegment],
        match: int = 0,
        tag: Any = None,
        meta: Any = None,
    ):
        """Generator: post a send; returns an :class:`MxRequest`."""
        self._check_open()
        self._check_segments(segments)
        length = total_length(segments)
        req = MxRequest(kind="send", length=length, match=match,
                        event=self.env.event("mx.send"), tag=tag)
        yield from self.cpu.work(self.costs.host_send_ns)
        s = self.strategy
        if length <= s.small_max:
            yield from self._send_small(dst_node, dst_endpoint, segments, match, req, meta)
        elif length <= s.medium_max:
            yield from self._send_medium(dst_node, dst_endpoint, segments, match, req, meta)
        else:
            yield from self._send_large(dst_node, dst_endpoint, segments, match, req, meta)
        return req

    def _send_small(self, dst_node, dst_endpoint, segments, match, req, meta=None):
        self._m_small.inc()
        data = self._gather_payload(segments)
        # Payload is PIO-written with the descriptor.
        yield from self.cpu.work(
            self.node.nic.doorbell_time_ns() + _PIO_PER_BYTE_NS * data.length
        )
        desc = SendDescriptor(
            dst_nic=dst_node, dst_port=dst_endpoint, match=match, size=req.length,
            src_port=self.endpoint_id, data=data, meta=meta,
            fw_send_ns=self.costs.fw_send_ns, tag=req.tag,
        )
        self.node.nic.submit(desc)
        # The host buffer was consumed by the PIO write: complete now.
        req.event.succeed(req)

    def _send_medium(self, dst_node, dst_endpoint, segments, match, req, meta=None):
        zero_copy = self.no_send_copy and self._zero_copy_eligible(segments)
        if zero_copy:
            self._m_medium_zc.inc()
            sg = self._resolve_sg(segments)
            data, src_sg = None, sg
        else:
            self._m_medium.inc()
            # Copy into the pre-registered bounce ring ("The standard MX
            # implementation uses a copy on both sides when processing
            # medium side messages", section 5.1).
            yield from self.cpu.copy(req.length)
            data, src_sg = self._gather_payload(segments), None
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        desc = SendDescriptor(
            dst_nic=dst_node, dst_port=dst_endpoint, match=match, size=req.length,
            src_port=self.endpoint_id, data=data, sg=src_sg, meta=meta,
            fw_send_ns=self.costs.fw_send_ns, tag=req.tag,
        )
        completion = self.node.nic.submit(desc)
        if zero_copy:
            # Sending in place: the buffer is busy until the DMA is done.
            completion.add_callback(lambda ev: req.event.succeed(req))
        else:
            # Buffered send: complete as soon as the copy has happened.
            req.event.succeed(req)

    def _send_large(self, dst_node, dst_endpoint, segments, match, req, meta=None):
        self._m_large.inc()
        pinned: list = []
        npages = user_pages(segments)
        if npages:
            # MX pins user zones internally ("Larger messages are pinned
            # internally", section 5.1).
            yield from self.cpu.pin_pages(npages)
            for seg in segments:
                if seg.kind is MemType.USER_VIRTUAL:
                    pinned.extend(seg.space.pin_range(seg.vaddr, seg.length))
        sg = self._resolve_sg(segments)
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        desc = SendDescriptor(
            dst_nic=dst_node, dst_port=dst_endpoint, match=match, size=req.length,
            src_port=self.endpoint_id, sg=sg, rendezvous=True, meta=meta,
            large_setup_ns=self.strategy.large_setup_ns,
            fw_send_ns=self.costs.fw_send_ns, tag=req.tag,
        )
        completion = self.node.nic.submit(desc)

        def _done(ev):
            for frame in pinned:
                frame.unpin()
            req.event.succeed(req)

        completion.add_callback(_done)

    # -- receiving ---------------------------------------------------------------------

    def irecv(self, segments: Sequence[MxSegment], match: Optional[int] = None,
              tag: Any = None):
        """Generator: post a receive; returns an :class:`MxRequest`."""
        self._check_open()
        self._check_segments(segments)
        length = total_length(segments)
        req = MxRequest(kind="recv", length=length, match=match or 0,
                        event=self.env.event("mx.recv"), tag=tag)
        yield from self.cpu.work(self.costs.host_recv_post_ns)
        ring_path = (
            length <= self.strategy.medium_max
            and not (self.no_recv_copy and self._zero_copy_eligible(segments))
        )
        if ring_path:
            # Small/medium land in the endpoint's receive ring; the host
            # copies them out at match time (the receive-side copy of
            # section 5.1).
            nic_event = self.env.event("mx.ring")
            self.nic_port.post_receive(
                PostedReceive(match=match, capacity=length, keep_data=True,
                              completion=nic_event, tag=tag)
            )
            self.env.process(
                self._ring_copy_out(nic_event, segments, req),
                name="mx.ringcopy",
            )
        else:
            pinned: list = []
            npages = user_pages(segments)
            if npages:
                yield from self.cpu.pin_pages(npages)
                for seg in segments:
                    if seg.kind is MemType.USER_VIRTUAL:
                        pinned.extend(seg.space.pin_range(seg.vaddr, seg.length))
            sg = self._resolve_sg(segments)
            nic_event = self.env.event("mx.zcrecv")
            self.nic_port.post_receive(
                PostedReceive(match=match, capacity=length, dest_sg=sg,
                              completion=nic_event, tag=tag)
            )

            def _done(ev):
                for frame in pinned:
                    frame.unpin()
                req.result = ev.value
                req.event.succeed(req)

            nic_event.add_callback(_done)
        return req

    def _ring_copy_out(self, nic_event: Event, segments, req: MxRequest):
        completion = yield nic_event
        yield from self.cpu.copy(completion.size)
        if completion.data is not None:
            self._scatter_payload(segments, completion.data)
        req.result = completion
        req.event.succeed(req)

    # -- completion -------------------------------------------------------------------

    def test(self, req: MxRequest):
        """Generator: mx_test — non-blocking completion poll."""
        yield from self.cpu.work(_TEST_NS)
        return req.completed

    def wait(self, req: MxRequest, blocking: bool = False,
             timeout_ns: Optional[int] = None):
        """Generator: mx_wait — wait for one request.

        ``blocking=True`` models sleeping (interrupt wakeup) instead of
        polling; MX's wakeup is cheap (section 5.2 praises its flexible
        notification), but it is still charged.

        ``timeout_ns`` models mx_wait's timeout argument: if the request
        has not completed within the budget, returns None and leaves the
        request pending (the caller may retry, or abandon it).  The
        default None keeps the original wait-forever path.
        """
        if not req.event.processed:
            if timeout_ns is None:
                yield req.event
            else:
                timer = self.env.timeout(timeout_ns)
                yield self.env.any_of([req.event, timer])
                if not req.event.triggered:
                    return None
        yield from self.cpu.work(self.costs.host_event_ns)
        if blocking:
            yield from self.cpu.work(self.costs.blocking_wakeup_ns)
        return req

    def wait_any(self, requests: Sequence[MxRequest], blocking: bool = False):
        """Generator: wait for any of several requests — the completion
        flexibility the paper contrasts with GM's unique event queue
        ("allowing the application to wait on a single or any pending
        request", section 5.2)."""
        if not requests:
            raise MXError("wait_any needs at least one request")
        ready = [r for r in requests if r.event.processed]
        if not ready:
            yield self.env.any_of([r.event for r in requests])
            ready = [r for r in requests if r.event.processed]
        yield from self.cpu.work(self.costs.host_event_ns)
        if blocking:
            yield from self.cpu.work(self.costs.blocking_wakeup_ns)
        return ready[0]

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        self.nic_port.close()

    def _check_open(self) -> None:
        if not self._open:
            raise MXError(f"endpoint {self.endpoint_id} is closed")
