"""MX memory-address types and vectorial segment descriptors.

Paper section 4.2: "Its in-kernel API proposes a native and optimized
support for different types of memory addressing.  The application has
to pass this type of address to MX:

* User virtual: MX pins the target zones and translates their addresses
  into physical addresses.
* Kernel virtual: These zones are often already pinned.  MX just has to
  translate addresses.
* Physical: The application is responsible for pinning memory if needed."

The explicit type also resolves the ambiguity the paper highlights:
user and kernel spaces "contain same virtual addresses pointing to
different physical locations", so the network layer cannot guess.

An MX transfer is a *vector* of segments (GM has no equivalent —
section 4.1 argues this is what multi-page page-cache transfers need).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import MXBadSegment
from ..mem.addrspace import AddressSpace
from ..mem.layout import PhysSegment


class MemType(enum.Enum):
    """The three address types of the MX kernel API."""

    USER_VIRTUAL = "user"
    KERNEL_VIRTUAL = "kernel"
    PHYSICAL = "physical"


@dataclass(frozen=True)
class MxSegment:
    """One element of a vectorial MX transfer.

    Use the class methods; the constructor field mix depends on type:

    * ``MxSegment.user(space, vaddr, length)``
    * ``MxSegment.kernel(vaddr, length)`` — resolved against the
      endpoint node's kernel space
    * ``MxSegment.physical(sg)`` — already-physical pieces
    """

    kind: MemType
    length: int
    space: Optional[AddressSpace] = None
    vaddr: int = 0
    sg: Optional[tuple[PhysSegment, ...]] = None

    @classmethod
    def user(cls, space: AddressSpace, vaddr: int, length: int) -> "MxSegment":
        if length <= 0:
            raise MXBadSegment(f"user segment length must be positive, got {length}")
        if space is None:
            raise MXBadSegment("user segment needs its address space")
        return cls(kind=MemType.USER_VIRTUAL, length=length, space=space, vaddr=vaddr)

    @classmethod
    def kernel(cls, vaddr: int, length: int) -> "MxSegment":
        if length <= 0:
            raise MXBadSegment(f"kernel segment length must be positive, got {length}")
        return cls(kind=MemType.KERNEL_VIRTUAL, length=length, vaddr=vaddr)

    @classmethod
    def physical(cls, sg: Sequence[PhysSegment]) -> "MxSegment":
        sg = tuple(sg)
        if not sg:
            raise MXBadSegment("physical segment needs at least one piece")
        total = sum(p.length for p in sg)
        return cls(kind=MemType.PHYSICAL, length=total, sg=sg)


def total_length(segments: Sequence[MxSegment]) -> int:
    """Byte length of a vectorial transfer."""
    return sum(s.length for s in segments)


def user_pages(segments: Sequence[MxSegment]) -> int:
    """How many user pages an MX-internal pin would touch."""
    from ..units import pages_spanned

    return sum(
        pages_spanned(s.vaddr, s.length)
        for s in segments
        if s.kind is MemType.USER_VIRTUAL
    )
