"""Deterministic cluster controller for the replicated NBD volume.

The controller is the configuration service of :mod:`repro.nbd.replica`:
it owns the numbered chain configuration, detects replica death, and
orchestrates rejoin.  Two detection paths feed it:

* **lease timeouts** — every replica heartbeats; a member whose lease
  expires is declared dead (covers silent crashes and partitions);
* **dead-peer reports** — when a replica's forward hits the NIC
  reliability layer's retransmission give-up (:class:`repro.errors.
  MessageDropped`), it reports the successor immediately, so the common
  crash failover completes in transmission-error time rather than a
  full lease period (the fabric's dead-peer signal doing the job the
  paper assigns to hardware-level error reporting).

Reconfiguration protocol: bump the epoch, push ``Configure`` to every
member, and collect ``ConfigAck``.  Only once *all* members acked is
the configuration *published* — pushed to registered clients and
returned from ``GetConfig`` — which keeps the invariant that a client's
epoch never runs ahead of any replica's, so the tail-read epoch check
in the replica stays sound.  A joining replica withholds its ack until
its catch-up delta is applied, so publication also implies the new tail
is readable.

Failover and resync times are first-class :mod:`repro.obs` metrics
(``nbd.replica.failover_ns``, ``nbd.replica.resync_ns``) and are kept
as plain records on the controller for the bench driver's tables.
Everything is driven by simulated time; a seeded run reproduces the
same reconfiguration history byte-for-byte.
"""

from __future__ import annotations

from .. import obs
from ..cluster.node import Node
from ..errors import NetworkError, NodeCrashed
from .replica import (
    ChainConfig,
    ConfigAck,
    Configure,
    ConfigReply,
    GetConfig,
    Heartbeat,
    Inbox,
    JoinReady,
    JoinReq,
    PeerDead,
    ReplicaParams,
    SyncFrom,
)

CONTROL_OP_NS = 400


class ChainController:
    """Configuration master for one replicated volume."""

    def __init__(self, node: Node, endpoint_id: int, replicas: list[int],
                 replica_port: int, params: ReplicaParams = ReplicaParams(),
                 tracer=None):
        self.node = node
        self.env = node.env
        self.me = node.node_id
        self.params = params
        self.replica_port = replica_port
        self.tracer = tracer
        self.inbox = Inbox(node, endpoint_id)
        self.chain: list[int] = list(replicas)
        self.cfg_epoch = 0
        self.current = ChainConfig(0, ())
        #: Last fully-acknowledged configuration — the only one clients
        #: ever see.
        self.published = ChainConfig(0, ())
        self.clients: list[tuple[int, int]] = []
        self.lease: dict[int, int] = {}
        self.acked: dict[int, int] = {}
        self.joining: dict[int, int] = {}  # node -> join start time
        self._last_push = 0
        self._last_told: dict[int, int] = {}  # non-member -> epoch last sent
        #: Plain records for the bench driver's failover table.
        self.failovers: list[dict] = []
        self.resyncs: list[dict] = []
        self._open_failover: dict[int, tuple[int, str, int]] = {}
        self._ready = self.env.event(f"control{self.me}.ready")
        self._m_deaths = {}
        self._m_reconfigs = obs.counter("nbd.replica.reconfigs")

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        self.env.process(self._serve(), name=f"control{self.me}.serve")
        self.env.process(self._tick(), name=f"control{self.me}.tick")
        return self._ready

    def _emit(self, label: str, payload=None) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "control", label, payload)

    def _serve(self):
        yield from self.inbox.setup()
        # Grace: leases start counting from the initial push.
        for n in self.chain:
            self.lease[n] = self.env.now
        yield from self._push_config(joined=-1)
        self._ready.succeed(None)
        while True:
            meta, _payload, src = yield from self.inbox.recv()
            yield from self.node.cpu.work(CONTROL_OP_NS)
            try:
                yield from self._dispatch(meta, src)
            except NodeCrashed:
                continue
            except NetworkError:
                continue

    def _dispatch(self, meta, src: int):
        if isinstance(meta, Heartbeat):
            yield from self._h_heartbeat(meta)
        elif isinstance(meta, ConfigAck):
            yield from self._h_config_ack(meta)
        elif isinstance(meta, PeerDead):
            yield from self._h_peer_dead(meta)
        elif isinstance(meta, JoinReq):
            yield from self._h_join_req(meta)
        elif isinstance(meta, JoinReady):
            yield from self._h_join_ready(meta)
        elif isinstance(meta, GetConfig):
            yield from self._h_get_config(meta)

    def _send_quiet(self, dst: tuple[int, int], meta):
        try:
            yield from self.inbox.send(dst, meta)
        except NodeCrashed:
            raise
        except NetworkError:
            pass

    # -- configuration push --------------------------------------------------

    def _push_config(self, joined: int):
        self.cfg_epoch += 1
        self.current = ChainConfig(self.cfg_epoch, tuple(self.chain), joined)
        self.acked = {}
        self._last_push = self.env.now
        self._m_reconfigs.inc()
        self._emit("configure", {"epoch": self.cfg_epoch,
                                 "chain": list(self.chain),
                                 "joined": joined})
        for n in self.chain:
            yield from self._send_quiet((n, self.replica_port),
                                        Configure(self.current))

    def _repush_unacked(self):
        for n in self.chain:
            if self.acked.get(n, 0) < self.cfg_epoch:
                yield from self._send_quiet((n, self.replica_port),
                                            Configure(self.current))
        self._last_push = self.env.now

    def _h_config_ack(self, m: ConfigAck):
        if m.epoch != self.cfg_epoch:
            return
        self.acked[m.node] = max(self.acked.get(m.node, 0), m.epoch)
        if any(self.acked.get(n, 0) < self.cfg_epoch for n in self.chain):
            return
        if self.published.epoch == self.cfg_epoch:
            return  # duplicate final ack
        self.published = self.current
        self._emit("published", {"epoch": self.cfg_epoch,
                                 "chain": list(self.chain)})
        open_ = self._open_failover.pop(self.cfg_epoch, None)
        if open_ is not None:
            t0, cause, peer = open_
            span_ns = self.env.now - t0
            if cause == "rejoin":
                obs.histogram("nbd.replica.resync_ns").observe(span_ns)
                self.resyncs.append({
                    "node": peer, "start_ns": t0, "done_ns": self.env.now,
                    "epoch": self.cfg_epoch,
                })
            else:
                obs.histogram("nbd.replica.failover_ns",
                              cause=cause).observe(span_ns)
                self.failovers.append({
                    "peer": peer, "cause": cause, "detect_ns": t0,
                    "done_ns": self.env.now, "epoch": self.cfg_epoch,
                })
            self._emit("reconfig_done", {"epoch": self.cfg_epoch,
                                         "cause": cause, "peer": peer,
                                         "span_ns": span_ns})
        for client in self.clients:
            yield from self._send_quiet(client, Configure(self.published))

    # -- failure detection ---------------------------------------------------

    def _tick(self):
        params = self.params
        while True:
            yield self.env.timeout(params.lease_check_ns)
            now = self.env.now
            for n in list(self.chain):
                if now - self.lease.get(n, now) > params.lease_ns:
                    yield from self._declare_dead(n, "lease")
            if (self.published.epoch < self.cfg_epoch
                    and now - self._last_push > params.lease_ns):
                # A Configure or ack got lost (e.g. crash window):
                # re-push to whoever has not acknowledged.
                yield from self._repush_unacked()

    def _count_death(self, cause: str):
        ctr = self._m_deaths.get(cause)
        if ctr is None:
            ctr = self._m_deaths[cause] = obs.counter(
                "nbd.replica.deaths", cause=cause)
        ctr.inc()

    def _declare_dead(self, peer: int, cause: str):
        if peer not in self.chain or len(self.chain) == 1:
            # Never shrink to an empty chain: a lone replica is kept
            # even with an expired lease (it may be partitioned, and
            # there is no data anywhere else).
            return
        self.chain.remove(peer)
        self._count_death(cause)
        self._emit("death", {"peer": peer, "cause": cause})
        self._open_failover[self.cfg_epoch + 1] = (self.env.now, cause, peer)
        yield from self._push_config(joined=-1)

    def _h_heartbeat(self, m: Heartbeat):
        self.lease[m.node] = self.env.now
        if m.node in self.chain or m.node in self.joining:
            return
        # A live non-member (evicted by a false positive, or rebooted):
        # tell it the published configuration once per epoch — seeing a
        # chain without itself makes it send JoinReq.
        if self._last_told.get(m.node, 0) < self.published.epoch:
            self._last_told[m.node] = self.published.epoch
            yield from self._send_quiet((m.node, self.replica_port),
                                        Configure(self.published))

    def _h_peer_dead(self, m: PeerDead):
        if m.reporter not in self.chain:
            return
        yield from self._declare_dead(m.peer, "peer")

    # -- rejoin --------------------------------------------------------------

    def _h_join_req(self, m: JoinReq):
        n = m.node
        self.lease[n] = self.env.now
        if n in self.chain:
            yield from self._send_quiet((n, self.replica_port),
                                        Configure(self.current))
            return
        started = self.joining.get(n)
        window = self.params.join_retry_leases * self.params.lease_ns
        if started is not None and self.env.now - started < window:
            return  # a resync pass is already under way
        self.joining[n] = self.env.now
        tail = self.chain[-1]
        self._emit("join_start", {"node": n, "tail": tail,
                                  "suspect": len(m.suspect)})
        yield from self._send_quiet((n, self.replica_port),
                                    SyncFrom(tail, self.cfg_epoch))

    def _h_join_ready(self, m: JoinReady):
        n = m.node
        if n in self.chain:
            return
        started = self.joining.pop(n, self.env.now)
        self.chain.append(n)
        self._open_failover[self.cfg_epoch + 1] = (started, "rejoin", n)
        self._emit("join_ready", {"node": n})
        self.lease[n] = self.env.now
        self._last_told.pop(n, None)
        yield from self._push_config(joined=n)

    # -- clients -------------------------------------------------------------

    def _h_get_config(self, m: GetConfig):
        if m.client not in self.clients:
            self.clients.append(m.client)
        yield from self._send_quiet(m.client, ConfigReply(self.published))
