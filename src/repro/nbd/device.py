"""The NBD client device and its block server.

The server exports one flat block device (a byte array, block size =
page size).  The client is a kernel block device: reads and writes go
block-at-a-time through the node's page cache, with the network
transfer landing directly in the cache frame by physical address —
the same per-page pattern as buffered ORFS (paper sections 2.3.1, 6).

The wire protocol reuses ORFA's READ/WRITE requests against a single
device inode, so the NBD server is simply an :class:`repro.orfa.server.
OrfaServer` whose filesystem holds one pre-sized device file.
"""

from __future__ import annotations

import itertools

from typing import Optional

from .. import obs
from ..cluster.node import Node
from ..core.channel import KernelChannel
from ..errors import Eio, Einval, MessageDropped, NetworkError, TimeoutError_
from ..kernel.memfs import MemFs
from ..mem.layout import sg_from_frames
from ..mx.memtypes import MxSegment
from ..orfa.protocol import OrfaOp, OrfaRequest
from ..orfa.server import OrfaServer
from ..units import PAGE_SIZE

BLOCK_SIZE = PAGE_SIZE

#: block-layer bookkeeping per request (request queue, elevator)
BLOCK_LAYER_NS = 800


class NbdServer:
    """A block server: an ORFA server exporting one device file."""

    def __init__(self, node: Node, port_id: int, api: str,
                 device_blocks: int, name: str = "nbd0"):
        self.node = node
        self.fs = MemFs(node.env, node.cpu)
        self.server = OrfaServer(node, port_id, api=api, fs=self.fs)
        attrs_gen = self.fs.create(1, name)
        attrs = node.env.run(until=node.env.process(attrs_gen))
        self.device_inode = attrs.inode_id
        self.device_blocks = device_blocks
        self.fs.write_raw(self.device_inode, 0,
                          bytes(device_blocks * BLOCK_SIZE))

    def start(self):
        return self.server.start()


class NbdDevice:
    """The in-kernel NBD client: a block device over a KernelChannel."""

    _request_ids = itertools.count(2_000_000)

    def __init__(self, node: Node, channel: KernelChannel,
                 server: tuple[int, int], device_inode: int,
                 device_blocks: int, timeout_ns: Optional[int] = None,
                 max_retries: int = 3, tracer=None):
        self.node = node
        self.channel = channel
        self.server = server
        self.device_inode = device_inode
        self.device_blocks = device_blocks
        self.cpu = node.cpu
        self.pagecache = node.pagecache
        #: Per-block-request reply deadline; None (the default) waits
        #: forever — the original behavior over a reliable fabric.
        self.timeout_ns = timeout_ns
        #: Extra attempts after the first times out; exhaustion raises
        #: Eio (the block layer's error completion) instead of hanging.
        self.max_retries = max_retries
        self.tracer = tracer
        self._cache_key = -device_inode  # block-cache namespace
        self._reply_buf = node.kspace.kmalloc(4096)
        self._req_buf = node.kspace.kmalloc(4096)
        # Block-traffic accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        self._m_read = obs.counter("nbd.blocks_read", node=node.node_id)
        self._m_written = obs.counter("nbd.blocks_written", node=node.node_id)
        self._m_retries = obs.counter("nbd.request_retries", node=node.node_id)
        self._m_failfast = obs.counter("nbd.request_failfast", node=node.node_id)

    @property
    def blocks_read(self) -> int:
        return self._m_read.value

    @property
    def blocks_written(self) -> int:
        return self._m_written.value

    @property
    def request_retries(self) -> int:
        return self._m_retries.value

    # -- raw block transfer (what the block layer submits) --------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.device_blocks:
            raise Einval(f"block {block} out of device range")

    def read_block(self, block: int, frame):
        """Generator: fill ``frame`` with one device block (physical
        address transfer, no copies)."""
        self._check_block(block)
        yield from self.cpu.work(BLOCK_LAYER_NS)
        yield from self._block_rpc(
            OrfaOp.READ, block, BLOCK_SIZE,
            recv_segs=lambda: [
                MxSegment.physical(sg_from_frames([frame], 0, BLOCK_SIZE))
            ],
            send_segs=lambda req: [
                MxSegment.kernel(self._req_buf.vaddr, req.wire_size())
            ],
        )
        self._m_read.inc()

    def write_block(self, block: int, frame, length: int = BLOCK_SIZE):
        """Generator: write one device block straight from ``frame``."""
        self._check_block(block)
        yield from self.cpu.work(BLOCK_LAYER_NS)
        yield from self._block_rpc(
            OrfaOp.WRITE, block, length,
            recv_segs=lambda: [
                MxSegment.kernel(self._reply_buf.vaddr, 4096)
            ],
            send_segs=lambda req: [
                MxSegment.physical(sg_from_frames([frame], 0, length))
            ],
        )
        self._m_written.inc()

    def _block_rpc(self, op, block: int, length: int, recv_segs, send_segs):
        """Generator: one block request under the device's retry budget.

        Block reads and writes are idempotent, so each timed-out attempt
        is simply re-issued under a fresh request id (the abandoned
        receive completes harmlessly if the stale reply shows up late).
        Budget exhaustion — or a fabric-reported dead peer — surfaces as
        :class:`Eio`, the block layer's error completion, instead of an
        I/O that hangs forever.

        The two paths are distinguished: :class:`MessageDropped` means
        the reliability layer already burned its retransmission budget
        and declared the server dead, so retrying the same server is
        pointless — the device fails over immediately with
        ``Eio(reason="dead_peer")``.  A plain :class:`TimeoutError_`
        keeps retrying the same server and exhausts into
        ``Eio(reason="timeout")``.
        """
        attempts = 1 if self.timeout_ns is None else 1 + self.max_retries
        env = self.node.env
        t0 = env.now
        op_name = op.name.lower()
        span = obs.span_begin(env, "nbd", f"block.{op_name}",
                              pid=self.node.node_id, block=block)
        for attempt in range(attempts):
            req = OrfaRequest(op=op, request_id=next(NbdDevice._request_ids),
                              inode=self.device_inode,
                              offset=block * BLOCK_SIZE, length=length)
            recv = yield from self.channel.post_recv(
                recv_segs(), match=req.request_id,
            )
            try:
                send = yield from self.channel.send(
                    self.server[0], self.server[1], send_segs(req),
                    match=0, meta=req,
                )
            except MessageDropped as exc:
                # The fabric declared the server dead: fail over now
                # instead of burning the remaining retry budget on it.
                self._m_failfast.inc()
                obs.span_end(env, span, outcome="dead_peer")
                raise Eio(f"nbd block {block}: server declared dead: {exc}",
                          reason="dead_peer") from exc
            except NetworkError as exc:
                obs.span_end(env, span, outcome="error")
                raise Eio(f"nbd block {block}: {exc}",
                          reason="network") from exc
            try:
                yield from self.channel.wait_recv(
                    recv, timeout_ns=self.timeout_ns
                )
            except TimeoutError_:
                self._m_retries.inc()
                if self.tracer is not None:
                    self.tracer.emit(self.node.env.now, "rpc", "timeout", {
                        "dev": "nbd", "block": block, "attempt": attempt + 1,
                    })
                continue
            if not send.event.processed:
                yield from self.channel.wait_send(send)
            obs.span_end(env, span, outcome="ok")
            if obs.metrics_enabled():
                obs.histogram("nbd.request.latency_ns",
                              op=op_name).observe(env.now - t0)
            return
        obs.span_end(env, span, outcome="timeout")
        raise Eio(
            f"nbd block {block}: no reply after {attempts} attempts "
            f"of {self.timeout_ns} ns each",
            reason="timeout",
        )

    # -- buffered access through the block cache ---------------------------------

    def read(self, space, vaddr: int, offset: int, length: int):
        """Generator: buffered read through the page cache — the access
        pattern of a mounted filesystem on the device.  Returns bytes
        read."""
        if offset < 0 or offset + length > self.device_blocks * BLOCK_SIZE:
            raise Einval(f"read [{offset}, {offset + length}) out of device")
        done = 0
        pos = offset
        while done < length:
            block = pos // BLOCK_SIZE
            in_block = pos % BLOCK_SIZE
            chunk = min(length - done, BLOCK_SIZE - in_block)
            page = self.pagecache.find(self._cache_key, block)
            if page is None or not page.uptodate:
                if page is None:
                    page = self.pagecache.add(self._cache_key, block)
                yield from self.read_block(block, page.frame)
                page.uptodate = True
            yield from self.cpu.copy(chunk)
            space.write_payload(vaddr + done, page.payload(in_block, chunk))
            pos += chunk
            done += chunk
        return done

    def write(self, space, vaddr: int, offset: int, length: int):
        """Generator: buffered write (write-back on flush)."""
        if offset < 0 or offset + length > self.device_blocks * BLOCK_SIZE:
            raise Einval(f"write [{offset}, {offset + length}) out of device")
        done = 0
        pos = offset
        while done < length:
            block = pos // BLOCK_SIZE
            in_block = pos % BLOCK_SIZE
            chunk = min(length - done, BLOCK_SIZE - in_block)
            page = self.pagecache.find(self._cache_key, block)
            if page is None:
                page = self.pagecache.add(self._cache_key, block)
                if chunk < BLOCK_SIZE:
                    yield from self.read_block(block, page.frame)
                page.uptodate = True
            yield from self.cpu.copy(chunk)
            page.fill(in_block, space.read_payload(vaddr + done, chunk))
            page.dirty = True
            pos += chunk
            done += chunk
        return done

    def flush(self):
        """Generator: write every dirty cached block back to the server."""
        for page in self.pagecache.dirty_pages(self._cache_key):
            yield from self.write_block(page.index, page.frame)
            page.dirty = False
