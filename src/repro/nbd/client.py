"""Client of the replicated NBD volume, with an operation history.

:class:`ReplicatedNbdDevice` is the failover-aware sibling of
:class:`repro.nbd.device.NbdDevice`: writes go to the chain head, reads
to the tail, and the device re-resolves the chain configuration from
the controller whenever a request times out, the fabric fails fast with
a dead-peer signal, or a replica answers ``wrong_config``.

Every logical operation keeps **one request id across all of its
retries**, so replicas deduplicate retried writes (at-most-once
application per id) and late replies of earlier attempts complete the
same logical operation — both facts the linearizability checker relies
on.

The device records the client-observed history — invocation time,
completion time, and value for each operation — in the exact form
:mod:`repro.nbd.linearize` consumes.  Operations that exhaust their
retry budget stay *pending* in the history (``complete is None``): the
write may or may not have taken effect, and the checker treats either
as legal.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Optional

from .. import obs
from ..cluster.node import Node
from ..errors import Eio, MessageDropped, NetworkError, NodeCrashed
from .replica import (
    ChainConfig,
    ConfigReply,
    Configure,
    GetConfig,
    Inbox,
    ReadReply,
    ReadReq,
    ReplicaParams,
    WriteReply,
    WriteReq,
    decode_value,
    encode_value,
)


@dataclass
class Op:
    """One client-observed operation (the linearizability checker's
    input).  ``complete is None`` means the op never completed — its
    effect (for writes) is unknown."""

    kind: str  # "w" | "r"
    block: int
    token: int  # written value, or value observed by the read
    invoke_ns: int
    complete_ns: Optional[int] = None
    ok: bool = False
    req_id: int = 0


@dataclass
class History:
    """The per-run operation history, in invocation order."""

    ops: list[Op] = field(default_factory=list)

    def append(self, op: Op) -> Op:
        self.ops.append(op)
        return op


class ReplicatedNbdDevice:
    """Block client for a chain-replicated volume."""

    _req_ids = itertools.count(7_000_000)

    def __init__(self, node: Node, endpoint_id: int,
                 controller: tuple[int, int], replica_port: int,
                 params: ReplicaParams = ReplicaParams(),
                 history: Optional[History] = None, tracer=None):
        self.node = node
        self.env = node.env
        self.me = node.node_id
        self.port = endpoint_id
        self.controller = controller
        self.replica_port = replica_port
        self.params = params
        self.history = history if history is not None else History()
        self.tracer = tracer
        self.inbox = Inbox(node, endpoint_id)
        self.config = ChainConfig(0, ())
        self._waiting: dict[int, object] = {}  # req_id -> Event
        self._cfg_waiters: list = []
        self._ready = self.env.event(f"rnbd{self.me}.ready")
        self._m_writes = obs.counter("nbd.replica.client_writes", node=self.me)
        self._m_reads = obs.counter("nbd.replica.client_reads", node=self.me)
        self._m_retry = {}
        self._m_failed = obs.counter("nbd.replica.client_failures",
                                     node=self.me)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        self.env.process(self._pump(), name=f"rnbd{self.me}.pump")
        return self._ready

    def _retry_counter(self, why: str):
        ctr = self._m_retry.get(why)
        if ctr is None:
            ctr = self._m_retry[why] = obs.counter(
                "nbd.replica.client_retries", node=self.me, why=why)
        return ctr

    def _pump(self):
        yield from self.inbox.setup()
        self._ready.succeed(None)
        while True:
            meta, payload, _src = yield from self.inbox.recv()
            if isinstance(meta, (WriteReply, ReadReply)):
                ev = self._waiting.pop(meta.req_id, None)
                if ev is not None:
                    ev.succeed((meta, payload))
            elif isinstance(meta, (Configure, ConfigReply)):
                self._adopt(meta.config)

    def _adopt(self, config: Optional[ChainConfig]):
        if config is None:
            return
        if config.epoch > self.config.epoch:
            self.config = config
            if self.tracer is not None:
                self.tracer.emit(self.env.now, "client", "adopt_config", {
                    "node": self.me, "epoch": config.epoch,
                    "chain": list(config.chain),
                })
        waiters, self._cfg_waiters = self._cfg_waiters, []
        for ev in waiters:
            ev.succeed(None)

    def _refresh_config(self):
        """Generator: ask the controller for the published configuration
        (bounded wait; any config arrival releases us)."""
        ev = self.env.event(f"rnbd{self.me}.cfgwait")
        self._cfg_waiters.append(ev)
        try:
            yield from self.inbox.send(self.controller,
                                       GetConfig((self.me, self.port)))
        except NodeCrashed:
            raise
        except NetworkError:
            pass
        timer = self.env.timeout(self.params.client_timeout_ns)
        yield self.env.any_of([ev, timer])
        if ev in self._cfg_waiters:
            self._cfg_waiters.remove(ev)

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, dst_node: int, meta, req_id: int,
                 payload: bytes = b""):
        """Generator: send one request and wait for its reply or the
        timeout.  Returns ``(reply_meta, reply_payload)`` or ``None`` on
        timeout, and the failure kind for retry accounting."""
        ev = self.env.event(f"rnbd{self.me}.req{req_id}")
        self._waiting[req_id] = ev
        try:
            yield from self.inbox.send((dst_node, self.replica_port),
                                       meta, payload)
        except NodeCrashed:
            self._waiting.pop(req_id, None)
            raise
        except MessageDropped:
            self._waiting.pop(req_id, None)
            return None, "dead_peer"
        except NetworkError:
            self._waiting.pop(req_id, None)
            return None, "network"
        timer = self.env.timeout(self.params.client_timeout_ns)
        yield self.env.any_of([ev, timer])
        if ev.triggered:
            return ev.value, None
        self._waiting.pop(req_id, None)
        return None, "timeout"

    # -- operations ----------------------------------------------------------

    def write_block(self, block: int, token: int) -> "bool":
        """Generator: write ``token``'s block; True once committed.

        Retry policy mirrors :class:`repro.nbd.device.NbdDevice`: a
        timeout retries (the head may just be slow), a dead-peer signal
        refreshes the configuration immediately (the head is gone), and
        budget exhaustion raises :class:`Eio` with the op left pending
        in the history.
        """
        req_id = next(ReplicatedNbdDevice._req_ids)
        op = self.history.append(Op("w", block, token, self.env.now,
                                    req_id=req_id))
        payload = encode_value(token)
        for _attempt in range(1 + self.params.client_retries):
            cfg = self.config
            if not cfg.chain:
                yield from self._refresh_config()
                continue
            reply, why = yield from self._attempt(
                cfg.head,
                WriteReq(req_id, (self.me, self.port), block),
                req_id, payload,
            )
            if reply is None:
                self._retry_counter(why).inc()
                if why == "dead_peer":
                    yield from self._refresh_config()
                continue
            meta, _ = reply
            if meta.status == "ok":
                op.complete_ns = self.env.now
                op.ok = True
                self._m_writes.inc()
                return True
            # wrong_config: adopt whatever the replica knows, else ask.
            self._retry_counter("wrong_config").inc()
            if meta.config is not None and meta.config.epoch > cfg.epoch:
                self._adopt(meta.config)
            else:
                yield from self._refresh_config()
        self._m_failed.inc()
        raise Eio(f"replicated write block {block}: retry budget exhausted",
                  reason="timeout")

    def read_block(self, block: int) -> "int":
        """Generator: linearizable read; returns the observed token.

        Only successful reads are recorded in the history (a failed
        read observed nothing).  Budget exhaustion raises :class:`Eio`.
        """
        req_id = next(ReplicatedNbdDevice._req_ids)
        invoke_ns = self.env.now
        for _attempt in range(1 + self.params.client_retries):
            cfg = self.config
            if not cfg.chain:
                yield from self._refresh_config()
                continue
            reply, why = yield from self._attempt(
                cfg.tail,
                ReadReq(req_id, (self.me, self.port), block, cfg.epoch),
                req_id,
            )
            if reply is None:
                self._retry_counter(why).inc()
                if why == "dead_peer":
                    yield from self._refresh_config()
                continue
            meta, payload = reply
            if meta.status == "ok":
                token = decode_value(payload)
                self.history.append(Op("r", block, token, invoke_ns,
                                       complete_ns=self.env.now, ok=True,
                                       req_id=req_id))
                self._m_reads.inc()
                return token
            if meta.status == "retry":
                self._retry_counter("tail_catchup").inc()
                yield self.env.timeout(self.params.client_timeout_ns // 4)
                continue
            self._retry_counter("wrong_config").inc()
            if meta.config is not None and meta.config.epoch > cfg.epoch:
                self._adopt(meta.config)
            else:
                yield from self._refresh_config()
        self._m_failed.inc()
        raise Eio(f"replicated read block {block}: retry budget exhausted",
                  reason="timeout")
