"""Linearizability checking for client-observed block histories.

The replicated volume claims linearizability: every read returns the
value of the most recent committed write in some total order consistent
with real-time precedence.  This module checks that claim on the
histories recorded by :class:`repro.nbd.client.ReplicatedNbdDevice`
using the Wing & Gong algorithm — a DFS over operation orderings,
memoized on ``(set of operations still to linearize, register value)``
per block (each block is an independent register, so the check
decomposes).

Pending operations (``complete_ns is None`` — the client gave up) are
*optional*: a pending write may be linearized anywhere after its
invocation or never (its effect is unknown).  Completed operations must
all be linearized.

Histories from the chaos suite are small (hundreds of ops, low client
concurrency), so the exponential worst case never bites; the memo
keeps the common case near-linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .client import Op

_INF = float("inf")


@dataclass
class CheckResult:
    ok: bool
    #: Per-block verdicts (block -> ok); failing blocks listed first in
    #: ``explain()``.
    blocks: dict = field(default_factory=dict)
    #: For a failing block: the op that could not be linearized.
    witness: Optional[Op] = None

    def explain(self) -> str:
        if self.ok:
            n = len(self.blocks)
            return f"linearizable ({n} block register(s) checked)"
        bad = sorted(b for b, ok in self.blocks.items() if not ok)
        w = self.witness
        detail = ""
        if w is not None:
            detail = (f"; witness: {w.kind} block={w.block} "
                      f"token={w.token} invoke={w.invoke_ns} "
                      f"complete={w.complete_ns}")
        return f"NOT linearizable on block(s) {bad}{detail}"


def check_history(ops: Iterable[Op], initial_token: int = 0) -> CheckResult:
    """Check a history of block reads/writes for linearizability."""
    per_block: dict[int, list[Op]] = {}
    for op in ops:
        per_block.setdefault(op.block, []).append(op)
    result = CheckResult(ok=True)
    for block in sorted(per_block):
        ok, witness = _check_register(per_block[block], initial_token)
        result.blocks[block] = ok
        if not ok and result.ok:
            result.ok = False
            result.witness = witness
    return result


def _check_register(ops: list[Op], initial: int):
    """Wing-Gong DFS for a single register."""
    ops = sorted(ops, key=lambda o: (o.invoke_ns,
                                     o.complete_ns if o.complete_ns
                                     is not None else _INF))
    ids = list(range(len(ops)))
    complete_of = [o.complete_ns if o.complete_ns is not None else _INF
                   for o in ops]
    invoke_of = [o.invoke_ns for o in ops]
    pending = [o.complete_ns is None for o in ops]
    memo: set = set()

    def candidates(remaining: frozenset) -> list[int]:
        """Minimal ops: those invoked before every remaining completed
        op's completion (no remaining op real-time-precedes them)."""
        bound = _INF
        for i in remaining:
            if complete_of[i] < bound:
                bound = complete_of[i]
        return sorted(i for i in remaining if invoke_of[i] <= bound)

    def dfs(remaining: frozenset, value: int) -> bool:
        if all(pending[i] for i in remaining):
            return True  # every completed op linearized; pendings optional
        key = (remaining, value)
        if key in memo:
            return False
        for i in candidates(remaining):
            op = ops[i]
            if op.kind == "r":
                if op.token != value:
                    continue
                if dfs(remaining - {i}, value):
                    return True
            else:
                if dfs(remaining - {i}, op.token):
                    return True
                if pending[i]:
                    # A pending write may also never take effect; that
                    # branch is explored by leaving it in ``remaining``
                    # until only pendings remain.
                    continue
        memo.add(key)
        return False

    remaining = frozenset(ids)
    if dfs(remaining, initial):
        return True, None
    # Find a witness: the earliest completed op (by completion time)
    # is a readable, if approximate, explanation.
    completed = [o for o in ops if o.complete_ns is not None]
    witness = min(completed, key=lambda o: o.complete_ns) if completed else None
    return False, witness
