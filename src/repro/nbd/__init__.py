"""NBD: the Network Block Device client (the paper's third application).

Section 6: "our third target in-kernel application, a Network Block
Device client ... transmits low-level block device accesses to a remote
server, allowing remote partition mounting such as with iSCSI.  Such a
client manipulates the page-cache in a similar way a distributed file
system client does.  Our physical address based interface should thus be
suitable in this context."

The paper only *predicts* this result; we implement it as the promised
extension.  The NBD client sits at the bottom of the storage stack: the
block cache (page-cache pages indexed by block number) is filled by
per-block network requests carrying the frame's physical address —
structurally identical to buffered ORFS, which is why the GM-vs-MX
comparison comes out the same (see ``benchmarks/bench_ext_nbd.py``).

On top of the single-server device, :mod:`repro.nbd.replica` grows the
volume into a chain-replicated block store (head orders, tail commits,
reads at the tail) with a deterministic cluster controller
(:mod:`repro.nbd.control`), a failover-aware client recording its
observed history (:mod:`repro.nbd.client`), a linearizability checker
(:mod:`repro.nbd.linearize`), and a chaos-scenario harness
(:mod:`repro.nbd.chaos`).
"""

from .client import History, Op, ReplicatedNbdDevice
from .control import ChainController
from .device import NbdDevice, NbdServer
from .linearize import check_history
from .replica import ChainConfig, ReplicaParams, ReplicaServer

__all__ = [
    "ChainConfig",
    "ChainController",
    "History",
    "NbdDevice",
    "NbdServer",
    "Op",
    "ReplicaParams",
    "ReplicaServer",
    "ReplicatedNbdDevice",
    "check_history",
]
