"""Chaos scenarios for the replicated NBD volume.

One harness builds the same five-node star every time — a controller,
a three-replica chain, and a client running two concurrent workload
processes — then arms one named fault scenario from a seeded
:class:`repro.faults.FaultPlan` and lets the run play out on simulated
time.  Each scenario returns a :class:`ScenarioResult` carrying:

* the client-observed operation history and its linearizability
  verdict (:mod:`repro.nbd.linearize`);
* the controller's failover and resync records (also exported as
  ``nbd.replica.failover_ns`` / ``resync_ns`` metrics);
* the rendered fault/replica trace and the metrics snapshot JSON, both
  byte-identical across reruns of the same ``(scenario, seed)`` — the
  determinism contract CI's chaos-replica job diffs.

Scenario matrix: a clean baseline, a crash at each chain position, a
NIC reset at each chain position (sequence-state loss without process
death), an uplink flap train (partition without death), and a crash
followed by reboot and rejoin (dirty-extent resync).  After the
workload the client reads back every block it touched, so stale-resync
corruption surfaces as a linearizability violation, not just a missing
ack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..cluster.node import star
from ..errors import Eio
from ..faults.plan import FaultPlan
from ..fleet.isolate import isolated_run
from ..hw.params import ReliabilityParams
from ..sim import Environment
from ..sim.trace import render_trace
from ..units import ms, us
from .client import History, ReplicatedNbdDevice
from .control import ChainController
from .linearize import CheckResult, check_history
from .replica import ReplicaParams, ReplicaServer

# -- cluster layout -----------------------------------------------------------

CONTROL_NODE = 0
REPLICAS = (1, 2, 3)  # initial chain order: head, middle, tail
CLIENT_NODE = 4
CONTROL_PORT = 5
REPLICA_PORT = 6
CLIENT_PORT = 7
NBLOCKS = 16

#: When the scenario's fault fires (mid-workload by construction).
FAULT_AT = us(600)
#: When the crash-rejoin scenario's node comes back (NIC reset clears
#: the crashed flag and bumps the incarnation).
REJOIN_AT = FAULT_AT + ms(2)

#: Aggressive firmware retry budget so a dead peer is declared in
#: ~140 us instead of seconds, and a flap-induced false verdict heals
#: after the TTL — chaos runs compress real-world timescales.
CHAOS_RELIABILITY = ReliabilityParams(
    rto_ns=us(20), rto_max_ns=us(160), max_retries=3,
    ack_delay_ns=2000, dead_peer_ttl_ns=us(400),
)

CHAOS_PARAMS = ReplicaParams()


def uplink(node_id: int) -> str:
    """Name of a node's star uplink (for link-level faults)."""
    return f"switch.l{node_id}"


# -- scenarios ----------------------------------------------------------------


def _none(plan: FaultPlan) -> None:
    pass


def _crash(node_id: int):
    def arm(plan: FaultPlan) -> None:
        plan.node_crash(node_id, FAULT_AT)
    return arm


def _reset(node_id: int):
    def arm(plan: FaultPlan) -> None:
        plan.nic_reset(node_id, FAULT_AT)
    return arm


def _flap(node_id: int):
    def arm(plan: FaultPlan) -> None:
        plan.link_flap(uplink(node_id), FAULT_AT,
                       down_ns=us(400), up_ns=us(250), count=2)
    return arm


def _crash_rejoin(node_id: int):
    def arm(plan: FaultPlan) -> None:
        plan.node_crash(node_id, FAULT_AT)
        plan.nic_reset(node_id, REJOIN_AT)  # the reboot
    return arm


#: name -> (description, plan builder).  Order is the CI matrix order.
SCENARIOS: dict = {
    "none": ("clean run, no faults", _none),
    "crash-head": ("head crashes mid-write", _crash(REPLICAS[0])),
    "crash-middle": ("middle crashes mid-write", _crash(REPLICAS[1])),
    "crash-tail": ("tail crashes mid-write", _crash(REPLICAS[2])),
    "reset-head": ("head NIC firmware reset", _reset(REPLICAS[0])),
    "reset-middle": ("middle NIC firmware reset", _reset(REPLICAS[1])),
    "reset-tail": ("tail NIC firmware reset", _reset(REPLICAS[2])),
    "flap-middle": ("middle uplink flap train", _flap(REPLICAS[1])),
    "crash-rejoin-middle": ("middle crashes, reboots, resyncs, rejoins",
                            _crash_rejoin(REPLICAS[1])),
}


# -- results ------------------------------------------------------------------


@dataclass
class ScenarioResult:
    name: str
    seed: int
    lin: CheckResult
    history: History
    failovers: list
    resyncs: list
    #: Operation indexes whose retry budget exhausted (op left pending).
    failed_ops: list = field(default_factory=list)
    trace: str = ""
    metrics_json: str = ""
    duration_ns: int = 0

    @property
    def ok(self) -> bool:
        return self.lin.ok

    def failovers_within(self, bound_ns: int) -> bool:
        """Did every reconfiguration (failovers and rejoins) complete —
        death detected to new configuration acknowledged everywhere —
        within ``bound_ns``?"""
        spans = [f["done_ns"] - f["detect_ns"] for f in self.failovers]
        spans += [r["done_ns"] - r["start_ns"] for r in self.resyncs]
        return all(s <= bound_ns for s in spans)


# -- the harness --------------------------------------------------------------


def _workload(env, dev: ReplicatedNbdDevice, ops: list, think_ns: int,
              failed: list):
    """Generator: run ``ops`` (list of ("w", block, token) / ("r", block))
    sequentially, recording Eio give-ups instead of dying."""
    for i, op in enumerate(ops):
        try:
            if op[0] == "w":
                yield from dev.write_block(op[1], op[2])
            else:
                yield from dev.read_block(op[1])
        except Eio:
            failed.append(op)
        yield env.timeout(think_ns)


def _make_ops(seed: int, n_ops: int, lane: int) -> list:
    """Deterministic op list for one workload lane: mostly writes with
    interspersed reads, unique tokens ``(seed, lane, index)``-derived."""
    ops = []
    for i in range(n_ops):
        block = (i * 5 + lane * 3) % NBLOCKS
        if i % 3 == 2:
            ops.append(("r", (i * 7 + lane) % NBLOCKS))
        else:
            ops.append(("w", block, (seed << 24) | (lane << 20) | (i + 1)))
    return ops


def run_scenario(name: str, seed: int = 1, n_ops: int = 120,
                 settle_ns: int = ms(6)) -> ScenarioResult:
    """Run one chaos scenario; fully deterministic per (name, seed)."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"known: {', '.join(SCENARIOS)}")
    _desc, arm = SCENARIOS[name]
    # One hermetic run: fresh registry, zeroed host-copy accounting,
    # fresh-process id counters — see repro.fleet.isolate.
    with isolated_run(observe=True) as registry:
        env = Environment()
        nodes, switch = star(env, 5)
        plan = FaultPlan(seed=seed)
        records = plan.tracer.record_everything()
        arm(plan)
        plan.install(env, nodes=nodes, switches=[switch],
                     reliability_params=CHAOS_RELIABILITY)
        tracer = plan.tracer

        controller = ChainController(
            nodes[CONTROL_NODE], CONTROL_PORT, list(REPLICAS),
            REPLICA_PORT, params=CHAOS_PARAMS, tracer=tracer,
        )
        replicas = [
            ReplicaServer(nodes[n], REPLICA_PORT,
                          (CONTROL_NODE, CONTROL_PORT),
                          params=CHAOS_PARAMS, device_blocks=NBLOCKS,
                          tracer=tracer)
            for n in REPLICAS
        ]
        history = History()
        dev = ReplicatedNbdDevice(
            nodes[CLIENT_NODE], CLIENT_PORT, (CONTROL_NODE, CONTROL_PORT),
            REPLICA_PORT, params=CHAOS_PARAMS, history=history,
            tracer=tracer,
        )
        for server in replicas:
            env.run(until=server.start())
        env.run(until=controller.start())
        env.run(until=dev.start())

        failed: list = []
        half = n_ops // 2
        lanes = [
            env.process(_workload(env, dev, _make_ops(seed, half, 0),
                                  us(10), failed), name="chaos.lane0"),
            env.process(_workload(env, dev, _make_ops(seed, n_ops - half, 1),
                                  us(12), failed), name="chaos.lane1"),
        ]
        env.run(until=env.all_of(lanes))

        # Read back every block once: post-failover state must still
        # linearize (this is what catches a corrupt or stale resync).
        def read_back():
            for block in range(NBLOCKS):
                try:
                    yield from dev.read_block(block)
                except Eio:
                    failed.append(("r", block))
        env.run(until=env.process(read_back(), name="chaos.readback"))
        env.run(until=env.now + settle_ns)

        lin = check_history(history.ops)
        return ScenarioResult(
            name=name, seed=seed, lin=lin, history=history,
            failovers=list(controller.failovers),
            resyncs=list(controller.resyncs),
            failed_ops=failed,
            trace=render_trace(records),
            metrics_json=obs.snapshot_to_json(registry.snapshot()),
            duration_ns=env.now,
        )


def failover_bound_ns(params: ReplicaParams = CHAOS_PARAMS) -> int:
    """The acceptance bound: detection lease plus the resync allowance."""
    return params.lease_ns + params.resync_bound_ns
