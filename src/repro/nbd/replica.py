"""Chain-replicated NBD block volume over MX kernel channels.

The replicated block store keeps one flat volume on a *chain* of
replicas (van Renesse & Schneider's chain replication, composed here
from the paper's in-kernel MX primitives):

* the **head** orders client writes, applies them, and forwards them
  down the chain;
* each **middle** applies and forwards;
* the **tail** is the commit point: applying a write there commits it,
  a cumulative acknowledgement flows back up, and the head answers the
  client once the write is committed;
* **reads are served by the tail only**, so a read always observes the
  committed prefix — the protocol is linearizable by construction, and
  :mod:`repro.nbd.linearize` checks the client-observed history of
  every chaos run against that claim.

Versions and watermarks
-----------------------

Every write gets a version ``(config_epoch, seq)`` at the head; versions
are totally ordered lexicographically (a new head restarts ``seq`` at 1
under its strictly larger epoch).  Each replica tracks two watermarks —
``applied`` (highest version written to its store, in order) and
``committed`` (highest version the tail has acknowledged) — plus the
ordered ``pending`` window between them.  The chain invariant is that
every replica's applied prefix contains its successor's, which is what
makes failover safe: any suffix of the chain holds every committed
write.

Reconfiguration and chain-link establishment
--------------------------------------------

The controller (:mod:`repro.nbd.control`) pushes numbered
``Configure`` messages.  On adoption a replica greets its predecessor
with ``Hello``; a predecessor forwards down a chain link only after the
successor's ``Hello`` for the current epoch arrived.  The greeting
doubles as transport-session establishment — it is the first message a
rebooted successor sends upstream, which lets the NIC reliability layer
re-establish its per-peer session (see the incarnation notes in
:mod:`repro.hw.nic`) before data flows.

A rejoining replica pulls a dirty-extent resync from the tail (blocks
whose version is newer than the joiner's durable ``committed``
watermark, plus the joiner's *suspect* blocks — blocks with writes in
flight when it crashed, whose on-disk content may be torn).  After the
pass it reports ready; the controller appends it as the new tail; the
old tail sends the delta committed since the pass (``CatchupDone``
closes it) and only then does the joiner serve reads or acknowledge the
configuration.

Everything runs on simulated time with no global randomness, so a
seeded chaos run — including every failover — replays byte-for-byte.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Optional

from .. import obs
from ..cluster.node import Node
from ..core.channel import MxKernelChannel
from ..errors import MessageDropped, NetworkError, NodeCrashed
from ..mx.memtypes import MxSegment
from ..units import ms, us
from .device import BLOCK_SIZE

#: Version of the never-written block / empty history.
V0 = (0, 0)
ZERO_BLOCK = bytes(BLOCK_SIZE)

#: Wire size of a control message (headers ride as out-of-band meta,
#: like ORFA's request/reply structs).
CTRL_BYTES = 64
#: Per-message server-side handling cost (dispatch + state update).
REPLICA_OP_NS = 600


def encode_value(token: int) -> bytes:
    """One device block carrying ``token`` (repeated, so any 8-byte
    aligned slice identifies the write that produced the block)."""
    return token.to_bytes(8, "little") * (BLOCK_SIZE // 8)


def decode_value(payload: bytes) -> int:
    """Token of the write that produced ``payload`` (0 = never written)."""
    if not payload:
        return 0
    return int.from_bytes(payload[:8], "little")


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainConfig:
    """One numbered chain configuration (head first, tail last)."""

    epoch: int
    chain: tuple[int, ...]
    joined: int = -1  # node this config appended (still catching up), -1 none

    @property
    def head(self) -> int:
        return self.chain[0]

    @property
    def tail(self) -> int:
        return self.chain[-1]

    def successor(self, node: int) -> Optional[int]:
        idx = self.chain.index(node)
        return self.chain[idx + 1] if idx + 1 < len(self.chain) else None

    def predecessor(self, node: int) -> Optional[int]:
        idx = self.chain.index(node)
        return self.chain[idx - 1] if idx > 0 else None


# -- client <-> chain ---------------------------------------------------------


@dataclass
class WriteReq:
    """Client write; the block payload rides on the wire."""

    req_id: int
    client: tuple[int, int]  # (node, port) to answer
    block: int


@dataclass
class WriteReply:
    req_id: int
    status: str  # "ok" | "wrong_config"
    config: Optional[ChainConfig] = None


@dataclass
class ReadReq:
    req_id: int
    client: tuple[int, int]
    block: int
    cfg_epoch: int  # client's view; the tail rejects mismatches


@dataclass
class ReadReply:
    """Status reply; on "ok" the block payload rides on the wire."""

    req_id: int
    status: str  # "ok" | "wrong_config" | "retry"
    config: Optional[ChainConfig] = None


@dataclass
class GetConfig:
    client: tuple[int, int]


@dataclass
class ConfigReply:
    config: ChainConfig


# -- intra-chain --------------------------------------------------------------


@dataclass
class Hello:
    """Chain-link establishment: successor -> predecessor on adoption."""

    cfg_epoch: int
    node: int


@dataclass
class WriteFwd:
    """Down-chain forward; the block payload rides on the wire."""

    version: tuple[int, int]
    req_id: int
    client: tuple[int, int]
    block: int


@dataclass
class WriteAck:
    """Cumulative up-chain acknowledgement: everything <= version is
    committed at the sender."""

    version: tuple[int, int]


# -- controller traffic -------------------------------------------------------


@dataclass
class Heartbeat:
    node: int


@dataclass
class PeerDead:
    """Fast-path death report: the fabric declared ``peer`` unreachable."""

    reporter: int
    peer: int


@dataclass
class Configure:
    config: ChainConfig


@dataclass
class ConfigAck:
    node: int
    epoch: int


@dataclass
class JoinReq:
    """A rebooted replica asks to rejoin, naming its durable committed
    watermark and the blocks whose content it cannot trust."""

    node: int
    committed: tuple[int, int]
    suspect: tuple[int, ...]


@dataclass
class SyncFrom:
    """Controller -> joiner: pull your resync from this tail."""

    tail: int
    cfg_epoch: int


@dataclass
class SyncPull:
    """Joiner -> tail: stream me every block newer than ``since`` plus
    my suspect blocks."""

    node: int
    since: tuple[int, int]
    suspect: tuple[int, ...]


@dataclass
class SyncBlock:
    """One resynced block; the payload rides on the wire."""

    block: int
    version: tuple[int, int]


@dataclass
class SyncDone:
    """End of a resync pass; ``mark`` is the tail's committed watermark
    the pass covered up to."""

    mark: tuple[int, int]


@dataclass
class JoinReady:
    """Joiner -> controller: resync pass done, append me."""

    node: int
    mark: tuple[int, int]


@dataclass
class CatchupDone:
    """Old tail -> new tail: the post-resync delta is fully sent;
    everything <= ``upto`` is committed."""

    upto: tuple[int, int]


#: Message types whose block payload travels as real wire bytes.
PAYLOAD_TYPES = (WriteReq, WriteFwd, ReadReply, SyncBlock)


# ---------------------------------------------------------------------------
# Tuning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaParams:
    """Failure-detection and retry tuning for the replicated volume."""

    heartbeat_ns: int = us(200)
    lease_ns: int = ms(1)
    lease_check_ns: int = us(250)
    #: Replica watchdog: re-forward the pending window (and probe the
    #: successor) when commits stall for two ticks.
    watchdog_ns: int = us(250)
    client_timeout_ns: int = us(800)
    client_retries: int = 12
    #: Allowance on top of the lease for reconfiguration + resync; the
    #: chaos suite asserts every failover fits lease_ns + resync_bound_ns.
    resync_bound_ns: int = ms(2)
    #: Joining is restarted if no progress for this many lease periods.
    join_retry_leases: int = 4


# ---------------------------------------------------------------------------
# Transport: a posted-receive ring over one MX kernel channel
# ---------------------------------------------------------------------------


class Inbox:
    """Actor-style endpoint: a ring of wildcard kernel receives plus a
    rotating transmit pool.

    Protocol headers ride as out-of-band ``meta`` (the ORFA convention);
    block payloads are real wire bytes read back from the ring slot, so
    a 4 KiB replica write pays the genuine medium-message cost on every
    hop.  Transmit buffers rotate without waiting: medium sends are
    buffered at the NIC and in-flight payloads survive reuse via the
    copy-on-write frame machinery.
    """

    SLOT_BYTES = BLOCK_SIZE + 256

    def __init__(self, node: Node, endpoint_id: int,
                 ring_slots: int = 16, tx_slots: int = 8):
        self.node = node
        self.endpoint_id = endpoint_id
        self.channel = MxKernelChannel(node, endpoint_id)
        self._slots = [node.kspace.kmalloc(self.SLOT_BYTES)
                       for _ in range(ring_slots)]
        self._recvs: list = [None] * ring_slots
        self._tx = [node.kspace.kmalloc(self.SLOT_BYTES)
                    for _ in range(tx_slots)]
        self._tx_next = 0

    def setup(self):
        """Generator: post the receive ring."""
        for i, slot in enumerate(self._slots):
            self._recvs[i] = yield from self.channel.post_recv(
                [MxSegment.kernel(slot.vaddr, self.SLOT_BYTES)], match=0
            )

    def recv(self):
        """Generator: next message as ``(meta, payload, src_node)``."""
        handle, comp = yield from self.channel.wait_any_recv(self._recvs)
        idx = self._recvs.index(handle)
        payload = b""
        if isinstance(comp.meta, PAYLOAD_TYPES) and comp.size:
            payload = self.node.kspace.read_bytes(
                self._slots[idx].vaddr, min(comp.size, BLOCK_SIZE)
            )
        self._recvs[idx] = yield from self.channel.post_recv(
            [MxSegment.kernel(self._slots[idx].vaddr, self.SLOT_BYTES)],
            match=0,
        )
        return comp.meta, payload, comp.src_node

    def send(self, dst: tuple[int, int], meta, payload: bytes = b""):
        """Generator: one message to ``(node, port)``; payload bytes (if
        any) travel on the wire, the header rides as meta."""
        buf = self._tx[self._tx_next]
        self._tx_next = (self._tx_next + 1) % len(self._tx)
        if payload:
            self.node.kspace.write_bytes(buf.vaddr, payload)
            size = len(payload)
        else:
            size = CTRL_BYTES
        yield from self.channel.send(
            dst[0], dst[1], [MxSegment.kernel(buf.vaddr, size)],
            match=0, meta=meta,
        )


# ---------------------------------------------------------------------------
# The replica
# ---------------------------------------------------------------------------


@dataclass
class PendingWrite:
    """One applied-but-uncommitted write in the chain window."""

    req_id: int
    client: tuple[int, int]
    block: int
    payload: bytes
    reply_to: Optional[tuple[int, int]] = None


class ReplicaServer:
    """One chain replica: head, middle, or tail — the role is whatever
    the current configuration says.

    The block store and per-block version metadata model the on-disk
    state (they survive a node crash); ``pending``, the dedup map and
    the adopted configuration model RAM and are lost.  The set of
    blocks with in-flight writes at crash time survives as ``suspect``
    — the journal every real block store keeps so a rejoin knows which
    extents may hold torn writes.
    """

    def __init__(self, node: Node, endpoint_id: int,
                 controller: tuple[int, int],
                 params: ReplicaParams = ReplicaParams(),
                 device_blocks: int = 64, tracer=None):
        self.node = node
        self.env = node.env
        self.me = node.node_id
        self.peer_port = endpoint_id
        self.controller = controller
        self.params = params
        self.device_blocks = device_blocks
        self.tracer = tracer
        self.inbox = Inbox(node, endpoint_id)
        # -- durable state (survives crashes) --
        self.store: dict[int, bytes] = {}
        self.versions: dict[int, tuple[int, int]] = {}
        self.committed: tuple[int, int] = V0
        self.suspect: set[int] = set()
        # -- volatile state (lost on crash) --
        self.applied: tuple[int, int] = V0
        self.pending: dict[tuple[int, int], PendingWrite] = {}
        self.completed: dict[int, tuple[int, int]] = {}
        self.config = ChainConfig(0, ())
        self.caught_up = True
        self.detached = False
        self.greeted: dict[int, int] = {}  # node -> last Hello cfg epoch
        self.next_seq = 1
        self.sync_mark: dict[int, tuple[int, int]] = {}
        self._future: list[tuple[WriteFwd, bytes, int]] = []
        self._defer_ack_epoch = 0
        self._crashed_seen = False
        self._ready = self.env.event(f"replica{self.me}.ready")
        self._m_writes = obs.counter("nbd.replica.writes", node=self.me)
        self._m_reads = obs.counter("nbd.replica.reads", node=self.me)
        self._m_fwds = obs.counter("nbd.replica.forwards", node=self.me)
        self._m_reforwards = obs.counter("nbd.replica.reforwards", node=self.me)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Start the replica; the returned event fires once the receive
        ring is posted."""
        self.env.process(self._serve(), name=f"replica{self.me}.serve")
        self.env.process(self._heartbeat_loop(), name=f"replica{self.me}.hb")
        self.env.process(self._watchdog(), name=f"replica{self.me}.dog")
        return self._ready

    def _emit(self, label: str, payload=None) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "replica", label, payload)

    # -- main loop -----------------------------------------------------------

    def _serve(self):
        yield from self.inbox.setup()
        self._ready.succeed(None)
        while True:
            meta, payload, src = yield from self.inbox.recv()
            yield from self.node.cpu.work(REPLICA_OP_NS)
            try:
                yield from self._dispatch(meta, payload, src)
            except NodeCrashed:
                continue  # we crashed mid-handler; reboot logic takes over
            except NetworkError:
                continue  # a send inside the handler failed; watchdog recovers

    def _dispatch(self, meta, payload: bytes, src: int):
        if isinstance(meta, WriteReq):
            yield from self._h_write_req(meta, payload)
        elif isinstance(meta, WriteFwd):
            yield from self._h_write_fwd(meta, payload, src)
        elif isinstance(meta, WriteAck):
            yield from self._h_write_ack(meta, src)
        elif isinstance(meta, ReadReq):
            yield from self._h_read_req(meta)
        elif isinstance(meta, Hello):
            yield from self._h_hello(meta)
        elif isinstance(meta, Configure):
            yield from self._h_configure(meta)
        elif isinstance(meta, SyncFrom):
            yield from self._h_sync_from(meta)
        elif isinstance(meta, SyncPull):
            yield from self._h_sync_pull(meta)
        elif isinstance(meta, SyncBlock):
            self._h_sync_block(meta, payload)
        elif isinstance(meta, SyncDone):
            yield from self._h_sync_done(meta)
        elif isinstance(meta, CatchupDone):
            yield from self._h_catchup_done(meta)
        # anything else (e.g. stray client traffic) is dropped

    # -- role helpers --------------------------------------------------------

    def _in_chain(self) -> bool:
        return bool(self.config.chain) and self.me in self.config.chain

    def _apply(self, block: int, payload: bytes, version: tuple[int, int]):
        self.store[block] = payload
        self.versions[block] = version
        if version > self.applied:
            self.applied = version

    def _commit_up_to(self, version: tuple[int, int]):
        """Pop the pending window up to ``version``; the head answers
        clients for every write that just committed."""
        if version > self.committed:
            self.committed = version
        replies = []
        for v in sorted(self.pending):
            if v > version:
                break
            pw = self.pending.pop(v)
            if pw.reply_to is not None:
                replies.append(pw)
        return replies

    def _send_quiet(self, dst: tuple[int, int], meta, payload: bytes = b""):
        """Generator: send, swallowing fabric errors (callers that need
        the failure signal use inbox.send directly)."""
        try:
            yield from self.inbox.send(dst, meta, payload)
        except NodeCrashed:
            raise
        except NetworkError:
            pass

    def _report_peer_dead(self, peer: int):
        obs.counter("nbd.replica.peer_reports", node=self.me).inc()
        self._emit("peer_dead", {"reporter": self.me, "peer": peer})
        yield from self._send_quiet(self.controller,
                                    PeerDead(self.me, peer))

    def _forward(self, version: tuple[int, int]):
        """Generator: forward one pending write to the successor (if the
        chain link is established)."""
        cfg = self.config
        succ = cfg.successor(self.me)
        if succ is None or self.greeted.get(succ, -1) < cfg.epoch:
            return  # link not established yet; Hello will re-forward
        pw = self.pending.get(version)
        if pw is None:
            return
        self._m_fwds.inc()
        try:
            yield from self.inbox.send(
                (succ, self.peer_port),
                WriteFwd(version, pw.req_id, pw.client, pw.block),
                pw.payload,
            )
        except NodeCrashed:
            raise
        except MessageDropped:
            yield from self._report_peer_dead(succ)
        except NetworkError:
            pass

    def _reforward_all(self):
        """Generator: (re)send the whole pending window, in version
        order — on link establishment and on watchdog stalls."""
        for version in sorted(self.pending):
            yield from self._forward(version)

    def _ack_upstream(self):
        cfg = self.config
        pred = cfg.predecessor(self.me)
        if pred is None:
            return
        yield from self._send_quiet((pred, self.peer_port),
                                    WriteAck(self.committed))

    def _reply_commits(self, replies):
        for pw in replies:
            yield from self._send_quiet(pw.reply_to,
                                        WriteReply(pw.req_id, "ok"))

    # -- write path ----------------------------------------------------------

    def _h_write_req(self, m: WriteReq, payload: bytes):
        cfg = self.config
        if (not self._in_chain() or cfg.head != self.me
                or not self.caught_up or self.detached):
            yield from self._send_quiet(
                m.client, WriteReply(m.req_id, "wrong_config", self.config))
            return
        known = self.completed.get(m.req_id)
        if known is not None:
            # Client retry of a write we already ordered.
            if known <= self.committed:
                yield from self._send_quiet(m.client,
                                            WriteReply(m.req_id, "ok"))
            elif known in self.pending:
                self.pending[known].reply_to = m.client
            return
        version = (cfg.epoch, self.next_seq)
        self.next_seq += 1
        self._m_writes.inc()
        self._apply(m.block, payload, version)
        self.completed[m.req_id] = version
        self.pending[version] = PendingWrite(
            req_id=m.req_id, client=m.client, block=m.block,
            payload=payload, reply_to=m.client,
        )
        if len(cfg.chain) == 1:
            replies = self._commit_up_to(version)
            yield from self._reply_commits(replies)
        else:
            yield from self._forward(version)

    def _h_write_fwd(self, m: WriteFwd, payload: bytes, src: int):
        cfg = self.config
        if m.version[0] > cfg.epoch:
            # A configuration newer than ours ordered this; hold it
            # until the Configure arrives.
            self._future.append((m, payload, src))
            return
        if not self._in_chain() or cfg.predecessor(self.me) != src:
            return  # stale sender (pre-reconfiguration leftover)
        if m.version <= self.applied:
            # Duplicate (watchdog re-forward): remind upstream what we
            # have committed so its window drains.
            yield from self._ack_upstream()
            return
        self._apply(m.block, payload, m.version)
        self.completed[m.req_id] = m.version
        self.pending[m.version] = PendingWrite(
            req_id=m.req_id, client=m.client, block=m.block, payload=payload,
        )
        if cfg.tail == self.me:
            # Tail: the commit point.
            self._commit_up_to(m.version)
            yield from self._ack_upstream()
        else:
            yield from self._forward(m.version)

    def _h_write_ack(self, m: WriteAck, src: int):
        cfg = self.config
        if not self._in_chain() or cfg.successor(self.me) != src:
            return
        if m.version <= self.committed:
            return
        replies = self._commit_up_to(m.version)
        yield from self._reply_commits(replies)
        if cfg.head != self.me:
            yield from self._ack_upstream()

    # -- read path -----------------------------------------------------------

    def _h_read_req(self, m: ReadReq):
        cfg = self.config
        if (not self._in_chain() or cfg.tail != self.me
                or m.cfg_epoch != cfg.epoch or self.detached):
            yield from self._send_quiet(
                m.client, ReadReply(m.req_id, "wrong_config", self.config))
            return
        if not self.caught_up:
            yield from self._send_quiet(m.client,
                                        ReadReply(m.req_id, "retry"))
            return
        self._m_reads.inc()
        payload = self.store.get(m.block, ZERO_BLOCK)
        yield from self._send_quiet(m.client, ReadReply(m.req_id, "ok"),
                                    payload)

    # -- configuration -------------------------------------------------------

    def _h_configure(self, m: Configure):
        cfg = m.config
        if cfg.epoch <= self.config.epoch:
            if self._in_chain() and self._defer_ack_epoch != self.config.epoch:
                yield from self._send_quiet(self.controller,
                                            ConfigAck(self.me, cfg.epoch))
            return
        self.config = cfg
        self._emit("configure", {"node": self.me, "epoch": cfg.epoch,
                                 "chain": list(cfg.chain)})
        if self.me not in cfg.chain:
            # Evicted (a false-positive death, or we were already
            # detached): stop serving; the heartbeat loop rejoins.
            self.detached = True
            self.caught_up = False
            return
        self.detached = False
        if self.me == cfg.head:
            self.next_seq = 1
            # Writes stranded mid-chain by the old head's death are now
            # ours to answer once they commit.
            for pw in self.pending.values():
                if pw.reply_to is None:
                    pw.reply_to = pw.client
        pred = cfg.predecessor(self.me)
        if pred is not None:
            # Greet upstream: establishes the chain link (and, after a
            # reboot, the transport session) before data flows.
            yield from self._send_quiet((pred, self.peer_port),
                                        Hello(cfg.epoch, self.me))
        if cfg.tail == self.me and self.caught_up:
            # Tail promotion: the whole applied window commits.
            replies = self._commit_up_to(self.applied)
            yield from self._reply_commits(replies)
            yield from self._ack_upstream()
        succ = cfg.successor(self.me)
        if succ is not None and self.greeted.get(succ, -1) >= cfg.epoch:
            yield from self._reforward_all()
        if self._future:
            ready = [f for f in self._future if f[0].version[0] <= cfg.epoch]
            self._future = [f for f in self._future
                            if f[0].version[0] > cfg.epoch]
            for fwd, payload, src in ready:
                yield from self._h_write_fwd(fwd, payload, src)
        if self.me == cfg.joined and not self.caught_up:
            self._defer_ack_epoch = cfg.epoch  # ack after CatchupDone
        else:
            self.caught_up = True
            yield from self._send_quiet(self.controller,
                                        ConfigAck(self.me, cfg.epoch))

    def _h_hello(self, m: Hello):
        prev = self.greeted.get(m.node, -1)
        self.greeted[m.node] = max(prev, m.cfg_epoch)
        cfg = self.config
        if not self._in_chain() or cfg.successor(self.me) != m.node:
            return
        if self.greeted[m.node] < cfg.epoch:
            return
        if cfg.joined == m.node and m.node in self.sync_mark:
            yield from self._send_catchup(m.node)
        yield from self._reforward_all()

    # -- resync --------------------------------------------------------------

    def _h_sync_from(self, m: SyncFrom):
        # We are the joiner: pull our delta from the tail.
        yield from self._send_quiet(
            (m.tail, self.peer_port),
            SyncPull(self.me, self.committed, tuple(sorted(self.suspect))),
        )

    def _h_sync_pull(self, m: SyncPull):
        # We are the tail: stream the dirty extents.  At a tail,
        # applied == committed, so every version we hold is committed.
        suspect = set(m.suspect)
        sent = 0
        for block in sorted(set(self.versions) | suspect):
            version = self.versions.get(block, V0)
            if version > m.since or block in suspect:
                yield from self._send_quiet(
                    (m.node, self.peer_port),
                    SyncBlock(block, version),
                    self.store.get(block, ZERO_BLOCK),
                )
                sent += 1
        obs.counter("nbd.replica.resync_blocks", node=self.me).inc(sent)
        self._emit("resync_pass", {"tail": self.me, "to": m.node,
                                   "blocks": sent})
        self.sync_mark[m.node] = self.committed
        yield from self._send_quiet((m.node, self.peer_port),
                                    SyncDone(self.committed))

    def _h_sync_block(self, m: SyncBlock, payload: bytes):
        if m.version >= self.versions.get(m.block, V0):
            self.store[m.block] = payload
            self.versions[m.block] = m.version
            self.suspect.discard(m.block)

    def _h_sync_done(self, m: SyncDone):
        if m.mark > self.applied:
            self.applied = m.mark
        if m.mark > self.committed:
            self.committed = m.mark
        self.suspect.clear()
        yield from self._send_quiet(self.controller,
                                    JoinReady(self.me, m.mark))

    def _send_catchup(self, joiner: int):
        """Generator: old tail -> new tail, the delta committed since
        the resync pass; pending writes follow as ordinary forwards."""
        mark = self.sync_mark.pop(joiner)
        sent = 0
        for block in sorted(self.versions):
            version = self.versions[block]
            if mark < version <= self.committed:
                yield from self._send_quiet(
                    (joiner, self.peer_port), SyncBlock(block, version),
                    self.store.get(block, ZERO_BLOCK),
                )
                sent += 1
        obs.counter("nbd.replica.catchup_blocks", node=self.me).inc(sent)
        yield from self._send_quiet((joiner, self.peer_port),
                                    CatchupDone(self.committed))

    def _h_catchup_done(self, m: CatchupDone):
        if m.upto > self.applied:
            self.applied = m.upto
        if m.upto > self.committed:
            self.committed = m.upto
        self.caught_up = True
        self._emit("caught_up", {"node": self.me,
                                 "epoch": self.config.epoch})
        if self._defer_ack_epoch:
            epoch, self._defer_ack_epoch = self._defer_ack_epoch, 0
            yield from self._send_quiet(self.controller,
                                        ConfigAck(self.me, epoch))
        # A tail that caught up commits anything the delta left pending.
        if self._in_chain() and self.config.tail == self.me:
            self._commit_up_to(self.applied)
            yield from self._ack_upstream()

    # -- failure handling ----------------------------------------------------

    def _on_crash(self):
        """RAM is gone; the journal keeps the suspect-extent set."""
        self._crashed_seen = True
        self.suspect |= {pw.block for pw in self.pending.values()}
        self.pending.clear()
        self.completed.clear()
        self.greeted.clear()
        self._future.clear()
        self.sync_mark.clear()
        self._defer_ack_epoch = 0
        self.config = ChainConfig(0, ())
        self.caught_up = False
        self.detached = True
        self.applied = self.committed
        self._emit("crash_detected", {"node": self.me,
                                      "suspect": sorted(self.suspect)})

    def _on_reboot(self):
        """Back up: distrust every suspect extent before resyncing."""
        for block in self.suspect:
            self.store.pop(block, None)
            self.versions.pop(block, None)
        obs.counter("nbd.replica.reboots", node=self.me).inc()
        self._emit("reboot", {"node": self.me})

    def _heartbeat_loop(self):
        params = self.params
        while True:
            yield self.env.timeout(params.heartbeat_ns)
            if self.node.nic.crashed:
                self._on_crash()
                while self.node.nic.crashed:
                    yield self.env.timeout(params.heartbeat_ns)
                self._on_reboot()
                continue
            if self.detached and self._in_chain() is False:
                # Not a member: ask to rejoin instead of heartbeating.
                try:
                    yield from self.inbox.send(
                        self.controller,
                        JoinReq(self.me, self.committed,
                                tuple(sorted(self.suspect))),
                    )
                except NodeCrashed:
                    continue
                except NetworkError:
                    pass
                yield self.env.timeout(params.lease_ns - params.heartbeat_ns)
                continue
            try:
                yield from self.inbox.send(self.controller,
                                           Heartbeat(self.me))
            except NodeCrashed:
                continue
            except NetworkError:
                continue

    def _watchdog(self):
        """Re-forward the pending window when commits stall — heals
        forwards lost to NIC resets — and report a successor the fabric
        declared dead."""
        last_committed = self.committed
        stalled = 0
        while True:
            yield self.env.timeout(self.params.watchdog_ns)
            if (self.node.nic.crashed or self.detached
                    or not self._in_chain() or not self.pending):
                stalled = 0
                continue
            if self.committed > last_committed:
                last_committed = self.committed
                stalled = 0
                continue
            stalled += 1
            if stalled < 2:
                continue
            stalled = 0
            self._m_reforwards.inc()
            try:
                if len(self.config.chain) == 1:
                    replies = self._commit_up_to(self.applied)
                    yield from self._reply_commits(replies)
                else:
                    yield from self._reforward_all()
            except NodeCrashed:
                continue


_req_ids = itertools.count(5_000_000)


def next_req_id() -> int:
    """Cluster-unique request id (deterministic: a shared counter)."""
    return next(_req_ids)
