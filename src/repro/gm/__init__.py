"""GM: the (then-)official Myrinet message-passing interface.

Models GM 2.0 as the paper uses it:

* :class:`GmPort` — a user-space communication port: explicit memory
  registration (:mod:`repro.gm.registration`), ``gm_send`` /
  ``gm_provide_receive_buffer``, and the single unified event queue
  (``gm_receive``) that makes completion handling inflexible (paper
  sections 2.2.2, 5.2).
* :class:`GmKernelPort` — the kernel interface, including the paper's
  additions (section 3.3): **physical-address-based** send and receive
  primitives that skip both registration and the NIC translation lookup
  (0.5 us per side).

GM's user-facing restriction that one port belongs to one process is
kept (a port carries the address space it translates against); the
GMKRC shared-port trick that lifts it lives in :mod:`repro.gmkrc`.
"""

from .api import GmEvent, GmEventKind, GmPort
from .kernel import GmKernelPort
from .registration import GmRegion, RegistrationDomain

__all__ = [
    "GmEvent",
    "GmEventKind",
    "GmKernelPort",
    "GmPort",
    "GmRegion",
    "RegistrationDomain",
]
