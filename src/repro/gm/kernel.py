"""The GM kernel interface, with the paper's physical-address primitives.

Stock GM barely supported kernel callers; the paper (section 3.3) adds
"some communication primitives based on physical addresses and the
required infrastructure in the MCP": the caller passes physical
scatter/gather lists (e.g. page-cache frames) and the NIC skips its
translation table on that side — measured at "a 0.5 us gain on both the
sender and the receiver's side, that is 10 % improvement".

:class:`GmKernelPort` extends :class:`GmPort` with:

* ``send_physical`` / ``provide_receive_buffer_physical`` — the new
  primitives (no registration, no translation);
* ``register_kernel`` — registration of kernel-virtual ranges (already
  pinned; no get_user_pages);
* kernel-context costs (``GM_KERNEL_COSTS``): GM's kernel entry points
  cost ~2 us more per message than its user path (paper section 5.1).

A kernel port is *shared*: it has no single owning address space.  GM
sends from user memory through a shared port therefore need GMKRC's
encoded registration keys (:mod:`repro.gmkrc`).
"""

from __future__ import annotations

from typing import Any, Optional

from ..cluster.node import Node
from ..errors import GMError, GMSendQueueFull
from ..hw.nic import PostedReceive, SendDescriptor
from ..hw.params import GM_KERNEL_COSTS
from ..mem.layout import PhysSegment
from .api import GM_SEND_QUEUE_DEPTH, GmPort


class GmKernelPort(GmPort):
    """A GM port opened from kernel context."""

    def __init__(self, node: Node, port_id: int):
        # Kernel ports have no owning user address space; registration of
        # user memory must go through GMKRC with encoded keys.
        super().__init__(node, port_id, space=None, costs=GM_KERNEL_COSTS)

    # -- registration ---------------------------------------------------------

    def register(self, vaddr: int, length: int):
        raise GMError(
            "a kernel port has no owning address space; use "
            "register_kernel(), GMKRC, or the physical primitives"
        )

    def register_kernel(self, vaddr: int, length: int):
        """Generator: register a kernel-virtual range (vmalloc/kmalloc)."""
        self._check_open()
        region = yield from self.domain.register_kernel(
            self.node.kspace, vaddr, length
        )
        return region

    # -- the paper's physical-address primitives ----------------------------------

    def send_physical(self, dst_node: int, dst_port: int,
                      sg: list[PhysSegment], match: int = 0, tag: Any = None,
                      meta: Any = None):
        """Generator: send straight from physical segments.

        No registration, no NIC translation lookup on the send side.
        This is the primitive the page-cache (buffered file access) path
        uses: frames of the page cache are pinned and unmapped, and
        "their physical address is easy to obtain" (section 2.3.1).
        """
        self._check_open()
        if not sg:
            raise GMError("send_physical needs at least one segment")
        if self._pending_sends >= GM_SEND_QUEUE_DEPTH:
            raise GMSendQueueFull(f"port {self.port_id}: {self._pending_sends} pending")
        length = sum(seg.length for seg in sg)
        yield from self.cpu.work(self.costs.host_send_ns)
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        self._pending_sends += 1
        desc = SendDescriptor(
            dst_nic=dst_node,
            dst_port=dst_port,
            match=match,
            size=length,
            src_port=self.port_id,
            sg=sg,
            translate_tx=False,  # the whole point of the new primitive
            fw_send_ns=self.costs.fw_send_ns,
            tag=tag,
            meta=meta,
        )
        completion = self.node.nic.submit(desc)
        completion.add_callback(lambda ev: self._on_send_completion(ev.value))

    def provide_receive_buffer_physical(self, sg: list[PhysSegment],
                                        match: Optional[int] = None,
                                        tag: Any = None):
        """Generator: post a receive landing directly in physical segments
        (e.g. page-cache frames) — no translation on the receive side."""
        self._check_open()
        if not sg:
            raise GMError("physical receive needs at least one segment")
        yield from self.cpu.work(self.costs.host_recv_post_ns)
        self.nic_port.post_receive(
            PostedReceive(
                match=match,
                capacity=sum(seg.length for seg in sg),
                dest_sg=sg,
                translate_rx=False,
                tag=tag,
            )
        )
