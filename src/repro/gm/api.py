"""The GM user-space API: ports, registered sends, the unified event queue.

Follows the GM 2.x programming model the paper describes (section
2.2.2): "The user posts send, receive or remote memory access requests
and gets their completion notifications in a unique event queue."  All
I/O buffers must be registered first; sends and receive buffers are
specified by virtual address and the NIC translates through its table.

Deviations from the real API, documented:

* GM matches receive buffers by *size class and priority*; we use an
  integer match tag (None = wildcard) — equivalent expressive power for
  every protocol in the paper, far less bookkeeping.
* ``gm_send_with_callback``'s callback becomes a send-completion event
  in the queue (which is how protocols actually consumed it).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Optional

from .. import obs
from ..cluster.node import Node
from ..errors import GMError, GMSendQueueFull
from ..hw.nic import NicPort, PostedReceive, SendDescriptor
from ..hw.params import ApiCosts, GM_USER_COSTS
from ..mem.addrspace import AddressSpace
from ..mem.layout import PhysSegment
from ..sim import Store
from ..units import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from .registration import GmRegion, RegistrationDomain

#: GM bounds the number of in-flight sends per port ("some interfaces
#: (especially GM) ask the user to limit the amount of pending
#: requests", section 4.1).
GM_SEND_QUEUE_DEPTH = 64


class GmEventKind(enum.Enum):
    RECV = "recv"
    SENT = "sent"


@dataclass
class GmEvent:
    """One entry of the port's unified event queue."""

    kind: GmEventKind
    size: int = 0
    match: int = 0
    src_node: int = -1
    src_port: int = -1
    tag: Any = None
    data: Any = None  # PayloadRef (zero-copy chunk views) when kept
    meta: Any = None  # sender's out-of-band protocol header


class GmPort:
    """A GM communication port owned by one user process."""

    _context_ids = itertools.count(1000)

    def __init__(self, node: Node, port_id: int, space: AddressSpace,
                 costs: ApiCosts = GM_USER_COSTS):
        self.node = node
        self.port_id = port_id
        self.space = space
        self.costs = costs
        self.cpu = node.cpu
        self.env = node.env
        self.context = next(GmPort._context_ids)
        self.nic_port: NicPort = node.nic.open_port(port_id, costs)
        self.domain = RegistrationDomain(node.cpu, node.nic.transtable, self.context)
        self.events: Store = Store(node.env, f"gm{port_id}.events")
        # API-level accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed).
        self._m_sends = obs.counter("gm.sends", node=node.node_id, port=port_id)
        self._m_recv_posts = obs.counter(
            "gm.recv_posts", node=node.node_id, port=port_id
        )
        self._m_events = obs.counter(
            "gm.events", node=node.node_id, port=port_id
        )
        self._pending_sends = 0
        self.nic_port.completion_sink = self._on_recv_completion
        self._open = True

    # -- registration ------------------------------------------------------------

    def register(self, vaddr: int, length: int):
        """Generator: gm_register_memory on this port's address space."""
        self._check_open()
        region = yield from self.domain.register_user(self.space, vaddr, length)
        return region

    def deregister(self, region: GmRegion):
        """Generator: gm_deregister_memory."""
        self._check_open()
        yield from self.domain.deregister(region)

    # -- sending --------------------------------------------------------------------

    def send(self, dst_node: int, dst_port: int, vaddr: int, length: int,
             match: int = 0, tag: Any = None, meta: Any = None):
        """Generator: gm_send from a registered buffer.

        Returns once the descriptor is handed to the NIC; the completion
        arrives in the event queue as a SENT event.
        """
        self._check_open()
        if self._pending_sends >= GM_SEND_QUEUE_DEPTH:
            raise GMSendQueueFull(f"port {self.port_id}: {self._pending_sends} pending")
        region = self.domain.find(vaddr, length)
        if region is None:
            raise GMError(
                f"send from unregistered memory {vaddr:#x}+{length} "
                f"(GM requires gm_register_memory first)"
            )
        sg = self._sg_through_table(region, vaddr, length)
        yield from self.cpu.work(self.costs.host_send_ns)
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        self._pending_sends += 1
        self._m_sends.inc()
        desc = SendDescriptor(
            dst_nic=dst_node,
            dst_port=dst_port,
            match=match,
            size=length,
            src_port=self.port_id,
            sg=sg,
            translate_tx=True,  # NIC resolves the registered virtual address
            fw_send_ns=self.costs.fw_send_ns,
            tag=tag,
            meta=meta,
        )
        completion = self.node.nic.submit(desc)
        completion.add_callback(lambda ev: self._on_send_completion(ev.value))

    def _sg_through_table(self, region: GmRegion, vaddr: int, length: int
                          ) -> list[PhysSegment]:
        """Resolve the physical segments the NIC's table would produce."""
        segments: list[PhysSegment] = []
        addr = vaddr
        remaining = length
        while remaining > 0:
            vpn_index = (addr >> PAGE_SHIFT) - region.key_base_vpn
            frame = region.frames[vpn_index]
            offset = addr & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            segments.append(PhysSegment(frame.phys_addr + offset, chunk))
            addr += chunk
            remaining -= chunk
        return segments

    # -- receiving -------------------------------------------------------------------

    def provide_receive_buffer(self, vaddr: int, length: int,
                               match: Optional[int] = None, tag: Any = None):
        """Generator: gm_provide_receive_buffer from a registered buffer."""
        self._check_open()
        region = self.domain.find(vaddr, length)
        if region is None:
            raise GMError(
                f"receive buffer {vaddr:#x}+{length} is not registered"
            )
        sg = self._sg_through_table(region, vaddr, length)
        yield from self.cpu.work(self.costs.host_recv_post_ns)
        self._m_recv_posts.inc()
        self.nic_port.post_receive(
            PostedReceive(
                match=match,
                capacity=length,
                dest_sg=sg,
                translate_rx=True,
                tag=tag,
            )
        )

    # -- remote memory access (gm_directed_send) ----------------------------------------

    def rma_window(self, vaddr: int, length: int, window_id: int):
        """Generator: expose a registered region as an RMA window.

        Directed sends from peers deposit into it silently (no receive
        event at the target — GM's directed-send semantics).  The window
        stays armed until the port closes.
        """
        self._check_open()
        region = self.domain.find(vaddr, length)
        if region is None:
            raise GMError(f"RMA window {vaddr:#x}+{length} is not registered")
        sg = self._sg_through_table(region, vaddr, length)
        yield from self.cpu.work(self.costs.host_recv_post_ns)
        self._m_recv_posts.inc()
        self.nic_port.post_receive(
            PostedReceive(
                match=window_id,
                capacity=length,
                dest_sg=sg,
                translate_rx=True,
                persistent=True,
                tag=("rma", window_id),
            )
        )

    def send_directed(self, dst_node: int, dst_port: int, vaddr: int,
                      length: int, window_id: int, remote_offset: int = 0,
                      tag: Any = None):
        """Generator: gm_directed_send — put a registered local region
        into a peer's RMA window at ``remote_offset``.

        Completion (the SENT event) is the only notification; the target
        host is never involved — the "remote memory access requests" of
        GM's operation list (paper section 2.2.2).
        """
        self._check_open()
        if self._pending_sends >= GM_SEND_QUEUE_DEPTH:
            raise GMSendQueueFull(f"port {self.port_id}: {self._pending_sends} pending")
        if remote_offset < 0:
            raise GMError(f"negative remote offset {remote_offset}")
        region = self.domain.find(vaddr, length)
        if region is None:
            raise GMError(
                f"directed send from unregistered memory {vaddr:#x}+{length}"
            )
        sg = self._sg_through_table(region, vaddr, length)
        yield from self.cpu.work(self.costs.host_send_ns)
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        self._pending_sends += 1
        self._m_sends.inc()
        desc = SendDescriptor(
            dst_nic=dst_node,
            dst_port=dst_port,
            match=window_id,
            size=length,
            src_port=self.port_id,
            sg=sg,
            translate_tx=True,
            fw_send_ns=self.costs.fw_send_ns,
            tag=tag,
            rma_offset=remote_offset,
        )
        completion = self.node.nic.submit(desc)
        completion.add_callback(lambda ev: self._on_send_completion(ev.value))

    # -- the unified event queue --------------------------------------------------------

    def receive_event(self, blocking: bool = False,
                      timeout_ns: Optional[int] = None):
        """Generator: gm_receive — next event from the unified queue.

        ``blocking=True`` models sleeping until the event (interrupt +
        wakeup) instead of spinning; it costs
        ``costs.blocking_wakeup_ns`` extra, the penalty the paper blames
        for GM's poor fit under ORFS and SOCKETS-GM.

        ``timeout_ns`` models gm_receive's expirable blocking variant:
        if no event arrives within the budget, returns None (the caller
        retries or surfaces an error).  The default None keeps the
        original wait-forever semantics and code path.
        """
        self._check_open()
        if timeout_ns is None:
            event = yield self.events.get()
        else:
            getter = self.events.get()
            timer = self.env.timeout(timeout_ns)
            yield self.env.any_of([getter, timer])
            if not getter.triggered:
                self.events.cancel(getter)
                return None
            event = getter.value
        yield from self.cpu.work(self.costs.host_event_ns)
        if blocking:
            yield from self.cpu.work(self.costs.blocking_wakeup_ns)
        self._m_events.inc()
        return event

    def _on_recv_completion(self, completion) -> None:
        self.events.put(
            GmEvent(
                kind=GmEventKind.RECV,
                size=completion.size,
                match=completion.match,
                src_node=completion.src_nic,
                src_port=completion.src_port,
                tag=completion.tag,
                data=completion.data,
                meta=completion.meta,
            )
        )

    def _on_send_completion(self, completion) -> None:
        self._pending_sends -= 1
        self.events.put(
            GmEvent(kind=GmEventKind.SENT, size=completion.size, tag=completion.tag)
        )

    # -- sends/receives through explicitly keyed registrations (GMKRC) ----------------
    # The key namespace may be the plain virtual address (single-process
    # user ports) or GMKRC's encoded 64-bit keys (shared kernel ports).

    def send_registered(self, dst_node: int, dst_port: int, key_vaddr: int,
                        length: int, match: int = 0, tag: Any = None,
                        meta: Any = None):
        """Generator: send from memory registered under an encoded key
        (GMKRC's 64-bit namespace); NIC translation is charged as for any
        registered-virtual GM send."""
        self._check_open()
        region = self.domain.find(key_vaddr, length)
        if region is None:
            raise GMError(f"no registration covers key {key_vaddr:#x}+{length}")
        if self._pending_sends >= GM_SEND_QUEUE_DEPTH:
            raise GMSendQueueFull(f"port {self.port_id}: {self._pending_sends} pending")
        sg = self._sg_through_table(region, key_vaddr, length)
        yield from self.cpu.work(self.costs.host_send_ns)
        yield from self.cpu.work(self.node.nic.doorbell_time_ns())
        self._pending_sends += 1
        self._m_sends.inc()
        desc = SendDescriptor(
            dst_nic=dst_node,
            dst_port=dst_port,
            match=match,
            size=length,
            src_port=self.port_id,
            sg=sg,
            translate_tx=True,
            fw_send_ns=self.costs.fw_send_ns,
            tag=tag,
            meta=meta,
        )
        completion = self.node.nic.submit(desc)
        completion.add_callback(lambda ev: self._on_send_completion(ev.value))

    def provide_receive_buffer_registered(self, key_vaddr: int, length: int,
                                          match: Optional[int] = None,
                                          tag: Any = None):
        """Generator: post a receive into memory registered under an
        encoded key (translation charged on the receive side)."""
        self._check_open()
        region = self.domain.find(key_vaddr, length)
        if region is None:
            raise GMError(f"no registration covers key {key_vaddr:#x}+{length}")
        sg = self._sg_through_table(region, key_vaddr, length)
        yield from self.cpu.work(self.costs.host_recv_post_ns)
        self._m_recv_posts.inc()
        self.nic_port.post_receive(
            PostedReceive(
                match=match,
                capacity=length,
                dest_sg=sg,
                translate_rx=True,
                tag=tag,
            )
        )

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """gm_close: drop registrations (translations die with the port)."""
        if not self._open:
            return
        self._open = False
        self.domain.teardown()
        self.nic_port.close()

    def _check_open(self) -> None:
        if not self._open:
            raise GMError(f"port {self.port_id} is closed")
