"""GM memory registration: pinning + NIC translation-table installs.

``gm_register_memory`` pins the pages of a virtual range and installs
their translations in the NIC table; ``gm_deregister_memory`` undoes it.
Costs follow the paper's measurements (section 2.2.2, figure 1(b)):
~3 us per page to register, plus a ~200 us base for deregistration —
which is why "this model is only interesting for large memory zones
that are used several times" and why pin-down caches exist.

A :class:`RegistrationDomain` owns the regions of one translation
context (one port, or one GMKRC shared port).  Registration keys are
*virtual* page numbers: the same key namespace GMKRC later extends with
address-space descriptors in the high bits (:mod:`repro.gmkrc.spaces`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..errors import GMRegistrationError
from ..hw.cpu import Cpu
from ..mem.addrspace import AddressSpace
from ..mem.kmem import KernelSpace
from ..mem.phys import Frame
from ..nicfw.transtable import TranslationTable
from ..hw.params import GM_REGISTRATION
from ..units import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, pages_spanned


@dataclass
class GmRegion:
    """One registered virtual range."""

    context: int
    vaddr: int  # page-aligned base (possibly an encoded 64-bit key)
    npages: int
    frames: list[Frame]
    key_base_vpn: int  # vpn namespace used in the translation table
    active: bool = True

    @property
    def length(self) -> int:
        return self.npages * PAGE_SIZE

    @property
    def end(self) -> int:
        return self.vaddr + self.length

    def covers(self, vaddr: int, length: int) -> bool:
        return self.active and self.vaddr <= vaddr and vaddr + length <= self.end


class RegistrationDomain:
    """Registration state for one translation context on one NIC."""

    def __init__(self, cpu: Cpu, table: TranslationTable, context: int):
        self.cpu = cpu
        self.table = table
        self.context = context
        self._regions: list[GmRegion] = []
        self.registered_pages = 0
        self.register_calls = 0
        self.deregister_calls = 0
        # Registry mirrors of the counts above (the plain ints stay the
        # public per-domain API; with a registry installed the metrics
        # aggregate over every domain of one host CPU).
        self._m_reg = obs.counter("gm.registrations", cpu=cpu.name)
        self._m_dereg = obs.counter("gm.deregistrations", cpu=cpu.name)
        self._m_pages = obs.gauge("gm.registered_pages", cpu=cpu.name)

    # -- cost helpers -----------------------------------------------------------

    @staticmethod
    def register_cost_ns(npages: int) -> int:
        p = GM_REGISTRATION
        return p.register_base_ns + p.register_per_page_ns * npages

    @staticmethod
    def deregister_cost_ns(npages: int) -> int:
        p = GM_REGISTRATION
        return p.deregister_base_ns + p.deregister_per_page_ns * npages

    # -- operations ---------------------------------------------------------------

    def register_user(self, space: AddressSpace, vaddr: int, length: int,
                      key_vaddr: Optional[int] = None):
        """Generator: register a user-virtual range.

        Pins the pages (get_user_pages), charges the registration cost
        and installs one translation entry per page.  ``key_vaddr``
        optionally decouples the table key namespace from the real
        virtual address — the hook GMKRC's encoded 64-bit keys use.
        """
        base = vaddr & ~PAGE_MASK
        npages = pages_spanned(vaddr, length)
        if npages == 0:
            raise GMRegistrationError("cannot register an empty range")
        if self.find(key_vaddr if key_vaddr is not None else vaddr, length):
            raise GMRegistrationError(
                f"range {vaddr:#x}+{length} overlaps an active registration"
            )
        frames = space.pin_range(vaddr, length)
        yield from self.cpu.pin_pages(npages)
        yield from self.cpu.work(self.register_cost_ns(npages))
        key_base = ((key_vaddr if key_vaddr is not None else vaddr) & ~PAGE_MASK)
        key_base_vpn = key_base >> PAGE_SHIFT
        self.table.install_range(self.context, key_base_vpn,
                                 [frame.pfn for frame in frames])
        region = GmRegion(self.context, key_base, npages, frames, key_base_vpn)
        self._regions.append(region)
        self.registered_pages += npages
        self.register_calls += 1
        self._m_reg.inc()
        self._m_pages.inc(npages)
        return region

    def register_kernel(self, kspace: KernelSpace, vaddr: int, length: int):
        """Generator: register a kernel-virtual range (already pinned)."""
        base = vaddr & ~PAGE_MASK
        npages = pages_spanned(vaddr, length)
        if npages == 0:
            raise GMRegistrationError("cannot register an empty range")
        yield from self.cpu.work(self.register_cost_ns(npages))
        key_base_vpn = base >> PAGE_SHIFT
        pfns = [kspace.translate(base + i * PAGE_SIZE) >> PAGE_SHIFT
                for i in range(npages)]
        self.table.install_range(self.context, key_base_vpn, pfns)
        frames = [kspace.phys.frame(pfn) for pfn in pfns]
        region = GmRegion(self.context, base, npages, frames, key_base_vpn)
        self._regions.append(region)
        self.registered_pages += npages
        self.register_calls += 1
        self._m_reg.inc()
        self._m_pages.inc(npages)
        return region

    def deregister(self, region: GmRegion, unpin: bool = True):
        """Generator: remove a region's translations and (for user
        registrations) drop the pins."""
        if not region.active:
            raise GMRegistrationError("region already deregistered")
        yield from self.cpu.work(self.deregister_cost_ns(region.npages))
        self.remove_silently(region, unpin=unpin)

    def remove_silently(self, region: GmRegion, unpin: bool = True) -> None:
        """Tear a region down without charging the deregistration cost.

        Used when the translations are already gone for free (port
        close, address-space death) or when the caller accounts the cost
        itself.
        """
        if not region.active:
            return
        region.active = False
        for i in range(region.npages):
            if self.table.get(self.context, region.key_base_vpn + i) is not None:
                self.table.remove(self.context, region.key_base_vpn + i)
        if unpin:
            for frame in region.frames:
                frame.unpin()
        self._regions.remove(region)
        self.registered_pages -= region.npages
        self.deregister_calls += 1
        self._m_dereg.inc()
        self._m_pages.dec(region.npages)

    # -- queries --------------------------------------------------------------------

    def find(self, vaddr: int, length: int) -> Optional[GmRegion]:
        """The active region covering [vaddr, vaddr+length), if any.

        ``vaddr`` is in the *key* namespace (identical to the virtual
        address except under GMKRC encoding).
        """
        for region in self._regions:
            if region.covers(vaddr, length):
                return region
        return None

    def regions(self) -> list[GmRegion]:
        return list(self._regions)

    def teardown(self) -> None:
        """Drop everything (port close): free on real GM, no dereg cost."""
        for region in list(self._regions):
            self.remove_silently(region)
