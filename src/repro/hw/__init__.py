"""Hardware models: CPUs, PCI buses, links, switches, and the Myrinet NIC.

Everything here is a discrete-event model over :mod:`repro.sim` with
costs taken from :mod:`repro.hw.params`, the single calibration table
(each constant's provenance in the paper is documented there).

The central piece is :class:`repro.hw.nic.Nic`: a network interface with
a firmware send/receive pipeline, DMA engines contending for the PCI
bus, a bounded address-translation table, and per-port event queues.
GM (:mod:`repro.gm`) and MX (:mod:`repro.mx`) are API layers over this
one NIC model, differing in host-side costs, addressing modes and
message-class strategies — mirroring how both real drivers programmed
the same LANai hardware.
"""

from .cpu import Cpu
from .link import Link
from .nic import (
    Message,
    Nic,
    NicPort,
    PostedReceive,
    ReceiveCompletion,
    SendCompletion,
    SendDescriptor,
)
from .params import (
    ApiCosts,
    CpuParams,
    HostParams,
    LinkParams,
    NicParams,
    GM_KERNEL_COSTS,
    GM_USER_COSTS,
    HOST_P3_1200,
    HOST_P4_2600,
    HOST_XEON_2600,
    MX_KERNEL_COSTS,
    MX_USER_COSTS,
    PCI_XD,
    PCI_XE,
)
from .switch import Switch

__all__ = [
    "ApiCosts",
    "Cpu",
    "CpuParams",
    "GM_KERNEL_COSTS",
    "GM_USER_COSTS",
    "HOST_P3_1200",
    "HOST_P4_2600",
    "HOST_XEON_2600",
    "HostParams",
    "Link",
    "LinkParams",
    "Message",
    "MX_KERNEL_COSTS",
    "MX_USER_COSTS",
    "Nic",
    "NicParams",
    "NicPort",
    "PCI_XD",
    "PCI_XE",
    "PostedReceive",
    "ReceiveCompletion",
    "SendCompletion",
    "SendDescriptor",
    "Switch",
]
