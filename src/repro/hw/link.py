"""Network links: full-duplex, bandwidth-limited, with propagation delay.

A :class:`Link` joins two endpoints (NICs or a NIC and a switch port).
Each direction is an independent resource, so the paper's "full-duplex"
ratings hold: simultaneous opposite-direction transfers do not contend.
Transmission models cut-through: the sender occupies its direction for
the serialization time; delivery lands ``propagation`` after the last
byte leaves.

Fault injection
---------------

A link may carry a *fault injector* (see :mod:`repro.faults`): a filter
consulted once per transmitted item, after the wire has been occupied
(the sender's serialization cost is paid whether or not the bits arrive,
and ``bytes_carried`` accounts the bytes the wire carried, not the bytes
delivered).  The filter may pass the item through, drop it, or substitute
a corrupted copy.  With no injector installed (the default) the path is
a single ``is None`` check and the link is the perfect wire it always
was.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .. import obs
from ..errors import NetworkError
from ..sim import Environment, Resource
from ..units import transfer_time_ns
from .params import LinkParams


class Link:
    """A point-to-point full-duplex link between endpoints ``a`` and ``b``."""

    def __init__(self, env: Environment, params: LinkParams, name: str = "link"):
        self.env = env
        self.params = params
        self.name = name
        self._dirs = {
            "ab": Resource(env, 1, f"{name}.ab"),
            "ba": Resource(env, 1, f"{name}.ba"),
        }
        self._ends: dict[str, Optional[Callable[[Any], None]]] = {"a": None, "b": None}
        # Per-direction wire accounting on the metrics registry
        # (unregistered per-instance counters when none is installed).
        # busy_ns accumulates serialization time, so a deterministic
        # utilization is derivable from any snapshot without wall-clock.
        self._m_bytes = {
            d: obs.counter("link.bytes", link=name, dir=d) for d in ("ab", "ba")
        }
        self._m_busy = {
            d: obs.counter("link.busy_ns", link=name, dir=d) for d in ("ab", "ba")
        }
        self._m_dropped = obs.counter("link.drops", link=name)
        #: Optional fault injector (repro.faults.LinkFaultInjector).
        self.faults = None

    @property
    def bytes_carried(self) -> int:
        """Bytes the wire carried in either direction (delivered or not)."""
        return self._m_bytes["ab"].value + self._m_bytes["ba"].value

    @property
    def messages_dropped(self) -> int:
        """Items the injector removed from the wire (never delivered)."""
        return self._m_dropped.value

    @property
    def is_down(self) -> bool:
        """True while a fault plan holds this link in a down window."""
        return self.faults is not None and self.faults.down

    def attach(self, end: str, deliver: Callable[[Any], None]) -> None:
        """Connect an endpoint ('a' or 'b'); ``deliver(item)`` is called
        when a transmission arrives at that end."""
        if end not in ("a", "b"):
            raise NetworkError(f"link end must be 'a' or 'b', got {end!r}")
        if self._ends[end] is not None:
            raise NetworkError(f"link end {end!r} already attached")
        self._ends[end] = deliver

    def serialization_ns(self, nbytes: int) -> int:
        """Time the wire is occupied sending ``nbytes``."""
        return transfer_time_ns(nbytes, self.params.link_bandwidth)

    def transmit(self, from_end: str, item: Any, nbytes: int):
        """Generator: send ``item`` of ``nbytes`` from one end to the other.

        Returns (via StopIteration) after the wire is released; delivery
        at the far end fires ``propagation_ns`` later without blocking
        the sender (cut-through exit).
        """
        if from_end not in ("a", "b"):
            raise NetworkError(f"from_end must be 'a' or 'b', got {from_end!r}")
        to_end = "b" if from_end == "a" else "a"
        deliver = self._ends[to_end]
        if deliver is None:
            raise NetworkError(f"link end {to_end!r} has no endpoint attached")
        dir_key = "ab" if from_end == "a" else "ba"
        direction = self._dirs[dir_key]
        serialization = self.serialization_ns(nbytes)
        yield from direction.acquire(serialization)
        self._m_bytes[dir_key].inc(nbytes)
        self._m_busy[dir_key].inc(serialization)
        if self.faults is not None:
            item = self.faults.filter(self, item, nbytes)
            if item is None:
                self._m_dropped.inc()
                return

        def _arrive(env):
            yield env.timeout(self.params.propagation_ns)
            deliver(item)

        self.env.process(_arrive(self.env), name=f"{self.name}.deliver")

    def utilization(self, direction: str = "ab") -> float:
        """Busy fraction of one direction ('ab' or 'ba')."""
        if direction not in self._dirs:
            raise NetworkError(
                f"link direction must be 'ab' or 'ba', got {direction!r}"
            )
        return self._dirs[direction].utilization()
