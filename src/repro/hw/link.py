"""Network links: full-duplex, bandwidth-limited, with propagation delay.

A :class:`Link` joins two endpoints (NICs or a NIC and a switch port).
Each direction is an independent resource, so the paper's "full-duplex"
ratings hold: simultaneous opposite-direction transfers do not contend.
Transmission models cut-through: the sender occupies its direction for
the serialization time; delivery lands ``propagation`` after the last
byte leaves.

Fault injection
---------------

A link may carry a *fault injector* (see :mod:`repro.faults`): a filter
consulted once per transmitted item, after the wire has been occupied
(the sender's serialization cost is paid whether or not the bits arrive,
and ``bytes_carried`` accounts the bytes the wire carried, not the bytes
delivered).  The filter may pass the item through, drop it, or substitute
a corrupted copy.  With no injector installed (the default) the path is
a single ``is None`` check and the link is the perfect wire it always
was.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .. import obs
from ..errors import NetworkError
from ..sim import Environment, Resource
from ..units import transfer_time_ns
from .params import LinkParams
from .train import PacketTrain, TrainRun, TrainTruncation


class Link:
    """A point-to-point full-duplex link between endpoints ``a`` and ``b``."""

    #: True on :class:`repro.sim.border.BorderLink`: the far end lives in
    #: another shard process, so analytic flow reservations (which need
    #: a global view of the path) must not cross it.
    is_border = False

    def __init__(self, env: Environment, params: LinkParams, name: str = "link"):
        self.env = env
        self.params = params
        self.name = name
        self._dirs = {
            "ab": Resource(env, 1, f"{name}.ab"),
            "ba": Resource(env, 1, f"{name}.ba"),
        }
        self._ends: dict[str, Optional[Callable[[Any], None]]] = {"a": None, "b": None}
        # Per-direction wire accounting on the metrics registry
        # (unregistered per-instance counters when none is installed).
        # busy_ns accumulates serialization time, so a deterministic
        # utilization is derivable from any snapshot without wall-clock.
        self._m_bytes = {
            d: obs.counter("link.bytes", link=name, dir=d) for d in ("ab", "ba")
        }
        self._m_busy = {
            d: obs.counter("link.busy_ns", link=name, dir=d) for d in ("ab", "ba")
        }
        self._m_dropped = obs.counter("link.drops", link=name)
        #: Optional fault injector (repro.faults.LinkFaultInjector).
        self.faults = None
        #: Optional per-link flow state (repro.hw.flow.LinkFlows),
        #: installed the first time a flow reservation crosses this
        #: link.  While a direction carries reservations, packet
        #: transmissions on it are "interlopers": counted against the
        #: contention threshold that de-coalesces the flows.
        self.flows = None
        #: Optional Tracer; a subscription that ``wants("wire")`` gets a
        #: record per wire item — and thereby vetoes train coalescing,
        #: since a train would hide the per-packet records.
        self.tracer = None
        #: Trains this link carried analytically (cheap introspection).
        self.trains_carried = 0

    @property
    def bytes_carried(self) -> int:
        """Bytes the wire carried in either direction (delivered or not)."""
        return self._m_bytes["ab"].value + self._m_bytes["ba"].value

    @property
    def messages_dropped(self) -> int:
        """Items the injector removed from the wire (never delivered)."""
        return self._m_dropped.value

    @property
    def is_down(self) -> bool:
        """True while a fault plan holds this link in a down window."""
        return self.faults is not None and self.faults.down

    def attach(self, end: str, deliver: Callable[[Any], None]) -> None:
        """Connect an endpoint ('a' or 'b'); ``deliver(item)`` is called
        when a transmission arrives at that end."""
        if end not in ("a", "b"):
            raise NetworkError(f"link end must be 'a' or 'b', got {end!r}")
        if self._ends[end] is not None:
            raise NetworkError(f"link end {end!r} already attached")
        self._ends[end] = deliver

    def serialization_ns(self, nbytes: int) -> int:
        """Time the wire is occupied sending ``nbytes``."""
        return transfer_time_ns(nbytes, self.params.link_bandwidth)

    def _deliver_at(self, to_end: str, when: int, item: Any) -> None:
        """Hand ``item`` to the ``to_end`` endpoint at absolute time ``when``.

        The single seam every arrival goes through.  One pre-triggered
        heap entry instead of a delivery process (start + timeout +
        completion): same arrival instant, a third of the events on the
        busiest path in the simulator.  ``repro.sim.border.BorderLink``
        overrides this to ship the item to another shard when the
        destination endpoint lives in a different worker process.
        """
        self.env.call_at(when, self._ends[to_end], item)

    def transmit(self, from_end: str, item: Any, nbytes: int):
        """Generator: send ``item`` of ``nbytes`` from one end to the other.

        Returns (via StopIteration) after the wire is released; delivery
        at the far end fires ``propagation_ns`` later without blocking
        the sender (cut-through exit).
        """
        if from_end not in ("a", "b"):
            raise NetworkError(f"from_end must be 'a' or 'b', got {from_end!r}")
        to_end = "b" if from_end == "a" else "a"
        deliver = self._ends[to_end]
        if deliver is None:
            raise NetworkError(f"link end {to_end!r} has no endpoint attached")
        dir_key = "ab" if from_end == "a" else "ba"
        direction = self._dirs[dir_key]
        serialization = self.serialization_ns(nbytes)
        yield from direction.acquire(serialization)
        self._m_bytes[dir_key].inc(nbytes)
        self._m_busy[dir_key].inc(serialization)
        flows = self.flows
        if flows is not None:
            flows.note_interloper(dir_key, nbytes)
        tracer = self.tracer
        if tracer is not None and tracer.wants("wire"):
            tracer.emit(self.env.now, "wire", "packet", {
                "link": self.name,
                "dir": dir_key,
                "kind": getattr(getattr(item, "kind", None), "value", "?"),
                "bytes": nbytes,
            })
        if self.faults is not None:
            item = self.faults.filter(self, item, nbytes)
            if item is None:
                self._m_dropped.inc()
                return

        self._deliver_at(to_end, self.env.now + self.params.propagation_ns, item)

    # -- packet-train fast path -------------------------------------------

    def train_block_reason(self, from_end: str) -> Optional[str]:
        """Why a train may not start on this direction right now.

        ``None`` means eligible: the direction is idle with no waiters,
        no fault injector sits on the link, and no tracer subscription
        wants per-packet wire records.  Any other answer names the
        de-coalescing reason (used as an obs counter label).
        """
        dir_key = "ab" if from_end == "a" else "ba"
        direction = self._dirs[dir_key]
        if direction.in_use or direction.queue_length:
            return "busy"
        flows = self.flows
        if flows is not None and flows.reserved(dir_key):
            # Analytic flow reservations share this direction; a train
            # hold would monopolize it.  The per-packet fallback packets
            # count as interlopers, which is exactly the contention the
            # flows' de-coalescing threshold is watching for.
            return "flow"
        if self.faults is not None:
            return "faults"
        tracer = self.tracer
        if tracer is not None and tracer.wants("wire"):
            return "wire_trace"
        return None

    def transmit_train(self, from_end: str, train: PacketTrain, run: TrainRun):
        """Generator: carry up to ``run.limit`` back-to-back MTU packets
        analytically, holding the direction exactly as the per-packet
        loop would.

        The caller must have checked :meth:`train_block_reason` at the
        current time, so the request below is granted synchronously and
        the hold starts *now*.  Packet ``j`` (1-based) occupies
        ``[start + (j-1)*per, start + j*per)``; the train descriptor is
        delivered cut-through at first-packet arrival so the next hop
        starts forwarding exactly when per-packet forwarding would.

        The hold re-plans when nudged awake:

        * a competitor queues on the direction → finish the packet slot
          in progress (``done = ceil(elapsed/per)``, at least the one
          in flight), wait to that packet boundary, release there —
          byte-for-byte where the per-packet loop would have yielded
          the wire — and report ``done`` so the caller re-emits the
          rest per-packet *behind* the competitor;
        * an upstream :class:`TrainTruncation` shrinks ``run.limit`` →
          re-arm the analytic end at the new boundary.

        Occupancy counters account exactly the packets carried, so
        ``bytes_carried``/``utilization`` match per-packet runs at every
        timestamp.  Returns the number of packets carried; if short of
        ``train.npackets``, a truncation notice chases the descriptor
        downstream (one propagation delay after the release boundary).
        """
        to_end = "b" if from_end == "a" else "a"
        deliver = self._ends[to_end]
        if deliver is None:
            raise NetworkError(f"link end {to_end!r} has no endpoint attached")
        dir_key = "ab" if from_end == "a" else "ba"
        direction = self._dirs[dir_key]
        env = self.env
        per = self.serialization_ns(train.wire_size)
        req = direction.request()
        if not req.triggered:  # pragma: no cover - caller contract violated
            raise NetworkError(f"train started on busy direction {direction.name}")
        start = env.now
        self.trains_carried += 1
        self._deliver_at(to_end, start + per + self.params.propagation_ns, train)
        done = run.limit
        direction.contention_cb = run.notify_contention
        try:
            while True:
                wake = env.event(name="train.wake")
                run.wake = wake
                end_ev = env.timeout(start + run.limit * per - env.now)
                yield env.any_of([end_ev, wake])
                run.wake = None
                if end_ev.processed:
                    done = run.limit
                    break
                if run.contended:
                    # At least the packet in flight is committed to the
                    # wire; the per-packet loop would also only yield at
                    # its end.
                    done = min(run.limit, max(1, -(-(env.now - start) // per)))
                    boundary = start + done * per
                    if boundary > env.now:
                        yield env.timeout(boundary - env.now)
                    break
                # Truncated upstream: loop to re-arm at the new boundary.
        finally:
            direction.contention_cb = None
            self._m_bytes[dir_key].inc(done * train.wire_size)
            self._m_busy[dir_key].inc(done * per)
            req.release()
        if done < train.npackets:
            self._deliver_at(to_end, env.now + self.params.propagation_ns,
                             TrainTruncation(train.train_id, done,
                                             train.src_nic, train.dst_nic))
        return done

    def utilization(self, direction: str = "ab") -> float:
        """Busy fraction of one direction ('ab' or 'ba')."""
        if direction not in self._dirs:
            raise NetworkError(
                f"link direction must be 'ab' or 'ba', got {direction!r}"
            )
        return self._dirs[direction].utilization()
