"""Host CPU model: a contended resource that charges for copies and work.

All host-side software costs (API overheads, memory copies, protocol
processing) occupy the CPU resource, so concurrent activities serialize
realistically and :meth:`Cpu.utilization` exposes how many cycles the
communication stack steals from the application — the paper's core
motivation for zero-copy ("These copies are CPU consuming while the user
parallel application needs the CPU for its computations", section 2.1).
"""

from __future__ import annotations

from ..sim import Environment, Resource
from ..units import S
from .params import CpuParams


class Cpu:
    """One host CPU (the paper's nodes are dual-Xeon; capacity=2)."""

    def __init__(self, env: Environment, params: CpuParams, capacity: int = 2,
                 name: str = "cpu"):
        self.env = env
        self.params = params
        self.name = name
        self.resource = Resource(env, capacity=capacity, name=name)
        self.copied_bytes = 0

    def copy_time_ns(self, nbytes: int) -> int:
        """Pure cost of copying ``nbytes``, no queueing.

        Two-regime model: the first ``copy_cache_threshold`` bytes move
        at the cache-resident rate, the remainder at the streaming rate
        (see :class:`repro.hw.params.CpuParams`).
        """
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        if nbytes == 0:
            return 0
        p = self.params
        cached = min(nbytes, p.copy_cache_threshold)
        streamed = nbytes - cached
        t = cached * S / p.copy_bandwidth_cached
        if streamed:
            t += streamed * S / p.copy_bandwidth_stream
        return p.copy_setup_ns + max(1, round(t))

    def copy(self, nbytes: int):
        """Generator: occupy the CPU for a copy of ``nbytes``.

        Usage: ``yield from cpu.copy(n)``.
        """
        self.copied_bytes += nbytes
        yield from self.resource.acquire(self.copy_time_ns(nbytes))

    def work(self, duration_ns: int):
        """Generator: occupy the CPU for fixed-duration software work."""
        if duration_ns < 0:
            raise ValueError(f"negative work duration {duration_ns}")
        yield from self.resource.acquire(duration_ns)

    def pin_pages(self, npages: int):
        """Generator: charge get_user_pages-style pinning for npages."""
        yield from self.resource.acquire(self.params.pin_page_ns * npages)

    def syscall(self):
        """Generator: charge one user/kernel boundary crossing."""
        yield from self.resource.acquire(self.params.syscall_ns)

    def utilization(self) -> float:
        """Fraction of simulated time at least one core was busy."""
        return self.resource.utilization()
